"""Table IV — maximum clock frequencies, paper vs calibrated model.

Regenerates the full 5 x 18 frequency table from the synthesis model,
prints it side by side with the paper's published values, reports the
residual statistics, and checks the structural claims (202 MHz peak cell,
monotone degradation with capacity/ports, 77-202 MHz range).
"""

import io

from _util import dse_result, save_report

from repro.core.schemes import Scheme
from repro.dse import dse_report, render_table_iv
from repro.hw.synthesis import SynthesisModel, default_model


def test_table4_frequencies(benchmark):
    result = dse_result()
    model = default_model()
    out = io.StringIO()
    out.write(render_table_iv(result, source="both"))
    stats = model.freq_fit_stats
    out.write(
        f"\nfit quality over {stats['n_points']} Table IV cells: "
        f"R^2={stats['r2']:.3f}, mean |err|={stats['mean_abs_pct_err']:.1f}%, "
        f"max |err|={stats['max_abs_pct_err']:.1f}%\n"
    )
    save_report("table4_frequency", out.getvalue(), dse_report(result))
    # per-cell residuals as CSV (auditability of the calibration)
    csv = io.StringIO()
    csv.write("scheme,capacity_kb,lanes,ports,paper_mhz,model_mhz,err_pct\n")
    for p in result.points:
        err = 100 * (p.model_mhz - p.paper_mhz) / p.paper_mhz
        csv.write(
            f"{p.config.scheme.value},{p.capacity_kb},{p.config.lanes},"
            f"{p.config.read_ports},{p.paper_mhz:.0f},{p.model_mhz:.1f},"
            f"{err:+.1f}\n"
        )
    save_report("table4_residuals_csv", csv.getvalue())

    # headline claims
    assert stats["r2"] > 0.8
    peak = result.lookup(Scheme.ReO, 512, 8, 1)
    assert peak.paper_mhz == 202
    assert abs(peak.model_mhz - 202) / 202 < 0.10
    # monotone shape: frequency never rises with capacity (model)
    for scheme in Scheme:
        freqs = [
            result.lookup(scheme, kb, 8, 1).model_mhz
            for kb in (512, 1024, 2048, 4096)
        ]
        assert freqs == sorted(freqs, reverse=True)
    # model output spans the paper's 77-202 MHz range (within tolerance)
    model_vals = [p.model_mhz for p in result.points]
    assert 70 < min(model_vals) < 95
    assert 180 < max(model_vals) < 225

    # benchmark one full-table estimation pass (fit excluded: cached)
    cfgs = [p.config for p in result.points]
    benchmark(lambda: [model.frequency_mhz(c) for c in cfgs])


def test_table4_model_fit_time(benchmark):
    """Calibration cost: fitting the frequency + area models from scratch."""
    benchmark(SynthesisModel)
