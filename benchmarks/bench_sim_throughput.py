"""Scalar vs batched tick-engine throughput on the Fig. 9 STREAM design.

Runs the full Load / Copy / Offload sequence cycle-accurately under both
engines across STREAM sizes (up to 128 KB per array), checking that the
batched engine is bit-identical in cycles while >= 10x faster in wall
clock at the paper's 64 KB point.  Emits the unified
``repro.exec.report`` JSON next to the text artifact; the small-size
smoke variant backs the CI perf gate.
"""

import io
import time

from _util import gate, save_report

from repro.exec import Report, ReportEntry
from repro.stream_bench import StreamHarness, build_stream_design
from repro.stream_bench.apps import COPY

#: lane-vectors per run; 1024 vectors x 8 lanes x 8 B = 64 KB per array
SIZES = (128, 512, 1024, 2048)


def _one_pass(engine: str, vectors: int):
    design = build_stream_design()
    design.dfe.simulator.engine = engine
    harness = StreamHarness(design)
    t0 = time.perf_counter()
    harness.load_arrays(vectors)
    cycles = harness.run_app(COPY, vectors)
    harness.offload_array(COPY.destination, vectors)
    wall = time.perf_counter() - t0
    return cycles, design.dfe.simulator.cycles, wall


def _measure(vectors: int) -> dict:
    s_cycles, s_total, s_wall = _one_pass("scalar", vectors)
    b_cycles, b_total, b_wall = _one_pass("batched", vectors)
    assert b_cycles == s_cycles, "engines disagree on compute cycles"
    assert b_total == s_total, "engines disagree on total cycles"
    elements = vectors * 8
    return {
        "vectors": vectors,
        "kb": vectors * 8 * 8 / 1024,
        "cycles": s_cycles,
        "scalar_wall_s": s_wall,
        "batched_wall_s": b_wall,
        "scalar_eps": elements / s_wall,
        "batched_eps": elements / b_wall,
        "speedup": s_wall / b_wall,
    }


def _row(m: dict) -> str:
    return (
        f"{m['kb']:8.0f} {m['cycles']:8d} {m['scalar_wall_s']:10.3f} "
        f"{m['batched_wall_s']:11.3f} {m['scalar_eps']:11.0f} "
        f"{m['batched_eps']:12.0f} {m['speedup']:8.1f}x\n"
    )


_HEADER = (
    "batched vs scalar tick engine — STREAM Copy, full Fig. 9 design\n"
    "(Load + compute + Offload, cycle counts bit-identical by assertion)\n\n"
    f"{'KB':>8s} {'cycles':>8s} {'scalar s':>10s} {'batched s':>11s} "
    f"{'scalar el/s':>11s} {'batched el/s':>12s} {'speedup':>9s}\n"
)


def _entry(m: dict) -> ReportEntry:
    return ReportEntry(
        experiment="sim throughput",
        quantity=f"Copy @ {m['kb']:.0f} KB speedup [x]",
        measured=round(m["speedup"], 2),
        metrics={
            "vectors": m["vectors"],
            "cycles": m["cycles"],
            "scalar_wall_s": round(m["scalar_wall_s"], 4),
            "batched_wall_s": round(m["batched_wall_s"], 4),
            "scalar_elements_per_s": round(m["scalar_eps"]),
            "batched_elements_per_s": round(m["batched_eps"]),
        },
    )


def test_sim_throughput_report(benchmark):
    out = io.StringIO()
    out.write(_HEADER)
    report = Report(title="Batched tick engine: scalar vs batched (Copy)")
    by_size = {}
    for vectors in SIZES:
        m = _measure(vectors)
        by_size[vectors] = m
        out.write(_row(m))
        report.entries.append(_entry(m))
    save_report("sim_throughput", out.getvalue(), report)

    # the headline acceptance: >= 4x at the paper's 64 KB STREAM size.
    # (The gate was >= 10x against the original scalar engine; the
    # access-plan compiler then made scalar `step()` itself ~4x faster,
    # so the same batched wall time now divides a much faster baseline.)
    assert by_size[1024]["speedup"] >= 4
    assert by_size[2048]["speedup"] >= 4

    benchmark(lambda: _one_pass("batched", 512))


def test_sim_throughput_smoke(benchmark):
    """The CI perf gate: one small size, batched must be >= 2x scalar
    (threshold from the declarative GATE_TABLE, verdict ledgered)."""
    m = _measure(256)
    g = gate("sim.batched_vs_scalar", m["speedup"])
    report = Report(title="Batched tick engine perf smoke (Copy @ 16 KB)")
    report.entries.append(_entry(m))
    save_report(
        "sim_throughput_smoke",
        _HEADER + _row(m),
        report,
        gates=[g],
        params={"workload": "stream.copy", "scheme": "batched", "vectors": 256},
        timings={
            "scalar_wall_s": m["scalar_wall_s"],
            "batched_wall_s": m["batched_wall_s"],
        },
    )
    assert g["ok"], g
    benchmark(lambda: _one_pass("batched", 256))
