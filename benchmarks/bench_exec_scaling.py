"""repro.exec scaling — parallel fan-out and warm-cache re-runs.

The full Table III sweep with per-point §IV-A validation (the paper
"validate[s] each design") is the repository's heaviest grid walk.  This
bench runs it through the :mod:`repro.exec` runtime at 1..4 workers and
shows (a) near-linear wall-clock speedup with the worker count (the
speedup assertion scales with the CPUs the machine actually has) and
(b) a warm-cache re-run that recomputes nothing and finishes in
milliseconds per point.
"""

from __future__ import annotations

import io
import os
import time

from _util import save_report

from repro.dse import explore
from repro.dse.space import PAPER_SPACE
from repro.exec import Report, ReportEntry, ResultCache

#: rows validated per design: enough to exercise every pattern/port, small
#: enough to keep the serial baseline in seconds
VALIDATE_ROWS = 8


def _timed_sweep(workers, cache=None):
    t0 = time.perf_counter()
    result = explore(
        validate=True, validate_rows=VALIDATE_ROWS, workers=workers, cache=cache
    )
    return result, time.perf_counter() - t0


def test_exec_scaling(benchmark, tmp_path):
    n_points = PAPER_SPACE.size()
    cpus = os.cpu_count() or 1
    out = io.StringIO()
    out.write(
        "REPRO.EXEC SCALING — full Table III sweep, validated designs "
        f"({n_points} points, {VALIDATE_ROWS} rows each, {cpus} CPU(s))\n\n"
    )

    # -- cold runs at 1..4 workers ----------------------------------------
    timings = {}
    baseline = None
    for workers in (1, 2, 4):
        result, seconds = _timed_sweep(workers)
        assert len(result.points) == n_points
        assert result.sweep.n_computed == n_points
        timings[workers] = seconds
        baseline = baseline or result
        speedup = timings[1] / seconds
        out.write(
            f"  workers={workers}: {seconds:6.2f} s"
            f"  (speedup x{speedup:.2f})\n"
        )

    # parallel results are byte-identical to serial ones
    parallel, _ = _timed_sweep(4)
    assert parallel.sweep.payload_json() == baseline.sweep.payload_json()

    # -- warm-cache re-run --------------------------------------------------
    cache = ResultCache(tmp_path / "cache")
    _, cold_cached = _timed_sweep(4, cache=cache)
    warm_result, warm_seconds = _timed_sweep(4, cache=cache)
    assert warm_result.sweep.n_cached == n_points  # skips 100% >= 90%
    assert warm_result.sweep.n_computed == 0
    assert warm_result.sweep.payload_json() == baseline.sweep.payload_json()
    per_point_ms = warm_seconds / n_points * 1e3
    out.write(
        f"\n  warm cache: {warm_seconds * 1e3:6.1f} ms total "
        f"({per_point_ms:.2f} ms/point, {warm_result.sweep.n_cached}"
        f"/{n_points} cached)\n"
    )
    assert warm_seconds < 1.0  # milliseconds per point, not ~100 ms

    # -- speedup claim, scaled to the hardware ------------------------------
    speedup4 = timings[1] / timings[4]
    out.write(f"\n  1 -> 4 workers speedup: x{speedup4:.2f}\n")
    if cpus >= 4:
        assert speedup4 >= 2.0, timings
    elif cpus >= 2:
        assert speedup4 >= 1.2, timings
    # single-CPU machines cannot speed up CPU-bound work; the run above
    # still proves correctness (byte-identical results) and the cache win

    report = Report(
        title="repro.exec scaling (Table III sweep, validated)",
        entries=[
            ReportEntry(
                experiment="exec.scaling",
                quantity=f"wall seconds @ {w} worker(s)",
                measured=round(s, 3),
                metrics={"points": n_points, "cpus": cpus},
            )
            for w, s in timings.items()
        ]
        + [
            ReportEntry(
                experiment="exec.scaling",
                quantity="warm-cache re-run seconds",
                measured=round(warm_seconds, 4),
                ok=warm_seconds < 1.0,
                metrics={"cached": warm_result.sweep.n_cached},
            ),
            ReportEntry(
                experiment="exec.scaling",
                quantity="speedup 1 -> 4 workers",
                measured=round(speedup4, 2),
                ok=(speedup4 >= 2.0) if cpus >= 4 else None,
            ),
        ],
    )
    save_report("exec_scaling", out.getvalue(), report)

    # benchmark the steady state: the warm-cache sweep
    benchmark(lambda: explore(
        validate=True, validate_rows=VALIDATE_ROWS, workers=4, cache=cache
    ))
