"""repro.exec scaling — warm-forked fan-out and warm-cache re-runs.

The full Table III sweep with per-point §IV-A validation (the paper
"validate[s] each design") is the repository's heaviest grid walk.  This
bench runs it through the :mod:`repro.exec` runtime at 1..4 workers and
shows (a) wall-clock speedup with the worker count — the warm-forked pool
inherits pre-compiled plans/routes/kernels from the parent, so workers
spend their time on points, not cold starts; (b) byte-identical results
across worker counts; and (c) a warm-cache re-run that recomputes nothing
and finishes in milliseconds per point.

Runs two ways:

* ``pytest benchmarks/bench_exec_scaling.py`` — the benchmark suite entry;
* ``python benchmarks/bench_exec_scaling.py --smoke`` — the CI perf-smoke
  gate: exits non-zero unless (i) the 1 → 4 worker speedup is >= 2x on a
  machine with >= 2 CPUs, or (ii) the 4-worker wall time is <= 1.05x of
  the 1-worker time on smaller machines (parallel dispatch must never be
  a regression, even where it cannot be a win).  When ``resolve_workers``
  clamps the 4-worker run all the way to the serial path (a 1-CPU box),
  gate (ii) holds trivially: both timed runs execute identical code, so
  any spread between them is machine noise, not a dispatch regression.

Both write ``benchmarks/out/exec_scaling.{txt,json}``.
"""

from __future__ import annotations

import io
import os
import sys
import tempfile
import time

from _util import gate as declare_gate
from _util import save_report

from repro.dse import explore
from repro.dse.space import PAPER_SPACE
from repro.exec import Report, ReportEntry, ResultCache

#: rows validated per design: enough to exercise every pattern/port, small
#: enough to keep the serial baseline in seconds
VALIDATE_ROWS = 8

#: the CI gate thresholds (see the module docstring)
MIN_SPEEDUP_MULTICORE = 2.0
MAX_SLOWDOWN_ANYWHERE = 1.05


def _timed_sweep(workers, cache=None):
    t0 = time.perf_counter()
    result = explore(
        validate=True, validate_rows=VALIDATE_ROWS, workers=workers, cache=cache
    )
    return result, time.perf_counter() - t0


def run_scaling(cache_dir) -> tuple[str, Report, list[str], list[dict]]:
    """The scaling measurement shared by the pytest entry and ``--smoke``.

    Returns the text artifact, the JSON report, the list of gate
    failures (empty when every gate holds on this machine), and the
    uniform gate records the ledger stores (the conditional branch taken
    on this machine is recorded with its own op/threshold, so ``repro
    telemetry regress`` re-evaluates the same branch bit-for-bit).
    """
    n_points = PAPER_SPACE.size()
    cpus = os.cpu_count() or 1
    out = io.StringIO()
    out.write(
        "REPRO.EXEC SCALING — full Table III sweep, validated designs "
        f"({n_points} points, {VALIDATE_ROWS} rows each, {cpus} CPU(s))\n\n"
    )

    # -- cold-cache runs at 1..4 workers -----------------------------------
    # one untimed pass first: the bench process itself pays the one-time
    # plan/model compile cost here, so the timed runs below compare
    # dispatch strategies, not who ran first; best-of-2 per worker count
    # keeps shared-runner timing noise out of the gate
    _timed_sweep(1)
    timings = {}
    sweeps = {}
    baseline = None
    for workers in (1, 2, 4):
        result, seconds = _timed_sweep(workers)
        again, seconds2 = _timed_sweep(workers)
        if seconds2 < seconds:
            result, seconds = again, seconds2
        assert len(result.points) == n_points
        assert result.sweep.n_computed == n_points
        timings[workers] = seconds
        sweeps[workers] = result.sweep
        baseline = baseline or result
        extra = ""
        if result.sweep.chunks:
            extra = (
                f"  [{result.sweep.chunks} chunks, "
                f"warmup {result.sweep.warmup_seconds:.3f} s]"
            )
        out.write(
            f"  workers={workers}: {seconds:6.2f} s"
            f"  (speedup x{timings[1] / seconds:.2f}){extra}\n"
        )

    # parallel results are byte-identical to serial ones
    failures = []
    for workers, sweep in sweeps.items():
        if sweep.payload_json() != baseline.sweep.payload_json():
            failures.append(f"workers={workers} payload differs from serial")

    # -- warm-cache re-run --------------------------------------------------
    cache = ResultCache(cache_dir)
    _timed_sweep(4, cache=cache)
    warm_result, warm_seconds = _timed_sweep(4, cache=cache)
    assert warm_result.sweep.n_cached == n_points
    assert warm_result.sweep.n_computed == 0
    if warm_result.sweep.payload_json() != baseline.sweep.payload_json():
        failures.append("warm-cache payload differs from serial")
    per_point_ms = warm_seconds / n_points * 1e3
    out.write(
        f"\n  warm cache: {warm_seconds * 1e3:6.1f} ms total "
        f"({per_point_ms:.2f} ms/point, {warm_result.sweep.n_cached}"
        f"/{n_points} cached)\n"
    )
    warm_gate = declare_gate("exec.warm_cache_seconds", warm_seconds)
    if not warm_gate["ok"]:  # milliseconds per point, not ~100 ms
        failures.append(f"warm-cache re-run took {warm_seconds:.2f} s (>= 1 s)")

    # -- the scaling gates --------------------------------------------------
    speedup4 = timings[1] / timings[4]
    out.write(f"\n  1 -> 4 workers speedup: x{speedup4:.2f}\n")
    if cpus >= 2:
        gate = f"speedup >= x{MIN_SPEEDUP_MULTICORE} ({cpus} CPUs)"
        scaling_gate = declare_gate("exec.scaling_1_to_4", speedup4)
    elif sweeps[4].workers <= 1:
        # resolve_workers clamped the 4-worker run to the serial path, so
        # both timed runs executed identical code: there is no dispatch
        # difference for the no-regression bound to measure, only machine
        # noise.  The gate holds trivially — recorded with an explicit
        # always-true threshold so the ledger replays the same branch.
        gate = "workers clamped to 1 (1 CPU): serial code paths identical"
        scaling_gate = declare_gate(
            "exec.scaling_1_to_4", speedup4, op=">=", threshold=0.0, detail=gate
        )
    else:
        gate = f"4-worker time <= x{MAX_SLOWDOWN_ANYWHERE} of 1-worker (1 CPU)"
        scaling_gate = declare_gate(
            "exec.no_regression_1cpu", timings[4] / timings[1]
        )
    ok4 = scaling_gate["ok"]
    out.write(f"  gate: {gate} — {'PASS' if ok4 else 'FAIL'}\n")
    if not ok4:
        failures.append(f"scaling gate failed: {gate}, timings={timings}")
    gates = [scaling_gate, warm_gate]

    report = Report(
        title="repro.exec scaling (Table III sweep, validated)",
        entries=[
            ReportEntry(
                experiment="exec.scaling",
                quantity=f"wall seconds @ {w} worker(s)",
                measured=round(s, 3),
                metrics={
                    "points": n_points,
                    "cpus": cpus,
                    "chunks": sweeps[w].chunks,
                    "warmup_seconds": round(sweeps[w].warmup_seconds, 4),
                    "ipc_seconds": round(sweeps[w].ipc_seconds, 4),
                },
            )
            for w, s in timings.items()
        ]
        + [
            ReportEntry(
                experiment="exec.scaling",
                quantity="warm-cache re-run seconds",
                measured=round(warm_seconds, 4),
                ok=warm_seconds < 1.0,
                metrics={"cached": warm_result.sweep.n_cached},
            ),
            ReportEntry(
                experiment="exec.scaling",
                quantity="speedup 1 -> 4 workers",
                measured=round(speedup4, 2),
                ok=ok4,
                metrics={"gate": gate},
            ),
        ],
    )
    return out.getvalue(), report, failures, gates


def _save(text, report, gates):
    cpus = os.cpu_count() or 1
    save_report(
        "exec_scaling",
        text,
        report,
        gates=gates,
        params={
            "workload": "table3.sweep",
            "scheme": "exec",
            "points": PAPER_SPACE.size(),
            "validate_rows": VALIDATE_ROWS,
        },
        flags={"cpus": cpus},
    )


def test_exec_scaling(benchmark, tmp_path):
    text, report, failures, gates = run_scaling(tmp_path / "cache")
    _save(text, report, gates)
    cpus = os.cpu_count() or 1
    # on a single-CPU machine the speedup gate is advisory in the pytest
    # entry (the --smoke CLI applies the no-regression bound instead)
    hard = [f for f in failures if "scaling gate" not in f or cpus >= 2]
    assert not hard, hard

    # benchmark the steady state: the warm-cache sweep
    cache = ResultCache(tmp_path / "cache")
    benchmark(lambda: explore(
        validate=True, validate_rows=VALIDATE_ROWS, workers=4, cache=cache
    ))


def main(argv) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        text, report, failures, gates = run_scaling(os.path.join(tmp, "cache"))
    _save(text, report, gates)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    if "--smoke" not in sys.argv:
        print("usage: python benchmarks/bench_exec_scaling.py --smoke")
        raise SystemExit(2)
    raise SystemExit(main(sys.argv))
