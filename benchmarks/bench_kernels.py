"""Application kernels — the §VII "complex applications" extension.

Regenerates the application-level benefit table: for each kernel, the
PolyMem cycle count vs the scalar-memory (one element per cycle) cost, the
realized speedup, and lane efficiency.  This is the CG-style evidence the
PRF lineage papers report, on this reproduction's kernel library.
"""

import io

import numpy as np
from _util import save_report

from repro.kernels import (
    load_matrix,
    matmul,
    matmul_scalar_cycles,
    reduce_columns,
    reduce_rows,
    stencil_serial_cycles,
    stencil_sweep,
    transpose,
    transpose_serial_cycles,
)


def test_application_kernels_table(benchmark):
    rng = np.random.default_rng(0)
    out = io.StringIO()
    out.write("APPLICATION KERNELS ON POLYMEM (2x4 lanes)\n")
    out.write(
        f"{'kernel':14s} {'problem':14s} {'cycles':>7s} "
        f"{'scalar cycles':>13s} {'speedup':>8s}\n"
    )
    rows = []

    a = rng.integers(0, 100, (8, 16)).astype(np.uint64)
    b = rng.integers(0, 100, (16, 16)).astype(np.uint64)
    c, rep = matmul(a, b)
    scalar = matmul_scalar_cycles(8, 16, 16)
    rows.append(("matmul", "8x16 @ 16x16", rep.cycles, scalar))

    m = rng.integers(0, 1 << 30, (16, 32)).astype(np.uint64)
    t, rep = transpose(m)
    # the transpose baseline is rectangle-only banking: tile reads stay
    # parallel, transposed writes serialize by the per-bank load (2x on a
    # 2x4 grid) -> its ceiling is 3/2, not the full lane count
    rows.append(("transpose*", "16x32", rep.cycles, transpose_serial_cycles(16, 32)))

    img = rng.integers(0, 256, (16, 32))
    w = np.ones((3, 3), dtype=int)
    _, rep = stencil_sweep(img, w)
    rows.append(("stencil 3x3", "16x32", rep.cycles, stencil_serial_cycles(16, 32, w)))

    pm = load_matrix(m)
    _, rep_r = reduce_rows(pm)
    _, rep_c = reduce_columns(pm)
    rows.append(("reduce rows", "16x32", rep_r.cycles, 16 * 32))
    rows.append(("reduce cols", "16x32", rep_c.cycles, 16 * 32))

    for name, prob, cycles, scalar in rows:
        out.write(
            f"{name:14s} {prob:14s} {cycles:7d} {scalar:13d} "
            f"{scalar / cycles:7.2f}x\n"
        )
    save_report("application_kernels", out.getvalue())

    # every kernel realizes the full 8x lane speedup on its traffic —
    # except transpose, whose baseline keeps reads parallel (see above)
    for name, _, cycles, scalar in rows:
        floor = 1.4 if name.endswith("*") else 7.9
        assert scalar / cycles >= floor, name

    benchmark(lambda: matmul(a, b))


def test_transpose_batch_speed(benchmark):
    rng = np.random.default_rng(1)
    m = rng.integers(0, 1 << 30, (32, 64)).astype(np.uint64)
    t, _ = benchmark(lambda: transpose(m))
    assert (t == m.T).all()


def test_reduction_speed(benchmark):
    rng = np.random.default_rng(2)
    m = rng.integers(0, 1000, (64, 64)).astype(np.uint64)
    pm = load_matrix(m)
    sums, _ = benchmark(lambda: reduce_rows(pm))
    assert (sums == m.sum(axis=1)).all()
