"""Ablation (§III-C) — modular multi-kernel vs fused single-kernel design.

The paper found the modular design "consumes twice as many resources,
mainly due to the additional inter-kernel communication infrastructure".
This bench builds both styles, compares their resource estimates, verifies
they are behaviourally identical, and times each style's simulation.
"""

import io

import numpy as np
from _util import save_report

from repro.core.agu import AccessRequest
from repro.core.config import KB, PolyMemConfig
from repro.core.patterns import PatternKind
from repro.core.schemes import Scheme
from repro.maxpolymem import WriteCommand, build_design


def make_cfg(read_ports=1):
    return PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo, read_ports=read_ports)


def run_reads(design, n=32):
    host = design.host()
    host.write_stream(
        "wr_cmd",
        [
            WriteCommand(
                AccessRequest(PatternKind.RECTANGLE, i, j),
                np.arange(8) + i * 100 + j,
            )
            for i in range(0, 8, 2)
            for j in range(0, 8, 4)
        ],
    )
    host.run_kernel(max_cycles=10_000)
    host.write_stream(
        "rd_cmd0", [AccessRequest(PatternKind.ROW, i % 8, 0) for i in range(n)]
    )
    out = design.dfe.manager.host_output("rd_out0")
    host.run_kernel(until=lambda: len(out) == n, max_cycles=100_000)
    return [np.asarray(v) for v in host.read_stream("rd_out0")]


def test_ablation_modular_vs_fused(benchmark):
    out = io.StringIO()
    out.write("ABLATION — modular vs fused MAX-PolyMem (§III-C)\n")
    out.write(
        f"{'style':8s} {'kernels':>8s} {'streams':>8s} "
        f"{'interconnect LUTs':>18s} {'total LUTs':>11s} {'latency':>8s}\n"
    )
    rows = {}
    for style in ("fused", "modular"):
        design = build_design(make_cfg(), style=style, clock_source="model")
        res = design.dfe.manager.resources()
        rows[style] = (design, res)
        out.write(
            f"{style:8s} {res.num_kernels:8d} {res.num_streams:8d} "
            f"{res.interconnect_luts:18d} {design.resource_luts():11d} "
            f"{design.read_latency:8d}\n"
        )
    fused_design, fused_res = rows["fused"]
    mod_design, mod_res = rows["modular"]
    ratio = mod_design.resource_luts() / fused_design.resource_luts()
    out.write(f"\nmodular / fused resource ratio: {ratio:.2f}x "
              f"(paper: ~2x)\n")
    save_report("ablation_modular_vs_fused", out.getvalue())

    # the paper's 2x observation, within tolerance
    assert 1.5 < ratio < 3.0
    assert mod_res.interconnect_luts > 0
    assert fused_res.interconnect_luts == 0

    # behavioural equivalence
    a = run_reads(build_design(make_cfg(), style="fused", clock_source="model"))
    b = run_reads(build_design(make_cfg(), style="modular", clock_source="model"))
    for x, y in zip(a, b):
        assert (x == y).all()

    # time the (slower) modular simulation
    benchmark(
        lambda: run_reads(
            build_design(make_cfg(), style="modular", clock_source="model"), n=16
        )
    )


def test_ablation_fused_simulation_speed(benchmark):
    benchmark(
        lambda: run_reads(
            build_design(make_cfg(), style="fused", clock_source="model"), n=16
        )
    )
