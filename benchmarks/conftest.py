"""Benchmark-suite configuration.

The benches double as the reproduction harness: each regenerates one of
the paper's tables/figures (saved under ``benchmarks/out/``) and times a
representative operation with pytest-benchmark.
"""

import sys
from pathlib import Path

# make `_util` importable regardless of how pytest was invoked
sys.path.insert(0, str(Path(__file__).parent))
