"""STREAM Scale/Sum/Triad — the paper's §VII future-work extension.

Runs all four STREAM kernels on the Fig. 9 design: cycle-accurate at a
small size (with functional verification against NumPy references) and
analytically at the full 700 KB size, regenerating the complete STREAM
report the paper planned to produce.
"""

import io

import pytest
from _util import save_report

from repro.core.config import PolyMemConfig
from repro.core.schemes import Scheme
from repro.stream_bench import StreamHarness, all_apps, build_stream_design


def small_harness():
    cfg = PolyMemConfig(
        36 * 32 * 8, p=2, q=4, scheme=Scheme.RoCo, read_ports=2, rows=36, cols=32
    )
    return StreamHarness(build_stream_design(cfg, clock_mhz=120))


@pytest.fixture(scope="module")
def full_harness():
    return StreamHarness()


def test_stream_full_report(benchmark, full_harness):
    out = io.StringIO()
    out.write("STREAM on MAX-PolyMem (RoCo 2x4, 2 read ports, 120 MHz)\n")
    out.write("full-size arrays (170 x 512 x 8 B), 1000 runs each\n\n")
    out.write(
        f"{'kernel':8s} {'formula':22s} {'MB/s':>9s} {'peak':>9s} "
        f"{'efficiency':>11s}\n"
    )
    results = {}
    for app in all_apps():
        m = full_harness.measure_analytic(app, full_harness.max_vectors, runs=1000)
        results[app.name] = m
        out.write(
            f"{app.name:8s} {app.formula:22s} {m.mbps:9.0f} "
            f"{m.peak_mbps:9.0f} {m.efficiency * 100:10.2f}%\n"
        )
    save_report("stream_full", out.getvalue())

    # Copy/Scale move 16 B/element at 2 ports -> 15,360 MB/s peak;
    # Sum/Triad use 3 ports (2 reads + 1 write) -> 23,040 MB/s peak
    assert results["Copy"].peak_mbps == pytest.approx(15_360)
    assert results["Sum"].peak_mbps == pytest.approx(23_040)
    for m in results.values():
        assert m.efficiency > 0.99

    # benchmark: a full four-kernel analytic sweep
    benchmark(
        lambda: [
            full_harness.measure_analytic(a, full_harness.max_vectors)
            for a in all_apps()
        ]
    )


def test_stream_cycle_accurate_all_kernels(benchmark):
    """Every kernel runs on the real dataflow design and verifies against
    its NumPy reference (run() raises on mismatch)."""
    h = small_harness()
    for app in all_apps():
        h = small_harness()
        m = h.run(app, vectors=24, scalar=1.5)
        assert m.cycles_per_run == 24 + 14 + 2

    def one_pass():
        h = small_harness()
        return h.run(all_apps()[3], vectors=24).cycles_per_run

    benchmark(one_pass)
