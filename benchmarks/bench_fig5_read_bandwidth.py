"""Figure 5 — aggregated read bandwidth across the DSE grid.

Regenerates the per-scheme series (read ports x lanes x 8 B x f, Table IV
frequencies) and checks §IV-B: ~32 GB/s peak at the 512KB/8-lane/4-port
ReTr design, good 1->2 port scaling with diminishing 3-4 port returns, and
the weak 2-port gain at 16 lanes.
"""

import pytest
from _util import dse_result, save_report

from repro.core.schemes import Scheme
from repro.dse import figure_series, render_series_table, to_csv
from repro.exec import Report
from repro.exec.report import entries_from_series


@pytest.fixture(scope="module")
def result():
    return dse_result()


def test_fig5_read_bandwidth(benchmark, result):
    series = figure_series(result, lambda p: p.bandwidth.read_gbps)
    text = render_series_table(
        series, "Fig. 5 — Read bandwidth (aggregated)", "GB/s"
    )
    report = Report(
        title="Fig. 5 — Read bandwidth (aggregated)",
        entries=entries_from_series("Fig. 5", series, "read bandwidth [GB/s]"),
    )
    save_report("fig5_read_bandwidth", text + "\n" + to_csv(series), report)

    flat = {(s, label): v for s, row in series.items() for label, v in row}
    # peak ~32 GB/s at 512KB, 8-lane, 4-port ReTr
    peak_cell = max(flat, key=flat.get)
    assert peak_cell == (Scheme.ReTr, "512,8,4")
    assert flat[peak_cell] > 32.0

    # good scaling 1 -> 2 ports, diminishing returns for 3-4 (8 lanes).
    # Note: the paper's own RoCo row has an anomalously fast 3-port cell
    # (146 MHz > the 2-port 150 MHz trend), so the diminishing-returns
    # claim is asserted on the scheme average, per-scheme only for g12.
    g12s, g24s = [], []
    for scheme in Scheme:
        g12 = flat[(scheme, "512,8,2")] / flat[(scheme, "512,8,1")]
        g24 = flat[(scheme, "512,8,4")] / flat[(scheme, "512,8,2")]
        assert g12 > 1.45, scheme
        g12s.append(g12)
        g24s.append(g24)
    assert sum(g24s) / len(g24s) < sum(g12s) / len(g12s)

    # 16 lanes: 2 read ports do not significantly increase bandwidth
    for scheme in Scheme:
        g = flat[(scheme, "512,16,2")] / flat[(scheme, "512,16,1")]
        assert g < 1.45, scheme

    benchmark(lambda: figure_series(result, lambda p: p.bandwidth.read_gbps))
