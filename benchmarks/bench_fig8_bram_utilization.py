"""Figure 8 — BRAM utilization across the DSE grid.

Regenerates the per-scheme series from the exact block-count arithmetic and
checks §IV-C: the scheme has no influence on BRAM usage; utilization spans
~16% (512KB/8L/1P) to ~97-100% (2MB/16L/2P); read ports duplicate data.
"""

import pytest
from _util import dse_result, save_report

from repro.core.schemes import Scheme
from repro.dse import figure_series, render_series_table, to_csv
from repro.exec import Report
from repro.exec.report import entries_from_series
from repro.hw.calibration import BRAM_POINTS


@pytest.fixture(scope="module")
def result():
    return dse_result()


def test_fig8_bram_utilization(benchmark, result):
    series = figure_series(result, lambda p: p.bram_pct)
    text = render_series_table(series, "Fig. 8 — BRAM utilization", "%")
    report = Report(
        title="Fig. 8 — BRAM utilization",
        entries=entries_from_series("Fig. 8", series, "BRAM [%]"),
    )
    save_report("fig8_bram_utilization", text + "\n" + to_csv(series), report)

    flat = {(s, label): v for s, row in series.items() for label, v in row}
    # scheme-independence: identical columns across schemes
    for label in {l for (_, l) in flat}:
        vals = {round(flat[(s, label)], 6) for s in Scheme}
        assert len(vals) == 1, label
    # paper prose points, within the documented model tolerance (the paper
    # shows a small per-bank overhead at 16 lanes our first-principles
    # count does not include — see EXPERIMENTS.md)
    for pt in BRAM_POINTS:
        got = flat[(pt.scheme, f"{pt.capacity_kb},{pt.lanes},{pt.read_ports}")]
        assert got == pytest.approx(pt.percent, abs=3.5), pt
    # the 16.07% anchor is exact
    assert flat[(Scheme.ReRo, "512,8,1")] == pytest.approx(16.07, abs=0.05)
    # read-port duplication: 2 ports use ~2x the data blocks of 1 port
    one = flat[(Scheme.ReO, "512,8,1")]
    two = flat[(Scheme.ReO, "512,8,2")]
    assert two > 1.7 * one - 5
    # full-capacity designs saturate the device
    assert flat[(Scheme.ReO, "4096,8,1")] >= 97.0
    benchmark(lambda: figure_series(result, lambda p: p.bram_pct))
