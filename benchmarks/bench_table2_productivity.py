"""Table II — productivity analysis (LOC per module).

Regenerates the module table with this reproduction's measured LOC next to
the paper's MaxJ numbers and checks the qualitative claims (the Shuffle is
the largest effort, Multiple Read Ports the smallest).
"""

from _util import save_report

from repro.analysis import productivity_table
from repro.analysis.productivity import render_table


def test_table2_productivity(benchmark):
    rows = benchmark(productivity_table)
    save_report("table2_productivity", render_table(rows))
    # paper totals embedded correctly
    assert sum(r.paper_loc for r in rows) == 1935
    assert sum(r.paper_effort_days for r in rows) == 27
    # our measured LOC is nonzero for every mapped module
    assert all(r.our_loc > 0 for r in rows if r.our_files)
    # qualitative shape: the shuffle machinery is the heaviest module in
    # both implementations (paper: 335+346 LOC across the two shuffles)
    ours = {r.module: r.our_loc for r in rows}
    shuffle_loc = ours["Shuffle"] + ours["Inv Shuffle"]
    assert shuffle_loc >= max(ours["AGU"], ours["A"], ours["Memory banks"])
