"""Table I — the PRF access schemes and their conflict-free patterns.

Regenerates the scheme/pattern support table by exhaustive conflict
analysis on the paper's 2x4 lane grid and checks it cell-by-cell against
Table I, then benchmarks the analyzer.
"""

import io

from _util import save_report

from repro.core.conflict import ConflictAnalyzer
from repro.core.patterns import PatternKind
from repro.core.schemes import Scheme

#: Table I of the paper, transcribed: scheme -> supported patterns
PAPER_TABLE_I = {
    Scheme.ReO: {PatternKind.RECTANGLE},
    Scheme.ReRo: {
        PatternKind.RECTANGLE,
        PatternKind.ROW,
        PatternKind.MAIN_DIAGONAL,
        PatternKind.ANTI_DIAGONAL,
    },
    Scheme.ReCo: {
        PatternKind.RECTANGLE,
        PatternKind.COLUMN,
        PatternKind.MAIN_DIAGONAL,
        PatternKind.ANTI_DIAGONAL,
    },
    Scheme.RoCo: {PatternKind.ROW, PatternKind.COLUMN, PatternKind.RECTANGLE},
    Scheme.ReTr: {PatternKind.RECTANGLE, PatternKind.TRANSPOSED_RECTANGLE},
}


def regenerate(p=2, q=4):
    analyzer = ConflictAnalyzer(p, q)
    table = analyzer.table()
    out = io.StringIO()
    out.write(f"TABLE I — PRF ACCESS SCHEMES (empirical, {p}x{q} lanes)\n")
    out.write(f"{'Scheme':6s} | conflict-free patterns (anchor domain)\n")
    supported = {}
    for scheme, row in table.items():
        entries = [
            f"{kind.value}[{dom.label}]"
            for kind, dom in row.items()
            if dom.label != "none"
        ]
        supported[scheme] = {
            kind for kind, dom in row.items() if dom.label != "none"
        }
        out.write(f"{scheme.value:6s} | {', '.join(entries)}\n")
    return table, supported, out.getvalue()


def test_table1_matches_paper(benchmark):
    table, supported, text = regenerate()
    save_report("table1_schemes", text)
    for scheme, patterns in PAPER_TABLE_I.items():
        # every paper-claimed pattern is empirically supported...
        missing = patterns - supported[scheme]
        assert not missing, f"{scheme}: paper patterns missing: {missing}"
    # ...and the "only" claims hold: ReO supports nothing but rectangles
    assert supported[Scheme.ReO] == {PatternKind.RECTANGLE}
    # benchmark the exhaustive analyzer itself
    benchmark(lambda: ConflictAnalyzer(2, 4).table())


def test_table1_16_lane_grid(benchmark):
    """The 2x8 grid used by the paper's 16-lane designs supports the same
    pattern families."""
    table, supported, text = regenerate(p=2, q=8)
    save_report("table1_schemes_16lane", text)
    for scheme, patterns in PAPER_TABLE_I.items():
        assert patterns <= supported[scheme], scheme
    benchmark(
        lambda: ConflictAnalyzer(2, 8).domain(Scheme.ReRo, PatternKind.ROW)
    )
