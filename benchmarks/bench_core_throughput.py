"""Library performance — simulation throughput of the PolyMem core.

Not a paper figure: these benches track the reproduction's own hot paths
(the vectorized batch access path vs the per-access architectural path,
bulk load/dump, and the validation cycle), guarding against performance
regressions in the simulator itself.
"""

import numpy as np
import pytest

from repro.core.config import KB, PolyMemConfig
from repro.core.patterns import PatternKind
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme


@pytest.fixture()
def pm():
    mem = PolyMem(PolyMemConfig(64 * KB, p=2, q=4, scheme=Scheme.ReRo))
    mem.load(
        np.arange(mem.rows * mem.cols, dtype=np.uint64).reshape(mem.rows, mem.cols)
    )
    return mem


def test_batch_read_throughput(benchmark, pm):
    """The vectorized fast path: 1024 parallel row reads per call."""
    anchors_i = np.arange(1024) % pm.rows
    anchors_j = np.zeros(1024, dtype=np.int64)
    result = benchmark(
        lambda: pm.read_batch(PatternKind.ROW, anchors_i, anchors_j)
    )
    assert result.shape == (1024, 8)


def test_single_read_throughput(benchmark, pm):
    """The architectural path (explicit shuffles), one access per call."""
    benchmark(lambda: pm.read(PatternKind.ROW, 3, 0))


def test_batch_write_throughput(benchmark, pm):
    anchors_i = (np.arange(256) * 2) % pm.rows
    anchors_j = np.zeros(256, dtype=np.int64)
    vals = np.arange(256 * 8, dtype=np.uint64).reshape(256, 8)
    benchmark(
        lambda: pm.write_batch(PatternKind.RECTANGLE, anchors_i, anchors_j, vals)
    )


def test_load_dump_throughput(benchmark, pm):
    matrix = np.arange(pm.rows * pm.cols, dtype=np.uint64).reshape(
        pm.rows, pm.cols
    )

    def roundtrip():
        pm.load(matrix)
        return pm.dump()

    out = benchmark(roundtrip)
    assert (out == matrix).all()


def test_validation_cycle_time(benchmark):
    """End-to-end §IV-A validation of a small design (streams + kernels)."""
    from repro.maxpolymem import build_design, validate_design

    cfg = PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo)

    def validate():
        report = validate_design(build_design(cfg, clock_source="model"))
        assert report.passed
        return report

    benchmark(validate)
