"""Figure 7 — LUT utilization across the DSE grid.

Regenerates the per-scheme series and checks §IV-C: LUT usage follows the
same trends as logic utilization and stays within the paper's 7%-28% band.
"""

import pytest
from _util import dse_result, save_report

from repro.core.schemes import Scheme
from repro.dse import figure_series, render_series_table, to_csv
from repro.exec import Report
from repro.exec.report import entries_from_series


@pytest.fixture(scope="module")
def result():
    return dse_result()


def test_fig7_lut_utilization(benchmark, result):
    series = figure_series(result, lambda p: p.lut_pct)
    text = render_series_table(series, "Fig. 7 — LUT utilization", "%")
    report = Report(
        title="Fig. 7 — LUT utilization",
        entries=entries_from_series("Fig. 7", series, "LUT [%]"),
    )
    save_report("fig7_lut_utilization", text + "\n" + to_csv(series), report)

    flat = {(s, label): v for s, row in series.items() for label, v in row}
    # the paper's range: between ~7% and 28%
    assert min(flat.values()) > 6.0
    assert max(flat.values()) < 28.0
    # same trends as logic (§IV-C: "similar trends"): correlation check
    logic = {
        (s, label): v
        for s, row in figure_series(result, lambda p: p.logic_pct).items()
        for label, v in row
    }
    keys = sorted(flat)
    import numpy as np

    r = np.corrcoef(
        [flat[k] for k in keys], [logic[k] for k in keys]
    )[0, 1]
    assert r > 0.99
    # supra-linear lane growth carries over
    ratio = flat[(Scheme.ReRo, "512,16,1")] / flat[(Scheme.ReRo, "512,8,1")]
    assert ratio > 2.0
    benchmark(lambda: figure_series(result, lambda p: p.lut_pct))
