"""Figure 6 — logic (slice) utilization across the DSE grid.

Regenerates the per-scheme series from the calibrated area model and
checks §IV-C: utilization nearly flat in capacity, ~2x from 1 to 4 read
ports, supra-linear growth from 8 to 16 lanes, everything under 38%.
"""

import pytest
from _util import dse_result, save_report

from repro.core.schemes import Scheme
from repro.dse import figure_series, render_series_table, to_csv
from repro.exec import Report
from repro.exec.report import entries_from_series
from repro.hw.calibration import LOGIC_POINTS


@pytest.fixture(scope="module")
def result():
    return dse_result()


def test_fig6_logic_utilization(benchmark, result):
    series = figure_series(result, lambda p: p.logic_pct)
    text = render_series_table(series, "Fig. 6 — Logic utilization", "%")
    report = Report(
        title="Fig. 6 — Logic utilization",
        entries=entries_from_series("Fig. 6", series, "logic [%]"),
    )
    save_report("fig6_logic_utilization", text + "\n" + to_csv(series), report)

    flat = {(s, label): v for s, row in series.items() for label, v in row}
    # paper prose data points reproduced
    for pt in LOGIC_POINTS:
        got = flat[(pt.scheme, f"{pt.capacity_kb},{pt.lanes},{pt.read_ports}")]
        assert got == pytest.approx(pt.percent, abs=0.5), pt
    # capacity sweep barely moves logic (10.58% -> 13.05% in the paper)
    spread = flat[(Scheme.RoCo, "4096,8,1")] - flat[(Scheme.ReO, "512,8,1")]
    assert 0 < spread < 4.0
    # 1 -> 4 ports roughly doubles logic
    ratio = flat[(Scheme.ReRo, "512,8,4")] / flat[(Scheme.ReRo, "512,8,1")]
    assert 1.8 < ratio < 2.4
    # supra-linear 8 -> 16 lanes (quadratic crossbars)
    ratio = flat[(Scheme.ReRo, "512,16,1")] / flat[(Scheme.ReRo, "512,8,1")]
    assert ratio > 2.0
    # global cap: under 38% everywhere
    assert max(flat.values()) < 38.0
    benchmark(lambda: figure_series(result, lambda p: p.logic_pct))
