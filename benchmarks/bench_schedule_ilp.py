"""§III-A — the ILP access-schedule optimizer and configuration selection.

Regenerates the customization table (workload x scheme -> schedule length,
speedup, efficiency) for the motivating workloads, verifies the exact
solver dominates the greedy baseline, and benchmarks both solvers.
"""

import io

from _util import save_report

from repro.core.schemes import Scheme
from repro.schedule import (
    build_cover_problem,
    column_trace,
    customize,
    diagonal_trace,
    greedy_cover,
    random_trace,
    row_trace,
    solve_cover,
    transpose_trace,
)

WORKLOADS = [
    row_trace(2, 32),
    column_trace(2, 32),
    diagonal_trace(16, count=2),
    transpose_trace(8, 8),
    random_trace(12, 12, density=0.35, seed=3),
]


def test_schedule_customization_table(benchmark):
    out = io.StringIO()
    out.write("§III-A — optimal parallel access schedules (2x4 lanes, ILP)\n")
    out.write(
        f"{'workload':16s} {'cells':>6s} | best scheme | "
        f"{'accesses':>8s} {'speedup':>8s} {'efficiency':>10s}\n"
    )
    bests = {}
    for trace in WORKLOADS:
        res = customize(trace, lane_grids=[(2, 4)])
        best = res.best
        bests[trace.name] = best
        out.write(
            f"{trace.name:16s} {len(trace):6d} | {best.scheme.value:11s} | "
            f"{best.n_accesses:8d} {best.speedup:8.2f} {best.efficiency:10.2f}\n"
        )
    save_report("schedule_ilp", out.getvalue())

    # workload-to-scheme affinities the flow must discover
    assert bests["columns"].scheme in (Scheme.ReCo, Scheme.RoCo)
    assert bests["diagonals"].scheme in (Scheme.ReRo, Scheme.ReCo)
    assert bests["rows"].efficiency == 1.0
    assert bests["columns"].efficiency == 1.0

    benchmark(lambda: customize(row_trace(2, 32), lane_grids=[(2, 4)]))


def test_schedule_ilp_vs_greedy(benchmark):
    """The exact solver never loses to greedy and wins on irregular
    traces."""
    wins = 0
    for seed in range(6):
        trace = random_trace(12, 12, density=0.35, seed=seed)
        prob = build_cover_problem(trace, Scheme.ReRo, 2, 4)
        g = len(greedy_cover(prob))
        s = solve_cover(prob).n_accesses
        assert s <= g
        wins += s < g
    assert wins >= 1  # at least one strict improvement across the seeds

    trace = random_trace(12, 12, density=0.35, seed=3)
    prob = build_cover_problem(trace, Scheme.ReRo, 2, 4)
    benchmark(lambda: solve_cover(prob))


def test_schedule_greedy_speed(benchmark):
    trace = random_trace(16, 16, density=0.4, seed=7)
    prob = build_cover_problem(trace, Scheme.ReRo, 2, 4)
    benchmark(lambda: greedy_cover(prob))
