"""Per-backend bandwidth curves: Fig. 4/5 across memory substrates.

Not a paper figure: replays the §IV-B bandwidth study on every registered
device backend.  For each backend the bench sweeps the paper's Table IV
columns and emits the Fig. 4 (single-port write) and Fig. 5 (aggregated
read) curves at that backend's clock, then measures *achieved* bandwidth
for three reference streams on the default what-if configuration —
strided (burst-hostile), the same stream after the burst-friendly layout
pass, and ideal sequential.

Acceptances (the ``--smoke`` variant backs the CI perf gate):

* the ``vectis`` curves are byte-identical to the seed ``DsePoint``
  figures (the backend is the refactored seed path);
* on-chip BRAM backends achieve peak regardless of stride;
* the DRAM backend's achieved bandwidth improves >= 1.5x on the strided
  workload once the layout pass has run (ISSUE acceptance; in practice
  the remapped stream is exactly sequential and the gain is ~20x).

Artifacts: ``benchmarks/out/backend_bandwidth.{txt,json}`` (full) and
``benchmarks/out/bench_backend_bandwidth.json`` (the per-backend curve
document CI uploads).
"""

import io
import json
import sys

from _util import OUT_DIR, dse_result, exit_on_failed_gates, gate, save_report

from repro.backend import AddressStream, backend_names, get_backend, plan_layout
from repro.core.config import KB, PolyMemConfig
from repro.core.schemes import Scheme
from repro.dse.whatif import DEFAULT_WHATIF_BACKENDS, whatif_devices
from repro.exec import Report, ReportEntry
from repro.hw.calibration import TABLE_IV_COLUMNS

#: the paper's lane grids (Table III)
_GRIDS = {8: (2, 4), 16: (2, 8)}

#: layout-pass acceptance on the strided workload (ISSUE: >= 1.5x)
LAYOUT_GAIN_MIN = 1.5


def _column_config(cap_kb, lanes, ports, scheme=Scheme.ReRo):
    p, q = _GRIDS[lanes]
    return PolyMemConfig(cap_kb * KB, p=p, q=q, scheme=scheme, read_ports=ports)


def backend_curves(backend_name):
    """Fig. 4/5 series for one backend over the Table IV columns."""
    be = get_backend(backend_name)
    points = []
    for cap_kb, lanes, ports in TABLE_IV_COLUMNS:
        cfg = _column_config(cap_kb, lanes, ports)
        if not be.feasibility(cfg).feasible:
            points.append(
                {"column": f"{cap_kb},{lanes},{ports}", "feasible": False}
            )
            continue
        points.append(
            {
                "column": f"{cap_kb},{lanes},{ports}",
                "feasible": True,
                "clock_mhz": be.clock_mhz(cfg),
                "fig4_write_gbps": be.peak_write_gbps(cfg),
                "fig5_read_gbps": be.peak_read_gbps(cfg),
            }
        )
    return {"backend": backend_name, "kind": be.describe()["kind"],
            "points": points}


def _curve_doc(backends=None):
    return [backend_curves(name) for name in (backends or backend_names())]


def _save_curves(doc):
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "bench_backend_bandwidth.json"
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"[bench_backend_bandwidth] curves written to {path}")
    return path


def _render(doc, rows):
    out = io.StringIO()
    out.write("BACKEND BANDWIDTH — Fig. 4/5 curves per memory substrate\n\n")
    for curve in doc:
        feasible = [p for p in curve["points"] if p["feasible"]]
        if not feasible:
            out.write(f"{curve['backend']:10s}: no feasible column\n")
            continue
        w = max(p["fig4_write_gbps"] for p in feasible)
        r = max(p["fig5_read_gbps"] for p in feasible)
        out.write(
            f"{curve['backend']:10s} ({curve['kind']:7s}): "
            f"{len(feasible)}/{len(curve['points'])} columns feasible, "
            f"peak write {w:7.2f} GB/s, peak read {r:7.2f} GB/s\n"
        )
    out.write(
        f"\nachieved bandwidth, {len(rows)} backends "
        "(64-word stride, 16K words):\n"
    )
    out.write(
        f"{'backend':>10s} {'strided':>9s} {'layout':>9s} "
        f"{'sequential':>11s} {'gain':>6s}\n"
    )
    for row in rows:
        out.write(
            f"{row.backend:>10s} {row.strided_gbps:9.2f} "
            f"{row.layout_gbps:9.2f} {row.sequential_gbps:11.2f} "
            f"{row.layout_speedup:5.1f}x\n"
        )
    return out.getvalue()


def _report(doc, rows):
    report = Report(title="Per-backend bandwidth (Fig. 4/5 + achieved)")
    for row in rows:
        report.entries.append(
            ReportEntry(
                experiment="backend bandwidth",
                quantity=f"{row.backend} layout gain on strided stream [x]",
                measured=round(row.layout_speedup, 2),
                metrics=row.to_dict(),
            )
        )
    return report


def _assert_vectis_matches_seed(doc, result):
    """The refactor's byte-identity bar, at the bench level: the vectis
    curve equals the seed DsePoint bandwidth figures bit for bit."""
    curve = next(c for c in doc if c["backend"] == "vectis")
    for point in curve["points"]:
        cap_kb, lanes, ports = (int(v) for v in point["column"].split(","))
        seed = result.lookup(Scheme.ReRo, cap_kb, lanes, ports)
        assert point["feasible"]
        assert point["clock_mhz"] == seed.clock_mhz
        assert point["fig4_write_gbps"] == seed.bandwidth.write_gbps
        assert point["fig5_read_gbps"] == seed.bandwidth.read_gbps


def _gate(rows):
    for row in rows:
        if row.kind == "bram":
            assert row.layout_speedup == 1.0, row.backend
        if row.kind == "dram":
            assert row.layout_speedup >= LAYOUT_GAIN_MIN, (
                f"{row.backend}: layout gain {row.layout_speedup:.2f}x "
                f"< {LAYOUT_GAIN_MIN}x"
            )


def _layout_gates(rows) -> list[dict]:
    """The declared layout-gain gate: the worst DRAM backend must still
    clear the 1.5x bar (BRAM stride-insensitivity stays an assertion —
    it is an identity, not a performance ratio)."""
    dram = [row for row in rows if row.kind == "dram"]
    if not dram:
        return []
    worst = min(dram, key=lambda row: row.layout_speedup)
    return [
        gate(
            "backend.layout_gain",
            worst.layout_speedup,
            detail=f"worst DRAM backend: {worst.backend}",
        )
    ]


def test_backend_bandwidth_report(benchmark):
    doc = _curve_doc(DEFAULT_WHATIF_BACKENDS)
    rows = whatif_devices()
    save_report("backend_bandwidth", _render(doc, rows), _report(doc, rows))
    _save_curves(doc)
    _assert_vectis_matches_seed(doc, dse_result())
    _gate(rows)
    assert len(rows) >= 3
    cfg = _column_config(512, 8, 1)
    stream = AddressStream.strided(1 << 14, stride=64)
    benchmark(
        lambda: get_backend("dram").achieved_bandwidth(
            cfg, plan_layout(stream).remap(stream)
        )
    )


def test_backend_bandwidth_smoke(benchmark):
    """The CI perf gate: DRAM achieved bandwidth must improve >= 1.5x on
    the strided workload with the layout pass, and BRAM substrates must
    be stride-insensitive."""
    rows = whatif_devices(n_words=1 << 12)
    _gate(rows)
    cfg = _column_config(512, 8, 1)
    stream = AddressStream.strided(1 << 12, stride=64)
    benchmark(lambda: get_backend("dram").achieved_bandwidth(cfg, stream))


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        rows = whatif_devices(n_words=1 << 12)
        doc = _curve_doc(DEFAULT_WHATIF_BACKENDS)
        gates = _layout_gates(rows)
        save_report(
            "backend_bandwidth_smoke",
            _render(doc, rows),
            _report(doc, rows),
            gates=gates,
            params={
                "workload": "whatif.strided",
                "scheme": "layout",
                "n_words": 1 << 12,
                "backends": [row.backend for row in rows],
            },
        )
        _save_curves(doc)
        exit_on_failed_gates(gates)
        print(
            "backend bandwidth smoke ok: "
            + ", ".join(
                f"{r.backend} {r.layout_speedup:.1f}x" for r in rows
            )
        )
    else:
        doc = _curve_doc()
        rows = whatif_devices()
        save_report(
            "backend_bandwidth",
            _render(doc, rows),
            _report(doc, rows),
            gates=_layout_gates(rows),
            params={"workload": "whatif.strided", "scheme": "layout"},
        )
        _save_curves(doc)
