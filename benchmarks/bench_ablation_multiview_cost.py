"""Ablation — what does polymorphism cost?

DESIGN.md calls out the design choice the paper implies but never isolates:
supporting *multiple* conflict-free views (ReRo/ReCo/RoCo/ReTr) instead of
plain rectangle banking (ReO).  This bench quantifies the price across the
512 KB column of the grid using both the paper's measured frequencies and
the calibrated models: MHz lost, logic gained, and what the multiview
schemes buy (extra conflict-free patterns, serialization avoided).
"""

import io

from _util import dse_result, save_report

from repro.core.conflict import ConflictAnalyzer
from repro.core.schemes import Scheme
from repro.hw.synthesis import MAF_COMPLEXITY


def test_ablation_multiview_cost(benchmark):
    result = dse_result()
    analyzer = ConflictAnalyzer(2, 4)
    table = analyzer.table()
    out = io.StringIO()
    out.write("ABLATION — the price of polymorphism (512KB / 8L / 1P)\n")
    out.write(
        f"{'scheme':7s} {'paper MHz':>9s} {'model MHz':>9s} "
        f"{'logic %':>8s} {'MAF adders':>10s} {'views':>6s}\n"
    )
    rows = {}
    for scheme in Scheme:
        p = result.lookup(scheme, 512, 8, 1)
        views = sum(
            1 for dom in table[scheme].values() if dom.label != "none"
        )
        rows[scheme] = (p.paper_mhz, p.model_mhz, p.logic_pct, views)
        out.write(
            f"{scheme.value:7s} {p.paper_mhz:9.0f} {p.model_mhz:9.1f} "
            f"{p.logic_pct:8.2f} {MAF_COMPLEXITY[scheme]:10d} {views:6d}\n"
        )
    reo = rows[Scheme.ReO]
    worst_paper = min(r[0] for r in rows.values())
    out.write(
        f"\nfrequency cost of multiview (paper): "
        f"{reo[0] - worst_paper:.0f} MHz worst case "
        f"({100 * (reo[0] - worst_paper) / reo[0]:.1f}%)\n"
    )
    out.write(
        "what it buys: rows/columns/diagonals/transposed blocks become\n"
        "single-cycle instead of serializing on the bank arbiter.\n"
    )
    save_report("ablation_multiview_cost", out.getvalue())

    # the paper's data: multiview costs at most ~5% frequency at this point
    assert (reo[0] - worst_paper) / reo[0] < 0.06
    # ReO supports the fewest views; every multiview scheme supports more
    assert all(
        rows[s][3] > rows[Scheme.ReO][3]
        for s in (Scheme.ReRo, Scheme.ReCo, Scheme.RoCo)
    )
    # the model prices MAF complexity in logic, monotonically
    assert rows[Scheme.RoCo][2] >= rows[Scheme.ReRo][2] >= rows[Scheme.ReO][2]

    benchmark(lambda: analyzer.table(schemes=[Scheme.RoCo]))
