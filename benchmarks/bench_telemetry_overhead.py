"""Telemetry overhead: the disabled path must be effectively free.

Every instrumentation site guards itself with one module-attribute call
(``repro.telemetry.context.active()``) that returns ``None`` when no
session is active — that call *is* the entire disabled-telemetry cost.
Pre-PR throughput cannot be re-measured post-PR, so the gate audits the
guards directly:

1. time the workload with telemetry off (``t_dis``);
2. swap ``context.active`` for a counting stub and re-run the workload
   to enumerate exactly how many guard evaluations it performs (``n``);
3. time ``n`` calls of the real ``active()`` in a tight loop
   (``t_guard`` — an overestimate: it pays Python loop overhead too);
4. gate ``t_guard <= 0.05 * t_dis``.  Since the pre-PR workload is the
   disabled workload minus its guards, this proves the disabled path
   keeps >= 0.95x pre-PR throughput.

The enabled paths (metrics only, metrics + tracing) are measured and
reported but not gated — they are opt-in diagnostics.  Results must stay
bit-identical across all three modes (asserted on offloaded data and
cycle counts; property-tested in ``tests/telemetry/test_bit_identical.py``).

Run directly with ``--smoke`` for the CI gate only.
"""

import io
import sys
import time

import numpy as np

from _util import exit_on_failed_gates, gate, save_report

from repro.exec import Report, ReportEntry
from repro.stream_bench import StreamHarness, all_apps
from repro.stream_bench.apps import DEFAULT_SCALAR
from repro.stream_bench.controller import build_stream_design
from repro.telemetry import Telemetry, session
from repro.telemetry import context as _context


def _workload(vectors):
    """One cycle-accurate STREAM triad pass; returns (cycles, data)."""
    design = build_stream_design()
    design.dfe.simulator.engine = "batched"
    harness = StreamHarness(design)
    app = next(a for a in all_apps() if a.name.lower() == "triad")
    arrays = harness.load_arrays(vectors)
    harness.run_app(app, vectors)
    got = harness.offload_array(app.destination, vectors)
    want = app.expected(arrays["a"], arrays["b"], arrays["c"], DEFAULT_SCALAR)
    assert np.allclose(got, want, rtol=1e-12)
    return design.dfe.simulator.cycles, got


def _time_workload(vectors, reps):
    """Best-of-*reps* wall time plus the last run's (cycles, data)."""
    best = np.inf
    state = None
    for _ in range(reps):
        t0 = time.perf_counter()
        state = _workload(vectors)
        best = min(best, time.perf_counter() - t0)
    return best, state


def _count_guards(vectors):
    """Run the workload with ``context.active`` swapped for a counting
    stub, enumerating every disabled-path guard evaluation."""
    counter = {"n": 0}
    real = _context.active

    def counting_stub():
        counter["n"] += 1
        return None

    _context.active = counting_stub
    try:
        _workload(vectors)
    finally:
        _context.active = real
    return counter["n"]


def _time_guards(n):
    """Time *n* evaluations of the real disabled-path guard (includes
    Python loop overhead, overestimating the true cost)."""
    active = _context.active
    t0 = time.perf_counter()
    for _ in range(n):
        active()
    return time.perf_counter() - t0


def _measure(vectors, reps=3):
    t_dis, (cycles_dis, data_dis) = _time_workload(vectors, reps)
    n_guards = _count_guards(vectors)
    t_guard = _time_guards(n_guards)

    with session(Telemetry(label="bench")):
        t_metrics, (cycles_m, data_m) = _time_workload(vectors, reps)
    with session(Telemetry(tracing=True, label="bench")):
        t_traced, (cycles_t, data_t) = _time_workload(vectors, reps)

    assert cycles_dis == cycles_m == cycles_t
    assert np.array_equal(data_dis, data_m)
    assert np.array_equal(data_dis, data_t)

    return {
        "vectors": vectors,
        "cycles": cycles_dis,
        "disabled_s": t_dis,
        "guards": n_guards,
        "guard_s": t_guard,
        "guard_share": t_guard / t_dis,
        "metrics_s": t_metrics,
        "traced_s": t_traced,
        "metrics_vs_disabled": t_dis / t_metrics,
        "traced_vs_disabled": t_dis / t_traced,
    }


_HEADER = (
    "Telemetry overhead — guard audit of the disabled path\n"
    "(STREAM triad, batched engine; bit-identical results asserted)\n\n"
)


def _render(m):
    return (
        f"{'vectors':>24s}  {m['vectors']}\n"
        f"{'simulated cycles':>24s}  {m['cycles']}\n"
        f"{'disabled workload':>24s}  {m['disabled_s'] * 1e3:.2f} ms\n"
        f"{'guard evaluations':>24s}  {m['guards']}\n"
        f"{'guard time (upper bound)':>24s}  {m['guard_s'] * 1e6:.1f} us "
        f"({m['guard_share'] * 100:.2f}% of workload)\n"
        f"{'metrics-enabled':>24s}  {m['metrics_s'] * 1e3:.2f} ms "
        f"({m['metrics_vs_disabled']:.2f}x of disabled throughput)\n"
        f"{'tracing-enabled':>24s}  {m['traced_s'] * 1e3:.2f} ms "
        f"({m['traced_vs_disabled']:.2f}x of disabled throughput)\n"
    )


def _entry(m):
    return ReportEntry(
        experiment="telemetry overhead",
        quantity="disabled-path guard share of workload time",
        measured=round(m["guard_share"], 6),
        paper=None,
        ok=m["guard_share"] <= 0.05,
        metrics={
            "vectors": m["vectors"],
            "cycles": m["cycles"],
            "disabled_seconds": round(m["disabled_s"], 6),
            "guard_evaluations": m["guards"],
            "guard_seconds": round(m["guard_s"], 6),
            "metrics_throughput_ratio": round(m["metrics_vs_disabled"], 4),
            "tracing_throughput_ratio": round(m["traced_vs_disabled"], 4),
        },
    )


def _gates(m) -> list[dict]:
    """The 0.95x-of-pre-PR acceptance, as a guard-share bound from the
    declarative gate table."""
    return [gate("telemetry.guard_share", m["guard_share"])]


def _ledgered_report(name, text, report, m):
    save_report(
        name,
        text,
        report,
        gates=_gates(m),
        params={"workload": "stream.triad", "scheme": "batched", "vectors": m["vectors"]},
        timings={
            "disabled_s": m["disabled_s"],
            "guard_s": m["guard_s"],
            "metrics_s": m["metrics_s"],
            "traced_s": m["traced_s"],
        },
    )


def test_telemetry_overhead_smoke(benchmark):
    """CI gate: guard cost <= 5% of the disabled workload, results
    bit-identical across modes (asserted inside _measure)."""
    m = _measure(vectors=256)
    report = Report(title="Telemetry overhead (guard audit)")
    report.entries.append(_entry(m))
    _ledgered_report("telemetry_overhead_smoke", _HEADER + _render(m), report, m)
    assert m["guard_share"] <= 0.05
    benchmark(lambda: _workload(256))


def test_telemetry_overhead_report(benchmark):
    out = io.StringIO()
    out.write(_HEADER)
    report = Report(title="Telemetry overhead (guard audit)")
    for vectors in (256, 1024):
        m = _measure(vectors)
        out.write(_render(m) + "\n")
        report.entries.append(_entry(m))
        assert m["guard_share"] <= 0.05, vectors
    save_report("telemetry_overhead", out.getvalue(), report)
    with session(Telemetry(tracing=True)):
        benchmark(lambda: _workload(256))


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        m = _measure(vectors=256)
        report = Report(title="Telemetry overhead (guard audit)")
        report.entries.append(_entry(m))
        _ledgered_report("telemetry_overhead_smoke", _HEADER + _render(m), report, m)
        exit_on_failed_gates(_gates(m))
    else:
        out = io.StringIO()
        out.write(_HEADER)
        report = Report(title="Telemetry overhead (guard audit)")
        gates = []
        last = None
        for vectors in (256, 1024):
            m = _measure(vectors)
            last = m
            out.write(_render(m) + "\n")
            report.entries.append(_entry(m))
            gates.extend(_gates(m))
        _ledgered_report("telemetry_overhead", out.getvalue(), report, last)
        exit_on_failed_gates(gates)
