"""Table III — the DSE parameter grid.

Regenerates the parameter table and the feasible exploration columns
(which must match Table IV's 18 columns exactly), and benchmarks the grid
enumeration with BRAM-feasibility filtering.
"""

import io

from _util import save_report

from repro.dse.space import PAPER_SPACE
from repro.hw.calibration import TABLE_IV_COLUMNS


def regenerate():
    out = io.StringIO()
    out.write("TABLE III — POLYMEM DSE PARAMETERS\n")
    out.write(f"Total Size [KB]    : {list(PAPER_SPACE.capacities_kb)}\n")
    out.write("Number of lanes    : 8 (2 x 4), 16 (2 x 8)\n")
    out.write(f"Number of Read Ports: {list(PAPER_SPACE.read_ports)}\n")
    out.write(f"Schemes            : {[s.value for s in PAPER_SPACE.schemes]}\n")
    out.write(f"Data width         : {PAPER_SPACE.width_bits} bits\n\n")
    cols = PAPER_SPACE.columns()
    out.write(f"Feasible columns ({len(cols)}, = Table IV):\n")
    for cap, lanes, ports in cols:
        out.write(f"  {cap:5d} KB, {lanes:2d} lanes, {ports} read port(s)\n")
    return cols, out.getvalue()


def test_table3_space(benchmark):
    cols, text = regenerate()
    save_report("table3_dse_space", text)
    assert tuple(cols) == TABLE_IV_COLUMNS
    assert PAPER_SPACE.size() == 90
    benchmark(lambda: list(PAPER_SPACE.points()))
