"""Table III — the DSE parameter grid, batched vs scalar evaluation.

Regenerates the parameter table and the feasible exploration columns
(which must match Table IV's 18 columns exactly), then benchmarks the
vectorized config-space evaluation against the scalar per-point path on
the full validated Table III sweep: one batched table build and one
slot-image validation pass per config family instead of 90 independent
design builds.

Runs two ways:

* ``pytest benchmarks/bench_table3_dse_space.py`` — the benchmark suite
  entry;
* ``python benchmarks/bench_table3_dse_space.py --smoke`` — the CI
  perf-smoke gate: exits non-zero unless the batched sweep is >=
  ``MIN_BATCH_SPEEDUP``x faster than the scalar sweep, the two produce
  byte-identical points and report entries, and pruning leaves the
  Pareto frontier untouched.

Both write ``benchmarks/out/table3_dse_space.{txt,json}``.
"""

from __future__ import annotations

import io
import json
import sys
import time

from _util import gate as declare_gate
from _util import save_report

from repro.dse import dse_report, explore
from repro.dse.pareto import pareto_frontier
from repro.dse.space import PAPER_SPACE
from repro.exec import Report, ReportEntry
from repro.hw.calibration import TABLE_IV_COLUMNS

#: rows validated per design (matches bench_exec_scaling's workload)
VALIDATE_ROWS = 8

#: CI gate: the batched sweep must beat the scalar one by this factor.
#: (Typically ~50x here; 2x keeps the gate robust on noisy runners.)
MIN_BATCH_SPEEDUP = 2.0


def regenerate():
    out = io.StringIO()
    out.write("TABLE III — POLYMEM DSE PARAMETERS\n")
    out.write(f"Total Size [KB]    : {list(PAPER_SPACE.capacities_kb)}\n")
    out.write("Number of lanes    : 8 (2 x 4), 16 (2 x 8)\n")
    out.write(f"Number of Read Ports: {list(PAPER_SPACE.read_ports)}\n")
    out.write(f"Schemes            : {[s.value for s in PAPER_SPACE.schemes]}\n")
    out.write(f"Data width         : {PAPER_SPACE.width_bits} bits\n\n")
    cols = PAPER_SPACE.columns()
    out.write(f"Feasible columns ({len(cols)}, = Table IV):\n")
    for cap, lanes, ports in cols:
        out.write(f"  {cap:5d} KB, {lanes:2d} lanes, {ports} read port(s)\n")
    return cols, out.getvalue()


def _timed_explore(batch: bool):
    t0 = time.perf_counter()
    result = explore(validate=True, validate_rows=VALIDATE_ROWS, batch=batch)
    return result, time.perf_counter() - t0


def _entries_json(result) -> str:
    """The report's entry list — the byte-identity surface (``meta`` holds
    wall-clock accounting and is deliberately excluded)."""
    doc = json.loads(dse_report(result).to_json())
    return json.dumps(doc["entries"], sort_keys=True, separators=(",", ":"))


def _frontier_key(result):
    return [
        (c.label, c.read_gbps, c.bram_pct, c.logic_pct)
        for c in pareto_frontier(result)
    ]


def run_batch_vs_scalar() -> tuple[str, Report, list[str], list[dict]]:
    """The measurement shared by the pytest entry and ``--smoke``."""
    cols, text = regenerate()
    n_points = PAPER_SPACE.size()
    failures: list[str] = []
    if tuple(cols) != TABLE_IV_COLUMNS:
        failures.append("feasible columns diverge from Table IV")
    if n_points != 90:
        failures.append(f"expected 90 grid points, found {n_points}")

    out = io.StringIO()
    out.write(text)
    out.write(
        f"\nBATCHED vs SCALAR evaluation — validated sweep "
        f"({n_points} points, {VALIDATE_ROWS} rows each)\n"
    )

    # one untimed pass pays the one-time model-fit/plan-compile cost, so
    # the timed runs compare evaluation strategies, not who ran first;
    # best-of-2 keeps shared-runner noise out of the gate
    _timed_explore(batch=True)
    timings = {}
    results = {}
    for batch in (False, True):
        result, seconds = _timed_explore(batch)
        again, seconds2 = _timed_explore(batch)
        if seconds2 < seconds:
            result, seconds = again, seconds2
        label = "batched" if batch else "scalar"
        timings[label] = seconds
        results[label] = result
        out.write(f"  {label:8s}: {seconds * 1e3:8.1f} ms\n")

    speedup = timings["scalar"] / timings["batched"]
    out.write(f"  speedup : x{speedup:.1f}\n")

    # -- byte-identity: points and report entries ---------------------------
    scalar, batched = results["scalar"], results["batched"]
    identical = _entries_json(scalar) == _entries_json(batched)
    payloads_identical = (
        scalar.sweep.payload_json() == batched.sweep.payload_json()
    )
    out.write(
        f"  report entries identical: {identical}, "
        f"sweep payloads identical: {payloads_identical}\n"
    )
    if not identical:
        failures.append("batched report entries differ from scalar")
    if not payloads_identical:
        failures.append("batched sweep payloads differ from scalar")

    # -- prune exactness ----------------------------------------------------
    pruned = explore(prune=True)
    front_ok = _frontier_key(pruned) == _frontier_key(batched)
    out.write(
        f"  prune: {n_points} -> {len(pruned.points)} points, "
        f"frontier identical: {front_ok}\n"
    )
    if not front_ok:
        failures.append("pruned Pareto frontier differs from the full one")

    gate = f"batched >= x{MIN_BATCH_SPEEDUP} vs scalar"
    batch_gate = declare_gate("dse.batched_vs_scalar", speedup)
    gate_ok = batch_gate["ok"]
    out.write(f"  gate: {gate} — {'PASS' if gate_ok else 'FAIL'}\n")
    if not gate_ok:
        failures.append(f"batch gate failed: {gate}, timings={timings}")

    report = Report(
        title="Table III DSE space — batched vs scalar evaluation",
        entries=[
            ReportEntry(
                experiment="dse.batch",
                quantity=f"validated sweep wall seconds ({label})",
                measured=round(seconds, 4),
                metrics={"points": n_points, "validate_rows": VALIDATE_ROWS},
            )
            for label, seconds in timings.items()
        ]
        + [
            ReportEntry(
                experiment="dse.batch",
                quantity="batched vs scalar speedup",
                measured=round(speedup, 2),
                ok=gate_ok,
                metrics={"gate": gate},
            ),
            ReportEntry(
                experiment="dse.batch",
                quantity="points surviving dominance pruning",
                measured=len(pruned.points),
                ok=front_ok,
                metrics={"candidates": n_points},
            ),
        ],
    )
    return out.getvalue(), report, failures, [batch_gate]


def _save(text, report, gates):
    save_report(
        "table3_dse_space",
        text,
        report,
        gates=gates,
        params={
            "workload": "table3.sweep",
            "scheme": "dse.batch",
            "points": PAPER_SPACE.size(),
            "validate_rows": VALIDATE_ROWS,
        },
    )


def test_table3_space(benchmark):
    cols, text = regenerate()
    assert tuple(cols) == TABLE_IV_COLUMNS
    assert PAPER_SPACE.size() == 90
    text_full, report, failures, gates = run_batch_vs_scalar()
    _save(text_full, report, gates)
    # the speedup gate is advisory under pytest (the --smoke CLI enforces
    # it); identity and frontier failures are always hard
    hard = [f for f in failures if "gate failed" not in f]
    assert not hard, hard
    benchmark(lambda: explore(validate=True, validate_rows=VALIDATE_ROWS))


def main(argv) -> int:
    text, report, failures, gates = run_batch_vs_scalar()
    _save(text, report, gates)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    if "--smoke" not in sys.argv:
        print("usage: python benchmarks/bench_table3_dse_space.py --smoke")
        raise SystemExit(2)
    raise SystemExit(main(sys.argv))
