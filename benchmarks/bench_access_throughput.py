"""Access-path throughput: scalar step vs planned step vs batched replay.

The access-plan compiler caches the anchor-invariant half of each access
family and ``PolyMem.replay`` executes whole traces as fancy-indexed
NumPy operations.  This bench measures accesses/second through five
paths on the same workload — a stream of conflict-free ROW reads plus a
rectangle write stream — across schemes and lane counts:

* **scalar step** — ``use_plans = False``: the reference path, re-deriving
  AGU expansion, MAF, conflict check and shuffle per access;
* **planned step** — the default per-access path, applying the compiled
  plan per ``step()``;
* **batched replay** — one :class:`AccessTrace` for the whole stream;
* **access program (interp)** — the stream lowered through the
  :class:`~repro.program.AccessProgram` IR and run by
  :func:`~repro.program.execute` with ``backend="interp"`` (validate →
  coalesce → replay), timing the whole lowering pipeline, not just the
  resulting replay;
* **access program (fused)** — the same program on ``backend="fused"``:
  the fusion pass specializes the segment group into a precomputed
  fancy-index kernel, cached content-addressed, so repeat executions
  skip plan expansion and collision ordering entirely.

All five paths are bit-identical (asserted here on results and cycles;
property-tested in ``tests/core/test_plan_equivalence.py``,
``tests/program/test_engine_equivalence.py`` and
``tests/program/test_fusion_equivalence.py``).  The headline acceptances
are >= 10x for replay vs the per-access ``step()`` and >= 2x for the
fused program path vs direct replay, both on the 64-lane RoCo
configuration; the interp program path must keep >= 0.9x of
direct-replay throughput (the IR adds compilation, not per-cycle work).
The smoke variant backs the CI perf gates — replay and the interp
program >= 2x the scalar step on a small config, the fused program
>= 2x direct replay on a longer stream (its fixed fusion cost only
amortizes over enough accesses) — and snapshots the fusion telemetry
counters to ``benchmarks/out/fusion_counters_smoke.json``.  Run
directly with ``--smoke`` for the gates only.
"""

import io
import json
import sys
import time

import numpy as np

from _util import OUT_DIR, exit_on_failed_gates, gate, save_report

from repro.core.agu import AccessRequest
from repro.core.config import PolyMemConfig
from repro.core.patterns import PatternKind
from repro.core.plan import AccessTrace
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme
from repro.exec import Report, ReportEntry
from repro.program import AccessProgram, execute

#: (label, p, q, scheme) — the 64-lane RoCo row is the acceptance target
CONFIGS = (
    ("8-lane ReRo", 2, 4, Scheme.ReRo),
    ("16-lane RoCo", 4, 4, Scheme.RoCo),
    ("64-lane RoCo", 8, 8, Scheme.RoCo),
)


def _workload(p, q, scheme, accesses, seed=7):
    """A memory plus a conflict-free read/write anchor stream.

    The memory is sized so the write stream can cover ``accesses``
    *distinct* blocks (a streaming store, STREAM-style — no block is
    rewritten within the trace)."""
    lanes = p * q
    rows = cols = max(4 * lanes, 64)
    while (rows // p) * (cols // q) < accesses:
        rows = cols = rows * 2
    pm = PolyMem(
        PolyMemConfig(rows * cols * 8, p=p, q=q, scheme=scheme,
                      rows=rows, cols=cols)
    )
    rng = np.random.default_rng(seed)
    pm.load(rng.integers(0, 2**63, size=(rows, cols), dtype=np.uint64))
    pm.reset_stats()
    # lane-aligned ROW reads are conflict-free under every tested scheme
    ri = rng.integers(0, rows, size=accesses)
    rj = rng.integers(0, cols // lanes, size=accesses) * lanes
    nbj = cols // q
    blocks = rng.permutation((rows // p) * nbj)[:accesses]
    wi = (blocks // nbj) * p
    wj = (blocks % nbj) * q
    values = rng.integers(0, 2**63, size=(accesses, lanes), dtype=np.uint64)
    return pm, (ri, rj, wi, wj, values)


def _serial_pass(pm, stream, use_plans):
    ri, rj, wi, wj, values = stream
    pm.use_plans = use_plans
    t0 = time.perf_counter()
    out = np.empty((ri.size, pm.lanes), dtype=np.uint64)
    for t in range(ri.size):
        res = pm.step(
            reads=[(0, AccessRequest(PatternKind.ROW, int(ri[t]), int(rj[t])))],
            write=(
                AccessRequest(PatternKind.RECTANGLE, int(wi[t]), int(wj[t])),
                values[t],
            ),
        )
        out[t] = res[0]
    wall = time.perf_counter() - t0
    pm.use_plans = True
    return out, wall


def _replay_pass(pm, stream):
    ri, rj, wi, wj, values = stream
    trace = (
        AccessTrace()
        .read(PatternKind.ROW, ri, rj)
        .write(PatternKind.RECTANGLE, wi, wj, values)
    )
    t0 = time.perf_counter()
    out = pm.replay(trace)[0]
    return out, time.perf_counter() - t0


def _program_pass(pm, stream, backend):
    """The same stream through the access-program IR, end to end.

    The write fuses with the read stream, so the coalescer emits the
    exact trace ``_replay_pass`` builds by hand; the timed region covers
    program construction, compilation and the engine's bookkeeping — the
    whole cost of choosing the IR over a hand-built trace.  On the fused
    backend, repeat executions of the same access structure hit the
    content-addressed kernel cache."""
    ri, rj, wi, wj, values = stream
    t0 = time.perf_counter()
    program = (
        AccessProgram("bench-stream")
        .read(PatternKind.ROW, ri, rj, tag="out")
        .write(PatternKind.RECTANGLE, wi, wj, values, fuse=True)
    )
    out = execute(program, pm, backend=backend)["out"]
    return out, time.perf_counter() - t0


def _measure(label, p, q, scheme, accesses):
    results = {}
    walls = {}
    cycles = {}
    batched = {
        "replay": _replay_pass,
        "program": lambda pm, s: _program_pass(pm, s, "interp"),
        "program_fused": lambda pm, s: _program_pass(pm, s, "fused"),
    }
    for path in ("scalar", "planned", "replay", "program", "program_fused"):
        if path in batched:
            # best-of-5: the whole pass is a few ms, so take the min to
            # shed scheduler noise (the serial passes self-average over
            # hundreds of ms)
            wall = np.inf
            for _ in range(5):
                pm, stream = _workload(p, q, scheme, accesses)
                out, w = batched[path](pm, stream)
                wall = min(wall, w)
        else:
            pm, stream = _workload(p, q, scheme, accesses)
            out, wall = _serial_pass(pm, stream, use_plans=(path == "planned"))
        results[path] = out
        walls[path] = wall
        cycles[path] = pm.cycles
    assert np.array_equal(results["scalar"], results["planned"])
    assert np.array_equal(results["scalar"], results["replay"])
    assert np.array_equal(results["scalar"], results["program"])
    assert np.array_equal(results["scalar"], results["program_fused"])
    assert (
        cycles["scalar"] == cycles["planned"] == cycles["replay"]
        == cycles["program"] == cycles["program_fused"]
    )
    # each cycle carries one read and one write: 2 accesses per cycle
    n_acc = 2 * accesses
    aps = {path: n_acc / wall for path, wall in walls.items()}
    return {
        "label": label,
        "lanes": p * q,
        "scheme": str(scheme),
        "accesses": n_acc,
        "cycles": cycles["replay"],
        "scalar_aps": aps["scalar"],
        "planned_aps": aps["planned"],
        "replay_aps": aps["replay"],
        "program_aps": aps["program"],
        "program_fused_aps": aps["program_fused"],
        "planned_speedup": aps["planned"] / aps["scalar"],
        "replay_vs_planned": aps["replay"] / aps["planned"],
        "replay_vs_scalar": aps["replay"] / aps["scalar"],
        "program_vs_replay": aps["program"] / aps["replay"],
        "program_vs_scalar": aps["program"] / aps["scalar"],
        "program_fused_vs_replay": aps["program_fused"] / aps["replay"],
        "program_fused_vs_scalar": aps["program_fused"] / aps["scalar"],
    }


_HEADER = (
    "PRF access-path throughput — scalar/planned step vs replay vs program\n"
    "(one ROW read + one RECTANGLE write per cycle; results and cycle\n"
    "counts bit-identical by assertion; program timed on both backends)\n\n"
    f"{'config':>14s} {'accesses':>9s} {'scalar a/s':>11s} "
    f"{'planned a/s':>12s} {'replay a/s':>12s} {'interp a/s':>12s} "
    f"{'fused a/s':>12s} {'replay/step':>12s} {'fused/replay':>13s}\n"
)


def _row(m):
    return (
        f"{m['label']:>14s} {m['accesses']:9d} {m['scalar_aps']:11.0f} "
        f"{m['planned_aps']:12.0f} {m['replay_aps']:12.0f} "
        f"{m['program_aps']:12.0f} {m['program_fused_aps']:12.0f} "
        f"{m['replay_vs_planned']:11.1f}x {m['program_fused_vs_replay']:12.2f}x\n"
    )


def _entry(m):
    return ReportEntry(
        experiment="access throughput",
        quantity=f"{m['label']} replay vs per-access step [x]",
        measured=round(m["replay_vs_planned"], 2),
        metrics={
            "lanes": m["lanes"],
            "scheme": m["scheme"],
            "accesses": m["accesses"],
            "cycles": m["cycles"],
            "scalar_accesses_per_s": round(m["scalar_aps"]),
            "planned_accesses_per_s": round(m["planned_aps"]),
            "replay_accesses_per_s": round(m["replay_aps"]),
            "program_accesses_per_s": round(m["program_aps"]),
            "program_fused_accesses_per_s": round(m["program_fused_aps"]),
            "replay_vs_scalar": round(m["replay_vs_scalar"], 2),
            "program_vs_replay": round(m["program_vs_replay"], 2),
            "program_fused_vs_replay": round(m["program_fused_vs_replay"], 2),
        },
    )


#: the fused gate needs a longer stream: its fixed cost (program compile,
#: group hashing) only amortizes over enough accesses
_FUSED_SMOKE_ACCESSES = 4096


def _smoke_measure():
    return _measure("8-lane ReRo", 2, 4, Scheme.ReRo, 512)


def _fused_smoke_measure():
    """The fused-backend CI gate: fused program vs direct replay on a
    longer 8-lane stream, plus a fusion-counter telemetry snapshot."""
    from repro.telemetry import Telemetry, session

    walls = {}
    results = {}
    passes = {
        "replay": _replay_pass,
        "program_fused": lambda pm, s: _program_pass(pm, s, "fused"),
    }
    for path, fn in passes.items():
        wall = np.inf
        for _ in range(3):
            pm, stream = _workload(2, 4, Scheme.ReRo, _FUSED_SMOKE_ACCESSES)
            out, w = fn(pm, stream)
            wall = min(wall, w)
        walls[path] = wall
        results[path] = out
    assert np.array_equal(results["replay"], results["program_fused"])
    # one extra (untimed) fused pass inside a telemetry session: the
    # fusion counters CI archives as the regression snapshot
    tel = Telemetry(label="access_throughput_smoke")
    with session(tel):
        pm, stream = _workload(2, 4, Scheme.ReRo, _FUSED_SMOKE_ACCESSES)
        _program_pass(pm, stream, "fused")
    counters = tel.snapshot()["metrics"]["counters"]
    fusion_counters = {
        k: v
        for k, v in sorted(counters.items())
        if k.startswith("program.fusion.") or k == "polymem.cycles.fused"
    }
    return {
        "accesses": 2 * _FUSED_SMOKE_ACCESSES,
        "program_fused_vs_replay": walls["replay"] / walls["program_fused"],
        "fusion_counters": fusion_counters,
    }


def _save_fusion_counters(fused):
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "fusion_counters_smoke.json"
    path.write_text(json.dumps(fused["fusion_counters"], indent=2) + "\n")
    print(f"[fusion_counters_smoke] written to {path}")
    return path


def _smoke_gates(m, fused) -> list[dict]:
    """The three CI access gates, from the declarative gate table."""
    return [
        gate("access.replay_vs_scalar", m["replay_vs_scalar"]),
        gate("access.program_vs_scalar", m["program_vs_scalar"]),
        gate("access.fused_vs_replay", fused["program_fused_vs_replay"]),
    ]


def _smoke_report(m, fused):
    report = Report(title="Access plans perf smoke (8-lane ReRo)")
    report.entries.append(_entry(m))
    report.entries.append(
        ReportEntry(
            experiment="access throughput",
            quantity="fused program vs direct replay [x]",
            measured=round(fused["program_fused_vs_replay"], 2),
            metrics={
                "accesses": fused["accesses"],
                **fused["fusion_counters"],
            },
        )
    )
    save_report(
        "access_throughput_smoke",
        _HEADER + _row(m),
        report,
        gates=_smoke_gates(m, fused),
        params={
            "workload": "access.stream",
            "scheme": m["scheme"],
            "lanes": m["lanes"],
            "accesses": m["accesses"],
            "fused_accesses": fused["accesses"],
        },
    )
    _save_fusion_counters(fused)


def test_access_throughput_report(benchmark):
    out = io.StringIO()
    out.write(_HEADER)
    report = Report(title="Access plans: scalar vs planned vs replay")
    by_label = {}
    for label, p, q, scheme in CONFIGS:
        m = _measure(label, p, q, scheme, 4096)
        by_label[label] = m
        out.write(_row(m))
        report.entries.append(_entry(m))
    save_report("access_throughput", out.getvalue(), report)

    # the headline acceptance: >= 10x replay vs per-access step() on the
    # 64-lane RoCo configuration
    assert by_label["64-lane RoCo"]["replay_vs_planned"] >= 10
    assert by_label["64-lane RoCo"]["replay_vs_scalar"] >= 10
    # fused-backend acceptance: the specialized kernel must beat direct
    # replay >= 2x on the 64-lane RoCo configuration
    assert by_label["64-lane RoCo"]["program_fused_vs_replay"] >= 2.0
    # lowering-overhead acceptance: the interp program pipeline must keep
    # >= 0.9x of direct-replay throughput on every configuration
    for m in by_label.values():
        assert m["program_vs_replay"] >= 0.9, m["label"]

    pm, stream = _workload(8, 8, Scheme.RoCo, 4096)
    benchmark(lambda: _replay_pass(pm, stream))


def test_access_throughput_smoke(benchmark):
    """The CI perf gates: batched replay and the interp program must be
    >= 2x the scalar step (the interp fixed compile cost only amortizes
    over long streams, so its 0.9x-of-replay gate lives in the report
    test), and the fused program must be >= 2x direct replay on the
    longer fused-gate stream."""
    m = _smoke_measure()
    fused = _fused_smoke_measure()
    _smoke_report(m, fused)
    assert m["replay_vs_scalar"] >= 2.0
    assert m["program_vs_scalar"] >= 2.0
    assert fused["program_fused_vs_replay"] >= 2.0
    pm, stream = _workload(2, 4, Scheme.ReRo, 512)
    benchmark(lambda: _replay_pass(pm, stream))


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        m = _smoke_measure()
        fused = _fused_smoke_measure()
        _smoke_report(m, fused)
        exit_on_failed_gates(_smoke_gates(m, fused))
    else:
        out = io.StringIO()
        out.write(_HEADER)
        report = Report(title="Access plans: scalar vs planned vs replay")
        for label, p, q, scheme in CONFIGS:
            m = _measure(label, p, q, scheme, 4096)
            out.write(_row(m))
            report.entries.append(_entry(m))
        save_report("access_throughput", out.getvalue(), report)
