"""Access-path throughput: scalar step vs planned step vs batched replay.

The access-plan compiler caches the anchor-invariant half of each access
family and ``PolyMem.replay`` executes whole traces as fancy-indexed
NumPy operations.  This bench measures accesses/second through four
paths on the same workload — a stream of conflict-free ROW reads plus a
rectangle write stream — across schemes and lane counts:

* **scalar step** — ``use_plans = False``: the reference path, re-deriving
  AGU expansion, MAF, conflict check and shuffle per access;
* **planned step** — the default per-access path, applying the compiled
  plan per ``step()``;
* **batched replay** — one :class:`AccessTrace` for the whole stream;
* **access program** — the stream lowered through the
  :class:`~repro.program.AccessProgram` IR and run by
  :func:`~repro.program.execute` (validate → coalesce → replay), timing
  the whole lowering pipeline, not just the resulting replay.

All four paths are bit-identical (asserted here on results and cycles;
property-tested in ``tests/core/test_plan_equivalence.py`` and
``tests/program/test_engine_equivalence.py``).  The headline acceptance
is >= 10x for replay vs the per-access ``step()`` on the 64-lane RoCo
configuration, and the program path must keep >= 0.9x of direct-replay
throughput (the IR adds compilation, not per-cycle work); the smoke
variant (>= 2x vs scalar step on a small config) backs the CI perf
gate.  Run directly with ``--smoke`` for the gate only.
"""

import io
import sys
import time

import numpy as np

from _util import save_report

from repro.core.agu import AccessRequest
from repro.core.config import PolyMemConfig
from repro.core.patterns import PatternKind
from repro.core.plan import AccessTrace
from repro.core.polymem import PolyMem
from repro.core.schemes import Scheme
from repro.exec import Report, ReportEntry
from repro.program import AccessProgram, execute

#: (label, p, q, scheme) — the 64-lane RoCo row is the acceptance target
CONFIGS = (
    ("8-lane ReRo", 2, 4, Scheme.ReRo),
    ("16-lane RoCo", 4, 4, Scheme.RoCo),
    ("64-lane RoCo", 8, 8, Scheme.RoCo),
)


def _workload(p, q, scheme, accesses, seed=7):
    """A memory plus a conflict-free read/write anchor stream.

    The memory is sized so the write stream can cover ``accesses``
    *distinct* blocks (a streaming store, STREAM-style — no block is
    rewritten within the trace)."""
    lanes = p * q
    rows = cols = max(4 * lanes, 64)
    while (rows // p) * (cols // q) < accesses:
        rows = cols = rows * 2
    pm = PolyMem(
        PolyMemConfig(rows * cols * 8, p=p, q=q, scheme=scheme,
                      rows=rows, cols=cols)
    )
    rng = np.random.default_rng(seed)
    pm.load(rng.integers(0, 2**63, size=(rows, cols), dtype=np.uint64))
    pm.reset_stats()
    # lane-aligned ROW reads are conflict-free under every tested scheme
    ri = rng.integers(0, rows, size=accesses)
    rj = rng.integers(0, cols // lanes, size=accesses) * lanes
    nbj = cols // q
    blocks = rng.permutation((rows // p) * nbj)[:accesses]
    wi = (blocks // nbj) * p
    wj = (blocks % nbj) * q
    values = rng.integers(0, 2**63, size=(accesses, lanes), dtype=np.uint64)
    return pm, (ri, rj, wi, wj, values)


def _serial_pass(pm, stream, use_plans):
    ri, rj, wi, wj, values = stream
    pm.use_plans = use_plans
    t0 = time.perf_counter()
    out = np.empty((ri.size, pm.lanes), dtype=np.uint64)
    for t in range(ri.size):
        res = pm.step(
            reads=[(0, AccessRequest(PatternKind.ROW, int(ri[t]), int(rj[t])))],
            write=(
                AccessRequest(PatternKind.RECTANGLE, int(wi[t]), int(wj[t])),
                values[t],
            ),
        )
        out[t] = res[0]
    wall = time.perf_counter() - t0
    pm.use_plans = True
    return out, wall


def _replay_pass(pm, stream):
    ri, rj, wi, wj, values = stream
    trace = (
        AccessTrace()
        .read(PatternKind.ROW, ri, rj)
        .write(PatternKind.RECTANGLE, wi, wj, values)
    )
    t0 = time.perf_counter()
    out = pm.replay(trace)[0]
    return out, time.perf_counter() - t0


def _program_pass(pm, stream):
    """The same stream through the access-program IR, end to end.

    The write fuses with the read stream, so the coalescer emits the
    exact trace ``_replay_pass`` builds by hand; the timed region covers
    program construction, compilation and the engine's bookkeeping — the
    whole cost of choosing the IR over a hand-built trace."""
    ri, rj, wi, wj, values = stream
    t0 = time.perf_counter()
    program = (
        AccessProgram("bench-stream")
        .read(PatternKind.ROW, ri, rj, tag="out")
        .write(PatternKind.RECTANGLE, wi, wj, values, fuse=True)
    )
    out = execute(program, pm)["out"]
    return out, time.perf_counter() - t0


def _measure(label, p, q, scheme, accesses):
    results = {}
    walls = {}
    cycles = {}
    batched = {"replay": _replay_pass, "program": _program_pass}
    for path in ("scalar", "planned", "replay", "program"):
        if path in batched:
            # best-of-3: the whole pass is a few ms, so take the min to
            # shed scheduler noise (the serial passes self-average over
            # hundreds of ms)
            wall = np.inf
            for _ in range(3):
                pm, stream = _workload(p, q, scheme, accesses)
                out, w = batched[path](pm, stream)
                wall = min(wall, w)
        else:
            pm, stream = _workload(p, q, scheme, accesses)
            out, wall = _serial_pass(pm, stream, use_plans=(path == "planned"))
        results[path] = out
        walls[path] = wall
        cycles[path] = pm.cycles
    assert np.array_equal(results["scalar"], results["planned"])
    assert np.array_equal(results["scalar"], results["replay"])
    assert np.array_equal(results["scalar"], results["program"])
    assert (
        cycles["scalar"] == cycles["planned"]
        == cycles["replay"] == cycles["program"]
    )
    # each cycle carries one read and one write: 2 accesses per cycle
    n_acc = 2 * accesses
    aps = {path: n_acc / wall for path, wall in walls.items()}
    return {
        "label": label,
        "lanes": p * q,
        "scheme": str(scheme),
        "accesses": n_acc,
        "cycles": cycles["replay"],
        "scalar_aps": aps["scalar"],
        "planned_aps": aps["planned"],
        "replay_aps": aps["replay"],
        "program_aps": aps["program"],
        "planned_speedup": aps["planned"] / aps["scalar"],
        "replay_vs_planned": aps["replay"] / aps["planned"],
        "replay_vs_scalar": aps["replay"] / aps["scalar"],
        "program_vs_replay": aps["program"] / aps["replay"],
        "program_vs_scalar": aps["program"] / aps["scalar"],
    }


_HEADER = (
    "PRF access-path throughput — scalar/planned step vs replay vs program\n"
    "(one ROW read + one RECTANGLE write per cycle; results and cycle\n"
    "counts bit-identical by assertion)\n\n"
    f"{'config':>14s} {'accesses':>9s} {'scalar a/s':>11s} "
    f"{'planned a/s':>12s} {'replay a/s':>12s} {'program a/s':>12s} "
    f"{'replay/step':>12s} {'prog/replay':>12s}\n"
)


def _row(m):
    return (
        f"{m['label']:>14s} {m['accesses']:9d} {m['scalar_aps']:11.0f} "
        f"{m['planned_aps']:12.0f} {m['replay_aps']:12.0f} "
        f"{m['program_aps']:12.0f} {m['replay_vs_planned']:11.1f}x "
        f"{m['program_vs_replay']:11.2f}x\n"
    )


def _entry(m):
    return ReportEntry(
        experiment="access throughput",
        quantity=f"{m['label']} replay vs per-access step [x]",
        measured=round(m["replay_vs_planned"], 2),
        metrics={
            "lanes": m["lanes"],
            "scheme": m["scheme"],
            "accesses": m["accesses"],
            "cycles": m["cycles"],
            "scalar_accesses_per_s": round(m["scalar_aps"]),
            "planned_accesses_per_s": round(m["planned_aps"]),
            "replay_accesses_per_s": round(m["replay_aps"]),
            "program_accesses_per_s": round(m["program_aps"]),
            "replay_vs_scalar": round(m["replay_vs_scalar"], 2),
            "program_vs_replay": round(m["program_vs_replay"], 2),
        },
    )


def _smoke_measure():
    return _measure("8-lane ReRo", 2, 4, Scheme.ReRo, 512)


def test_access_throughput_report(benchmark):
    out = io.StringIO()
    out.write(_HEADER)
    report = Report(title="Access plans: scalar vs planned vs replay")
    by_label = {}
    for label, p, q, scheme in CONFIGS:
        m = _measure(label, p, q, scheme, 4096)
        by_label[label] = m
        out.write(_row(m))
        report.entries.append(_entry(m))
    save_report("access_throughput", out.getvalue(), report)

    # the headline acceptance: >= 10x replay vs per-access step() on the
    # 64-lane RoCo configuration
    assert by_label["64-lane RoCo"]["replay_vs_planned"] >= 10
    assert by_label["64-lane RoCo"]["replay_vs_scalar"] >= 10
    # lowering-overhead acceptance: the access-program pipeline must keep
    # >= 0.9x of direct-replay throughput on every configuration
    for m in by_label.values():
        assert m["program_vs_replay"] >= 0.9, m["label"]

    pm, stream = _workload(8, 8, Scheme.RoCo, 4096)
    benchmark(lambda: _replay_pass(pm, stream))


def test_access_throughput_smoke(benchmark):
    """The CI perf gate: batched replay must be >= 2x the scalar step —
    and so must the program path (its fixed compile cost only amortizes
    over long streams, so the 0.9x-of-replay gate lives in the report
    test; here it just must not fall back to per-access speeds)."""
    m = _smoke_measure()
    report = Report(title="Access plans perf smoke (8-lane ReRo)")
    report.entries.append(_entry(m))
    save_report("access_throughput_smoke", _HEADER + _row(m), report)
    assert m["replay_vs_scalar"] >= 2.0
    assert m["program_vs_scalar"] >= 2.0
    pm, stream = _workload(2, 4, Scheme.ReRo, 512)
    benchmark(lambda: _replay_pass(pm, stream))


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        m = _smoke_measure()
        report = Report(title="Access plans perf smoke (8-lane ReRo)")
        report.entries.append(_entry(m))
        save_report("access_throughput_smoke", _HEADER + _row(m), report)
        if m["replay_vs_scalar"] < 2.0:
            sys.exit(f"perf gate failed: {m['replay_vs_scalar']:.1f}x < 2x")
        if m["program_vs_scalar"] < 2.0:
            sys.exit(
                f"perf gate failed: program path "
                f"{m['program_vs_scalar']:.1f}x < 2x scalar step"
            )
    else:
        out = io.StringIO()
        out.write(_HEADER)
        report = Report(title="Access plans: scalar vs planned vs replay")
        for label, p, q, scheme in CONFIGS:
            m = _measure(label, p, q, scheme, 4096)
            out.write(_row(m))
            report.entries.append(_entry(m))
        save_report("access_throughput", out.getvalue(), report)
