"""Figure 4 — write bandwidth (single port) across the DSE grid.

Regenerates the per-scheme series over the 18 feasible columns using the
paper's Table IV frequencies (the figure is derived data: lanes x 8 B x f)
and checks the §IV-B claims: >22 GB/s peak at 512KB/16L ReO, 20 GB/s
multiview peak at ReRo, per-cycle linear scaling from 8 to 16 lanes.
"""

import pytest
from _util import dse_result, save_report

from repro.core.schemes import Scheme
from repro.dse import figure_series, render_series_table, to_csv
from repro.exec import Report
from repro.exec.report import entries_from_series


@pytest.fixture(scope="module")
def result():
    return dse_result()


def test_fig4_write_bandwidth(benchmark, result):
    series = figure_series(result, lambda p: p.bandwidth.write_gbps)
    text = render_series_table(series, "Fig. 4 — Write bandwidth per port", "GB/s")
    report = Report(
        title="Fig. 4 — Write bandwidth per port",
        entries=entries_from_series("Fig. 4", series, "write bandwidth [GB/s]"),
    )
    save_report("fig4_write_bandwidth", text + "\n" + to_csv(series), report)

    flat = {
        (s, label): v for s, row in series.items() for label, v in row
    }
    # peak write bandwidth >22 GB/s at the 512KB/16-lane ReO configuration
    peak_cell = max(flat, key=flat.get)
    assert flat[peak_cell] > 22.0
    assert peak_cell == (Scheme.ReO, "512,16,1")
    # multiview peak ~20 GB/s at ReRo (512KB, 16 lanes)
    assert flat[(Scheme.ReRo, "512,16,1")] == pytest.approx(21.5, abs=0.2)
    # single-port bandwidth roughly doubles from 8 to 16 lanes per cycle;
    # realized gain is below 2x because of the clock drop
    for scheme in Scheme:
        r = flat[(scheme, "512,16,1")] / flat[(scheme, "512,8,1")]
        assert 1.2 < r < 2.0, scheme
    benchmark(lambda: figure_series(result, lambda p: p.bandwidth.write_gbps))
