"""Figure 10 — STREAM-Copy bandwidth vs copied data size.

Regenerates the Fig. 10 series with the validated analytic cycle model,
cross-checks one mid-size point against the cycle-accurate Fig. 9 design,
and verifies the paper's headline: >99% of the 15,360 MB/s theoretical
peak (the paper measures 15,301 MB/s) at the full 700 KB array size, with
the host-overhead ramp at small sizes.
"""

import io

import pytest
from _util import save_report

from repro.hw.calibration import STREAM_COPY
from repro.stream_bench import COPY, StreamHarness, sweep_fig10


@pytest.fixture(scope="module")
def harness():
    return StreamHarness()


def test_fig10_stream_copy(benchmark, harness):
    points = sweep_fig10(harness=harness, runs=STREAM_COPY.runs)
    out = io.StringIO()
    out.write("Fig. 10 — Copy bandwidth (aggregated) vs copied data\n")
    out.write(f"{'copied KB':>10s} {'MB/s':>9s} {'of peak':>8s}\n")
    for pt in points:
        out.write(
            f"{pt.copied_kb:10.1f} {pt.mbps:9.0f} {pt.efficiency * 100:7.2f}%\n"
        )
    full = harness.measure_analytic(COPY, harness.max_vectors, runs=1000)
    out.write(
        f"\npeak (theoretical): {full.peak_mbps:.0f} MB/s"
        f" | max measured: {full.mbps:.0f} MB/s"
        f" ({full.efficiency * 100:.2f}%)\n"
        f"paper: peak 15360 MB/s, measured 15301 MB/s (99.62%)\n"
    )
    save_report("fig10_stream_copy", out.getvalue())

    # headline: >99% of peak at full size, within 1% of the paper's number
    assert full.peak_mbps == pytest.approx(STREAM_COPY.peak_mbps)
    assert full.efficiency > 0.99
    assert full.mbps == pytest.approx(STREAM_COPY.measured_mbps, rel=0.01)
    # ramp shape: efficiency grows monotonically with size
    effs = [p.efficiency for p in points]
    assert effs == sorted(effs)
    # benchmark the sweep itself
    benchmark(lambda: sweep_fig10(harness=harness))


def test_fig10_cycle_accurate_crosscheck(benchmark, harness):
    """A mid-size point measured on the actual Fig. 9 dataflow design
    matches the analytic curve exactly."""
    vectors = 1024  # 64 KB copied
    measured = harness.run(COPY, vectors=vectors, runs=1000)
    analytic = harness.measure_analytic(COPY, vectors, runs=1000)
    assert measured.cycles_per_run == analytic.cycles_per_run
    assert measured.mbps == pytest.approx(analytic.mbps)
    # benchmark the cycle-accurate simulator on a small copy
    def run_small():
        h = StreamHarness()
        h.load_arrays(64)
        return h.run_app(COPY, 64)

    benchmark(run_small)
