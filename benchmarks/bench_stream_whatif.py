"""STREAM what-if — projecting §V to other PolyMem configurations.

The paper synthesized STREAM for one design (RoCo 2x4, 2 read ports,
120 MHz) and planned "more in-depth analysis" (§VII).  This bench projects
the four STREAM kernels onto other lane counts and port counts, taking the
clock from the calibrated synthesis model, and regenerates the projected
bandwidth table.
"""

import io

from _util import save_report

from repro.core.config import PolyMemConfig
from repro.core.schemes import Scheme
from repro.hw.synthesis import default_model
from repro.stream_bench import StreamHarness, all_apps, build_stream_design


def harness_for(lanes: int, read_ports: int) -> tuple[StreamHarness, float]:
    p, q = {8: (2, 4), 16: (2, 8)}[lanes]
    rows, cols = 510, 512  # three equal 170-row bands; p | rows, q | cols
    cfg = PolyMemConfig.from_any(
        {"capacity_bytes": rows * cols * 8, "p": p, "q": q,
         "scheme": Scheme.RoCo, "read_ports": read_ports,
         "rows": rows, "cols": cols},
    )
    # model-estimated clock for the scaled design (the paper's 2 MB class)
    clock = default_model().frequency_mhz(
        PolyMemConfig.from_any({"capacity_kb": 2048, "p": p, "q": q,
                                "scheme": Scheme.RoCo, "ports": read_ports})
    )
    return StreamHarness(build_stream_design(cfg, clock_mhz=clock)), clock


def test_stream_whatif(benchmark):
    out = io.StringIO()
    out.write("STREAM WHAT-IF — projected kernels on scaled PolyMems\n")
    out.write("(clock from the calibrated model; paper design = 8L/2R @ 120 MHz)\n\n")
    out.write(
        f"{'config':12s} {'clock':>7s} | "
        + " | ".join(f"{a.name:>10s}" for a in all_apps())
        + "  [MB/s]\n"
    )
    results = {}
    for lanes, ports in ((8, 2), (16, 2)):
        harness, clock = harness_for(lanes, ports)
        row = []
        for app in all_apps():
            m = harness.measure_analytic(app, harness.max_vectors, runs=1000)
            row.append(m)
        results[(lanes, ports)] = row
        out.write(
            f"{lanes:2d}L/{ports}R       {clock:6.1f}M | "
            + " | ".join(f"{m.mbps:10.0f}" for m in row)
            + "\n"
        )
    save_report("stream_whatif", out.getvalue())

    copy8 = results[(8, 2)][0]
    copy16 = results[(16, 2)][0]
    # doubling lanes raises Copy bandwidth, but sub-2x (clock drops)
    assert 1.2 < copy16.mbps / copy8.mbps < 2.0
    # every projected kernel still sustains >99% of its own peak
    for row in results.values():
        for m in row:
            assert m.efficiency > 0.99
    benchmark(
        lambda: harness_for(16, 2)[0].measure_analytic(all_apps()[0], 1000)
    )
