"""Ablation — full crossbar vs Benes network shuffles.

The paper attributes the supra-linear logic growth at 16 lanes to the
quadratic full crossbars (§IV-C) and leaves optimization as future work.
This bench quantifies the alternative: Benes networks are functionally
identical (property-tested) with O(n log n) area but ``2 log2(n) - 1``
stages of latency.  It regenerates the area/latency trade table across
lane counts and times both realizations' routing.
"""

import io

import numpy as np
from _util import save_report

from repro.core.shuffle import BenesNetwork, FullCrossbar, Shuffle


def test_ablation_crossbar_area(benchmark):
    out = io.StringIO()
    out.write("ABLATION — shuffle realization: full crossbar vs Benes\n")
    out.write(
        f"{'lanes':>5s} {'xbar LUTs':>10s} {'benes LUTs':>11s} "
        f"{'area ratio':>10s} {'xbar stages':>12s} {'benes stages':>13s}\n"
    )
    ratios = {}
    for lanes in (4, 8, 16, 32, 64):
        xb = FullCrossbar(lanes).cost()
        bn = BenesNetwork(lanes).cost()
        ratios[lanes] = xb.lut_estimate / bn.lut_estimate
        out.write(
            f"{lanes:5d} {xb.lut_estimate:10d} {bn.lut_estimate:11d} "
            f"{ratios[lanes]:10.2f} {xb.stages:12d} {bn.stages:13d}\n"
        )
    out.write(
        "\nBenes saves area beyond 8 lanes and the advantage grows with "
        "n (O(n^2) vs O(n log n)); the price is pipeline depth.\n"
    )
    save_report("ablation_crossbar", out.getvalue())

    # crossbar grows quadratically: ratio increases with lanes
    assert ratios[64] > ratios[16] > ratios[8]
    # at the paper's 16-lane design the Benes already wins on area
    assert ratios[16] > 1.5
    # latency trade: Benes depth grows with log2(lanes)
    assert BenesNetwork(64).num_stages == 11

    # functional equivalence on random permutations
    rng = np.random.default_rng(0)
    bn, sh = BenesNetwork(32), Shuffle(32)
    for _ in range(10):
        perm = rng.permutation(32)
        v = rng.integers(0, 1 << 30, 32)
        assert (bn(v, perm) == sh(v, perm)).all()

    perm = rng.permutation(32)
    benchmark(lambda: BenesNetwork(32).route(perm))


def test_ablation_crossbar_apply_speed(benchmark):
    """Direct permutation (the crossbar model) is the fast path."""
    rng = np.random.default_rng(1)
    sh = Shuffle(32)
    perm = rng.permutation(32)
    v = rng.integers(0, 1 << 30, 32)
    benchmark(lambda: sh(v, perm))
