"""Ablation — double-buffered (ping-pong) staging vs serialized staging.

Extends the Fig. 1 software-cache story: with two PolyMem frames, tile
k+1's LMem transfer hides behind tile k's compute.  Regenerates the
overlap-speedup table across reuse factors and asserts the structural
claims (speedup in (1, 2], growing with compute intensity).
"""

import io

import numpy as np
from _util import save_report

from repro.core.config import PolyMemConfig
from repro.core.patterns import PatternKind
from repro.core.schemes import Scheme
from repro.maxeler.lmem import LMem
from repro.maxpolymem.double_buffer import PingPongCache


def build(seed=0):
    rng = np.random.default_rng(seed)
    lmem = LMem()
    m = rng.integers(0, 1 << 40, (64, 128)).astype(np.uint64)
    lmem.write(0, m.ravel())
    cfg = PolyMemConfig.from_any(
        {"capacity_bytes": 16 * 32 * 8, "p": 2, "q": 4,
         "scheme": Scheme.ReRo, "rows": 16, "cols": 32}
    )
    return PingPongCache(cfg, lmem, (64, 128), clock_mhz=120)


def sweeps(reuse):
    def compute(frame, tile):
        for _ in range(reuse):
            for r in range(tile.rows):
                frame.read_batch(PatternKind.ROW, np.full(4, r), np.arange(4) * 8)

    return compute


def test_double_buffer_overlap(benchmark):
    out = io.StringIO()
    out.write("ABLATION — ping-pong staging overlap (64x128 matrix, 16x32 tiles)\n")
    out.write(
        f"{'reuse':>6s} {'overlapped ms':>14s} {'serialized ms':>14s} "
        f"{'speedup':>8s}\n"
    )
    speedups = {}
    for reuse in (1, 2, 4, 8, 16):
        report = build().run(sweeps(reuse))
        speedups[reuse] = report.overlap_speedup
        out.write(
            f"{reuse:6d} {report.overlapped_ns / 1e6:14.4f} "
            f"{report.serialized_ns / 1e6:14.4f} "
            f"{report.overlap_speedup:7.2f}x\n"
        )
    save_report("double_buffer", out.getvalue())

    # overlap always helps but can never beat 2x
    for s in speedups.values():
        assert 1.0 < s <= 2.0
    # balanced staging/compute overlaps best; both extremes degrade toward 1
    assert max(speedups.values()) >= speedups[1]

    benchmark(lambda: build().run(sweeps(4)))
