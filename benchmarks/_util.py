"""Shared helpers for the benchmark harness.

Every bench regenerates its paper table/figure as text, saves it under
``benchmarks/out/`` (so the artifacts survive pytest's output capture) and
prints it (visible with ``pytest -s``).  Benches that produce structured
results also write the unified ``repro.exec.report`` JSON schema next to
the text artifact, and the figure benches share one Table III sweep run
through the :mod:`repro.exec` runtime (:func:`dse_result`).

Since PR 10 every :func:`save_report` call also appends a
provenance-complete entry to the run ledger (``benchmarks/out/
ledger.jsonl``, override with ``$REPRO_LEDGER``) and mirrors the bench's
history into ``benchmarks/out/BENCH_<name>.json`` — the data `repro
telemetry diff/regress/scorecard` operate on.  Smoke thresholds live in
one declarative table (:data:`repro.telemetry.regress.GATE_TABLE`);
benches evaluate them through :func:`gate` and fail through
:func:`exit_on_failed_gates`, so the in-process verdict and the ledger
record are the same computation.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.telemetry.ledger import (
    Ledger,
    default_ledger_path,
    record_run,
    update_trajectory,
)
from repro.telemetry.regress import check_gates, evaluate_gate

OUT_DIR = Path(__file__).parent / "out"

_DSE_RESULT = None


def dse_result():
    """The shared Table III sweep for the figure/table benches.

    Routed through ``repro.exec`` (serial in-process memoization — the
    parallel/cached paths get their own dedicated bench in
    ``bench_exec_scaling.py``)."""
    global _DSE_RESULT
    if _DSE_RESULT is None:
        from repro.dse import explore

        _DSE_RESULT = explore()
    return _DSE_RESULT


def gate(name: str, value: float, **overrides) -> dict:
    """Evaluate one declared smoke gate and return the uniform record the
    ledger stores (``{name, value, op, threshold, ok, detail}``).

    Thresholds come from :data:`repro.telemetry.regress.GATE_TABLE`;
    conditional gates override with ``op=``/``threshold=`` (recorded, so
    ``repro telemetry regress`` re-evaluates the same branch)."""
    return evaluate_gate(name, value, **overrides)


def exit_on_failed_gates(gates: list[dict], label: str = "SMOKE") -> None:
    """Print every failed gate and exit 1 — the shared tail of all
    ``--smoke`` paths (call *after* :func:`save_report` so the failing
    run is still ledgered)."""
    failures = check_gates(gates)
    for message in failures:
        print(f"{label} FAIL: {message}")
    if failures:
        sys.exit(1)


def ledger_path() -> Path:
    """The benchmark ledger destination: ``$REPRO_LEDGER`` when set, else
    ``benchmarks/out/ledger.jsonl``."""
    return default_ledger_path() or (OUT_DIR / "ledger.jsonl")


def save_report(
    name: str,
    text: str,
    report=None,
    *,
    gates: list[dict] | None = None,
    params: dict | None = None,
    timings: dict | None = None,
    flags: dict | None = None,
) -> Path:
    """Persist a regenerated table/figure, echo it, and ledger the run.

    When *report* (a :class:`repro.exec.Report`) is given, the unified
    JSON schema is written alongside as ``benchmarks/out/<name>.json``.
    Every call appends a provenance-complete :class:`~repro.telemetry.
    ledger.LedgerEntry` (gates, params, timings, the active telemetry
    snapshot) and refreshes ``benchmarks/out/BENCH_<name>.json``.
    Ledger failures never fail a bench.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text)
    if report is not None:
        report.save(OUT_DIR / f"{name}.json")
    try:
        entry = record_run(
            name,
            params=params,
            gates=gates,
            report=report,
            timings=timings,
            flags=flags,
            repo_root=Path(__file__).parent,
        )
        Ledger(ledger_path()).append(entry)
        update_trajectory(OUT_DIR / f"BENCH_{name}.json", entry)
    except Exception as exc:  # pragma: no cover - best-effort by contract
        print(f"[{name}] ledger append skipped: {exc}")
    print(f"\n[{name}] written to {path}\n{text}")
    return path
