"""Shared helpers for the benchmark harness.

Every bench regenerates its paper table/figure as text, saves it under
``benchmarks/out/`` (so the artifacts survive pytest's output capture) and
prints it (visible with ``pytest -s``).
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def save_report(name: str, text: str) -> Path:
    """Persist a regenerated table/figure and echo it."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text)
    print(f"\n[{name}] written to {path}\n{text}")
    return path
