"""Shared helpers for the benchmark harness.

Every bench regenerates its paper table/figure as text, saves it under
``benchmarks/out/`` (so the artifacts survive pytest's output capture) and
prints it (visible with ``pytest -s``).  Benches that produce structured
results also write the unified ``repro.exec.report`` JSON schema next to
the text artifact, and the figure benches share one Table III sweep run
through the :mod:`repro.exec` runtime (:func:`dse_result`).
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

_DSE_RESULT = None


def dse_result():
    """The shared Table III sweep for the figure/table benches.

    Routed through ``repro.exec`` (serial in-process memoization — the
    parallel/cached paths get their own dedicated bench in
    ``bench_exec_scaling.py``)."""
    global _DSE_RESULT
    if _DSE_RESULT is None:
        from repro.dse import explore

        _DSE_RESULT = explore()
    return _DSE_RESULT


def save_report(name: str, text: str, report=None) -> Path:
    """Persist a regenerated table/figure and echo it.

    When *report* (a :class:`repro.exec.Report`) is given, the unified
    JSON schema is written alongside as ``benchmarks/out/<name>.json``.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text)
    if report is not None:
        report.save(OUT_DIR / f"{name}.json")
    print(f"\n[{name}] written to {path}\n{text}")
    return path
