"""Sensitivity ablation — what shapes the Fig. 10 curve?

The paper attributes the left-side ramp to the ~300 ns host-call overhead
and accounts a 14-cycle read latency.  This bench varies both parameters
and regenerates the curve's knee, showing that (a) the overhead alone
sets the small-size ramp, (b) the pipeline latency is irrelevant at any
measured size — evidence the substitution model's two constants carry all
of Fig. 10's shape.
"""

import io

import pytest
from _util import save_report

from repro.core.config import PolyMemConfig
from repro.core.schemes import Scheme
from repro.maxeler.dfe import VectisBoard
from repro.maxeler.pcie import PcieLink
from repro.stream_bench import COPY, StreamHarness, build_stream_design


def harness_with(overhead_ns: float, latency: int) -> StreamHarness:
    rows, cols = 510, 512
    cfg = PolyMemConfig(
        rows * cols * 8, p=2, q=4, scheme=Scheme.RoCo, read_ports=2,
        rows=rows, cols=cols,
    )
    board = VectisBoard(pcie=PcieLink(call_overhead_ns=overhead_ns))
    design = build_stream_design(
        cfg, clock_mhz=120, read_latency=latency, board=board
    )
    return StreamHarness(design)


def eff(h: StreamHarness, kb: float) -> float:
    vectors = max(1, int(kb * 1024 / 8 / 8))
    m = h.measure_analytic(COPY, min(vectors, h.max_vectors), runs=1000)
    return m.efficiency


def test_fig10_sensitivity(benchmark):
    sizes = (8, 64, 680)
    out = io.StringIO()
    out.write("SENSITIVITY — Fig. 10 efficiency vs overhead and latency\n")
    out.write(
        f"{'overhead ns':>11s} {'latency':>8s} | "
        + " | ".join(f"{s:4d} KB" for s in sizes)
        + "\n"
    )
    table = {}
    for overhead in (0.0, 300.0, 1000.0):
        for latency in (7, 14, 28):
            h = harness_with(overhead, latency)
            row = tuple(eff(h, s) for s in sizes)
            table[(overhead, latency)] = row
            out.write(
                f"{overhead:11.0f} {latency:8d} | "
                + " | ".join(f"{e * 100:6.2f}%" for e in row)
                + "\n"
            )
    save_report("fig10_sensitivity", out.getvalue())

    # (a) with zero overhead, tiny-copy efficiency is exactly the pipeline
    # fill share: vectors / (vectors + latency + slack)
    vectors_8kb = 8 * 1024 // 64
    assert table[(0.0, 14)][0] == pytest.approx(
        vectors_8kb / (vectors_8kb + 14 + 2), abs=1e-6
    )
    # (b) the paper's 300 ns produces the characteristic small-size dip ...
    assert table[(300.0, 14)][0] < 0.75
    # ... which deepens with more overhead
    assert table[(1000.0, 14)][0] < table[(300.0, 14)][0]
    # (c) pipeline latency matters only at tiny sizes: by 64 KB a 4x
    # latency change moves efficiency by under 3 pp
    for overhead in (0.0, 300.0):
        for s_idx in (1, 2):
            spread = abs(
                table[(overhead, 7)][s_idx] - table[(overhead, 28)][s_idx]
            )
            assert spread < 0.03
    # (d) at full size everything converges to >98.5% (>99% at the
    # paper's 300 ns)
    for (overhead, _), row in table.items():
        assert row[-1] > 0.985
        if overhead <= 300:
            assert row[-1] > 0.99

    benchmark(lambda: eff(harness_with(300.0, 14), 64))
