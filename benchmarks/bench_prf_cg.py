"""PRF heritage — CG cycle scaling on the polymorphic register file.

The PRF lineage evaluated its design with a Conjugate Gradient case study;
this bench regenerates that style of result on our PRF layer: cycles and
realized speedup per CG iteration as the problem grows, for 8 and 16
lanes.  Checks the structural claims: cycles scale ~O(n^2) (matvec-bound)
and doubling the lanes roughly halves the streaming cycles.
"""

import io
import sys
from pathlib import Path

import numpy as np
from _util import save_report

sys.path.insert(0, str(Path(__file__).parent.parent / "examples"))

from conjugate_gradient import cg_solve, make_spd

from repro.prf import PrfMachine, RegisterFile


def run_cg(n: int, lanes: int = 8, seed: int = 0):
    p, q = {8: (2, 4), 16: (2, 8)}[lanes]
    # one shelf tall enough for A (n x n) with the four vectors beside it
    machine = PrfMachine(RegisterFile(p=p, q=q, rows=n, cols=6 * n))
    a, b = make_spd(n, seed)
    x, iters = cg_solve(machine, n, a, b)
    assert np.linalg.norm(a @ x - b) < 1e-5
    return machine.stats, iters


def test_prf_cg_scaling(benchmark):
    out = io.StringIO()
    out.write("PRF CASE STUDY — Conjugate Gradient cycle scaling\n")
    out.write(
        f"{'n':>4s} {'lanes':>6s} {'iters':>6s} {'instrs':>7s} "
        f"{'cycles':>8s} {'elements':>9s} {'speedup':>8s}\n"
    )
    cycles_by = {}
    for lanes in (8, 16):
        for n in (8, 16, 32):
            stats, iters = run_cg(n, lanes)
            cycles_by[(n, lanes)] = stats.cycles
            out.write(
                f"{n:4d} {lanes:6d} {iters:6d} {stats.instructions:7d} "
                f"{stats.cycles:8d} {stats.elements:9d} "
                f"{stats.elements / stats.cycles:7.2f}x\n"
            )
    save_report("prf_cg", out.getvalue())

    # matvec dominates: quadrupling n (8->32) grows cycles ~O(n^2)
    growth = cycles_by[(32, 8)] / cycles_by[(8, 8)]
    assert growth > 6
    # lane scaling is tempered by the per-row log2(lanes) reduction tail —
    # the classic PRF-scalability observation: wider lanes only pay off
    # once rows are long relative to the reduction depth
    assert cycles_by[(8, 16)] >= cycles_by[(8, 8)]          # too small to win
    assert cycles_by[(32, 16)] < cycles_by[(32, 8)]          # wins at scale
    ratio = cycles_by[(32, 8)] / cycles_by[(32, 16)]
    assert ratio > 1.1

    benchmark(lambda: run_cg(16, 8))
