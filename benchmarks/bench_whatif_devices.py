"""What-if ablation — PolyMem feasibility across FPGA devices.

Not a paper figure: extends the §IV study to a second device, regenerating
the feasibility frontier and the headline "largest instantiable PolyMem"
(which must reproduce the paper's 4 MB on the Vectis part).
"""

import io

from _util import save_report

from repro.dse.whatif import feasibility_frontier, max_capacity_kb
from repro.hw.fpga import VIRTEX6_LX240T, VIRTEX6_SX475T


def test_whatif_devices(benchmark):
    out = io.StringIO()
    out.write("WHAT-IF — PolyMem feasibility per device\n\n")
    for device in (VIRTEX6_SX475T, VIRTEX6_LX240T):
        cap = max_capacity_kb(device)
        pts = feasibility_frontier(device)
        feasible = sum(p.feasible for p in pts)
        out.write(
            f"{device.name}: {device.bram36} RAMB36, max PolyMem "
            f"{cap} KB, {feasible}/{len(pts)} grid points feasible\n"
        )
        for p in pts:
            if p.capacity_kb == 512 and p.lanes == 8:
                out.write(
                    f"  512KB/8L/{p.read_ports}R: BRAM {p.bram_pct:5.1f}%, "
                    f"logic {p.logic_pct:5.1f}% "
                    f"{'ok' if p.feasible else 'INFEASIBLE'}\n"
                )
    save_report("whatif_devices", out.getvalue())

    # the paper's 4 MB headline, from first principles
    assert max_capacity_kb(VIRTEX6_SX475T) == 4096
    assert max_capacity_kb(VIRTEX6_LX240T) == 1024
    benchmark(lambda: feasibility_frontier(VIRTEX6_LX240T))
