"""What-if ablation — PolyMem feasibility across devices and substrates.

Not a paper figure: extends the §IV study to a second device (the
feasibility frontier and the headline "largest instantiable PolyMem",
which must reproduce the paper's 4 MB on the Vectis part) and — since the
device-backend refactor — to the full substrate sweep of
:func:`repro.dse.whatif.whatif_devices`: BRAM parts, DDR/HBM channel
systems, and the two-board sharded logical PolyMem.
"""

import io

from _util import save_report

from repro.dse.whatif import (
    DEFAULT_WHATIF_BACKENDS,
    feasibility_frontier,
    max_capacity_kb,
    whatif_devices,
)
from repro.hw.fpga import VIRTEX6_LX240T, VIRTEX6_SX475T


def test_whatif_devices(benchmark):
    out = io.StringIO()
    out.write("WHAT-IF — PolyMem feasibility per device\n\n")
    for device in (VIRTEX6_SX475T, VIRTEX6_LX240T):
        cap = max_capacity_kb(device)
        pts = feasibility_frontier(device)
        feasible = sum(p.feasible for p in pts)
        out.write(
            f"{device.name}: {device.bram36} RAMB36, max PolyMem "
            f"{cap} KB, {feasible}/{len(pts)} grid points feasible\n"
        )
        for p in pts:
            if p.capacity_kb == 512 and p.lanes == 8:
                out.write(
                    f"  512KB/8L/{p.read_ports}R: BRAM {p.bram_pct:5.1f}%, "
                    f"logic {p.logic_pct:5.1f}% "
                    f"{'ok' if p.feasible else 'INFEASIBLE'}\n"
                )
    rows = whatif_devices()
    out.write("\nWHAT-IF — one 512KB/8L/1R PolyMem per substrate\n\n")
    for row in rows:
        out.write(
            f"  {row.backend:10s} ({row.kind:7s}): "
            f"{'fits' if row.feasible else 'NO FIT'}, "
            f"{row.clock_mhz:6.1f} MHz, peak R {row.peak_read_gbps:7.2f} "
            f"GB/s, strided {row.strided_gbps:6.2f} -> layout "
            f"{row.layout_gbps:6.2f} GB/s ({row.layout_speedup:.1f}x)\n"
        )
    save_report("whatif_devices", out.getvalue())

    # the paper's 4 MB headline, from first principles
    assert max_capacity_kb(VIRTEX6_SX475T) == 4096
    assert max_capacity_kb(VIRTEX6_LX240T) == 1024
    # the substrate sweep covers every built-in backend (>= 3, per ISSUE)
    assert [r.backend for r in rows] == list(DEFAULT_WHATIF_BACKENDS)
    assert len(rows) >= 3
    benchmark(lambda: feasibility_frontier(VIRTEX6_LX240T))
