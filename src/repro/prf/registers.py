"""The Polymorphic Register File view of a PolyMem (paper §II-A).

The PRF that PolyMem descends from is *"a parameterizable register file,
which can be logically reorganized by the programmer or a runtime system
to support multiple register dimensions and sizes simultaneously"*.  This
module provides that view: named 2-D vector registers of arbitrary shapes
defined over one PolyMem, resizable and releasable at runtime (the
polymorphism), with the storage managed by the Fig. 2 region allocator.

Registers carry float64 data (bit-cast into the 64-bit banks), matching
the SIMD-processor context the PRF was designed for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import PolyMemConfig
from ..core.exceptions import PatternError
from ..core.polymem import PolyMem
from ..core.regions import Region, RegionMap
from ..core.schemes import Scheme

__all__ = ["VectorRegister", "RegisterFile"]


def _bits(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x, dtype=np.float64).view(np.uint64)


def _floats(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x, dtype=np.uint64).view(np.float64)


@dataclass
class VectorRegister:
    """A named 2-D register: a shaped window over the PRF storage."""

    name: str
    rows: int
    cols: int
    region: Region

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def elements(self) -> int:
        return self.rows * self.cols

    def store(self, values: np.ndarray) -> None:
        """Host -> register (bulk; kernel cycles are counted by the ISA)."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.shape:
            raise PatternError(
                f"register {self.name!r} expects {self.shape}, got {values.shape}"
            )
        frame = np.zeros(self.region.shape, dtype=np.uint64)
        frame[: self.rows, : self.cols] = _bits(values).reshape(self.shape)
        self.region.store(frame)

    def load(self) -> np.ndarray:
        """Register -> host."""
        frame = self.region.load()
        return _floats(frame[: self.rows, : self.cols].ravel()).reshape(self.shape)


class RegisterFile:
    """A runtime-reorganizable set of 2-D registers over one PolyMem.

    >>> rf = RegisterFile(capacity_kb=4)
    >>> r0 = rf.define("R0", 4, 8)     # a 4x8 matrix register
    >>> r1 = rf.define("R1", 1, 32)    # a vector register
    >>> rf.resize("R1", 2, 16)         # the polymorphism: reshape at runtime
    """

    def __init__(
        self,
        capacity_kb: int = 4,
        p: int = 2,
        q: int = 4,
        scheme: Scheme = Scheme.RoCo,
        rows: int = 0,
        cols: int = 0,
    ):
        if rows and cols:
            capacity = rows * cols * 8
        else:
            capacity = capacity_kb * 1024
        self.memory = PolyMem(
            PolyMemConfig(capacity, p=p, q=q, scheme=scheme, rows=rows, cols=cols)
        )
        self._regions = RegionMap(self.memory)
        self.registers: dict[str, VectorRegister] = {}

    @property
    def lanes(self) -> int:
        return self.memory.lanes

    def define(self, name: str, rows: int, cols: int) -> VectorRegister:
        """Create a register of logical shape rows x cols."""
        if name in self.registers:
            raise PatternError(f"register {name!r} already defined")
        region = self._regions.allocate(name, rows, cols)
        reg = VectorRegister(name=name, rows=rows, cols=cols, region=region)
        self.registers[name] = reg
        return reg

    def resize(self, name: str, rows: int, cols: int) -> VectorRegister:
        """Reshape a register at runtime, preserving data row-major up to
        the smaller element count (the PRF's §II-A polymorphism)."""
        old = self.registers.get(name)
        if old is None:
            raise PatternError(f"register {name!r} is not defined")
        data = old.load().ravel()
        self.release(name)
        new = self.define(name, rows, cols)
        keep = min(data.size, new.elements)
        fresh = np.zeros(new.elements)
        fresh[:keep] = data[:keep]
        new.store(fresh.reshape(new.shape))
        return new

    def release(self, name: str) -> None:
        """Free a register's storage."""
        if name not in self.registers:
            raise PatternError(f"register {name!r} is not defined")
        del self.registers[name]
        self._regions.free(name)

    def __getitem__(self, name: str) -> VectorRegister:
        reg = self.registers.get(name)
        if reg is None:
            raise PatternError(f"register {name!r} is not defined")
        return reg

    def __contains__(self, name: str) -> bool:
        return name in self.registers
