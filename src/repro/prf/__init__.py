"""Polymorphic Register File compatibility layer (paper §II-A heritage).

PolyMem descends from the PRF — a register file whose registers' shapes
and sizes are reorganized at runtime.  This subpackage provides that view
over a PolyMem: runtime-defined/resized 2-D vector registers
(:class:`RegisterFile`) and a small SIMD instruction set executing over
them with parallel-access cycle accounting (:class:`PrfMachine`) — the
substrate behind the PRF lineage's CG-style case studies.
"""

from .machine import ExecutionStats, PrfMachine
from .registers import RegisterFile, VectorRegister

__all__ = ["ExecutionStats", "PrfMachine", "RegisterFile", "VectorRegister"]
