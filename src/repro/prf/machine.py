"""A small vector ISA over the Polymorphic Register File.

The PRF was built for SIMD co-processors (§II-A); this module provides the
minimal instruction set that exercises the PRF's value proposition —
element-wise vector arithmetic over arbitrarily shaped 2-D registers, all
operand traffic flowing as PolyMem parallel accesses:

========== ================================ =======================
mnemonic   semantics                        cycle model
========== ================================ =======================
``vadd``   Rd = Ra + Rb                     ``ceil(n/lanes)`` (dual read
``vsub``   Rd = Ra - Rb                      ports stream both operands)
``vmul``   Rd = Ra * Rb
``vaxpy``  Rd = s*Ra + Rb
``vscale`` Rd = s * Ra                      ``ceil(n/lanes)``
``vdot``   scalar = sum(Ra * Rb)            ``ceil(n/lanes) + log2(lanes)``
``vsum``   scalar = sum(Ra)                 ``ceil(n/lanes) + log2(lanes)``
========== ================================ =======================

One parallel access per lane-vector per port per cycle; the destination
write overlaps the reads on the independent write port (the paper's
concurrent read/write claim), so element-wise ops cost exactly the read
streaming.  Two-operand instructions require two read ports when they are
to stream at full rate; with one port the cycle model doubles.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

import numpy as np

from ..core.exceptions import PatternError, PortError
from ..core.patterns import PatternKind
from ..program import AccessProgram
from ..program.builder import build
from .registers import RegisterFile, VectorRegister, _bits, _floats

__all__ = ["ExecutionStats", "PrfMachine"]


@dataclass
class ExecutionStats:
    """Cycle/instruction accounting for a program."""

    instructions: int = 0
    cycles: int = 0
    elements: int = 0
    log: list[str] = field(default_factory=list)

    def record(self, mnemonic: str, cycles: int, elements: int) -> None:
        self.instructions += 1
        self.cycles += cycles
        self.elements += elements
        self.log.append(f"{mnemonic}: {cycles} cycles")


class PrfMachine:
    """Executes vector instructions against a :class:`RegisterFile`."""

    def __init__(self, rf: RegisterFile | None = None, read_ports: int = 2):
        self.rf = rf or RegisterFile()
        if read_ports < 1:
            raise PortError("need at least one read port")
        self.read_ports = read_ports
        self.stats = ExecutionStats()

    # -- cycle model -------------------------------------------------------
    def _stream_cycles(self, elements: int, operands: int) -> int:
        vectors = -(-elements // self.rf.lanes)
        passes = -(-operands // self.read_ports)
        return vectors * passes

    def _reduce_tail(self) -> int:
        return max(1, int(math.ceil(math.log2(self.rf.lanes))))

    # -- operand plumbing -----------------------------------------------------
    def _reg(self, name: str) -> VectorRegister:
        return self.rf[name]

    def _check_same_shape(self, *regs: VectorRegister) -> None:
        shapes = {r.shape for r in regs}
        if len(shapes) != 1:
            raise PatternError(
                f"shape mismatch: {[f'{r.name}{r.shape}' for r in regs]}"
            )

    def _operand_program(self, *regs: VectorRegister) -> AccessProgram:
        """Deprecated: use ``repro.program.builder.build("prf.operands", ...)``."""
        warnings.warn(
            "PrfMachine._operand_program() is deprecated; use "
            "repro.program.builder.build('prf.operands', machine=..., regs=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._lower_operands(*regs)

    def _lower_operands(self, *regs: VectorRegister) -> AccessProgram:
        """Lower operand streaming to an access program.

        With enough physical read ports (and equal-length streams) every
        operand gets its own port of a *single* trace (``fuse=True``) —
        the concurrent dual-port streaming the cycle model charges for;
        otherwise the operands stream sequentially on port 0 (the
        compiler concatenates them into one equivalent replay).
        """
        mem = self.rf.memory
        grids = [r.region.anchor_grid() for r in regs]
        ports = min(self.read_ports, mem.read_ports)
        lengths = {ai.size for ai, _ in grids}
        parallel = len(regs) > 1 and ports >= len(regs) and len(lengths) == 1
        prog = AccessProgram("prf_operands")
        for k, (ai, aj) in enumerate(grids):
            prog.read(
                PatternKind.RECTANGLE,
                ai,
                aj,
                port=k if parallel else 0,
                tag=f"op{k}",
                fuse=parallel and k > 0,
            )
        return prog

    def _lower_store(self, reg: VectorRegister, values: np.ndarray) -> AccessProgram:
        """Lower a result store into *reg* as one replayed write trace."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != reg.shape:
            raise PatternError(
                f"register {reg.name!r} expects {reg.shape}, got {values.shape}"
            )
        frame = np.zeros(reg.region.shape, dtype=np.uint64)
        frame[: reg.rows, : reg.cols] = _bits(values).reshape(reg.shape)
        anchors_i, anchors_j = reg.region.anchor_grid()
        return AccessProgram(f"prf_store_{reg.name}").write(
            PatternKind.RECTANGLE,
            anchors_i,
            anchors_j,
            values=reg.region.to_blocks(frame),
        )

    def _load_operands(self, *regs: VectorRegister) -> list[np.ndarray]:
        """Stream operand registers out of the PRF via the program engine."""
        res = build("prf.operands", machine=self, regs=regs).run()
        out = []
        for k, reg in enumerate(regs):
            frame = reg.region.from_blocks(res[f"op{k}"])
            out.append(
                _floats(frame[: reg.rows, : reg.cols].ravel()).reshape(reg.shape)
            )
        return out

    def _store_result(self, reg: VectorRegister, values: np.ndarray) -> None:
        """Stream a result into *reg* as one replayed write trace."""
        build("prf.store", machine=self, reg=reg, values=values).run()

    def _binary(self, mnemonic, dst, a, b, fn) -> None:
        ra, rb, rd = self._reg(a), self._reg(b), self._reg(dst)
        self._check_same_shape(ra, rb, rd)
        va, vb = self._load_operands(ra, rb)
        self._store_result(rd, fn(va, vb))
        self.stats.record(
            mnemonic, self._stream_cycles(rd.elements, 2), rd.elements
        )

    def _unary(self, mnemonic, dst, a, fn) -> None:
        ra, rd = self._reg(a), self._reg(dst)
        self._check_same_shape(ra, rd)
        (va,) = self._load_operands(ra)
        self._store_result(rd, fn(va))
        self.stats.record(
            mnemonic, self._stream_cycles(rd.elements, 1), rd.elements
        )

    # -- instructions -------------------------------------------------------
    def vadd(self, dst: str, a: str, b: str) -> None:
        """Rd = Ra + Rb (element-wise)."""
        self._binary("vadd", dst, a, b, lambda x, y: x + y)

    def vsub(self, dst: str, a: str, b: str) -> None:
        """Rd = Ra - Rb."""
        self._binary("vsub", dst, a, b, lambda x, y: x - y)

    def vmul(self, dst: str, a: str, b: str) -> None:
        """Rd = Ra * Rb (element-wise)."""
        self._binary("vmul", dst, a, b, lambda x, y: x * y)

    def vaxpy(self, dst: str, s: float, a: str, b: str) -> None:
        """Rd = s * Ra + Rb."""
        self._binary("vaxpy", dst, a, b, lambda x, y: s * x + y)

    def vscale(self, dst: str, s: float, a: str) -> None:
        """Rd = s * Ra."""
        self._unary("vscale", dst, a, lambda x: s * x)

    def vcopy(self, dst: str, a: str) -> None:
        """Rd = Ra."""
        self._unary("vcopy", dst, a, lambda x: x.copy())

    def vdot(self, a: str, b: str) -> float:
        """sum(Ra * Rb) — streams both operands, then a lane-tree reduce."""
        ra, rb = self._reg(a), self._reg(b)
        self._check_same_shape(ra, rb)
        va, vb = self._load_operands(ra, rb)
        value = float(np.dot(va.ravel(), vb.ravel()))
        cycles = self._stream_cycles(ra.elements, 2) + self._reduce_tail()
        self.stats.record("vdot", cycles, ra.elements)
        return value

    def vsum(self, a: str) -> float:
        """sum(Ra)."""
        ra = self._reg(a)
        (va,) = self._load_operands(ra)
        value = float(va.sum())
        cycles = self._stream_cycles(ra.elements, 1) + self._reduce_tail()
        self.stats.record("vsum", cycles, ra.elements)
        return value

    def vmv(self, dst: str, mat: str, vec: str) -> None:
        """Rd = Rmat @ Rvec — matrix register times vector register.

        ``Rmat`` is ``m x n``; ``Rvec`` holds ``n`` elements (any shape);
        ``Rd`` holds ``m`` elements.  Cycle model: the vector streams once
        and stays lane-resident, each matrix row streams on the second
        port, every row ends with a lane-tree reduction —
        ``ceil(n/lanes) + m * (ceil(n/lanes) + log2(lanes))``.
        """
        rm, rv, rd = self._reg(mat), self._reg(vec), self._reg(dst)
        m, n = rm.shape
        if rv.elements != n:
            raise PatternError(
                f"vmv: {mat}{rm.shape} needs a {n}-element vector, "
                f"{vec} holds {rv.elements}"
            )
        if rd.elements != m:
            raise PatternError(
                f"vmv: destination {dst} holds {rd.elements} elements, "
                f"needs {m}"
            )
        vm, vv = self._load_operands(rm, rv)
        result = vm @ vv.ravel()
        self._store_result(rd, result.reshape(rd.shape))
        row_vectors = -(-n // self.rf.lanes)
        cycles = row_vectors + m * (row_vectors + self._reduce_tail())
        self.stats.record("vmv", cycles, (m + 1) * n)
