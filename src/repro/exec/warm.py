"""Fork-after-warm support for the sweep runtime.

The expensive per-process state behind every sweep point is a handful of
process-wide caches: compiled access plans (:func:`repro.core.plan.compile_plan`'s
LRU), Benes routing stages (:data:`repro.core.shuffle.route_memo`), fused
kernels (:data:`repro.program.fuse.kernel_cache`), and the fitted synthesis
model.  A cold worker pays all of them on its first point — which is why a
naively forked pool used to flatline: every worker re-derived what the
parent already knew.

This module implements the fix:

1. **Collect** the distinct warm-up specs from a task list
   (:func:`collect_warmups`).  A :class:`~repro.exec.runtime.SweepTask` may
   carry a module-level ``warmup(config, **params)`` callable that
   pre-compiles exactly the plan families / routes / kernels its ``fn``
   will need; identical specs are deduplicated by content hash.
2. **Warm the parent** (:func:`run_warmups`) *before* the pool forks, so on
   ``fork`` platforms every worker inherits the hot caches copy-on-write
   for free.
3. **Re-warm on spawn** (:func:`export_warm_state` /
   :func:`warm_initializer`): platforms without ``fork`` get an equivalent
   pool ``initializer=`` that replays the same specs plus the parent's
   exported plan keys and Benes permutations in each fresh worker.
4. **Account** (:func:`cache_stats`, :func:`stats_delta`): workers snapshot
   their cache hit/miss counters around each chunk so the parent can
   aggregate per-worker hit rates into ``exec.worker.*`` telemetry.

Everything here must stay picklable (specs and exported state cross the
process boundary on spawn platforms).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "WarmSpec",
    "WarmState",
    "WarmupReport",
    "collect_warmups",
    "run_warmups",
    "export_warm_state",
    "warm_initializer",
    "cache_stats",
    "stats_delta",
]


@dataclass(frozen=True)
class WarmSpec:
    """One deduplicated warm-up call: ``fn(config, **params)``.

    ``fn`` must be a module-level callable (picklable) whose job is to
    populate process-wide caches — its return value is ignored.
    """

    fn: Callable[..., Any]
    config: Any = None
    params: Mapping[str, Any] = None  # type: ignore[assignment]

    def run(self) -> None:
        self.fn(self.config, **dict(self.params or {}))


@dataclass(frozen=True)
class WarmState:
    """Everything a *spawned* worker needs to reach parity with a forked
    one: the warm-up specs plus the parent's cache contents that specs
    alone may not cover (plans/routes compiled by earlier sweeps)."""

    specs: tuple[WarmSpec, ...]
    plan_keys: tuple[tuple, ...]
    route_perms: tuple[tuple[int, tuple[int, ...]], ...]


@dataclass(frozen=True)
class WarmupReport:
    """What one parent-side warm pass actually did."""

    specs: int  #: deduplicated warm-up callables executed
    plans: int  #: plan families newly compiled
    routes: int  #: Benes routes newly derived
    kernels: int  #: fused kernels newly built
    seconds: float  #: wall clock of the whole pass


def _spec_identity(fn: Callable, config: Any, params: Mapping[str, Any]) -> str:
    """Content hash identifying one warm-up call for deduplication."""
    from .cache import cache_key

    return cache_key(
        f"warmup/{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}",
        config,
        params,
    )


def collect_warmups(tasks: Iterable[Any]) -> list[WarmSpec]:
    """The deduplicated warm-up specs carried by *tasks*, in first-seen
    order.  Tasks without a ``warmup`` attribute (or with ``None``) are
    skipped; distinct tasks sharing a spec contribute it once.

    A warmup hook may expose a ``warm_family(config, **params)``
    attribute returning a hashable key; when present, dedup runs on that
    *family* instead of the full config identity.  The caches a warmup
    populates are typically keyed by config family — e.g. compiled plans
    by ``(rows, cols, p, q, scheme, kind, stride)``, blind to the read
    port count — so sibling configs in one chunk would otherwise warm
    (and on spawn platforms re-run) the exact same work per sibling.
    """
    seen: set = set()
    specs: list[WarmSpec] = []
    for task in tasks:
        fn = getattr(task, "warmup", None)
        if fn is None:
            continue
        config = getattr(task, "config", None)
        params = dict(getattr(task, "params", {}) or {})
        family = getattr(fn, "warm_family", None)
        if family is not None:
            ident = (
                getattr(fn, "__module__", "?"),
                getattr(fn, "__qualname__", repr(fn)),
                family(config, **params),
            )
        else:
            ident = _spec_identity(fn, config, params)
        if ident in seen:
            continue
        seen.add(ident)
        specs.append(WarmSpec(fn, config, params))
    return specs


def cache_stats() -> dict[str, int]:
    """Snapshot of this process's warm-cache hit/miss counters."""
    from ..core.plan import plan_cache_stats
    from ..core.shuffle import route_memo
    from ..program.fuse import kernel_cache

    plan = plan_cache_stats()
    return {
        "plan_cache.hits": plan["hits"],
        "plan_cache.misses": plan["misses"],
        "route_cache.hits": route_memo.hits,
        "route_cache.misses": route_memo.misses,
        "kernel_cache.hits": kernel_cache.hits,
        "kernel_cache.misses": kernel_cache.misses,
    }


def stats_delta(before: Mapping[str, int], after: Mapping[str, int]) -> dict[str, int]:
    """Per-chunk counter increments (clamped at zero for robustness)."""
    return {k: max(0, after.get(k, 0) - before.get(k, 0)) for k in after}


def run_warmups(specs: Sequence[WarmSpec]) -> WarmupReport:
    """Execute every spec in this process and report what got built."""
    before = cache_stats()
    t0 = time.perf_counter()
    for spec in specs:
        spec.run()
    seconds = time.perf_counter() - t0
    after = cache_stats()
    return WarmupReport(
        specs=len(specs),
        plans=after["plan_cache.misses"] - before["plan_cache.misses"],
        routes=after["route_cache.misses"] - before["route_cache.misses"],
        kernels=after["kernel_cache.misses"] - before["kernel_cache.misses"],
        seconds=seconds,
    )


def export_warm_state(specs: Sequence[WarmSpec]) -> WarmState:
    """Package the parent's warm caches for spawn-platform workers.

    Call *after* :func:`run_warmups` so the exported plan keys and route
    permutations include everything the specs just built."""
    from ..core.plan import plan_cache_keys
    from ..core.shuffle import route_memo

    return WarmState(
        specs=tuple(specs),
        plan_keys=tuple(plan_cache_keys()),
        route_perms=tuple(
            (lanes, tuple(perm)) for lanes, perm in route_memo.export_keys()
        ),
    )


def warm_initializer(state: WarmState) -> None:
    """Pool ``initializer=`` for spawn platforms: replay the parent's warm
    pass in the fresh worker.  Equivalence with fork inheritance is pinned
    in ``tests/exec/test_warm.py``."""
    from ..core.plan import warm_plans_from_keys
    from ..core.shuffle import warm_routes

    for spec in state.specs:
        spec.run()
    warm_plans_from_keys(state.plan_keys)
    warm_routes([(lanes, list(perm)) for lanes, perm in state.route_perms])
