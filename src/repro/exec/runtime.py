"""The parallel, cached, resumable sweep runtime.

All grid-shaped work in this repository — the Table III DSE sweep, the
§IV-A validation grid, the Fig. 10 size sweep, the scorecard — is a list
of independent *(experiment id, function, config, params)* points.
:func:`run_sweep` executes such a list with

* a **warm-forked** process pool: the distinct plan families, Benes
  routes and fused kernels the tasks will need are pre-compiled once in
  the parent (via each task's optional ``warmup`` hook), then workers
  fork and inherit the hot caches copy-on-write — no per-worker cold
  start.  Platforms without ``fork`` get an equivalent pool
  ``initializer=`` that replays the warm set (see :mod:`repro.exec.warm`);
* **chunked dispatch**: points are grouped into per-worker batches sized
  by a small cost model fed from the ``exec.task_seconds`` telemetry
  histogram (or a parent-side pilot point), amortising pickle/IPC
  overhead without sacrificing load balance;
* **streaming collection**: chunk results arrive via ``as_completed`` —
  progress callbacks fire and cache writes land as each chunk finishes,
  so a crash mid-sweep loses only in-flight work, never completed points;
* an optional content-addressed :class:`~repro.exec.cache.ResultCache`
  consulted in one batched ``get_many`` before computing and written in
  per-chunk ``put_many`` batches after;
* deterministic result ordering — ``SweepResult.results[i]`` always
  corresponds to ``tasks[i]`` regardless of completion order;
* wall-clock, warm-up, and IPC accounting surfaced as ``exec.*``
  telemetry (see ``docs/observability.md``).

Task functions (and ``warmup`` hooks) must be module-level callables
(picklable) taking the task's config as the first argument plus the
task's params as keyword arguments; task functions must return
plain-JSON data (so results can be cached and compared byte-for-byte
across worker counts, chunk sizes, and start methods).
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..telemetry import context as _telemetry
from ..telemetry import ledger as _tel_ledger
from . import warm as _warm
from .cache import MISS, ResultCache, cache_key

__all__ = [
    "SweepTask",
    "RunResult",
    "SweepResult",
    "run_sweep",
    "resolve_workers",
    "plan_chunk_size",
]

log = logging.getLogger(__name__)

#: grids smaller than this never pay the process-pool startup cost
MIN_PARALLEL_TASKS = 4

#: chunking aims for this many chunks per worker so stragglers rebalance
CHUNKS_PER_WORKER = 4

#: ...but never slices finer than roughly this much work per chunk, so
#: pickle/IPC overhead stays a rounding error next to compute
TARGET_CHUNK_SECONDS = 0.2


@dataclass(frozen=True)
class SweepTask:
    """One independent sweep point.

    ``fn(config, **params)`` computes the point's plain-JSON payload.
    ``key`` overrides the derived cache key when the default
    *(experiment_id, config, params, model version)* hash is not the right
    identity for the work.  ``warmup(config, **params)``, when given, is a
    module-level hook that pre-compiles the plan families / Benes routes /
    kernels ``fn`` will need; the runtime runs the deduplicated warm set
    once in the parent before forking workers.  ``warmup`` never
    participates in the cache key — warming is an execution detail, not
    part of the point's identity.
    """

    experiment_id: str
    fn: Callable[..., Any]
    config: Any = None
    params: Mapping[str, Any] = field(default_factory=dict)
    key: str | None = None
    warmup: Callable[..., Any] | None = None
    #: optional vectorized evaluator: ``batch_fn(configs, **params)``
    #: computes a whole group of sibling points (same experiment_id and
    #: params) in one pass, returning one plain-JSON payload per config
    #: in order — each payload must be byte-identical to what
    #: ``fn(config, **params)`` returns for the same config.  Like
    #: ``warmup``, it is an execution detail and never part of the cache
    #: key; must be module-level (picklable).
    batch_fn: Callable[..., Any] | None = None

    def cache_key(self, model_version: str | None = None) -> str:
        if self.key is not None:
            return self.key
        return cache_key(
            self.experiment_id, self.config, self.params, model_version
        )


@dataclass(frozen=True)
class RunResult:
    """Outcome of one sweep point."""

    experiment_id: str
    key: str
    value: Any
    seconds: float  #: compute time (0.0 for a cache hit)
    cached: bool


@dataclass
class SweepResult:
    """All point outcomes, in task order, plus run accounting."""

    results: list[RunResult]
    wall_seconds: float  #: end-to-end sweep wall clock
    workers: int  #: workers actually used (1 = serial)
    warmup_seconds: float = 0.0  #: parent-side pre-fork warm pass
    ipc_seconds: float = 0.0  #: queueing + (de)serialisation across chunks
    chunks: int = 0  #: dispatch batches sent to the pool (0 = serial)
    batched_points: int = 0  #: points computed through a ``batch_fn`` group
    batch_calls: int = 0  #: vectorized ``batch_fn`` invocations

    def values(self) -> list[Any]:
        return [r.value for r in self.results]

    @property
    def n_cached(self) -> int:
        return sum(r.cached for r in self.results)

    @property
    def n_computed(self) -> int:
        return len(self.results) - self.n_cached

    @property
    def compute_seconds(self) -> float:
        """Total CPU-side compute time across all points (serial cost)."""
        return sum(r.seconds for r in self.results)

    def payload_json(self) -> str:
        """Canonical JSON of (key, value) per point — identical bytes for
        identical work regardless of workers/chunking/caching/timing."""
        import json

        return json.dumps(
            [{"key": r.key, "value": r.value} for r in self.results],
            sort_keys=True,
            separators=(",", ":"),
        )


def resolve_workers(workers: int | None, n_tasks: int) -> int:
    """Effective worker count: ``None``/1 → serial, 0 → all CPUs; always
    clamped to ``os.cpu_count()`` and to the task count; tiny grids run
    serially."""
    if workers is None:
        return 1
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    cpus = os.cpu_count() or 1
    if workers > cpus:
        log.info(
            "exec: clamping workers %d -> %d (os.cpu_count()); "
            "oversubscribing CPU-bound sweeps only adds context switches",
            workers,
            cpus,
        )
        workers = cpus
    if n_tasks < MIN_PARALLEL_TASKS:
        return 1
    return max(1, min(workers, n_tasks))


def plan_chunk_size(
    n_pending: int,
    n_workers: int,
    chunk_size: int | None = None,
    mean_task_seconds: float | None = None,
) -> int:
    """Points per dispatch batch.

    An explicit *chunk_size* wins.  Otherwise balance two pressures:
    enough chunks for the pool to load-balance stragglers
    (:data:`CHUNKS_PER_WORKER` per worker), but coarse enough that each
    chunk carries ~:data:`TARGET_CHUNK_SECONDS` of compute so the
    per-chunk pickle/queue round-trip is amortised.  The cost estimate
    comes from the live ``exec.task_seconds`` histogram when telemetry is
    active, else from a parent-side pilot point (see :func:`run_sweep`).
    """
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        return chunk_size
    by_balance = max(1, math.ceil(n_pending / (n_workers * CHUNKS_PER_WORKER)))
    if mean_task_seconds and mean_task_seconds > 0:
        by_cost = max(1, math.ceil(TARGET_CHUNK_SECONDS / mean_task_seconds))
        return min(by_balance, by_cost) if by_cost < by_balance else by_balance
    return by_balance


def _mean_task_seconds_from_telemetry() -> float | None:
    """Mean of the live ``exec.task_seconds`` histogram, if any."""
    tel = _telemetry.active()
    if tel is None:
        return None
    hist = tel.metrics.histograms.get("exec.task_seconds")
    if hist is None or hist.count == 0:
        return None
    return hist.mean


def _execute(task: SweepTask) -> tuple[Any, float]:
    """In-process execution of one task."""
    t0 = time.perf_counter()
    value = task.fn(task.config, **dict(task.params))
    return value, time.perf_counter() - t0


def _dispatch_groups(
    tasks: Sequence[SweepTask], indices: Iterable[int]
) -> list[list[int]]:
    """Partition *indices* into execution groups, first-seen order.

    Tasks carrying the same ``(experiment_id, batch_fn, params)`` triple
    form one group (their configs go to ``batch_fn`` in a single call);
    tasks without a ``batch_fn`` stay singleton groups on the scalar
    path.  Within a group the original index order is preserved, so the
    group's payloads map back to their tasks positionally.
    """
    groups: dict[Any, list[int]] = {}
    order: list[list[int]] = []
    for i in indices:
        task = tasks[i]
        if task.batch_fn is None:
            order.append([i])
            continue
        key = (
            task.experiment_id,
            task.batch_fn,
            tuple(sorted((k, repr(v)) for k, v in dict(task.params).items())),
        )
        group = groups.get(key)
        if group is None:
            groups[key] = group = []
            order.append(group)
        group.append(i)
    return order


def _execute_group(
    tasks: Sequence[SweepTask], idxs: Sequence[int]
) -> tuple[list[tuple[Any, float]], int, int]:
    """Run one dispatch group; returns ``(pairs, batched_points,
    batch_calls)`` with one ``(value, seconds)`` pair per index (the
    batch call's wall time is split evenly across its points)."""
    first = tasks[idxs[0]]
    if first.batch_fn is None or len(idxs) == 0:
        return [_execute(tasks[i]) for i in idxs], 0, 0
    group = [tasks[i] for i in idxs]
    t0 = time.perf_counter()
    values = list(first.batch_fn([t.config for t in group], **dict(first.params)))
    seconds = time.perf_counter() - t0
    if len(values) != len(group):
        raise RuntimeError(
            f"batch_fn {first.batch_fn!r} returned {len(values)} payloads "
            f"for {len(group)} configs"
        )
    per = seconds / len(group)
    return [(v, per) for v in values], len(group), 1


def _execute_chunk(tasks: Sequence[SweepTask]) -> dict:
    """Worker-side execution of one chunk (module-level: picklable).

    Tasks sharing a ``batch_fn`` group evaluate in one vectorized call
    (so a chunk of sweep points shares one batched table build per config
    family).  Besides the per-task ``(value, seconds)`` pairs, the
    payload carries ``time.monotonic()`` endpoints (system-wide on Linux,
    so the parent can subtract pure compute from the submit→arrival
    window to estimate IPC overhead), the worker's cache hit/miss deltas
    for the chunk, and the chunk's batch-path accounting.
    """
    t_start = time.monotonic()
    before = _warm.cache_stats()
    out: list[tuple[Any, float] | None] = [None] * len(tasks)
    batched = calls = 0
    for idxs in _dispatch_groups(tasks, range(len(tasks))):
        pairs, b, c = _execute_group(tasks, idxs)
        batched += b
        calls += c
        for i, pair in zip(idxs, pairs):
            out[i] = pair
    return {
        "results": out,
        "t_start": t_start,
        "t_end": time.monotonic(),
        "cache_stats": _warm.stats_delta(before, _warm.cache_stats()),
        "batched": batched,
        "batch_calls": calls,
    }


def _pool_context(start_method: str | None):
    """The multiprocessing context for the pool, preferring ``fork``.

    Returns ``(context, needs_initializer)``: on fork platforms workers
    inherit the parent's warmed caches copy-on-write and need no
    initializer; otherwise (spawn/forkserver) each worker replays the
    exported warm state via :func:`repro.exec.warm.warm_initializer`.
    """
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else methods[0]
    return multiprocessing.get_context(start_method), start_method != "fork"


def run_sweep(
    tasks: Iterable[SweepTask] | Sequence[SweepTask],
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable[[int, int, RunResult], None] | None = None,
    model_version: str | None = None,
    chunk_size: int | None = None,
    _start_method: str | None = None,
) -> SweepResult:
    """Run every task, in parallel when asked, consulting *cache* first.

    Parameters
    ----------
    workers:
        ``None`` or ``1`` — serial (the default); ``0`` — one worker per
        CPU; ``n`` — a pool of *n* processes (clamped to the CPU count).
        Small grids always run serially (the pool would cost more than it
        saves).
    cache:
        A :class:`ResultCache`; hits skip computation (resolved in one
        batched ``get_many``), misses are stored chunk-by-chunk as results
        stream in.  ``None`` disables caching.
    progress:
        ``progress(done, total, result)`` invoked once per finished point,
        in completion order — parallel runs report as each chunk lands,
        not after the whole sweep.
    model_version:
        Overrides the cache-key model version (tests use this to exercise
        invalidation; production code leaves the default).
    chunk_size:
        Points per dispatch batch; ``None`` (default) sizes batches
        automatically (:func:`plan_chunk_size`).
    _start_method:
        Force a multiprocessing start method (tests pin ``"spawn"`` to
        exercise the initializer fallback); ``None`` picks ``fork`` when
        the platform offers it.

    If a worker raises, the sweep cancels undispatched chunks, persists
    every already-completed chunk to *cache*, then re-raises the first
    failure — a crashed sweep resumes from its cached prefix instead of
    from zero.
    """
    tasks = list(tasks)
    total = len(tasks)
    t_sweep = time.perf_counter()
    results: list[RunResult | None] = [None] * total
    done = 0

    # -- resolve cache hits up front (one batched directory-scan lookup) ---
    keys = [t.cache_key(model_version) for t in tasks]
    hits = cache.get_many(keys) if cache is not None else {}
    pending: list[int] = []
    for i, (task, key) in enumerate(zip(tasks, keys)):
        if key not in hits:
            pending.append(i)
            continue
        results[i] = RunResult(task.experiment_id, key, hits[key], 0.0, True)
        done += 1
        if progress is not None:
            progress(done, total, results[i])

    n_workers = resolve_workers(workers, len(pending))
    warmup_seconds = 0.0
    ipc_seconds = 0.0
    n_chunks = 0
    n_batched = 0
    n_batch_calls = 0
    chunk_sizes: list[int] = []
    worker_stats: dict[str, int] = {}

    def finish(i: int, value: Any, seconds: float, *, persist: bool = True) -> None:
        nonlocal done
        if persist and cache is not None:
            cache.put(keys[i], value)
        results[i] = RunResult(tasks[i].experiment_id, keys[i], value, seconds, False)
        done += 1
        if progress is not None:
            progress(done, total, results[i])

    if n_workers <= 1:
        for idxs in _dispatch_groups(tasks, pending):
            pairs, b, c = _execute_group(tasks, idxs)
            n_batched += b
            n_batch_calls += c
            for i, (value, seconds) in zip(idxs, pairs):
                finish(i, value, seconds)
    else:
        # -- warm the parent before forking --------------------------------
        specs = _warm.collect_warmups(tasks[i] for i in pending)
        mean = _mean_task_seconds_from_telemetry()
        t0 = time.perf_counter()
        report = _warm.run_warmups(specs)
        if mean is None and len(pending) > 1:
            # Pilot the first pending point in the parent: it feeds the
            # chunk cost model and drags any cache state the warmup hooks
            # missed into the pre-fork image.
            i = pending.pop(0)
            value, seconds = _execute(tasks[i])
            finish(i, value, seconds)
            mean = seconds
        warmup_seconds = time.perf_counter() - t0
        if report.specs:
            log.debug(
                "exec: warmed %d specs (%d plans, %d routes, %d kernels) in %.3fs",
                report.specs, report.plans, report.routes, report.kernels,
                report.seconds,
            )

        ctx, needs_init = _pool_context(_start_method)
        init_kwargs: dict[str, Any] = {}
        if needs_init:
            init_kwargs = {
                "initializer": _warm.warm_initializer,
                "initargs": (_warm.export_warm_state(specs),),
            }

        size = plan_chunk_size(len(pending), n_workers, chunk_size, mean)
        chunks = [pending[i : i + size] for i in range(0, len(pending), size)]
        n_chunks = len(chunks)
        chunk_sizes = [len(c) for c in chunks]

        first_error: BaseException | None = None
        with ProcessPoolExecutor(
            max_workers=n_workers, mp_context=ctx, **init_kwargs
        ) as pool:
            submitted: dict[Any, list[int]] = {}
            submit_at: dict[Any, float] = {}
            for chunk in chunks:
                fut = pool.submit(_execute_chunk, [tasks[i] for i in chunk])
                submitted[fut] = chunk
                submit_at[fut] = time.monotonic()
            for fut in as_completed(submitted):
                chunk = submitted[fut]
                try:
                    payload = fut.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = exc
                        # stop dispatching, but keep draining completed
                        # chunks so their results are persisted below
                        pool.shutdown(wait=False, cancel_futures=True)
                    continue
                arrival = time.monotonic()
                ipc_seconds += max(
                    0.0,
                    (arrival - submit_at[fut]) - (payload["t_end"] - payload["t_start"]),
                )
                for name, delta in payload["cache_stats"].items():
                    worker_stats[name] = worker_stats.get(name, 0) + delta
                n_batched += payload.get("batched", 0)
                n_batch_calls += payload.get("batch_calls", 0)
                if cache is not None:
                    cache.put_many(
                        {keys[i]: v for i, (v, _) in zip(chunk, payload["results"])}
                    )
                for i, (value, seconds) in zip(chunk, payload["results"]):
                    finish(i, value, seconds, persist=False)
        if first_error is not None:
            raise first_error

    sweep = SweepResult(
        results=results,  # type: ignore[arg-type]  (all slots filled above)
        wall_seconds=time.perf_counter() - t_sweep,
        workers=n_workers,
        warmup_seconds=warmup_seconds,
        ipc_seconds=ipc_seconds,
        chunks=n_chunks,
        batched_points=n_batched,
        batch_calls=n_batch_calls,
    )
    tel = _telemetry.active()
    if tel is not None:
        m = tel.metrics
        m.counter("exec.points").inc(total)
        m.counter("exec.cache.hits").inc(sweep.n_cached)
        m.counter("exec.cache.misses").inc(sweep.n_computed)
        m.counter("exec.wall_seconds").inc(sweep.wall_seconds)
        m.counter("exec.compute_seconds").inc(sweep.compute_seconds)
        m.gauge("exec.workers").set(n_workers)
        if n_chunks:
            m.counter("exec.warmup_seconds").inc(warmup_seconds)
            m.counter("exec.ipc_seconds").inc(ipc_seconds)
            m.counter("exec.chunks").inc(n_chunks)
            chunk_hist = m.histogram("exec.chunk_size")
            for n in chunk_sizes:
                chunk_hist.observe(n)
            for name, count in worker_stats.items():
                m.counter(f"exec.worker.{name}").inc(count)
        task_hist = m.histogram("exec.task_seconds")
        for r in sweep.results:
            if not r.cached:
                task_hist.observe(r.seconds)
        if tel.tracer is not None:
            tel.tracer.instant(
                "exec.sweep",
                cat="exec",
                points=total,
                cached=sweep.n_cached,
                workers=n_workers,
                chunks=n_chunks,
                wall_seconds=sweep.wall_seconds,
            )
        # auto-ledger: a metered sweep appends a run-ledger entry when
        # $REPRO_LEDGER names a destination (never raises into the sweep)
        _tel_ledger.maybe_record_sweep(
            [t.experiment_id for t in tasks], sweep, tel
        )
    return sweep
