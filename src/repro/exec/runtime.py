"""The parallel, cached, resumable sweep runtime.

All grid-shaped work in this repository — the Table III DSE sweep, the
§IV-A validation grid, the Fig. 10 size sweep, the scorecard — is a list
of independent *(experiment id, function, config, params)* points.
:func:`run_sweep` executes such a list with

* a process-pool fan-out over the points (``workers``), falling back to
  serial execution for small grids or single-worker requests;
* an optional content-addressed :class:`~repro.exec.cache.ResultCache`
  consulted before and written after every computation, so a re-run only
  recomputes what changed;
* deterministic result ordering — ``SweepResult.results[i]`` always
  corresponds to ``tasks[i]`` regardless of completion order;
* progress callbacks and wall-clock accounting.

Task functions must be module-level callables (picklable) taking the
task's config as the first argument plus the task's params as keyword
arguments, and must return plain-JSON data (so results can be cached and
compared byte-for-byte across worker counts).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..telemetry import context as _telemetry
from .cache import MISS, ResultCache, cache_key

__all__ = ["SweepTask", "RunResult", "SweepResult", "run_sweep", "resolve_workers"]

#: grids smaller than this never pay the process-pool startup cost
MIN_PARALLEL_TASKS = 4


@dataclass(frozen=True)
class SweepTask:
    """One independent sweep point.

    ``fn(config, **params)`` computes the point's plain-JSON payload.
    ``key`` overrides the derived cache key when the default
    *(experiment_id, config, params, model version)* hash is not the right
    identity for the work.
    """

    experiment_id: str
    fn: Callable[..., Any]
    config: Any = None
    params: Mapping[str, Any] = field(default_factory=dict)
    key: str | None = None

    def cache_key(self, model_version: str | None = None) -> str:
        if self.key is not None:
            return self.key
        return cache_key(
            self.experiment_id, self.config, self.params, model_version
        )


@dataclass(frozen=True)
class RunResult:
    """Outcome of one sweep point."""

    experiment_id: str
    key: str
    value: Any
    seconds: float  #: compute time (0.0 for a cache hit)
    cached: bool


@dataclass
class SweepResult:
    """All point outcomes, in task order, plus run accounting."""

    results: list[RunResult]
    wall_seconds: float  #: end-to-end sweep wall clock
    workers: int  #: workers actually used (1 = serial)

    def values(self) -> list[Any]:
        return [r.value for r in self.results]

    @property
    def n_cached(self) -> int:
        return sum(r.cached for r in self.results)

    @property
    def n_computed(self) -> int:
        return len(self.results) - self.n_cached

    @property
    def compute_seconds(self) -> float:
        """Total CPU-side compute time across all points (serial cost)."""
        return sum(r.seconds for r in self.results)

    def payload_json(self) -> str:
        """Canonical JSON of (key, value) per point — identical bytes for
        identical work regardless of workers/caching/timing."""
        import json

        return json.dumps(
            [{"key": r.key, "value": r.value} for r in self.results],
            sort_keys=True,
            separators=(",", ":"),
        )


def resolve_workers(workers: int | None, n_tasks: int) -> int:
    """Effective worker count: ``None``/1 → serial, 0 → all CPUs, always
    clamped to the task count; tiny grids run serially."""
    if workers is None:
        return 1
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if n_tasks < MIN_PARALLEL_TASKS:
        return 1
    return max(1, min(workers, n_tasks))


def _execute(task: SweepTask) -> tuple[Any, float]:
    """Worker-side execution of one task (module-level: picklable)."""
    t0 = time.perf_counter()
    value = task.fn(task.config, **dict(task.params))
    return value, time.perf_counter() - t0


def run_sweep(
    tasks: Iterable[SweepTask] | Sequence[SweepTask],
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable[[int, int, RunResult], None] | None = None,
    model_version: str | None = None,
) -> SweepResult:
    """Run every task, in parallel when asked, consulting *cache* first.

    Parameters
    ----------
    workers:
        ``None`` or ``1`` — serial (the default); ``0`` — one worker per
        CPU; ``n`` — a pool of *n* processes.  Small grids always run
        serially (the pool would cost more than it saves).
    cache:
        A :class:`ResultCache`; hits skip computation, misses are stored
        after computing.  ``None`` disables caching.
    progress:
        ``progress(done, total, result)`` invoked once per finished point,
        in completion order.
    model_version:
        Overrides the cache-key model version (tests use this to exercise
        invalidation; production code leaves the default).
    """
    tasks = list(tasks)
    total = len(tasks)
    t_start = time.perf_counter()
    results: list[RunResult | None] = [None] * total
    done = 0

    # -- resolve cache hits up front ---------------------------------------
    keys = [t.cache_key(model_version) for t in tasks]
    pending: list[int] = []
    for i, (task, key) in enumerate(zip(tasks, keys)):
        value = cache.get(key) if cache is not None else MISS
        if value is MISS:
            pending.append(i)
            continue
        results[i] = RunResult(task.experiment_id, key, value, 0.0, True)
        done += 1
        if progress is not None:
            progress(done, total, results[i])

    # -- compute the misses -------------------------------------------------
    n_workers = resolve_workers(workers, len(pending))

    def finish(i: int, value: Any, seconds: float) -> None:
        nonlocal done
        if cache is not None:
            cache.put(keys[i], value)
        results[i] = RunResult(tasks[i].experiment_id, keys[i], value, seconds, False)
        done += 1
        if progress is not None:
            progress(done, total, results[i])

    if n_workers <= 1:
        for i in pending:
            value, seconds = _execute(tasks[i])
            finish(i, value, seconds)
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {pool.submit(_execute, tasks[i]): i for i in pending}
            finished, _ = wait(futures, return_when=FIRST_EXCEPTION)
            # surface the first worker exception (if any) before collecting
            for fut in finished:
                fut.result()
            for fut, i in futures.items():
                value, seconds = fut.result()
                finish(i, value, seconds)

    sweep = SweepResult(
        results=results,  # type: ignore[arg-type]  (all slots filled above)
        wall_seconds=time.perf_counter() - t_start,
        workers=n_workers,
    )
    tel = _telemetry.active()
    if tel is not None:
        m = tel.metrics
        m.counter("exec.points").inc(total)
        m.counter("exec.cache.hits").inc(sweep.n_cached)
        m.counter("exec.cache.misses").inc(sweep.n_computed)
        m.counter("exec.wall_seconds").inc(sweep.wall_seconds)
        m.counter("exec.compute_seconds").inc(sweep.compute_seconds)
        m.gauge("exec.workers").set(n_workers)
        task_hist = m.histogram("exec.task_seconds")
        for r in sweep.results:
            if not r.cached:
                task_hist.observe(r.seconds)
        if tel.tracer is not None:
            tel.tracer.instant(
                "exec.sweep",
                cat="exec",
                points=total,
                cached=sweep.n_cached,
                workers=n_workers,
                wall_seconds=sweep.wall_seconds,
            )
    return sweep
