"""The unified run/result report schema.

One JSON shape — *(experiment id, config, metrics, paper reference value,
measured value, relative error, pass mark)* per entry — shared by the
``benchmarks/out/*`` writers, ``repro.dse.report``, and the
``python -m repro experiments`` scorecard, replacing the three bespoke
text formats that used to exist.  The human-readable tables remain, as
renderers *over* this schema (:meth:`Report.render`), and every CLI
subcommand can emit the raw schema with ``--json``.
"""

from __future__ import annotations

import io
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core.exceptions import ConfigurationError
from .cache import MODEL_VERSION

__all__ = ["REPORT_FORMAT", "ReportEntry", "Report", "rel_error"]

REPORT_FORMAT = "repro.exec.report/1"


def rel_error(measured: float | None, paper: float | None) -> float | None:
    """Signed relative error vs the paper's reference value (None when
    either side is missing or the reference is zero)."""
    if measured is None or paper is None or paper == 0:
        return None
    return (measured - paper) / paper


@dataclass(frozen=True)
class ReportEntry:
    """One reported quantity of one experiment."""

    experiment: str  #: paper artifact id, e.g. ``"Table IV"`` / ``"Fig. 10"``
    quantity: str  #: what was measured, e.g. ``"peak write bandwidth"``
    measured: Any = None  #: the reproduction's value (number or string)
    paper: Any = None  #: the paper's reference value, when one exists
    rel_err: float | None = None  #: measured vs paper (when both numeric)
    ok: bool | None = None  #: pass mark (None: informational entry)
    config: dict | None = None  #: ``PolyMemConfig.to_dict()`` of the point
    metrics: dict = field(default_factory=dict)  #: extra named numbers

    @classmethod
    def compare(
        cls,
        experiment: str,
        quantity: str,
        measured: float | None,
        paper: float | None,
        tolerance: float | None = None,
        config: dict | None = None,
        metrics: Mapping[str, Any] | None = None,
    ) -> "ReportEntry":
        """Entry with ``rel_err`` derived and, when *tolerance* is given,
        the pass mark set from ``|rel_err| <= tolerance``."""
        err = rel_error(measured, paper)
        ok = None
        if tolerance is not None and err is not None:
            ok = abs(err) <= tolerance
        return cls(
            experiment=experiment,
            quantity=quantity,
            measured=measured,
            paper=paper,
            rel_err=err,
            ok=ok,
            config=dict(config) if config else None,
            metrics=dict(metrics or {}),
        )


@dataclass
class Report:
    """A titled collection of entries plus run metadata."""

    title: str
    entries: list[ReportEntry] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.meta.setdefault("model_version", MODEL_VERSION)

    # -- aggregation --------------------------------------------------------
    @property
    def n_checked(self) -> int:
        return sum(1 for e in self.entries if e.ok is not None)

    @property
    def n_passed(self) -> int:
        return sum(1 for e in self.entries if e.ok)

    @property
    def all_ok(self) -> bool:
        return all(e.ok for e in self.entries if e.ok is not None)

    def add_sweep_meta(self, sweep) -> None:
        """Fold a :class:`~repro.exec.runtime.SweepResult`'s accounting into
        ``meta`` (accumulating across several sweeps)."""
        self.meta["sweep_points"] = self.meta.get("sweep_points", 0) + len(
            sweep.results
        )
        self.meta["sweep_cached"] = (
            self.meta.get("sweep_cached", 0) + sweep.n_cached
        )
        self.meta["sweep_wall_seconds"] = round(
            self.meta.get("sweep_wall_seconds", 0.0) + sweep.wall_seconds, 6
        )
        self.meta["workers"] = max(self.meta.get("workers", 1), sweep.workers)

    def attach_telemetry(self, telemetry=None) -> None:
        """Merge a telemetry snapshot into ``meta["telemetry"]``.

        *telemetry* may be a :class:`~repro.telemetry.Telemetry` session, a
        ready snapshot dict, or ``None`` to use the active session (no-op
        when telemetry is off) — so report producers can call this
        unconditionally.
        """
        if telemetry is None:
            from ..telemetry import context as _telemetry

            telemetry = _telemetry.active()
            if telemetry is None:
                return
        snapshot = (
            telemetry if isinstance(telemetry, dict) else telemetry.snapshot()
        )
        self.meta["telemetry"] = snapshot

    # -- serialization ------------------------------------------------------
    def to_json(self, indent: int | None = 2) -> str:
        payload = {
            "format": REPORT_FORMAT,
            "title": self.title,
            "meta": self.meta,
            "entries": [asdict(e) for e in self.entries],
        }
        return json.dumps(payload, indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "Report":
        payload = json.loads(text)
        if payload.get("format") != REPORT_FORMAT:
            raise ConfigurationError(
                f"not a repro report (format {payload.get('format')!r})"
            )
        return cls(
            title=payload["title"],
            entries=[ReportEntry(**e) for e in payload["entries"]],
            meta=payload.get("meta", {}),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    # -- human rendering ----------------------------------------------------
    def render(self, header: bool = True) -> str:
        """The generic human table over the schema: entries grouped by
        experiment, pass marks, paper-vs-measured with relative error."""
        out = io.StringIO()
        if header:
            out.write(f"{self.title}\n")
            out.write("=" * max(20, len(self.title)) + "\n")
        current = None
        for e in self.entries:
            if e.experiment != current:
                current = e.experiment
                out.write(f"\n{current}\n" + "-" * len(current) + "\n")
            mark = "    " if e.ok is None else ("PASS" if e.ok else "FAIL")
            out.write(f"  [{mark}] {e.quantity}\n")
            if e.paper is not None:
                out.write(f"         paper:    {_fmt(e.paper)}\n")
            if e.measured is not None:
                err = (
                    f"  (rel. err {e.rel_err * 100:+.2f}%)"
                    if e.rel_err is not None
                    else ""
                )
                out.write(f"         measured: {_fmt(e.measured)}{err}\n")
        if self.n_checked:
            out.write(f"\n{self.n_passed}/{self.n_checked} checks passed\n")
        if "sweep_points" in self.meta:
            out.write(
                f"sweep: {self.meta['sweep_points']} points, "
                f"{self.meta['sweep_cached']} cached, "
                f"{self.meta.get('workers', 1)} worker(s), "
                f"{self.meta['sweep_wall_seconds']:.3f} s\n"
            )
        return out.getvalue()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def entries_from_series(
    experiment: str,
    series: Mapping[Any, Sequence[tuple[str, float]]],
    quantity: str,
    configs: Mapping[tuple, dict] | None = None,
) -> list[ReportEntry]:
    """Schema entries from a ``figure_series``-shaped mapping (one entry
    per scheme x column cell)."""
    entries = []
    for scheme, row in series.items():
        name = getattr(scheme, "value", str(scheme))
        for label, value in row:
            entries.append(
                ReportEntry(
                    experiment=experiment,
                    quantity=f"{quantity} [{name} @ {label}]",
                    measured=value,
                    config=(configs or {}).get((name, label)),
                )
            )
    return entries
