"""Content-addressed on-disk result cache for grid-shaped work.

Every sweep point is keyed by a stable SHA-256 hash of *(experiment id,
config, parameters, model version)*; the value is the point's JSON payload.
Re-running ``python -m repro dse`` or ``experiments`` after a partial run —
or after an unrelated code change — only recomputes points whose key
changed.  Bumping :data:`MODEL_VERSION` (done whenever the calibrated
synthesis/timing models change behaviour) invalidates every cached result
at once.

The cache is deliberately forgiving: a corrupted, truncated, or
foreign-format entry is treated as a miss (and evicted), never as an
error — at worst the point is recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping

from ..core.config import PolyMemConfig

__all__ = [
    "MODEL_VERSION",
    "MISS",
    "cache_key",
    "default_cache_dir",
    "ResultCache",
]

#: Version tag of the analytical/calibrated models feeding every sweep
#: point.  Part of every cache key: bump it whenever the synthesis fit,
#: the cycle model, or a payload schema changes meaning.
MODEL_VERSION = "2026.08.1"

#: on-disk entry envelope version
_ENTRY_FORMAT = "repro.exec.cache/1"


class _Miss:
    """Sentinel for a cache miss (distinct from a cached ``None``)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<cache MISS>"

    def __bool__(self) -> bool:
        return False


MISS = _Miss()


def _canonical(value: Any) -> Any:
    """Reduce *value* to canonical plain-JSON data for hashing."""
    if isinstance(value, PolyMemConfig):
        return value.to_dict()
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if hasattr(value, "value") and not isinstance(value, (int, float, str, bool)):
        return _canonical(value.value)  # enums (Scheme, PatternKind, ...)
    return value


def cache_key(
    experiment_id: str,
    config: Any = None,
    params: Mapping[str, Any] | None = None,
    model_version: str | None = None,
) -> str:
    """Stable content hash of one sweep point.

    Identical inputs produce the identical hex digest in every process and
    interpreter invocation (the payload is canonical sorted-key JSON fed to
    SHA-256 — no dependence on ``PYTHONHASHSEED`` or dict order).
    """
    payload = {
        "experiment": experiment_id,
        "config": _canonical(config),
        "params": _canonical(dict(params or {})),
        "model_version": model_version or MODEL_VERSION,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """The CLI's default cache location: ``$REPRO_CACHE_DIR`` if set, else
    ``$XDG_CACHE_HOME/repro`` (``~/.cache/repro``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
    return Path(xdg) / "repro"


class ResultCache:
    """A content-addressed JSON result store (one file per key).

    Values must be plain-JSON data (the sweep functions all return dicts of
    numbers/strings).  ``get`` returns :data:`MISS` — never raises — on any
    missing, unreadable, corrupted, or mismatched entry.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """Entry location: two-level fan-out keeps directories small."""
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Any:
        """The cached value for *key*, or :data:`MISS`."""
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError, UnicodeDecodeError):
            if path.exists():
                self._evict(path)  # corrupted: recover by recomputing
            self.misses += 1
            return MISS
        if (
            not isinstance(entry, dict)
            or entry.get("format") != _ENTRY_FORMAT
            or entry.get("key") != key
        ):
            self._evict(path)
            self.misses += 1
            return MISS
        self.hits += 1
        return entry["value"]

    def get_many(self, keys) -> dict:
        """Batch lookup: ``{key: value}`` for every hit (misses absent).

        Equivalent to ``{k: cache.get(k) for k in keys if hit}``, but the
        existence probe is one directory scan per two-hex-char fan-out
        prefix instead of one failed ``open()`` per absent key — the
        common cold-sweep case stops paying per-key I/O errors.  Hit/miss
        counters and corrupted-entry eviction behave exactly like
        :meth:`get` (parity is pinned in ``tests/exec/test_cache.py``).
        """
        keys = list(keys)
        by_prefix: dict[str, list[str]] = {}
        for key in keys:
            by_prefix.setdefault(key[:2], []).append(key)
        out: dict[str, Any] = {}
        for prefix, group in by_prefix.items():
            try:
                with os.scandir(self.directory / prefix) as it:
                    present = {entry.name for entry in it}
            except OSError:
                present = set()
            for key in group:
                if f"{key}.json" not in present:
                    self.misses += 1
                    continue
                value = self.get(key)  # full validation + eviction path
                if value is not MISS:
                    out[key] = value
        return out

    def put(self, key: str, value: Any) -> None:
        """Store *value* under *key* (atomic rename; best effort on I/O
        failure — a cache must never take the computation down)."""
        path = self.path_for(key)
        entry = {"format": _ENTRY_FORMAT, "key": key, "value": value}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(entry))
            tmp.replace(path)
        except OSError:  # pragma: no cover - disk full / permissions
            pass

    def put_many(self, entries: Mapping[str, Any]) -> None:
        """Batch store: one ``mkdir`` per fan-out prefix, then one atomic
        write per entry — the post-compute persistence of a whole result
        chunk costs one directory round-trip instead of one per point."""
        made: set[str] = set()
        for key, value in entries.items():
            prefix = key[:2]
            if prefix not in made:
                try:
                    (self.directory / prefix).mkdir(parents=True, exist_ok=True)
                except OSError:  # pragma: no cover - permissions
                    continue
                made.add(prefix)
            path = self.path_for(key)
            entry = {"format": _ENTRY_FORMAT, "key": key, "value": value}
            try:
                tmp = path.with_suffix(f".tmp.{os.getpid()}")
                tmp.write_text(json.dumps(entry))
                tmp.replace(path)
            except OSError:  # pragma: no cover - disk full / permissions
                pass

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*/*.json"):
                self._evict(path)
                n += 1
        return n

    @staticmethod
    def _evict(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - already gone / permissions
            pass
