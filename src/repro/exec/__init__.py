"""repro.exec — the parallel, cached execution runtime for grid work.

The paper's evaluation is one big grid walk: the Table III design-space
sweep (→ Table IV, Figs 4–8), the §IV-A per-config validation cycles, the
Fig. 10 size sweep, and the scorecard that re-derives all of them.  This
package gives every entry point (CLI, benchmarks, tests) one way to run
such grids:

:func:`run_sweep` / :class:`SweepTask`
    Process-pool fan-out over independent points with deterministic result
    ordering, graceful serial fallback, progress callbacks and wall-clock
    accounting (:class:`RunResult` / :class:`SweepResult`).
:class:`ResultCache` / :func:`cache_key`
    A content-addressed on-disk cache keyed by a stable hash of
    *(experiment id, config, params, model version)* — warm re-runs skip
    straight to the answers.
:class:`Report` / :class:`ReportEntry`
    The unified JSON result schema shared by ``benchmarks/out``,
    ``dse.report`` and ``experiments``; human tables are renderers over it.
"""

from .cache import (
    MISS,
    MODEL_VERSION,
    ResultCache,
    cache_key,
    default_cache_dir,
)
from .report import REPORT_FORMAT, Report, ReportEntry, rel_error
from .runtime import (
    RunResult,
    SweepResult,
    SweepTask,
    resolve_workers,
    run_sweep,
)

__all__ = [
    "MISS",
    "MODEL_VERSION",
    "REPORT_FORMAT",
    "Report",
    "ReportEntry",
    "ResultCache",
    "RunResult",
    "SweepResult",
    "SweepTask",
    "cache_key",
    "default_cache_dir",
    "rel_error",
    "resolve_workers",
    "run_sweep",
]
