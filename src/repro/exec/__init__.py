"""repro.exec — the parallel, cached execution runtime for grid work.

The paper's evaluation is one big grid walk: the Table III design-space
sweep (→ Table IV, Figs 4–8), the §IV-A per-config validation cycles, the
Fig. 10 size sweep, and the scorecard that re-derives all of them.  This
package gives every entry point (CLI, benchmarks, tests) one way to run
such grids:

:func:`run_sweep` / :class:`SweepTask`
    Warm-forked process-pool fan-out over independent points — parent-side
    cache pre-warming inherited copy-on-write by workers (spawn platforms
    replay it via a pool initializer, see :mod:`repro.exec.warm`), chunked
    dispatch sized by a cost model, streaming result collection — with
    deterministic result ordering, graceful serial fallback, progress
    callbacks and wall-clock accounting (:class:`RunResult` /
    :class:`SweepResult`).
:class:`ResultCache` / :func:`cache_key`
    A content-addressed on-disk cache keyed by a stable hash of
    *(experiment id, config, params, model version)* — warm re-runs skip
    straight to the answers.
:class:`Report` / :class:`ReportEntry`
    The unified JSON result schema shared by ``benchmarks/out``,
    ``dse.report`` and ``experiments``; human tables are renderers over it.
"""

from .cache import (
    MISS,
    MODEL_VERSION,
    ResultCache,
    cache_key,
    default_cache_dir,
)
from .report import REPORT_FORMAT, Report, ReportEntry, rel_error
from .runtime import (
    RunResult,
    SweepResult,
    SweepTask,
    plan_chunk_size,
    resolve_workers,
    run_sweep,
)
from .warm import (
    WarmSpec,
    WarmState,
    WarmupReport,
    collect_warmups,
    export_warm_state,
    run_warmups,
    warm_initializer,
)

__all__ = [
    "MISS",
    "MODEL_VERSION",
    "REPORT_FORMAT",
    "Report",
    "ReportEntry",
    "ResultCache",
    "RunResult",
    "SweepResult",
    "SweepTask",
    "WarmSpec",
    "WarmState",
    "WarmupReport",
    "cache_key",
    "collect_warmups",
    "default_cache_dir",
    "export_warm_state",
    "plan_chunk_size",
    "rel_error",
    "resolve_workers",
    "run_sweep",
    "run_warmups",
    "warm_initializer",
]
