"""repro — a full reproduction of MAX-PolyMem (Ciobanu et al., 2018).

PolyMem is a polymorphic parallel memory: a 2-D, multi-bank on-chip software
cache guaranteeing conflict-free parallel access for families of access
patterns (rows, columns, rectangles, diagonals, transposed rectangles).
This package provides:

``repro.core``
    The PolyMem functional model (schemes/MAFs, AGU, shuffles, banks).
``repro.hw``
    FPGA substrate: BRAM primitives, device models, and the calibrated
    synthesis estimator replacing the vendor toolchain.
``repro.maxeler``
    A cycle-accurate dataflow-engine simulator standing in for Maxeler's
    platform (kernels, streams, manager, PCIe, host).
``repro.maxpolymem``
    MAX-PolyMem — PolyMem realized as a dataflow design on the substrate.
``repro.dse``
    The paper's design-space exploration (Tables III–IV, Figs 4–8).
``repro.stream_bench``
    The STREAM benchmark framework of Fig. 9 (Copy, plus Scale/Sum/Triad).
``repro.schedule``
    The application-driven customization flow of §III-A (ILP set covering).
``repro.analysis``
    Productivity analysis (Table II).
``repro.telemetry``
    Cross-cutting observability: metrics registry + span tracing with
    Perfetto export (``docs/observability.md``).

Quickstart::

    from repro import PolyMem, PolyMemConfig, PatternKind, Scheme, KB
    pm = PolyMem(PolyMemConfig(512 * KB, p=2, q=4, scheme=Scheme.ReRo))
    pm.write(PatternKind.RECTANGLE, 0, 0, range(8))
    row = pm.read(PatternKind.ROW, 0, 0)
"""

from .core import (
    KB,
    MB,
    AccessPattern,
    AccessRequest,
    ConflictAnalyzer,
    ConflictError,
    PatternKind,
    PolyMem,
    PolyMemConfig,
    PolyMemError,
    Scheme,
    all_schemes,
    is_conflict_free,
)

__version__ = "1.0.0"

__all__ = [
    "KB",
    "MB",
    "AccessPattern",
    "AccessRequest",
    "ConflictAnalyzer",
    "ConflictError",
    "PatternKind",
    "PolyMem",
    "PolyMemConfig",
    "PolyMemError",
    "Scheme",
    "all_schemes",
    "is_conflict_free",
    "__version__",
]
