"""Unified telemetry: a metrics registry plus span tracing.

One :class:`Telemetry` session observes a whole run — PolyMem replays,
Benes routing, the tick simulator, the host/PCIe ledger, the program
engine and the exec runtime all report into it through the
:func:`~repro.telemetry.context.active` guard, which costs one function
call returning ``None`` when telemetry is off (the shipped default).

    from repro.telemetry import Telemetry, session

    tel = Telemetry(tracing=True, label="my run")
    with session(tel):
        ...  # any simulation / sweep / program execution
    tel.tracer.save("trace.json")       # load in https://ui.perfetto.dev
    print(render_summary(tel.snapshot()))

See ``docs/observability.md`` for the metric catalog and span hierarchy.
"""

from .context import (
    SNAPSHOT_FORMAT,
    Telemetry,
    activate,
    active,
    deactivate,
    session,
)
from .diff import Diff, DiffRow, diff_entries, diff_snapshots, render_diff
from .ledger import (
    LEDGER_FORMAT,
    Ledger,
    LedgerEntry,
    record_run,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .observers import TelemetryObserver
from .regress import (
    GATE_TABLE,
    RegressReport,
    check_gates,
    evaluate_gate,
    regress,
    render_regress,
)
from .scorecard import build_scorecard, render_markdown
from .spans import SpanTracer
from .summary import derived_metrics, derived_values, load_snapshot, render_summary

__all__ = [
    "SNAPSHOT_FORMAT",
    "Telemetry",
    "activate",
    "active",
    "deactivate",
    "session",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetryObserver",
    "SpanTracer",
    "derived_metrics",
    "derived_values",
    "load_snapshot",
    "render_summary",
    "LEDGER_FORMAT",
    "Ledger",
    "LedgerEntry",
    "record_run",
    "Diff",
    "DiffRow",
    "diff_entries",
    "diff_snapshots",
    "render_diff",
    "GATE_TABLE",
    "RegressReport",
    "check_gates",
    "evaluate_gate",
    "regress",
    "render_regress",
    "build_scorecard",
    "render_markdown",
]
