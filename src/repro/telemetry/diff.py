"""Structured comparison of two telemetry snapshots or ledger entries.

``repro telemetry diff A B`` answers "what actually changed between
these two runs?" at the instrument level: per-counter deltas, gauge
last-value shifts, histogram percentile movement (p50/p90/p99 estimated
from the power-of-two bucket CDF), the derived quantities the paper
reasons in (plan-cache hit rate, achieved-vs-peak bandwidth, …), and —
when the inputs are ledger entries rather than bare snapshots — gate
values and wall/sim timings.

Every row carries a relative delta and a ``significant`` flag judged
against configurable noise thresholds (``--noise``), so a diff of two
healthy runs reads as a short list of real movement, not a wall of
float jitter.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .ledger import LEDGER_FORMAT, Ledger, LedgerEntry
from .summary import derived_metrics, load_snapshot

__all__ = [
    "DiffRow",
    "Diff",
    "diff_snapshots",
    "diff_entries",
    "load_diff_source",
    "render_diff",
]

#: histogram percentiles estimated from the bucket CDF
PERCENTILES = (50, 90, 99)

#: default relative-change threshold below which a row is noise
DEFAULT_NOISE = 0.05


@dataclass
class DiffRow:
    """One compared quantity across the two runs."""

    kind: str  #: ``counter`` / ``gauge`` / ``histogram`` / ``derived`` / ``gate`` / ``timing``
    name: str
    a: float | None  #: value in the first run (None: absent there)
    b: float | None  #: value in the second run
    delta: float | None = None  #: ``b - a`` when both present
    rel: float | None = None  #: ``delta / |a|`` when defined
    significant: bool = False  #: beyond the noise thresholds

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class Diff:
    """All rows of one comparison, plus the thresholds that judged them."""

    rows: list[DiffRow] = field(default_factory=list)
    rel_threshold: float = DEFAULT_NOISE
    abs_threshold: float = 0.0
    labels: tuple[str, str] = ("a", "b")

    @property
    def significant(self) -> list[DiffRow]:
        return [r for r in self.rows if r.significant]

    def to_dict(self) -> dict:
        return {
            "labels": list(self.labels),
            "rel_threshold": self.rel_threshold,
            "abs_threshold": self.abs_threshold,
            "rows": [r.to_dict() for r in self.rows],
        }


def _percentile_from_buckets(buckets: dict, count: int, pct: float) -> float | None:
    """Estimate a percentile from power-of-two bucket counts: walk the
    CDF and return the upper bound of the bucket that crosses it.  Coarse
    by design — a percentile *shift* across runs means a bucket boundary
    was crossed, which is exactly the signal worth reporting."""
    if not count or not buckets:
        return None
    target = count * pct / 100.0
    seen = 0
    for bound in sorted(buckets, key=float):
        seen += buckets[bound]
        if seen >= target:
            return float(bound)
    return float(max(buckets, key=float))


def _make_row(
    kind: str,
    name: str,
    a: float | None,
    b: float | None,
    rel_threshold: float,
    abs_threshold: float,
) -> DiffRow:
    row = DiffRow(kind=kind, name=name, a=a, b=b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        row.delta = b - a
        if a:
            row.rel = row.delta / abs(a)
        exceeds_rel = row.rel is not None and abs(row.rel) > rel_threshold
        exceeds_abs = abs(row.delta) > abs_threshold
        if a == 0 and b != 0:
            # a quantity appeared from zero — always worth a look
            row.significant = exceeds_abs or abs_threshold == 0
        else:
            row.significant = exceeds_rel and exceeds_abs if abs_threshold else (
                exceeds_rel
            )
    else:
        # present on one side only: structural change, always significant
        row.significant = a is not None or b is not None
    return row


def diff_snapshots(
    a: dict,
    b: dict,
    *,
    rel_threshold: float = DEFAULT_NOISE,
    abs_threshold: float = 0.0,
    labels: tuple[str, str] = ("a", "b"),
) -> Diff:
    """Compare two telemetry snapshots instrument by instrument."""
    diff = Diff(
        rel_threshold=rel_threshold, abs_threshold=abs_threshold, labels=labels
    )

    def groups(snap):
        metrics = snap.get("metrics") or {}
        return (
            metrics.get("counters") or {},
            metrics.get("gauges") or {},
            metrics.get("histograms") or {},
        )

    ca, ga, ha = groups(a)
    cb, gb, hb = groups(b)

    for name in sorted(set(ca) | set(cb)):
        diff.rows.append(
            _make_row(
                "counter", name, ca.get(name), cb.get(name),
                rel_threshold, abs_threshold,
            )
        )

    for name in sorted(set(ga) | set(gb)):
        va = (ga.get(name) or {}).get("value")
        vb = (gb.get(name) or {}).get("value")
        diff.rows.append(
            _make_row("gauge", name, va, vb, rel_threshold, abs_threshold)
        )

    for name in sorted(set(ha) | set(hb)):
        da = ha.get(name) or {}
        db = hb.get(name) or {}
        diff.rows.append(
            _make_row(
                "histogram", f"{name}.count", da.get("count"), db.get("count"),
                rel_threshold, abs_threshold,
            )
        )
        diff.rows.append(
            _make_row(
                "histogram", f"{name}.mean", da.get("mean"), db.get("mean"),
                rel_threshold, abs_threshold,
            )
        )
        for pct in PERCENTILES:
            pa = _percentile_from_buckets(
                da.get("buckets") or {}, da.get("count") or 0, pct
            )
            pb = _percentile_from_buckets(
                db.get("buckets") or {}, db.get("count") or 0, pct
            )
            if pa is None and pb is None:
                continue
            diff.rows.append(
                _make_row(
                    "histogram", f"{name}.p{pct}", pa, pb,
                    rel_threshold, abs_threshold,
                )
            )

    da, db = derived_metrics(a), derived_metrics(b)
    for name in sorted(set(da) | set(db)):
        diff.rows.append(
            _make_row(
                "derived", name, da.get(name), db.get(name),
                rel_threshold, abs_threshold,
            )
        )
    return diff


def diff_entries(
    a: LedgerEntry,
    b: LedgerEntry,
    *,
    rel_threshold: float = DEFAULT_NOISE,
    abs_threshold: float = 0.0,
) -> Diff:
    """Compare two ledger entries: gates and timings first, then the full
    snapshot diff when both entries carry telemetry."""
    labels = (
        f"{a.bench}@{(a.provenance.get('git') or {}).get('sha') or '?'}"[:32],
        f"{b.bench}@{(b.provenance.get('git') or {}).get('sha') or '?'}"[:32],
    )
    if a.telemetry and b.telemetry:
        diff = diff_snapshots(
            a.telemetry, b.telemetry,
            rel_threshold=rel_threshold, abs_threshold=abs_threshold,
            labels=labels,
        )
    else:
        diff = Diff(
            rel_threshold=rel_threshold, abs_threshold=abs_threshold, labels=labels
        )

    gates_a = {g["name"]: g.get("value") for g in a.gates if "name" in g}
    gates_b = {g["name"]: g.get("value") for g in b.gates if "name" in g}
    gate_rows = [
        _make_row(
            "gate", name, gates_a.get(name), gates_b.get(name),
            rel_threshold, abs_threshold,
        )
        for name in sorted(set(gates_a) | set(gates_b))
    ]
    timing_rows = [
        _make_row(
            "timing", name, a.timings.get(name), b.timings.get(name),
            rel_threshold, abs_threshold,
        )
        for name in sorted(set(a.timings) | set(b.timings))
    ]
    diff.rows = gate_rows + timing_rows + diff.rows
    return diff


def load_diff_source(spec: str):
    """Resolve a CLI diff operand to a :class:`LedgerEntry` or a snapshot
    dict.  Accepted forms:

    * ``ledger.jsonl`` — the newest entry of a ledger file;
    * ``ledger.jsonl#-2`` / ``#0`` — an entry by index (negatives from
      the end, newest is ``-1``);
    * ``ledger.jsonl#bench-name`` — the newest entry of that bench;
    * ``snapshot.json`` — a telemetry snapshot or exec report file.
    """
    path_part, sep, selector = spec.partition("#")
    path = Path(path_part)
    if not path.exists():
        raise FileNotFoundError(f"no such file: {path}")

    first_line = ""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                first_line = line.strip()
                break
    is_ledger = path.suffix == ".jsonl"
    if not is_ledger and first_line.startswith("{"):
        try:
            doc = json.loads(first_line)
            is_ledger = doc.get("format") == LEDGER_FORMAT
        except json.JSONDecodeError:
            pass

    if is_ledger:
        ledger = Ledger(path)
        entries = ledger.entries()
        if not entries:
            raise ValueError(f"{path} holds no parseable ledger entries")
        if not sep:
            return entries[-1]
        try:
            return entries[int(selector)]
        except ValueError:
            by_bench = ledger.entries(selector)
            if not by_bench:
                raise ValueError(f"{path} has no entries for bench {selector!r}")
            return by_bench[-1]
        except IndexError:
            raise ValueError(
                f"{path} has {len(entries)} entries; index {selector} is out of range"
            )
    if sep:
        raise ValueError(f"#{selector} selectors only apply to ledger files")
    return load_snapshot(str(path))


def _fmt(value) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_diff(diff: Diff, *, show_all: bool = False) -> str:
    """The human diff: significant rows (or everything with *show_all*),
    grouped by kind."""
    title = f"telemetry diff — {diff.labels[0]} vs {diff.labels[1]}"
    lines = [title, "=" * len(title)]
    rows = diff.rows if show_all else diff.significant
    if not rows:
        lines.append(
            f"(no movement beyond noise thresholds: rel {diff.rel_threshold:.2%}"
            + (f", abs {diff.abs_threshold:g}" if diff.abs_threshold else "")
            + f"; {len(diff.rows)} quantities compared)"
        )
        return "\n".join(lines)
    width = max(len(r.name) for r in rows)
    current_kind = None
    for row in rows:
        if row.kind != current_kind:
            current_kind = row.kind
            lines.append("")
            lines.append(f"{current_kind}s")
        rel = f" ({row.rel:+.1%})" if row.rel is not None else ""
        mark = " *" if row.significant and show_all else ""
        lines.append(
            f"  {row.name:<{width}}  {_fmt(row.a)} -> {_fmt(row.b)}{rel}{mark}"
        )
    n_sig = len(diff.significant)
    lines.append(
        f"\n{n_sig} significant of {len(diff.rows)} compared "
        f"(rel threshold {diff.rel_threshold:.2%})"
    )
    return "\n".join(lines)
