"""The regression policy engine: declarative gates over ledger entries.

Two halves:

* **the gate table** — :data:`GATE_TABLE` is the single declarative home
  of every CI perf gate (the thresholds used to live copy-pasted inside
  five ``benchmarks/bench_*.py --smoke`` blocks).  A bench records a
  gate with :func:`evaluate_gate`, which looks the operator/threshold up
  here and emits the uniform dict the ledger stores, so the in-process
  verdict and any later re-evaluation from the ledger are the *same
  computation on the same numbers* — bit-for-bit identical.

* **the baseline policy** — :func:`regress` evaluates the newest ledger
  entry of each bench against a baseline window (median of the previous
  *N* runs of the same gate).  A hard gate failure is ``fail``; a pass
  that is still *worse than the baseline median* by more than the noise
  threshold (in the gate's bad direction) is ``warn`` — the "your gate
  still holds but you just lost 30 %" case absolute thresholds miss.

``repro telemetry regress --baseline-window 5`` is the CLI surface; the
``regression-observatory`` CI job runs it over a cached ledger artifact.
"""

from __future__ import annotations

import statistics
from dataclasses import asdict, dataclass, field

from .ledger import Ledger, LedgerEntry

__all__ = [
    "GateSpec",
    "GATE_TABLE",
    "evaluate_gate",
    "check_gates",
    "Verdict",
    "RegressReport",
    "regress",
    "render_regress",
]

#: comparison operators a gate may declare (value OP threshold)
OPS = {
    ">=": lambda v, t: v >= t,
    "<=": lambda v, t: v <= t,
    ">": lambda v, t: v > t,
    "<": lambda v, t: v < t,
    "==": lambda v, t: v == t,
}

#: operators whose *bad* direction is down (a lower value is worse)
_HIGHER_IS_BETTER = {">=", ">"}


@dataclass(frozen=True)
class GateSpec:
    """One declared gate: ``value OP threshold`` must hold."""

    op: str
    threshold: float
    description: str


#: The CI perf-gate table — one row per historical smoke gate.  Benches
#: reference rows by name; thresholds live here and nowhere else.
GATE_TABLE: dict[str, GateSpec] = {
    "sim.batched_vs_scalar": GateSpec(
        ">=", 2.0, "batched tick engine vs scalar wall clock (STREAM Copy smoke)"
    ),
    "access.replay_vs_scalar": GateSpec(
        ">=", 2.0, "batched trace replay vs per-access scalar step()"
    ),
    "access.program_vs_scalar": GateSpec(
        ">=", 2.0, "interp access-program pipeline vs scalar step()"
    ),
    "access.fused_vs_replay": GateSpec(
        ">=", 2.0, "fused program backend vs direct replay (4096-access stream)"
    ),
    "exec.scaling_1_to_4": GateSpec(
        ">=", 2.0, "warm-fork sweep speedup 1 -> 4 workers (>= 2 CPUs)"
    ),
    "exec.no_regression_1cpu": GateSpec(
        "<=", 1.05, "4-worker wall vs 1-worker wall on a single-CPU machine"
    ),
    "exec.warm_cache_seconds": GateSpec(
        "<=", 1.0, "fully-cached Table III re-run wall seconds"
    ),
    "dse.batched_vs_scalar": GateSpec(
        ">=", 2.0, "vectorized config-space DSE vs scalar per-point sweep"
    ),
    "backend.layout_gain": GateSpec(
        ">=", 1.5, "DRAM achieved bandwidth gain from the burst-friendly layout pass"
    ),
    "telemetry.guard_share": GateSpec(
        "<=", 0.05, "disabled-telemetry guard cost as a share of workload time"
    ),
}


def evaluate_gate(
    name: str,
    value: float,
    *,
    op: str | None = None,
    threshold: float | None = None,
    detail: str = "",
) -> dict:
    """Evaluate one gate and return the uniform record the ledger stores:
    ``{name, value, op, threshold, ok, detail}``.

    Known names take their operator/threshold from :data:`GATE_TABLE`
    (explicit arguments override — conditional gates like the exec
    scaling fallback pass their branch explicitly); unknown names must
    spell out both.
    """
    spec = GATE_TABLE.get(name)
    if op is None:
        if spec is None:
            raise KeyError(
                f"gate {name!r} is not in GATE_TABLE; pass op= and threshold="
            )
        op = spec.op
    if threshold is None:
        if spec is None:
            raise KeyError(
                f"gate {name!r} is not in GATE_TABLE; pass op= and threshold="
            )
        threshold = spec.threshold
    if op not in OPS:
        raise ValueError(f"unknown gate operator {op!r} (use {sorted(OPS)})")
    return {
        "name": name,
        "value": value,
        "op": op,
        "threshold": threshold,
        "ok": bool(OPS[op](value, threshold)),
        "detail": detail or (spec.description if spec else ""),
    }


def check_gates(gates: list[dict]) -> list[str]:
    """Human failure messages for every failed gate record (empty when
    all hold)."""
    return [
        f"gate {g['name']} failed: {g['value']:.4g} {g['op']} "
        f"{g['threshold']:.4g} does not hold"
        + (f" ({g['detail']})" if g.get("detail") else "")
        for g in gates
        if not g.get("ok")
    ]


@dataclass
class Verdict:
    """One gate of one bench, judged against its baseline window."""

    bench: str
    gate: str
    value: float
    op: str
    threshold: float
    status: str  #: ``"pass"`` / ``"warn"`` / ``"fail"``
    baseline: float | None = None  #: median of the window (None: no history)
    n_baseline: int = 0
    detail: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class RegressReport:
    """All verdicts of one regress evaluation."""

    verdicts: list[Verdict] = field(default_factory=list)
    baseline_window: int = 0
    noise: float = 0.0

    @property
    def failed(self) -> list[Verdict]:
        return [v for v in self.verdicts if v.status == "fail"]

    @property
    def warned(self) -> list[Verdict]:
        return [v for v in self.verdicts if v.status == "warn"]

    @property
    def ok(self) -> bool:
        return not self.failed

    def to_dict(self) -> dict:
        return {
            "baseline_window": self.baseline_window,
            "noise": self.noise,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def _judge(
    entry: LedgerEntry,
    gate: dict,
    history: list[LedgerEntry],
    noise: float,
) -> Verdict:
    """One gate's verdict: re-evaluate the recorded gate (bit-for-bit the
    same computation the bench ran), then compare against the baseline
    median of the same gate over *history*."""
    name = gate["name"]
    value = gate["value"]
    op = gate["op"]
    threshold = gate["threshold"]
    ok = OPS[op](value, threshold)

    window = [
        g["value"]
        for e in history
        for g in e.gates
        if g.get("name") == name and isinstance(g.get("value"), (int, float))
    ]
    baseline = statistics.median(window) if window else None

    status = "pass" if ok else "fail"
    detail = gate.get("detail", "")
    if ok and baseline is not None and noise > 0:
        if op in _HIGHER_IS_BETTER:
            regressed = value < baseline * (1.0 - noise)
        else:
            regressed = value > baseline * (1.0 + noise)
        if regressed:
            status = "warn"
            detail = (
                f"worse than baseline median {baseline:.4g} by more than "
                f"{noise * 100:.0f}% (window of {len(window)})"
            )
    return Verdict(
        bench=entry.bench,
        gate=name,
        value=value,
        op=op,
        threshold=threshold,
        status=status,
        baseline=baseline,
        n_baseline=len(window),
        detail=detail,
    )


def regress(
    ledger: Ledger | str,
    *,
    bench: str | None = None,
    baseline_window: int = 5,
    noise: float = 0.10,
) -> RegressReport:
    """Judge the newest entry of each bench (or just *bench*) against the
    declared gates and the median of its previous *baseline_window* runs.

    The hard pass/fail half re-evaluates the gates *recorded in the
    ledger* — same value, operator and threshold the bench used — so the
    verdicts reproduce the in-process CI gates exactly.  The warn half
    needs history: with an empty window it never fires.
    """
    if not isinstance(ledger, Ledger):
        ledger = Ledger(ledger)
    report = RegressReport(baseline_window=baseline_window, noise=noise)
    names = [bench] if bench is not None else ledger.benches()
    for name in names:
        entries = ledger.entries(name)
        if not entries:
            continue
        latest = entries[-1]
        history = entries[:-1][-baseline_window:]
        for gate in latest.gates:
            if not isinstance(gate.get("value"), (int, float)):
                continue
            report.verdicts.append(_judge(latest, gate, history, noise))
    return report


def render_regress(report: RegressReport) -> str:
    """The human verdict table."""
    lines = [
        "regression observatory — gate verdicts "
        f"(baseline: median of last {report.baseline_window}, "
        f"noise {report.noise * 100:.0f}%)",
    ]
    lines.append("=" * len(lines[0]))
    if not report.verdicts:
        lines.append("(no ledger entries with gates)")
        return "\n".join(lines)
    width = max(len(f"{v.bench}:{v.gate}") for v in report.verdicts)
    for v in report.verdicts:
        base = f" baseline {v.baseline:.4g} (n={v.n_baseline})" if (
            v.baseline is not None
        ) else ""
        tail = f"  [{v.detail}]" if v.status != "pass" and v.detail else ""
        lines.append(
            f"  [{v.status.upper():4s}] {v.bench + ':' + v.gate:<{width}}  "
            f"{v.value:.4g} {v.op} {v.threshold:.4g}{base}{tail}"
        )
    lines.append(
        f"\n{sum(1 for v in report.verdicts if v.status == 'pass')} pass, "
        f"{len(report.warned)} warn, {len(report.failed)} fail"
    )
    return "\n".join(lines)
