"""The telemetry session: one context threaded through every layer.

A :class:`Telemetry` object bundles a :class:`~repro.telemetry.metrics.
MetricsRegistry` and (optionally) a :class:`~repro.telemetry.spans.
SpanTracer`.  Exactly one session can be *active* at a time; hot paths
discover it through :func:`active`:

    from ..telemetry import context as _telemetry
    ...
    tel = _telemetry.active()
    if tel is not None:
        tel.metrics.counter("polymem.replay.calls").inc()

When no session is active (the default), the cost at every
instrumentation site is one function call returning ``None`` —
``benchmarks/bench_telemetry_overhead.py`` measures exactly that and
gates it below 5 % of workload time.  Because sites go through the
module attribute (``_telemetry.active``), the benchmark can also swap in
a counting stub to enumerate guard evaluations.

Activation is deliberately global rather than per-object: the whole
point is to observe a run end-to-end (CLI command, benchmark pass,
test) without threading a handle through PolyMem, Benes routing, the
simulator, the program engine and the exec runtime.  The simulation
layers only ever *read* from telemetry state, so an active session
cannot perturb results (property-tested in
``tests/telemetry/test_bit_identical.py``).
"""

from __future__ import annotations

from contextlib import contextmanager

from .metrics import MetricsRegistry
from .spans import SpanTracer

__all__ = ["Telemetry", "active", "activate", "deactivate", "session"]

SNAPSHOT_FORMAT = "repro.telemetry/1"

ACTIVE: "Telemetry | None" = None


class Telemetry:
    """One telemetry session: metrics always, spans when ``tracing``."""

    __slots__ = ("metrics", "tracer", "label")

    def __init__(self, tracing: bool = False, label: str = ""):
        self.metrics = MetricsRegistry()
        self.tracer: SpanTracer | None = SpanTracer() if tracing else None
        self.label = label

    def span(self, name: str, cat: str = "repro", **args):
        """A wall-clock span when tracing, else a no-op context."""
        if self.tracer is not None:
            return self.tracer.span(name, cat, **args)
        return _NULL_SPAN

    def snapshot(self) -> dict:
        """The per-run snapshot merged into reports / printed by
        ``repro telemetry summary``."""
        snap = {
            "format": SNAPSHOT_FORMAT,
            "label": self.label,
            "metrics": self.metrics.to_dict(),
        }
        if self.tracer is not None:
            snap["trace_events"] = len(self.tracer.events)
        return snap


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_SPAN = _NullSpan()


def active() -> Telemetry | None:
    """The active session, or ``None`` — the single hot-path guard."""
    return ACTIVE


def activate(tel: Telemetry) -> Telemetry:
    global ACTIVE
    ACTIVE = tel
    return tel


def deactivate() -> None:
    global ACTIVE
    ACTIVE = None


@contextmanager
def session(tel: Telemetry | None = None, tracing: bool = False, label: str = ""):
    """Activate *tel* (or a fresh session) for the duration of a block.

    Nesting restores the previous session on exit, so library code can
    scope its own telemetry without clobbering an outer CLI session.
    """
    global ACTIVE
    prev = ACTIVE
    ACTIVE = tel if tel is not None else Telemetry(tracing=tracing, label=label)
    try:
        yield ACTIVE
    finally:
        ACTIVE = prev
