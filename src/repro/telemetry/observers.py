"""Telemetry riding the existing instrumentation surfaces.

:class:`TelemetryObserver` implements the :class:`repro.program.engine.
Observer` hook contract (duck-typed, so this module stays importable
below ``repro.program`` in the layer order) and translates engine events
into metrics and spans.  The engine auto-attaches one per execution when
a telemetry session is active — no caller changes needed.

The error contract matters here: a replay error aborts the program with
*no* ``on_program_end``, so the program/segment spans this observer
opened stay on the tracer stack; :meth:`SpanTracer.close_open_spans`
closes them at export time with ``"aborted": true``.
"""

from __future__ import annotations

__all__ = ["TelemetryObserver"]


class TelemetryObserver:
    """Program-engine observer feeding the active telemetry session."""

    def __init__(self, telemetry):
        self.telemetry = telemetry

    # -- Observer hook surface (see repro.program.engine.Observer) ----------
    def on_program_start(self, compiled, mems) -> None:
        m = self.telemetry.metrics
        m.counter("program.executions").inc()
        m.counter("program.segments").inc(len(compiled.segments))
        tracer = self.telemetry.tracer
        if tracer is not None:
            tracer.begin(
                f"program:{compiled.program.name}",
                cat="program",
                segments=len(compiled.segments),
                traces=compiled.n_traces,
                access_cycles=compiled.access_cycles,
            )

    def on_segment_start(self, segment) -> None:
        tracer = self.telemetry.tracer
        if tracer is not None:
            tracer.begin(
                f"segment:{segment.index}",
                cat="program",
                steps=len(segment.steps),
                access_cycles=segment.access_cycles,
            )

    def on_trace(self, segment, step, outputs, mem) -> None:
        m = self.telemetry.metrics
        m.counter("program.traces").inc()
        m.counter("program.trace_cycles").inc(step.n)

    def on_compute(self, segment, boundary, env) -> None:
        self.telemetry.metrics.counter("program.compute_boundaries").inc()
        tracer = self.telemetry.tracer
        if tracer is not None:
            tracer.instant(
                f"compute:{getattr(boundary, 'label', '')}", cat="program"
            )

    def on_segment_end(self, segment, env) -> None:
        tracer = self.telemetry.tracer
        if tracer is not None:
            tracer.end()

    def on_program_end(self, result) -> None:
        self.telemetry.metrics.counter("program.cycles").inc(result.report.cycles)
        tracer = self.telemetry.tracer
        if tracer is not None:
            tracer.end(cycles=result.report.cycles)
