"""The scorecard: the workload x scheme x backend matrix from the ledger.

ROADMAP item 4 asks for a benchmark surface "that can't be overfit" — a
matrix whose cells are measured quantities from telemetry, rebuilt from
recorded runs rather than numbers a bench chooses to print.  This module
derives that matrix from the run ledger: one cell per (workload, scheme,
backend) triple, populated from each bench's *newest* entry.

A cell's headline value is picked in preference order:

1. ``stream.achieved_vs_peak`` from the entry's telemetry snapshot
   (bandwidth as a fraction of the configured peak — the paper's Fig. 10
   axis);
2. the entry's first recorded gate value (a speedup or share ratio);
3. the first measured result quantity.

``repro telemetry scorecard --format markdown|json`` is the CLI surface;
CI uploads the markdown as the run's scorecard artifact.
"""

from __future__ import annotations

import json

from .ledger import Ledger, LedgerEntry
from .summary import derived_metrics

__all__ = ["SCORECARD_FORMAT", "build_scorecard", "render_markdown", "render_json"]

SCORECARD_FORMAT = "repro.telemetry.scorecard/1"


def _cell_value(entry: LedgerEntry) -> tuple[str, float | None]:
    """The headline ``(metric_name, value)`` of one ledger entry."""
    if entry.telemetry:
        derived = derived_metrics(entry.telemetry)
        if "stream.achieved_vs_peak" in derived:
            return "stream.achieved_vs_peak", derived["stream.achieved_vs_peak"]
    for g in entry.gates:
        if isinstance(g.get("value"), (int, float)):
            return g["name"], g["value"]
    for r in entry.results:
        if isinstance(r.get("measured"), (int, float)):
            return r.get("quantity") or "measured", r["measured"]
    return "n/a", None


def _dims(entry: LedgerEntry) -> tuple[str, str, str]:
    """The (workload, scheme, backend) coordinates of one entry.  Benches
    that declare ``params.workload`` / ``params.scheme`` land precisely;
    the rest fall back to the bench name and a ``-`` scheme."""
    params = entry.params or {}
    workload = str(params.get("workload") or entry.bench)
    scheme = str(params.get("scheme") or params.get("engine") or "-")
    backend = str((entry.provenance or {}).get("backend") or "-")
    return workload, scheme, backend


def build_scorecard(ledger: Ledger | str) -> dict:
    """The scorecard document: one cell per (workload, scheme, backend),
    from each bench's newest ledger entry."""
    if not isinstance(ledger, Ledger):
        ledger = Ledger(ledger)
    cells = []
    for bench in ledger.benches():
        entry = ledger.entries(bench)[-1]
        workload, scheme, backend = _dims(entry)
        metric, value = _cell_value(entry)
        git = (entry.provenance or {}).get("git") or {}
        cells.append(
            {
                "workload": workload,
                "scheme": scheme,
                "backend": backend,
                "metric": metric,
                "value": value,
                "ok": entry.ok,
                "gates": len(entry.gates),
                "sha": git.get("sha"),
                "ts": entry.ts,
            }
        )
    return {"format": SCORECARD_FORMAT, "cells": cells}


def _fmt_value(cell: dict) -> str:
    value = cell["value"]
    if value is None:
        return "n/a"
    if cell["metric"].endswith("_vs_peak") or cell["metric"].endswith("share"):
        return f"{100.0 * value:.1f}%"
    return f"{value:.3g}"


def render_markdown(card: dict) -> str:
    """The scorecard as a markdown table: one row per workload x scheme,
    one value column per backend, with gate status per cell."""
    cells = card.get("cells", [])
    if not cells:
        return "# Scorecard\n\n(ledger holds no runs yet)\n"
    backends = sorted({c["backend"] for c in cells})
    by_rc: dict[tuple[str, str], dict[str, dict]] = {}
    for c in cells:
        by_rc.setdefault((c["workload"], c["scheme"]), {})[c["backend"]] = c

    lines = ["# Scorecard — workload x scheme x backend", ""]
    header = ["workload", "scheme"] + backends + ["metric", "gates"]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for (workload, scheme), row in sorted(by_rc.items()):
        values = []
        for backend in backends:
            c = row.get(backend)
            if c is None:
                values.append("·")
            else:
                flag = "" if c["ok"] else " ⚠"
                values.append(f"{_fmt_value(c)}{flag}")
        any_cell = next(iter(row.values()))
        gates = f"{sum(1 for c in row.values() if c['ok'])}/{len(row)} ok"
        lines.append(
            "| "
            + " | ".join(
                [workload, scheme] + values + [any_cell["metric"], gates]
            )
            + " |"
        )
    shas = {c["sha"] for c in cells if c["sha"]}
    if shas:
        lines.append("")
        lines.append(
            "Built from "
            + (
                f"commit `{next(iter(shas))[:12]}`"
                if len(shas) == 1
                else f"{len(shas)} commits"
            )
            + f", {len(cells)} cells."
        )
    return "\n".join(lines) + "\n"


def render_json(card: dict) -> str:
    return json.dumps(card, indent=2, sort_keys=True) + "\n"
