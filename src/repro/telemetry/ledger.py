"""The performance run ledger: an append-only JSONL record of every run.

Every benchmark / sweep that matters appends one :class:`LedgerEntry` —
a line of plain JSON carrying full provenance (git SHA, host
fingerprint, device backend, engine flags, model version), the run's
parameters, wall/sim timings, its gate verdicts (the uniform shape
:func:`repro.telemetry.regress.evaluate_gate` emits), a compact result
list distilled from the :class:`repro.exec.Report`, and the complete
telemetry snapshot when a session was active.  The ledger is what makes
the repository's performance trajectory *diffable* (`repro telemetry
diff`), *gateable* (`repro telemetry regress`) and *renderable* as the
workload x scheme x backend scorecard (`repro telemetry scorecard`) —
see ``docs/observability.md``.

Where entries land:

* ``benchmarks/_util.save_report`` appends to ``benchmarks/out/
  ledger.jsonl`` (override with ``$REPRO_LEDGER``) and mirrors each
  bench's own history into ``benchmarks/out/BENCH_<name>.json``;
* :func:`repro.exec.run_sweep` auto-appends under ``--metrics`` whenever
  ``$REPRO_LEDGER`` names a ledger file (telemetry session active +
  destination configured — never a surprise file);
* library code can call :func:`record_run` / :meth:`Ledger.append`
  directly.

The format is append-only by construction: one self-contained JSON
object per line, unknown fields preserved, malformed lines skipped on
read (a crashed writer never poisons the history).
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "LEDGER_FORMAT",
    "TRAJECTORY_FORMAT",
    "LedgerEntry",
    "Ledger",
    "record_run",
    "default_ledger_path",
    "host_fingerprint",
    "git_provenance",
    "update_trajectory",
]

LEDGER_FORMAT = "repro.telemetry.ledger/1"
TRAJECTORY_FORMAT = "repro.telemetry.trajectory/1"

#: environment variable naming the ledger file runs append to
LEDGER_ENV = "REPRO_LEDGER"

#: trajectory files keep this many most-recent runs
TRAJECTORY_KEEP = 100


def default_ledger_path() -> Path | None:
    """The ledger destination from ``$REPRO_LEDGER``, or ``None`` when
    auto-appending is not configured."""
    path = os.environ.get(LEDGER_ENV)
    return Path(path) if path else None


def host_fingerprint() -> dict:
    """Where a run happened: enough to attribute a timing shift to the
    machine rather than the code."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def git_provenance(repo_root: str | Path | None = None) -> dict:
    """The commit a run was built from: ``{"sha": ..., "dirty": ...}``
    (``sha`` is ``None`` outside a git checkout or without a git binary —
    provenance capture must never fail a run)."""
    cwd = str(repo_root) if repo_root is not None else None
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
        if sha.returncode != 0:
            return {"sha": None, "dirty": None}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return {"sha": sha.stdout.strip(), "dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"sha": None, "dirty": None}


def _compact_results(report) -> list[dict]:
    """The scorecard-relevant distillation of a :class:`repro.exec.Report`:
    one ``{experiment, quantity, measured, ok, metrics}`` dict per entry."""
    out = []
    for e in report.entries:
        out.append(
            {
                "experiment": e.experiment,
                "quantity": e.quantity,
                "measured": e.measured,
                "ok": e.ok,
                "metrics": dict(e.metrics or {}),
            }
        )
    return out


@dataclass
class LedgerEntry:
    """One recorded run.  ``gates`` entries follow the uniform shape of
    :func:`repro.telemetry.regress.evaluate_gate` — ``{name, value, op,
    threshold, ok, detail}`` — so the regression policy engine can
    re-evaluate them bit-for-bit from the ledger alone."""

    bench: str
    ts: float = 0.0
    run_id: str = ""
    format: str = LEDGER_FORMAT
    provenance: dict = field(default_factory=dict)
    params: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)
    gates: list = field(default_factory=list)
    results: list = field(default_factory=list)
    telemetry: dict | None = None

    @property
    def ok(self) -> bool:
        """All recorded gates passed (vacuously true with no gates)."""
        return all(g.get("ok") for g in self.gates)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "LedgerEntry":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in doc.items() if k in known})

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def record_run(
    bench: str,
    *,
    params: dict | None = None,
    gates: list | None = None,
    report=None,
    telemetry=None,
    timings: dict | None = None,
    backend: str | None = None,
    flags: dict | None = None,
    repo_root: str | Path | None = None,
) -> LedgerEntry:
    """A provenance-complete :class:`LedgerEntry` for one finished run.

    *telemetry* may be a :class:`~repro.telemetry.context.Telemetry`
    session, a ready snapshot dict, or ``None`` to capture the active
    session's snapshot (no-op when telemetry is off).  *backend* defaults
    to ``$REPRO_BACKEND`` (else the seed ``vectis`` substrate); *flags*
    records engine/backend switches that shape the run.
    """
    from ..exec.cache import MODEL_VERSION
    from . import context as _context

    if telemetry is None:
        telemetry = _context.active()
    if telemetry is not None and not isinstance(telemetry, dict):
        telemetry = telemetry.snapshot()
    entry = LedgerEntry(
        bench=bench,
        ts=time.time(),
        run_id=uuid.uuid4().hex,
        provenance={
            "git": git_provenance(repo_root),
            "host": host_fingerprint(),
            "backend": backend or os.environ.get("REPRO_BACKEND", "vectis"),
            "flags": dict(flags or {}),
            "model_version": MODEL_VERSION,
        },
        params=dict(params or {}),
        timings=dict(timings or {}),
        gates=[dict(g) for g in (gates or [])],
        results=_compact_results(report) if report is not None else [],
        telemetry=telemetry,
    )
    return entry


class Ledger:
    """An append-only JSONL ledger file."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def append(self, entry: LedgerEntry | dict) -> LedgerEntry:
        """Append one entry as a single JSON line (creating parents)."""
        if isinstance(entry, dict):
            entry = LedgerEntry.from_dict(entry)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(entry.to_json() + "\n")
        return entry

    def entries(self, bench: str | None = None) -> list[LedgerEntry]:
        """Every parseable entry, oldest first; malformed lines are
        skipped (append-only files survive crashed writers)."""
        if not self.path.exists():
            return []
        out: list[LedgerEntry] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(doc, dict) or "bench" not in doc:
                    continue
                entry = LedgerEntry.from_dict(doc)
                if bench is None or entry.bench == bench:
                    out.append(entry)
        return out

    def last(self, n: int = 1, bench: str | None = None) -> list[LedgerEntry]:
        """The *n* most recent entries (oldest of the window first)."""
        return self.entries(bench)[-n:]

    def benches(self) -> list[str]:
        """Distinct bench names, in first-appended order."""
        seen: dict[str, None] = {}
        for e in self.entries():
            seen.setdefault(e.bench, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.entries())


def update_trajectory(
    path: str | Path, entry: LedgerEntry, keep: int = TRAJECTORY_KEEP
) -> Path:
    """Mirror *entry* into a per-bench ``BENCH_<name>.json`` trajectory
    file — the last *keep* runs of one bench in a single JSON document
    (what CI uploads as the per-bench history artifact).  The heavyweight
    telemetry snapshot is dropped from the mirror; the full record lives
    in the ledger."""
    path = Path(path)
    doc = {"format": TRAJECTORY_FORMAT, "bench": entry.bench, "runs": []}
    if path.exists():
        try:
            prev = json.loads(path.read_text())
            if isinstance(prev, dict) and prev.get("format") == TRAJECTORY_FORMAT:
                doc["runs"] = list(prev.get("runs", []))
        except (json.JSONDecodeError, OSError):
            pass
    compact = entry.to_dict()
    compact.pop("telemetry", None)
    doc["runs"] = (doc["runs"] + [compact])[-keep:]
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def maybe_record_sweep(experiment_ids, sweep, telemetry) -> LedgerEntry | None:
    """Auto-ledger hook for :func:`repro.exec.run_sweep`: append a sweep
    entry when (a) a telemetry session observed the run and (b)
    ``$REPRO_LEDGER`` names a destination.  Never raises into the sweep.
    """
    path = default_ledger_path()
    if path is None or telemetry is None:
        return None
    try:
        ids = sorted(set(experiment_ids))
        entry = record_run(
            f"sweep.{ids[0] if len(ids) == 1 else 'mixed'}",
            params={"experiments": ids, "points": len(sweep.results)},
            timings={
                "wall_seconds": sweep.wall_seconds,
                "warmup_seconds": sweep.warmup_seconds,
                "ipc_seconds": sweep.ipc_seconds,
                "compute_seconds": sweep.compute_seconds,
            },
            flags={
                "workers": sweep.workers,
                "chunks": sweep.chunks,
                "cached": sweep.n_cached,
                "batched_points": sweep.batched_points,
            },
            telemetry=telemetry,
        )
        return Ledger(path).append(entry)
    except Exception:  # pragma: no cover - best-effort by contract
        return None
