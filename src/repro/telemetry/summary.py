"""Snapshot loading and the human-facing telemetry summary.

``repro telemetry summary FILE`` (and ``--metrics`` on run commands)
renders a snapshot's raw counters plus the *derived* quantities the
paper reasons in: achieved vs. theoretical bandwidth (Fig. 10), stall
and scalar-fallback percentages (batched engine), cache hit rates
(plans, Benes routes, exec results), PCIe overhead share (§V's ~300 ns
amortization), and exec worker utilization.

Accepted inputs: a raw telemetry snapshot (``repro.telemetry/1``) or a
``repro.exec.report/1`` JSON whose ``meta.telemetry`` block carries one.

Partial snapshots (a run that died mid-bench, or an older format
missing a counter group) degrade to ``n/a`` cells rather than KeyError:
the summary of a broken run is exactly when you need the summary.
"""

from __future__ import annotations

import json

from .context import SNAPSHOT_FORMAT

__all__ = ["load_snapshot", "derived_values", "derived_metrics", "render_summary"]


def load_snapshot(source) -> dict:
    """A telemetry snapshot from a dict, a JSON file path, or a
    ``repro.exec`` report carrying one in ``meta.telemetry``."""
    doc = source
    if not isinstance(doc, dict):
        with open(doc, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    if doc.get("format") == SNAPSHOT_FORMAT:
        return doc
    telemetry = doc.get("meta", {}).get("telemetry")
    if isinstance(telemetry, dict) and telemetry.get("format") == SNAPSHOT_FORMAT:
        return telemetry
    raise ValueError(
        "no telemetry snapshot found (expected format "
        f"{SNAPSHOT_FORMAT!r} or an exec report with meta.telemetry)"
    )


def _rate(hits, misses) -> float | None:
    total = hits + misses
    return hits / total if total else None


def _gauge_value(gauges: dict, name: str):
    """A gauge's last value, ``None`` when the record is missing or is
    not the expected dict shape (partial / truncated snapshot)."""
    record = gauges.get(name)
    return record.get("value") if isinstance(record, dict) else None


def _groups(snapshot: dict) -> tuple[dict, dict, dict]:
    """The counter/gauge/histogram groups of a snapshot, each normalized
    to a dict even when the group is absent or explicitly null."""
    metrics = snapshot.get("metrics") or {}
    return (
        metrics.get("counters") or {},
        metrics.get("gauges") or {},
        metrics.get("histograms") or {},
    )


def derived_metrics(snapshot: dict) -> dict[str, float]:
    """The numeric derived quantities, keyed for machine consumption —
    what :mod:`repro.telemetry.diff` compares across runs.  Quantities
    whose inputs are absent are simply omitted (never ``NaN``)."""
    c, g, _ = _groups(snapshot)
    out: dict[str, float] = {}

    scalar = c.get("sim.cycles.scalar", 0)
    batched = c.get("sim.cycles.batched", 0)
    total_cycles = scalar + batched
    if total_cycles:
        out["sim.stall_share"] = c.get("sim.stall_cycles", 0) / total_cycles
        out["sim.scalar_fallback_share"] = scalar / total_cycles

    for key, hits, misses in (
        ("plan_cache.hit_rate", "polymem.plan_cache.hits", "polymem.plan_cache.misses"),
        ("route_cache.hit_rate", "benes.route_cache.hits", "benes.route_cache.misses"),
        (
            "kernel_cache.hit_rate",
            "program.fusion.kernel_cache.hits",
            "program.fusion.kernel_cache.misses",
        ),
        ("exec.cache.hit_rate", "exec.cache.hits", "exec.cache.misses"),
    ):
        rate = _rate(c.get(hits, 0), c.get(misses, 0))
        if rate is not None:
            out[key] = rate

    fused_steps = c.get("program.fusion.steps", 0)
    fallback_steps = c.get("program.fusion.fallback_steps", 0)
    if fused_steps or fallback_steps:
        out["fusion.fused_step_share"] = fused_steps / (fused_steps + fallback_steps)

    achieved = _gauge_value(g, "stream.achieved_mbps")
    peak = _gauge_value(g, "stream.peak_mbps")
    if achieved is not None and peak:
        out["stream.achieved_vs_peak"] = achieved / peak

    pcie_ns = c.get("pcie.ns", 0.0)
    if pcie_ns:
        out["pcie.overhead_share"] = c.get("pcie.overhead_ns", 0.0) / pcie_ns

    batch_configs = c.get("dse.batch.configs", 0)
    scalar_configs = c.get("dse.batch.scalar_configs", 0)
    if batch_configs or scalar_configs:
        out["dse.batch_share"] = batch_configs / (batch_configs + scalar_configs)
    candidates = c.get("dse.batch.candidates", 0)
    if candidates:
        out["dse.prune_rate"] = c.get("dse.batch.pruned", 0) / candidates

    wall = c.get("exec.wall_seconds", 0.0)
    workers = _gauge_value(g, "exec.workers")
    if wall and workers:
        out["exec.worker_utilization"] = c.get("exec.compute_seconds", 0.0) / (
            wall * workers
        )
    return out


def derived_values(snapshot: dict) -> list[tuple[str, str]]:
    """Paper-relevant quantities computed from raw instruments, as
    ``(label, formatted value)`` pairs; absent inputs are skipped."""
    c, g, _ = _groups(snapshot)
    out: list[tuple[str, str]] = []

    scalar = c.get("sim.cycles.scalar", 0)
    batched = c.get("sim.cycles.batched", 0)
    total_cycles = scalar + batched
    if total_cycles:
        stall = c.get("sim.stall_cycles", 0)
        out.append(("simulated cycles", f"{total_cycles}"))
        out.append(
            ("stall cycles", f"{stall} ({100.0 * stall / total_cycles:.2f}%)")
        )
        out.append(
            (
                "scalar-fallback cycles",
                f"{scalar} ({100.0 * scalar / total_cycles:.2f}%)",
            )
        )

    plan_rate = _rate(
        c.get("polymem.plan_cache.hits", 0), c.get("polymem.plan_cache.misses", 0)
    )
    if plan_rate is not None:
        out.append(("plan-cache hit rate", f"{100.0 * plan_rate:.1f}%"))
    route_rate = _rate(
        c.get("benes.route_cache.hits", 0), c.get("benes.route_cache.misses", 0)
    )
    if route_rate is not None:
        out.append(("Benes route-cache hit rate", f"{100.0 * route_rate:.1f}%"))
    kernel_rate = _rate(
        c.get("program.fusion.kernel_cache.hits", 0),
        c.get("program.fusion.kernel_cache.misses", 0),
    )
    if kernel_rate is not None:
        out.append(
            ("fusion kernel-cache hit rate", f"{100.0 * kernel_rate:.1f}%")
        )
    fused_steps = c.get("program.fusion.steps", 0)
    fallback_steps = c.get("program.fusion.fallback_steps", 0)
    if fused_steps or fallback_steps:
        total_steps = fused_steps + fallback_steps
        out.append(
            (
                "fused trace steps",
                f"{fused_steps} of {total_steps} "
                f"({100.0 * fused_steps / total_steps:.1f}%)",
            )
        )

    achieved = _gauge_value(g, "stream.achieved_mbps")
    peak = _gauge_value(g, "stream.peak_mbps")
    if achieved is not None and peak:
        out.append(
            (
                "achieved vs peak bandwidth",
                f"{achieved:.1f} / {peak:.1f} MB/s "
                f"({100.0 * achieved / peak:.1f}% of peak)",
            )
        )

    pcie_ns = c.get("pcie.ns", 0.0)
    if pcie_ns:
        overhead = c.get("pcie.overhead_ns", 0.0)
        out.append(
            (
                "PCIe time",
                f"{pcie_ns / 1e3:.1f} us over {c.get('pcie.calls', 0)} calls, "
                f"{c.get('pcie.payload_bytes', 0)} B payload "
                f"({100.0 * overhead / pcie_ns:.1f}% call overhead)",
            )
        )

    batch_configs = c.get("dse.batch.configs", 0)
    scalar_configs = c.get("dse.batch.scalar_configs", 0)
    if batch_configs or scalar_configs:
        evaluated = batch_configs + scalar_configs
        out.append(
            (
                "DSE batch-path share",
                f"{batch_configs} of {evaluated} points "
                f"({100.0 * batch_configs / evaluated:.1f}%)",
            )
        )
        passes = c.get("dse.batch.passes", 0)
        if passes:
            out.append(
                ("DSE configs per batch pass", f"{batch_configs / passes:.1f}")
            )
    candidates = c.get("dse.batch.candidates", 0)
    if candidates:
        pruned = c.get("dse.batch.pruned", 0)
        out.append(
            (
                "DSE prune rate",
                f"{pruned} of {candidates} candidates "
                f"({100.0 * pruned / candidates:.1f}%)",
            )
        )

    exec_rate = _rate(c.get("exec.cache.hits", 0), c.get("exec.cache.misses", 0))
    if exec_rate is not None:
        out.append(("exec cache hit rate", f"{100.0 * exec_rate:.1f}%"))
    wall = c.get("exec.wall_seconds", 0.0)
    workers = _gauge_value(g, "exec.workers")
    if wall and workers:
        util = c.get("exec.compute_seconds", 0.0) / (wall * workers)
        out.append(("exec worker utilization", f"{100.0 * util:.1f}%"))
    if wall and c.get("exec.chunks", 0):
        warmup = c.get("exec.warmup_seconds", 0.0)
        ipc = c.get("exec.ipc_seconds", 0.0)
        out.append(
            (
                "exec warm-fork overhead",
                f"warmup {warmup:.3f} s ({100.0 * warmup / wall:.1f}% of wall), "
                f"ipc {ipc:.3f} s over {c.get('exec.chunks', 0)} chunks",
            )
        )
    for cache_name, label in (
        ("plan_cache", "worker plan-cache hit rate"),
        ("route_cache", "worker route-cache hit rate"),
        ("kernel_cache", "worker kernel-cache hit rate"),
    ):
        rate = _rate(
            c.get(f"exec.worker.{cache_name}.hits", 0),
            c.get(f"exec.worker.{cache_name}.misses", 0),
        )
        if rate is not None:
            out.append((label, f"{100.0 * rate:.1f}%"))

    return out


def _fmt_number(value) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _cell(record, key) -> str:
    """One field of a gauge/histogram record, ``n/a`` when the record is
    not a dict or the field is missing (partial / truncated snapshot)."""
    if not isinstance(record, dict):
        return "n/a"
    return _fmt_number(record.get(key))


def render_summary(snapshot: dict) -> str:
    """The full pretty-printed summary: counters, gauges, histograms,
    then the derived section.  Missing groups and partial records render
    as ``n/a`` — a summary must never be less robust than the run it
    summarizes."""
    counters, gauges, histograms = _groups(snapshot)
    lines: list[str] = []
    label = snapshot.get("label") or ""
    title = f"telemetry summary{f' — {label}' if label else ''}"
    lines.append(title)
    lines.append("=" * len(title))

    if counters:
        lines.append("")
        lines.append("counters")
        width = max(len(k) for k in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {_fmt_number(value)}")

    if gauges:
        lines.append("")
        lines.append("gauges (last / min / max)")
        width = max(len(k) for k in gauges)
        for name, gv in gauges.items():
            lines.append(
                f"  {name:<{width}}  {_cell(gv, 'value')}"
                f" / {_cell(gv, 'min')} / {_cell(gv, 'max')}"
            )

    if histograms:
        lines.append("")
        lines.append("histograms (count / mean / max)")
        width = max(len(k) for k in histograms)
        for name, hv in histograms.items():
            lines.append(
                f"  {name:<{width}}  {_cell(hv, 'count')}"
                f" / {_cell(hv, 'mean')} / {_cell(hv, 'max')}"
            )

    try:
        derived = derived_values(snapshot)
    except (AttributeError, KeyError, TypeError, ZeroDivisionError):
        derived = [("derived metrics", "n/a (partial snapshot)")]
    if derived:
        lines.append("")
        lines.append("derived")
        width = max(len(k) for k, _ in derived)
        for name, value in derived:
            lines.append(f"  {name:<{width}}  {value}")

    if snapshot.get("trace_events") is not None:
        lines.append("")
        lines.append(f"trace events: {snapshot['trace_events']}")
    return "\n".join(lines)
