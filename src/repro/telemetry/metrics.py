"""The metrics registry: counters, gauges, histograms and timers.

One :class:`MetricsRegistry` holds every named instrument of a telemetry
session.  Instruments are created lazily on first use (``registry.counter
("polymem.plan_cache.hits").inc()``) so instrumentation sites never need
set-up code, and the whole registry reduces to plain-JSON data through
:meth:`MetricsRegistry.to_dict` — the shape consumed by
``repro telemetry summary`` and merged into ``repro.exec`` reports.

Design constraints (see ``docs/observability.md``):

* instruments are *observational only* — they never feed back into the
  simulation, so enabling telemetry cannot change results;
* the hot-path cost model is "one dict probe plus an integer add":
  no locks (the simulator is single-threaded), no timestamps, no
  allocation after the first observation of a name.
"""

from __future__ import annotations

import math
import time

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (int or float amounts)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.value})"


class Gauge:
    """A sampled value; tracks the last, minimum and maximum observation."""

    __slots__ = ("value", "min", "max", "n")

    def __init__(self) -> None:
        self.value = None
        self.min = None
        self.max = None
        self.n = 0

    def set(self, value: int | float) -> None:
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.n += 1

    def to_dict(self) -> dict:
        return {"value": self.value, "min": self.min, "max": self.max, "n": self.n}


class Histogram:
    """A distribution summary: count/sum/min/max plus power-of-two buckets.

    The bucket for a value ``v`` is the smallest power of two ``>= v``
    (values ``<= 1`` share the ``1`` bucket) — coarse, allocation-free,
    and exactly what chunk-size / task-latency distributions need.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets: dict[int, int] = {}

    @staticmethod
    def bucket_of(value: float) -> int:
        if value <= 1:
            return 1
        return 1 << math.ceil(math.log2(value))

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        b = self.bucket_of(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class _Timer:
    """Context manager observing elapsed seconds into a histogram."""

    __slots__ = ("_histogram", "_t0")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """Lazily-created named instruments for one telemetry session."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    def timer(self, name: str) -> _Timer:
        """Time a block into histogram *name* (seconds)."""
        return _Timer(self.histogram(name))

    def to_dict(self) -> dict:
        """Plain-JSON view of every instrument (sorted names)."""
        return {
            "counters": {k: self.counters[k].value for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k].to_dict() for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
        }
