"""Span tracing with Chrome-trace-event (Perfetto) JSON export.

:class:`SpanTracer` records *spans* — named, nested time intervals — and
serializes them in the Chrome trace-event format that
https://ui.perfetto.dev loads directly.  Two tracks (trace "threads")
exist side by side:

* ``wall`` — real elapsed time of the Python process.  Host calls,
  kernel runs, batched/scalar simulator segments, program segments and
  trace replays land here; nesting follows the call stack.
* ``sim`` — the *simulated* wall clock of the :class:`~repro.maxeler.
  host.Host` ledger (PCIe overhead + payload + compute nanoseconds).
  Host call / PCIe DMA / kernel compute intervals land here with their
  modelled durations, which is where the paper's ~300 ns overhead
  amortization becomes visible.

The tracer is append-only and never raises into instrumented code; spans
left open by an error path (e.g. a replay abort skipping
``Observer.on_program_end``) are closed at export time and flagged
``"aborted": true``.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import time
from fnmatch import fnmatch

__all__ = ["SpanTracer", "TRACK_WALL", "TRACK_SIM"]

TRACK_WALL = "wall"
TRACK_SIM = "sim"

_PID = 1
_TRACK_TIDS = {TRACK_WALL: 1, TRACK_SIM: 2}


class _SpanHandle:
    """Context manager closing one open span on exit."""

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "SpanTracer"):
        self._tracer = tracer

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        self._tracer.end(aborted=True) if exc_type else self._tracer.end()


class SpanTracer:
    """Collects trace events; exports Perfetto-loadable JSON.

    ``clock`` is injectable for tests; it must return nanoseconds.
    """

    def __init__(self, clock=None):
        self._clock = clock or time.perf_counter_ns
        self._t0 = self._clock()
        self.events: list[dict] = []
        self._stack: list[dict] = []
        self._profile_pattern: str | None = None
        self._profile_top = 10
        self._profiler: cProfile.Profile | None = None

    # -- clock ---------------------------------------------------------------
    def _now_us(self) -> float:
        return (self._clock() - self._t0) / 1000.0

    # -- per-span profiling ---------------------------------------------------
    def profile_spans(self, pattern: str | None = "*", top: int = 10) -> None:
        """Attribute time *inside* matching spans with :mod:`cProfile`.

        While enabled, the outermost wall span whose name fnmatches
        *pattern* runs under a profiler; at :meth:`end` the top-*top*
        functions by cumulative time land in the span's ``args
        ["profile"]`` — so a regression localizes to a span *and* the
        Python frames under it, not just a benchmark total.  Only one
        profiler runs at a time (cProfile cannot nest): inner matching
        spans are simply covered by the outer profile.  Pass ``None`` to
        disable.  Profiling failures are swallowed — the tracer never
        raises into instrumented code.
        """
        self._profile_pattern = pattern
        self._profile_top = top

    def _profile_rows(self, profiler: cProfile.Profile) -> list[dict]:
        stats = pstats.Stats(profiler)
        rows = sorted(
            stats.stats.items(), key=lambda kv: kv[1][3], reverse=True
        )
        out = []
        for (filename, lineno, func), (cc, nc, tt, ct, _callers) in rows[
            : self._profile_top
        ]:
            out.append(
                {
                    "func": f"{filename}:{lineno}({func})",
                    "ncalls": nc,
                    "tottime": round(tt, 6),
                    "cumtime": round(ct, 6),
                }
            )
        return out

    # -- wall-clock spans (stack discipline) --------------------------------
    def begin(self, name: str, cat: str = "repro", **args) -> None:
        """Open a nested wall-clock span; pair with :meth:`end`."""
        frame = {"name": name, "cat": cat, "ts": self._now_us(), "args": dict(args)}
        if (
            self._profile_pattern is not None
            and self._profiler is None
            and fnmatch(name, self._profile_pattern)
        ):
            try:
                self._profiler = cProfile.Profile()
                frame["profiler"] = self._profiler
                self._profiler.enable()
            except Exception:  # pragma: no cover - environment-dependent
                self._profiler = None
                frame.pop("profiler", None)
        self._stack.append(frame)

    def end(self, **args) -> None:
        """Close the innermost open span (no-op when none is open, so
        observer-driven end hooks stay safe after an aborted begin)."""
        if not self._stack:
            return
        top = self._stack.pop()
        profiler = top.pop("profiler", None)
        if profiler is not None:
            try:
                profiler.disable()
                top["args"]["profile"] = self._profile_rows(profiler)
            except Exception:  # pragma: no cover - never raise at span end
                pass
            finally:
                self._profiler = None
        top["args"].update(args)
        self._push_complete(
            top["name"], top["cat"], top["ts"], self._now_us() - top["ts"],
            TRACK_WALL, top["args"],
        )

    def span(self, name: str, cat: str = "repro", **args) -> _SpanHandle:
        """``with tracer.span("kernel.run"): ...`` — begin/end in one."""
        self.begin(name, cat, **args)
        return _SpanHandle(self)

    def instant(self, name: str, cat: str = "repro", **args) -> None:
        """A zero-duration marker on the wall track."""
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "ts": self._now_us(),
                "pid": _PID,
                "tid": _TRACK_TIDS[TRACK_WALL],
                "args": dict(args),
            }
        )

    # -- arbitrary-track complete events ------------------------------------
    def complete_ns(
        self,
        name: str,
        start_ns: float,
        dur_ns: float,
        cat: str = "repro",
        track: str = TRACK_SIM,
        **args,
    ) -> None:
        """A complete span with explicit start/duration in nanoseconds —
        used for the simulated-time track, whose clock is the Host ledger
        rather than the process clock."""
        self._push_complete(name, cat, start_ns / 1000.0, dur_ns / 1000.0, track, args)

    def _push_complete(self, name, cat, ts_us, dur_us, track, args) -> None:
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": ts_us,
                "dur": dur_us,
                "pid": _PID,
                "tid": _TRACK_TIDS[track],
                "args": args,
            }
        )

    # -- export --------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def close_open_spans(self) -> None:
        """Close spans an error path left open (outermost closes last, so
        nesting stays consistent); each gains ``"aborted": true``."""
        while self._stack:
            self.end(aborted=True)

    def to_chrome_trace(self) -> dict:
        self.close_open_spans()
        meta = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": f"{track} time"},
            }
            for track, tid in _TRACK_TIDS.items()
        ]
        return {
            "traceEvents": meta + self.events,
            "displayTimeUnit": "ns",
        }

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh)
