"""Vendor-style synthesis report rendering.

``SynthesisModel.estimate`` returns numbers; this module formats them the
way FPGA engineers expect to read them — a per-design report with the
timing summary, the resource breakdown (data BRAMs vs infrastructure,
crossbar LUTs by instance), and the feasibility verdict.  Used by the CLI
and handy when comparing configurations by eye.
"""

from __future__ import annotations

import io
import math

from ..core.config import PolyMemConfig
from .bram import polymem_bram_usage
from .crossbar import design_shuffles
from .fpga import VIRTEX6_SX475T, FpgaDevice
from .synthesis import SynthesisModel, default_model

__all__ = ["synthesis_report_text"]


def synthesis_report_text(
    config: PolyMemConfig,
    model: SynthesisModel | None = None,
    device: FpgaDevice = VIRTEX6_SX475T,
) -> str:
    """A human-readable synthesis estimate for one configuration."""
    model = model or default_model(device.name)
    est = model.estimate(config)
    budget = polymem_bram_usage(config, device.bram36)
    shuffles = design_shuffles(config)
    out = io.StringIO()
    bar = "=" * 64
    out.write(f"{bar}\nSYNTHESIS ESTIMATE — {config.label()}\n{bar}\n")
    out.write(f"device            : {device.name} "
              f"({device.logic_cells:,} logic cells, {device.bram36} RAMB36)\n")
    out.write(f"address space     : {config.rows} x {config.cols} "
              f"x {config.width_bits}-bit\n")
    out.write(f"lane grid         : {config.p} x {config.q} "
              f"({config.lanes} lanes/port)\n")
    out.write(f"read ports        : {config.read_ports}\n\n")

    out.write("-- timing ------------------------------------------------\n")
    out.write(f"estimated Fmax    : {est.fmax_mhz:7.1f} MHz "
              f"(period {est.period_ns:5.2f} ns)\n")
    bw = config.lanes * config.word_bytes * est.fmax_mhz * 1e6 / 1e9
    out.write(f"per-port bandwidth: {bw:7.2f} GB/s\n")
    out.write(f"aggregate read BW : {bw * config.read_ports:7.2f} GB/s\n\n")

    out.write("-- block RAM ----------------------------------------------\n")
    per_bank = budget.data_blocks // (config.lanes * config.read_ports)
    out.write(f"bank geometry     : {config.bank_depth:,} x 64b words "
              f"-> {per_bank} RAMB36/bank\n")
    out.write(f"data blocks       : {budget.data_blocks} "
              f"({config.lanes} banks x {config.read_ports} replicas)\n")
    out.write(f"infrastructure    : {budget.infra_blocks}\n")
    out.write(f"total             : {budget.total_blocks} / {device.bram36} "
              f"({100 * budget.utilization:5.2f}%)\n\n")

    out.write("-- logic ---------------------------------------------------\n")
    addr_bits = max(1, math.ceil(math.log2(config.bank_depth)))
    out.write(f"shuffle networks  : {shuffles.data_crossbars} data "
              f"({config.width_bits}b) + {shuffles.addr_crossbars} address "
              f"({addr_bits}b) full crossbars\n")
    out.write(f"crossbar LUTs     : {shuffles.total_luts:,} "
              f"({100 * shuffles.total_luts / device.luts:4.2f}% of device)\n")
    out.write(f"estimated logic   : {est.logic_pct:5.2f}% of slices\n")
    out.write(f"estimated LUTs    : {est.lut_pct:5.2f}%\n\n")

    verdict = "FEASIBLE" if est.feasible else "INFEASIBLE (data exceeds BRAM)"
    out.write(f"verdict           : {verdict}\n")
    return out.getvalue()
