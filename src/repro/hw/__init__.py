"""FPGA hardware substrate: BRAM primitives, devices, synthesis estimation.

This subpackage replaces the parts of the paper's flow that require real
hardware and vendor tools (see DESIGN.md, "Hardware-gate substitutions").
"""

from .bram import BramBudget, RAMB36, polymem_bram_usage
from .calibration import (
    BRAM_POINTS,
    LOGIC_POINTS,
    STREAM_COPY,
    TABLE_IV_MHZ,
    table_iv_frequency,
    table_iv_grid,
)
from .crossbar import ShuffleInventory, design_shuffles
from .fpga import VIRTEX6_LX240T, VIRTEX6_SX475T, FpgaDevice, devices
from .synthesis import MAF_COMPLEXITY, SynthesisModel, SynthesisReport, default_model

__all__ = [
    "BRAM_POINTS",
    "BramBudget",
    "FpgaDevice",
    "LOGIC_POINTS",
    "MAF_COMPLEXITY",
    "RAMB36",
    "STREAM_COPY",
    "ShuffleInventory",
    "SynthesisModel",
    "SynthesisReport",
    "TABLE_IV_MHZ",
    "VIRTEX6_LX240T",
    "VIRTEX6_SX475T",
    "default_model",
    "design_shuffles",
    "devices",
    "polymem_bram_usage",
    "table_iv_frequency",
    "table_iv_grid",
]
