"""BRAM primitive model: Xilinx Virtex-6 RAMB36 blocks.

The Virtex-6 SX475T on the Maxeler Vectis board provides 1,064 RAMB36E1
primitives (36 Kb each, true dual port).  A PolyMem bank of 64-bit words is
built from RAMB36 blocks in the 512 x 72 aspect ratio: each block stores 512
data words (the 8 parity bits per word are left unused by the model, which
matches how vendor tools map 64-bit words).

This module provides the exact BRAM-count arithmetic behind the paper's
Fig. 8: a PolyMem with ``R`` read ports replicates its data ``R`` times
(§IV-C), so::

    data_brams = R * lanes * ceil(bank_depth / 512)

plus a fixed Maxeler-infrastructure allowance (PCIe stream FIFOs, manager
logic) that migrates to distributed RAM when block RAM runs out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..backend import vectis as _vectis
from ..core.config import PolyMemConfig
from ..core.exceptions import CapacityError

__all__ = ["RAMB36", "BramBudget", "polymem_bram_usage", "polymem_bram_usage_many"]


@dataclass(frozen=True)
class RAMB36:
    """One 36 Kb block RAM primitive and its legal aspect ratios."""

    #: total data bits, excluding per-byte parity
    data_bits: int = _vectis.RAMB36_DATA_BITS
    #: parity bits usable as extra data in wide aspect ratios
    parity_bits: int = _vectis.RAMB36_PARITY_BITS

    #: (depth, width) configurations, widest first
    ASPECT_RATIOS = (
        (512, 72),
        (1024, 36),
        (2048, 18),
        (4096, 9),
        (8192, 4),
        (16384, 2),
        (32768, 1),
    )

    def words_at_width(self, width_bits: int) -> int:
        """Data words of *width_bits* one block holds (widest fitting ratio)."""
        depths = [d for d, w in self.ASPECT_RATIOS if w >= width_bits]
        if not depths:
            # wider than 72 bits: banks must gang blocks side by side instead
            raise CapacityError(
                f"a single RAMB36 cannot store {width_bits}-bit words"
            )
        return max(depths)

    def blocks_for_bank(self, depth_words: int, width_bits: int) -> int:
        """Blocks needed for one bank of ``depth_words`` x ``width_bits``.

        Words wider than 72 bits are split across side-by-side blocks;
        narrower words use the deepest aspect ratio that still covers the
        width, cascading blocks for depth.
        """
        if depth_words <= 0:
            raise CapacityError(f"bank depth must be positive, got {depth_words}")
        if width_bits <= 72:
            return math.ceil(depth_words / self.words_at_width(width_bits))
        lanes_wide = math.ceil(width_bits / 72)
        return lanes_wide * math.ceil(depth_words / 512)


@dataclass(frozen=True)
class BramBudget:
    """BRAM accounting for a full PolyMem instantiation."""

    data_blocks: int
    infra_blocks: int
    device_blocks: int

    @property
    def total_blocks(self) -> int:
        return self.data_blocks + self.infra_blocks

    @property
    def utilization(self) -> float:
        """Fraction of the device's block RAM consumed (0..1)."""
        return self.total_blocks / self.device_blocks

    @property
    def feasible(self) -> bool:
        """The design fits: the data alone must fit in block RAM (the
        infrastructure can fall back to LUT RAM under pressure)."""
        return self.data_blocks <= self.device_blocks


#: Maxeler static infrastructure block allowance — the calibrated value
#: lives with every other board constant in :mod:`repro.backend.vectis`
INFRA_BLOCKS_NOMINAL = _vectis.INFRA_BLOCKS_NOMINAL

#: default device size: the Vectis part's RAMB36 count
_VECTIS_BRAM36 = _vectis.VECTIS_FPGA["bram36"]


def polymem_bram_usage(
    config: PolyMemConfig,
    device_blocks: int = _VECTIS_BRAM36,
    infra_nominal: int = INFRA_BLOCKS_NOMINAL,
) -> BramBudget:
    """BRAM budget of *config* on a device with *device_blocks* RAMB36s.

    Reproduces the paper's Fig. 8 arithmetic: replication across read ports,
    per-bank ``ceil`` packing, plus a fixed infrastructure allowance that
    shrinks when the data leaves no room (Maxeler's tools migrate those
    buffers to distributed RAM).
    """
    prim = RAMB36()
    per_bank = prim.blocks_for_bank(config.bank_depth, config.width_bits)
    data = config.read_ports * config.lanes * per_bank
    infra = min(infra_nominal, max(0, device_blocks - data))
    return BramBudget(
        data_blocks=data, infra_blocks=infra, device_blocks=device_blocks
    )


def polymem_bram_usage_many(
    configs,
    device_blocks: int = _VECTIS_BRAM36,
    infra_nominal: int = INFRA_BLOCKS_NOMINAL,
) -> list[BramBudget]:
    """Vectorized :func:`polymem_bram_usage` over a config array.

    The per-bank packing is exact integer arithmetic evaluated once per
    distinct ``(bank_depth, width_bits)`` pair (via the same
    :meth:`RAMB36.blocks_for_bank` the scalar path uses); replication and
    the infrastructure clamp run as one NumPy pass.  Budgets are equal to
    the scalar path's, field for field.
    """
    import numpy as np

    configs = list(configs)
    prim = RAMB36()
    per_bank_of: dict[tuple[int, int], int] = {}
    per_bank = np.empty(len(configs), dtype=np.int64)
    ports = np.empty(len(configs), dtype=np.int64)
    lanes = np.empty(len(configs), dtype=np.int64)
    for n, cfg in enumerate(configs):
        shape = (cfg.bank_depth, cfg.width_bits)
        if shape not in per_bank_of:
            per_bank_of[shape] = prim.blocks_for_bank(*shape)
        per_bank[n] = per_bank_of[shape]
        ports[n] = cfg.read_ports
        lanes[n] = cfg.lanes
    data = ports * lanes * per_bank
    infra = np.minimum(infra_nominal, np.maximum(0, device_blocks - data))
    return [
        BramBudget(
            data_blocks=int(d), infra_blocks=int(i), device_blocks=device_blocks
        )
        for d, i in zip(data, infra)
    ]
