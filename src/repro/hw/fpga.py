"""FPGA device models.

The paper's experiments all run on a Maxeler Vectis DFE carrying a Xilinx
Virtex-6 SX475T.  :class:`FpgaDevice` captures the resource counts the DSE
reports utilization against; other devices can be described for
what-if exploration.  The part inventories themselves live in
:mod:`repro.backend.vectis`, the single data module for every board
constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backend.vectis import LX240T_FPGA, VECTIS_FPGA

__all__ = ["FpgaDevice", "VIRTEX6_SX475T", "devices"]


@dataclass(frozen=True)
class FpgaDevice:
    """Resource inventory of one FPGA part.

    ``logic_cells`` is the marketing-equivalent count the paper quotes
    ("475k logic cells"); utilization percentages are computed against
    ``luts`` (LUT6) and ``slices`` as the vendor tools do.
    """

    name: str
    logic_cells: int
    slices: int
    luts: int
    flip_flops: int
    bram36: int
    dsp48: int

    @property
    def bram_bytes_64bit(self) -> int:
        """Usable bytes when every RAMB36 stores 512 x 64-bit words — the
        paper's "4MB of on-chip BRAMs"."""
        return self.bram36 * 512 * 8

    def lut_pct(self, luts: float) -> float:
        """LUT utilization percentage."""
        return 100.0 * luts / self.luts

    def logic_pct(self, slices: float) -> float:
        """Logic (slice) utilization percentage."""
        return 100.0 * slices / self.slices


#: the Vectis DFE's FPGA (constants: :data:`repro.backend.vectis.VECTIS_FPGA`)
VIRTEX6_SX475T = FpgaDevice(**VECTIS_FPGA)

#: a smaller sibling, useful for feasibility what-ifs in examples
VIRTEX6_LX240T = FpgaDevice(**LX240T_FPGA)


def devices() -> dict[str, FpgaDevice]:
    """Known device models by name."""
    return {d.name: d for d in (VIRTEX6_SX475T, VIRTEX6_LX240T)}
