"""Calibrated synthesis estimator: the stand-in for the vendor toolchain.

The paper's Table IV and Figures 6–8 are produced by Xilinx synthesis/place &
route, which is unavailable here.  :class:`SynthesisModel` replaces it with
analytical models whose coefficients are least-squares fit to the paper's own
published numbers (:mod:`repro.hw.calibration`):

* **clock frequency** — the critical-path period (ns) is modeled as a
  non-negative linear combination of structural features: crossbar depth
  (``log2(lanes)``), read-port replication, placement pressure
  (``sqrt(BRAM blocks)`` — the empirically observed sub-linear growth of
  routing delay with memory footprint), crossbar interaction
  (``lanes * ports``), and MAF complexity.  Fit by NNLS over all 90 cells
  of Table IV.
* **logic (slice) utilization** — intercept + first-principles crossbar
  LUT share + per-port and per-capacity terms, fit to the five §IV-C prose
  data points.
* **LUT utilization** — proportional to logic utilization; the factor is
  pinned by the paper's "<38% logic / <28% LUTs" caps.
* **BRAM utilization** — exact arithmetic from :mod:`repro.hw.bram`.

Model-vs-paper residuals are reported by ``benchmarks/bench_table4_*`` and
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.optimize import nnls

from ..core.config import PolyMemConfig
from ..core.schemes import Scheme
from . import calibration
from .bram import polymem_bram_usage, polymem_bram_usage_many
from .crossbar import design_shuffles
from .fpga import VIRTEX6_SX475T, FpgaDevice

__all__ = ["SynthesisModel", "SynthesisReport", "MAF_COMPLEXITY"]

#: adder/divider stages in each scheme's MAF (drives a small timing/area term)
MAF_COMPLEXITY: dict[Scheme, int] = {
    Scheme.ReO: 0,
    Scheme.ReRo: 1,
    Scheme.ReCo: 1,
    Scheme.RoCo: 2,
    Scheme.ReTr: 1,
}

#: LUT%-to-logic% ratio pinned by the paper's <38% logic / <28% LUT caps
LUT_TO_LOGIC_RATIO = calibration.LUT_MAX_PCT / calibration.LOGIC_MAX_PCT


@dataclass(frozen=True)
class SynthesisReport:
    """Estimated synthesis outcome for one configuration."""

    config: PolyMemConfig
    fmax_mhz: float
    logic_pct: float
    lut_pct: float
    bram_pct: float
    feasible: bool

    @property
    def period_ns(self) -> float:
        return 1e3 / self.fmax_mhz


def _freq_features(cfg: PolyMemConfig, device: FpgaDevice) -> np.ndarray:
    budget = polymem_bram_usage(cfg, device.bram36)
    return np.array(
        [
            1.0,
            math.log2(cfg.lanes),
            float(cfg.read_ports),
            math.sqrt(budget.data_blocks),
            cfg.lanes * cfg.read_ports / 8.0,
            float(MAF_COMPLEXITY[cfg.scheme]),
        ]
    )


def _logic_features(cfg: PolyMemConfig, device: FpgaDevice) -> np.ndarray:
    xb_pct = 100.0 * design_shuffles(cfg).total_luts / device.luts
    cap_kb = cfg.capacity_bytes / 1024
    return np.array(
        [
            1.0,
            xb_pct,
            float(cfg.read_ports),
            math.log2(cap_kb / 512) if cap_kb >= 512 else 0.0,
            float(MAF_COMPLEXITY[cfg.scheme]),
        ]
    )


class SynthesisModel:
    """The calibrated frequency/area estimator for one device.

    Coefficients are fit once per device and cached; estimation is then a
    cheap dot product, so DSE sweeps stay fast.
    """

    def __init__(self, device: FpgaDevice = VIRTEX6_SX475T):
        self.device = device
        self._freq_coef, self.freq_fit_stats = self._fit_frequency()
        self._logic_coef, self.logic_fit_stats = self._fit_logic()

    # -- calibration -------------------------------------------------------
    def _fit_frequency(self):
        cells = calibration.table_iv_grid()
        X = np.stack([_freq_features(cfg, self.device) for cfg, _ in cells])
        periods = np.array([1e3 / mhz for _, mhz in cells])  # ns
        coef, _ = nnls(X, periods)
        pred = X @ coef
        resid = pred - periods
        ss_res = float((resid**2).sum())
        ss_tot = float(((periods - periods.mean()) ** 2).sum())
        pred_mhz = 1e3 / pred
        true_mhz = 1e3 / periods
        stats = {
            "r2": 1 - ss_res / ss_tot,
            "mean_abs_pct_err": float(
                np.abs(pred_mhz / true_mhz - 1).mean() * 100
            ),
            "max_abs_pct_err": float(
                np.abs(pred_mhz / true_mhz - 1).max() * 100
            ),
            "n_points": len(cells),
        }
        return coef, stats

    def _fit_logic(self):
        points = calibration.LOGIC_POINTS
        rows, targets = [], []
        for pt in points:
            cfg = self._point_config(pt)
            rows.append(_logic_features(cfg, self.device))
            targets.append(pt.percent)
        X = np.stack(rows)
        y = np.array(targets)
        coef, *_ = np.linalg.lstsq(X, y, rcond=None)
        pred = X @ coef
        stats = {
            "mean_abs_err_pp": float(np.abs(pred - y).mean()),
            "max_abs_err_pp": float(np.abs(pred - y).max()),
            "n_points": len(points),
        }
        return coef, stats

    @staticmethod
    def _point_config(pt: calibration.UtilizationPoint) -> PolyMemConfig:
        p, q = {8: (2, 4), 16: (2, 8)}[pt.lanes]
        return PolyMemConfig(
            pt.capacity_kb * 1024,
            p=p,
            q=q,
            scheme=pt.scheme,
            read_ports=pt.read_ports,
        )

    # -- estimation -------------------------------------------------------
    def frequency_mhz(self, config: PolyMemConfig) -> float:
        """Estimated maximum clock frequency."""
        period = float(_freq_features(config, self.device) @ self._freq_coef)
        return 1e3 / period

    def logic_pct(self, config: PolyMemConfig) -> float:
        """Estimated slice utilization percentage."""
        return float(_logic_features(config, self.device) @ self._logic_coef)

    def lut_pct(self, config: PolyMemConfig) -> float:
        """Estimated LUT utilization percentage."""
        return self.logic_pct(config) * LUT_TO_LOGIC_RATIO

    def bram_pct(self, config: PolyMemConfig) -> float:
        """Block-RAM utilization percentage (exact arithmetic)."""
        return 100.0 * polymem_bram_usage(config, self.device.bram36).utilization

    def estimate(self, config: PolyMemConfig) -> SynthesisReport:
        """Full synthesis estimate for one configuration."""
        budget = polymem_bram_usage(config, self.device.bram36)
        logic = self.logic_pct(config)
        return SynthesisReport(
            config=config,
            fmax_mhz=self.frequency_mhz(config),
            logic_pct=logic,
            lut_pct=logic * LUT_TO_LOGIC_RATIO,
            bram_pct=100.0 * budget.utilization,
            feasible=budget.feasible and logic <= 100.0,
        )

    # -- batched estimation ------------------------------------------------
    def estimate_arrays(self, configs) -> dict[str, list]:
        """Vectorized estimate over a config array — per-field lists.

        Feature *construction* runs as shared NumPy passes (one BRAM
        budget sweep, one crossbar-cost/log2 table per distinct value),
        but the final period/logic dot products stay per-row ``np.dot``
        calls with the scalar path's exact operand order: a single
        matrix-vector BLAS call is *not* bitwise identical to the per-row
        reduction, and the DSE's byte-identity guarantee hinges on it.
        Transcendentals go through the same ``math.log2`` (mapped over
        distinct values) and correctly-rounded ``sqrt`` as the scalar
        features, so every returned float equals :meth:`estimate`'s.
        """
        configs = list(configs)
        n = len(configs)
        device = self.device
        budgets = polymem_bram_usage_many(configs, device.bram36)
        lanes = np.array([cfg.lanes for cfg in configs], dtype=np.int64)
        ports = np.array([cfg.read_ports for cfg in configs], dtype=np.int64)
        maf = np.array(
            [float(MAF_COMPLEXITY[cfg.scheme]) for cfg in configs]
        )
        log2_of = {v: math.log2(v) for v in set(lanes.tolist())}
        data_blocks = np.array([b.data_blocks for b in budgets], dtype=np.int64)
        freq_x = np.empty((n, 6))
        freq_x[:, 0] = 1.0
        freq_x[:, 1] = [log2_of[v] for v in lanes.tolist()]
        freq_x[:, 2] = ports
        freq_x[:, 3] = np.sqrt(data_blocks)
        freq_x[:, 4] = (lanes * ports) / 8.0
        freq_x[:, 5] = maf

        xb_of: dict[tuple[int, int, int], int] = {}
        total_luts = np.empty(n, dtype=np.int64)
        cap_term = np.empty(n)
        cap_term_of: dict[int, float] = {}
        for i, cfg in enumerate(configs):
            shape = (cfg.lanes, cfg.width_bits, cfg.bank_depth)
            if shape not in xb_of:
                inv = design_shuffles(cfg)
                # total_luts = (1 + R) * (data + addr cost): the port
                # replication factors out, so cache the per-replica LUTs
                xb_of[shape] = inv.total_luts // (1 + cfg.read_ports)
            total_luts[i] = (1 + cfg.read_ports) * xb_of[shape]
            if cfg.capacity_bytes not in cap_term_of:
                cap_kb = cfg.capacity_bytes / 1024
                cap_term_of[cfg.capacity_bytes] = (
                    math.log2(cap_kb / 512) if cap_kb >= 512 else 0.0
                )
            cap_term[i] = cap_term_of[cfg.capacity_bytes]
        logic_x = np.empty((n, 5))
        logic_x[:, 0] = 1.0
        logic_x[:, 1] = (100.0 * total_luts) / device.luts
        logic_x[:, 2] = ports
        logic_x[:, 3] = cap_term
        logic_x[:, 4] = maf

        fmax, logic = [], []
        for i in range(n):
            period = float(freq_x[i] @ self._freq_coef)
            fmax.append(1e3 / period)
            logic.append(float(logic_x[i] @ self._logic_coef))
        return {
            "fmax_mhz": fmax,
            "logic_pct": logic,
            "lut_pct": [v * LUT_TO_LOGIC_RATIO for v in logic],
            "bram_pct": [100.0 * b.utilization for b in budgets],
            "feasible": [
                b.feasible and v <= 100.0 for b, v in zip(budgets, logic)
            ],
        }

    def estimate_many(self, configs) -> list[SynthesisReport]:
        """Vectorized :meth:`estimate` — one report per config, with every
        field equal to the scalar path's (see :meth:`estimate_arrays`)."""
        configs = list(configs)
        arrays = self.estimate_arrays(configs)
        return [
            SynthesisReport(
                config=cfg,
                fmax_mhz=arrays["fmax_mhz"][i],
                logic_pct=arrays["logic_pct"][i],
                lut_pct=arrays["lut_pct"][i],
                bram_pct=arrays["bram_pct"][i],
                feasible=arrays["feasible"][i],
            )
            for i, cfg in enumerate(configs)
        ]


@lru_cache(maxsize=4)
def default_model(device_name: str = VIRTEX6_SX475T.name) -> SynthesisModel:
    """A cached model for the named device (fit once per process)."""
    from .fpga import devices

    return SynthesisModel(devices()[device_name])
