"""Published measurements from the MAX-PolyMem paper, used as fit targets.

The reproduction has no Xilinx toolchain, so absolute synthesis outcomes
(clock frequency, slice/LUT utilization) cannot be measured.  Instead, the
paper's own published numbers are embedded here and the analytical models in
:mod:`repro.hw.synthesis` are least-squares calibrated against them.  The
benchmark harness then reports *paper vs model* per cell, making the
calibration quality auditable (see EXPERIMENTS.md).

Data sources:

* ``TABLE_IV_MHZ`` — the complete Table IV (maximum clock frequencies);
* ``LOGIC_POINTS`` / ``LUT_RANGE`` / ``BRAM_POINTS`` — the utilization
  numbers quoted in §IV-C's prose (the figures themselves are published as
  charts without a data table).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import KB, PolyMemConfig
from ..core.schemes import Scheme

__all__ = [
    "TABLE_IV_MHZ",
    "table_iv_grid",
    "table_iv_frequency",
    "LOGIC_POINTS",
    "BRAM_POINTS",
    "LUT_RANGE",
    "STREAM_COPY",
]

#: (capacity KB, lanes, read ports) columns of Table IV, in paper order.
#: The grid is bounded by BRAM feasibility: capacity x ports <= 4 MB.
TABLE_IV_COLUMNS: tuple[tuple[int, int, int], ...] = (
    (512, 8, 1), (512, 8, 2), (512, 8, 3), (512, 8, 4),
    (512, 16, 1), (512, 16, 2),
    (1024, 8, 1), (1024, 8, 2), (1024, 8, 3), (1024, 8, 4),
    (1024, 16, 1), (1024, 16, 2),
    (2048, 8, 1), (2048, 8, 2),
    (2048, 16, 1), (2048, 16, 2),
    (4096, 8, 1),
    (4096, 16, 1),
)

#: Table IV rows: maximum clock frequency in MHz per scheme, matching
#: ``TABLE_IV_COLUMNS`` positionally.
TABLE_IV_MHZ: dict[Scheme, tuple[int, ...]] = {
    Scheme.ReO:  (202, 160, 139, 123, 185, 100, 160, 123, 102, 79, 144, 109, 127, 86, 127, 87, 95, 95),
    Scheme.ReRo: (195, 166, 131, 123, 168, 100, 163, 125, 102, 77, 140, 109, 120, 87, 120, 80, 98, 91),
    Scheme.ReCo: (196, 155, 131, 122, 157, 100, 163, 121, 107, 81, 156, 122, 124, 78, 124, 79, 93, 93),
    Scheme.RoCo: (194, 150, 146, 122, 161, 100, 173, 135, 114, 86, 145, 109, 122, 90, 122, 84, 88, 91),
    Scheme.ReTr: (193, 158, 134, 137, 159, 112, 155, 121, 102, 77, 146, 122, 116, 81, 114, 77, 102, 102),
}


def _lanes_to_grid(lanes: int) -> tuple[int, int]:
    """The paper's lane grids: 8 = 2x4, 16 = 2x8."""
    return {8: (2, 4), 16: (2, 8)}[lanes]


def table_iv_grid() -> list[tuple[PolyMemConfig, float]]:
    """Every (config, paper MHz) cell of Table IV as PolyMemConfig objects."""
    cells = []
    for scheme, freqs in TABLE_IV_MHZ.items():
        for (cap_kb, lanes, ports), mhz in zip(TABLE_IV_COLUMNS, freqs):
            p, q = _lanes_to_grid(lanes)
            cfg = PolyMemConfig(
                cap_kb * KB, p=p, q=q, scheme=scheme, read_ports=ports
            )
            cells.append((cfg, float(mhz)))
    return cells


#: column -> index map so per-point lookups are O(1) (the DSE batch path
#: resolves the paper grid for thousands of configs per pass)
_COLUMN_INDEX = {col: i for i, col in enumerate(TABLE_IV_COLUMNS)}


def table_iv_frequency(
    scheme: Scheme, capacity_kb: int, lanes: int, read_ports: int
) -> float | None:
    """Paper frequency for one configuration, or None if outside the table."""
    idx = _COLUMN_INDEX.get((capacity_kb, lanes, read_ports))
    if idx is None:
        return None
    return float(TABLE_IV_MHZ[scheme][idx])


@dataclass(frozen=True)
class UtilizationPoint:
    """One utilization number quoted in the paper's §IV-C prose."""

    scheme: Scheme
    capacity_kb: int
    lanes: int
    read_ports: int
    percent: float


#: logic (slice) utilization, §IV-C prose
LOGIC_POINTS: tuple[UtilizationPoint, ...] = (
    UtilizationPoint(Scheme.ReO, 512, 8, 1, 10.58),
    UtilizationPoint(Scheme.RoCo, 4096, 8, 1, 13.05),
    UtilizationPoint(Scheme.ReRo, 512, 8, 1, 10.78),
    UtilizationPoint(Scheme.ReRo, 512, 8, 4, 22.34),
    UtilizationPoint(Scheme.ReRo, 512, 16, 1, 23.73),
)

#: BRAM utilization, §IV-C prose
BRAM_POINTS: tuple[UtilizationPoint, ...] = (
    UtilizationPoint(Scheme.ReRo, 512, 8, 1, 16.07),
    UtilizationPoint(Scheme.ReRo, 512, 16, 1, 19.31),
    UtilizationPoint(Scheme.ReRo, 512, 8, 2, 29.04),
    UtilizationPoint(Scheme.ReRo, 2048, 16, 2, 97.0),
)

#: LUT utilization varies "between 7% and 28%" across the whole DSE
LUT_RANGE: tuple[float, float] = (7.0, 28.0)

#: headline caps from the §IV-C summary: logic < 38%, LUTs < 28%
LOGIC_MAX_PCT = 38.0
LUT_MAX_PCT = 28.0


@dataclass(frozen=True)
class StreamCopyReference:
    """The paper's §V STREAM-Copy experiment constants."""

    scheme: Scheme = Scheme.RoCo
    p: int = 2
    q: int = 4
    clock_mhz: float = 120.0
    read_latency_cycles: int = 14
    host_call_overhead_ns: float = 300.0
    runs: int = 1000
    #: per array: 170 rows x 512 cols x 8 B ~ 700 KB maximum
    max_array_rows: int = 170
    array_cols: int = 512
    word_bytes: int = 8
    peak_mbps: float = 15_360.0
    measured_mbps: float = 15_301.0


STREAM_COPY = StreamCopyReference()
