"""Whole-design crossbar area accounting.

A MAX-PolyMem instantiation contains, per §III-B:

* per **read** port: one Address Shuffle (intra-bank address width) and one
  Read Data Shuffle (full data width);
* for the **write** port: one Address Shuffle and one Write Data Shuffle.

All shuffles are full ``lanes x lanes`` crossbars in the paper's
implementation — the source of the supra-linear logic growth from 8 to 16
lanes (§IV-C).  This module aggregates their cost for either realization
(full crossbar or Benes), feeding the synthesis model and the crossbar
ablation bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from ..core.config import PolyMemConfig
from ..core.shuffle import BenesNetwork, FullCrossbar

__all__ = ["ShuffleInventory", "design_shuffles"]


@dataclass(frozen=True)
class ShuffleInventory:
    """Aggregate shuffle-network cost of one PolyMem design."""

    data_crossbars: int
    addr_crossbars: int
    lanes: int
    data_width_bits: int
    addr_width_bits: int
    realization: str
    total_luts: int
    max_stages: int

    @property
    def total_crossbars(self) -> int:
        return self.data_crossbars + self.addr_crossbars


@lru_cache(maxsize=256)
def _cost(realization: str, lanes: int, width: int):
    # memoized: a DSE pass asks for the same (lanes, width) cost once per
    # config, and the cost models are pure in their arguments
    if realization == "full":
        return FullCrossbar(lanes, width).cost()
    if realization == "benes":
        return BenesNetwork(lanes, width).cost()
    raise ValueError(f"unknown shuffle realization {realization!r}")


def design_shuffles(
    config: PolyMemConfig, realization: str = "full"
) -> ShuffleInventory:
    """Inventory and LUT cost of every shuffle in a PolyMem design.

    Parameters
    ----------
    config:
        The PolyMem instantiation.
    realization:
        ``"full"`` (the paper's implementation) or ``"benes"`` (the
        area-optimized alternative explored by the ablation bench).
    """
    lanes = config.lanes
    addr_bits = max(1, math.ceil(math.log2(config.bank_depth)))
    # one write port + R read ports, each with an address and a data shuffle
    data_xb = 1 + config.read_ports
    addr_xb = 1 + config.read_ports
    data_cost = _cost(realization, lanes, config.width_bits)
    addr_cost = _cost(realization, lanes, addr_bits)
    return ShuffleInventory(
        data_crossbars=data_xb,
        addr_crossbars=addr_xb,
        lanes=lanes,
        data_width_bits=config.width_bits,
        addr_width_bits=addr_bits,
        realization=realization,
        total_luts=data_xb * data_cost.lut_estimate
        + addr_xb * addr_cost.lut_estimate,
        max_stages=max(data_cost.stages, addr_cost.stages),
    )
