"""Command-line interface: ``python -m repro`` (or the ``polymem`` script).

Subcommands map one-to-one onto the paper's artifacts:

* ``info``         — package overview and the Table I scheme matrix;
* ``validate``     — build a configuration and run the §IV-A validation;
* ``dse``          — the §IV design-space exploration (Table IV, Figs 4-8);
* ``whatif``       — sweep one configuration across device backends
  (BRAM parts, DDR/HBM channel systems, multi-DFE sharding);
* ``stream``       — the §V STREAM experiment (Fig. 10);
* ``schedule``     — the §III-A access-schedule optimizer;
* ``productivity`` — the §III-C Table II analysis;
* ``experiments``  — the full paper-vs-reproduction scorecard;
* ``report``       — a vendor-style synthesis estimate for one config;
* ``telemetry``    — inspect recorded telemetry: ``summary`` (one
  snapshot), ``ledger`` (the run ledger), ``diff`` (two runs),
  ``regress`` (gates vs a baseline window), ``scorecard`` (the
  workload x scheme x backend matrix).

The grid-shaped subcommands (``dse``, ``stream``, ``experiments``) run on
the :mod:`repro.exec` runtime and share four flags:

``--workers N``
    Fan independent sweep points out over an ``N``-process pool
    (``0`` = one worker per CPU; default: serial).
``--cache-dir PATH``
    Where the content-addressed result cache lives (default:
    ``$REPRO_CACHE_DIR``, else ``~/.cache/repro``).  Warm re-runs skip
    every sweep point whose (config, model version, experiment) hash is
    unchanged.
``--no-cache``
    Disable the result cache for this invocation.
``--json [PATH]``
    Emit the unified ``repro.exec.report`` JSON schema to *PATH*
    (``-`` or no value: stdout) instead of only the human tables.

They (plus ``program dump``) also share the :mod:`repro.telemetry` flags:

``--metrics``
    Run inside a telemetry session and print the metrics summary —
    counters, gauges, histograms, and paper-relevant derived values
    (stall %, scalar-fallback %, plan-cache hit rate, achieved vs peak
    bandwidth).  The same snapshot lands in ``meta["telemetry"]`` of any
    ``--json`` report (``repro telemetry summary FILE`` re-renders it).
``--trace-out PATH``
    Also record a span trace (host call → PCIe DMA → kernel → program
    segment → trace replay → compute boundary) and write
    Chrome-trace-event JSON to *PATH* for https://ui.perfetto.dev.
``--profile-spans PATTERN``
    Run cProfile inside wall spans whose name fnmatches *PATTERN*; the
    top functions by cumulative time attach to each span's trace args
    (and print to stderr when no ``--trace-out`` is given), localizing
    a regression to a span *and* the Python frames under it.

``program dump`` adds two flags of its own on top of ``--json`` (same
semantics as above — one helper, :func:`_add_json_arg`, defines the flag
everywhere):

``--backend {interp,fused}``
    Which engine backend to compile the dump for (default: the engine
    default, ``fused``).  With ``fused``, the dump includes the fusion
    plan summary — groups formed, fused vs fallback steps, kernel-cache
    hits/misses — for programs with live memories bound; describe-only
    programs cannot be fusion-planned.
``--stats``
    Dry per-segment cycle/element counts derived from the compiled
    trace shapes (no execution).

Configuration-taking subcommands (``validate``, ``report``) build their
:class:`~repro.core.config.PolyMemConfig` through the single
:meth:`PolyMemConfig.from_any` surface (``--config`` file, flags, or both).
"""

from __future__ import annotations

import argparse
import sys
import warnings

from .core.config import PolyMemConfig
from .core.schemes import Scheme

__all__ = ["main", "build_parser"]


def _config_from_args(args) -> PolyMemConfig:
    """Deprecated: use :meth:`PolyMemConfig.from_any` directly."""
    warnings.warn(
        "cli._config_from_args is deprecated; use PolyMemConfig.from_any",
        DeprecationWarning,
        stacklevel=2,
    )
    return PolyMemConfig.from_any(args)


def _add_config_args(sub) -> None:
    sub.add_argument(
        "--config", help="PolyMem configuration file (key=value or JSON)"
    )
    sub.add_argument("--capacity-kb", type=int, default=512)
    sub.add_argument("-p", type=int, default=2, help="lane-grid rows")
    sub.add_argument("-q", type=int, default=4, help="lane-grid columns")
    sub.add_argument(
        "--scheme", default="ReRo", choices=[s.value for s in Scheme]
    )
    sub.add_argument("--ports", type=int, default=1, help="read ports")


def _workers_arg(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one worker per CPU), got {value}"
        )
    return value


def _add_json_arg(sub, *, what: str = "the unified JSON report") -> None:
    """The shared ``--json [PATH]`` flag — one definition for every
    subcommand so semantics ('-' or no value: stdout) never drift."""
    sub.add_argument(
        "--json",
        dest="json_out",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help=f"emit {what} ('-' or no value: stdout)",
    )


def _add_exec_args(sub) -> None:
    """The shared repro.exec runtime flags (see the module docstring)."""
    sub.add_argument(
        "--workers",
        type=_workers_arg,
        default=None,
        metavar="N",
        help="process-pool workers for sweep points (0 = all CPUs; "
        "default: serial; clamped to the CPU count)",
    )
    sub.add_argument(
        "--chunk-size",
        dest="chunk_size",
        type=int,
        default=None,
        metavar="N",
        help="points per dispatch batch in parallel sweeps "
        "(default: sized automatically from the per-point cost)",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    sub.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    _add_json_arg(sub)
    _add_telemetry_args(sub)


def _add_telemetry_args(sub) -> None:
    """The shared telemetry flags: a metrics summary and a Perfetto trace."""
    sub.add_argument(
        "--metrics",
        action="store_true",
        help="collect run telemetry and print the metrics summary "
        "(counters + derived stall/fallback/bandwidth figures)",
    )
    sub.add_argument(
        "--trace-out",
        dest="trace_out",
        default=None,
        metavar="PATH",
        help="record a span trace and write Chrome-trace-event JSON to "
        "PATH (load it at https://ui.perfetto.dev)",
    )
    sub.add_argument(
        "--profile-spans",
        dest="profile_spans",
        default=None,
        metavar="PATTERN",
        help="run cProfile inside wall spans matching PATTERN (fnmatch, "
        "e.g. 'segment.*'); the top functions land in each span's trace "
        "args and are printed when no --trace-out is given",
    )


def _cache_from_args(args):
    from .exec import ResultCache, default_cache_dir

    if getattr(args, "no_cache", False):
        return None
    return ResultCache(args.cache_dir or default_cache_dir())


def _progress_from_args(args):
    """A stderr progress line for parallel runs (quiet when serial)."""
    if not getattr(args, "workers", None) or not sys.stderr.isatty():
        return None

    def progress(done, total, result):
        end = "\n" if done == total else ""
        print(f"\r  sweep {done}/{total}", end=end, file=sys.stderr, flush=True)

    return progress


def _emit_json(args, report) -> None:
    report.attach_telemetry()  # no-op unless a telemetry session is active
    if args.json_out is None:
        return
    if args.json_out == "-":
        print(report.to_json())
    else:
        report.save(args.json_out)
        print(f"JSON report written to {args.json_out}")


def _sweep_stats_line(sweep) -> str:
    line = (
        f"sweep: {len(sweep.results)} points "
        f"({sweep.n_cached} cached, {sweep.n_computed} computed) "
        f"on {sweep.workers} worker(s) in {sweep.wall_seconds:.3f} s"
    )
    if sweep.chunks:
        line += (
            f" [{sweep.chunks} chunks, warmup {sweep.warmup_seconds:.3f} s,"
            f" ipc {sweep.ipc_seconds:.3f} s]"
        )
    return line


def cmd_info(args) -> int:
    from . import __version__
    from .core.conflict import ConflictAnalyzer

    print(f"repro {__version__} — MAX-PolyMem reproduction")
    print("schemes and conflict-free patterns "
          f"(empirical, {args.p}x{args.q} lanes):")
    table = ConflictAnalyzer(args.p, args.q).table()
    for scheme, row in table.items():
        pats = [
            f"{k.value}[{d.label}]" for k, d in row.items() if d.label != "none"
        ]
        print(f"  {scheme.value:5s}: {', '.join(pats)}")
    return 0


def cmd_validate(args) -> int:
    from .maxpolymem import build_design, validate_design

    cfg = PolyMemConfig.from_any(args)
    design = build_design(cfg, style=args.style, clock_source="auto")
    print(f"validating {cfg.label()} ({args.style}, "
          f"{design.dfe.clock_mhz:.0f} MHz) ...")
    report = validate_design(design, max_rows=args.max_rows)
    print(f"  writes: {report.writes}, reads: {report.reads}")
    if report.passed:
        print("  PASSED — every pattern read back the expected data")
        return 0
    for m in report.mismatches[:10]:
        print(f"  MISMATCH: {m}")
    return 1


def cmd_dse(args) -> int:
    from .dse import (
        dse_report,
        explore,
        figure_series,
        render_series_table,
        render_table_iv,
    )

    if args.load:
        from .util import load_dse_result

        result = load_dse_result(args.load)
    else:
        result = explore(
            workers=args.workers,
            cache=_cache_from_args(args),
            progress=_progress_from_args(args),
            chunk_size=args.chunk_size,
            batch=args.batch,
            prune=args.prune,
            backend=args.backend,
        )
    if result.backend is not None:
        print(f"device backend: {result.backend} "
              f"(synthesis on {result.space.device.name})")
    if args.save:
        from .util import save_dse_result

        save_dse_result(result, args.save)
        print(f"sweep saved to {args.save}")
    print(render_table_iv(result, source=args.source))
    print(f"peak write bandwidth: {result.peak_write_gbps:.1f} GB/s")
    print(f"peak read  bandwidth: {result.peak_read_gbps:.1f} GB/s")
    if result.sweep is not None:
        print(_sweep_stats_line(result.sweep))
    if args.figures:
        metrics = {
            "fig4 write bandwidth [GB/s]": lambda p: p.bandwidth.write_gbps,
            "fig5 read bandwidth [GB/s]": lambda p: p.bandwidth.read_gbps,
            "fig6 logic [%]": lambda p: p.logic_pct,
            "fig7 LUT [%]": lambda p: p.lut_pct,
            "fig8 BRAM [%]": lambda p: p.bram_pct,
        }
        for title, fn in metrics.items():
            print(render_series_table(figure_series(result, fn), title, ""))
    _emit_json(args, dse_report(result))
    return 0


def cmd_stream(args) -> int:
    from .exec import Report, ReportEntry
    from .stream_bench import StreamHarness, all_apps, stream_report, sweep_fig10

    harness = StreamHarness()
    measurements = [
        harness.measure_analytic(app, harness.max_vectors, runs=args.runs)
        for app in all_apps()
    ]
    print(stream_report(measurements))
    report = Report(title="STREAM on MAX-PolyMem (paper §V, Fig. 10)")
    for m in measurements:
        report.entries.append(
            ReportEntry(
                experiment="§V STREAM",
                quantity=f"{m.app_name} bandwidth [MB/s]",
                measured=round(m.mbps, 1),
                metrics={
                    "peak_mbps": round(m.peak_mbps, 1),
                    "efficiency": round(m.efficiency, 6),
                    "elements": m.elements,
                    "runs": m.runs,
                },
            )
        )
    if args.fig10:
        points = sweep_fig10(
            harness=harness,
            runs=args.runs,
            workers=args.workers,
            cache=_cache_from_args(args),
            progress=_progress_from_args(args),
            chunk_size=args.chunk_size,
        )
        print(f"\n{'copied KB':>10s} {'MB/s':>9s} {'of peak':>8s}")
        for pt in points:
            print(f"{pt.copied_kb:10.1f} {pt.mbps:9.0f} "
                  f"{pt.efficiency * 100:7.2f}%")
            report.entries.append(
                ReportEntry(
                    experiment="Fig. 10",
                    quantity=f"Copy bandwidth @ {pt.copied_kb:.1f} KB [MB/s]",
                    measured=round(pt.mbps, 1),
                    metrics={"efficiency": round(pt.efficiency, 6)},
                )
            )
    _emit_json(args, report)
    return 0


def cmd_stream_run(args) -> int:
    import time

    from .exec import Report, ReportEntry
    from .stream_bench import StreamHarness, all_apps
    from .stream_bench.controller import build_stream_design
    from .stream_bench.harness import StreamMeasurement

    import numpy as np

    from .stream_bench.apps import DEFAULT_SCALAR

    app = {a.name.lower(): a for a in all_apps()}[args.app]
    design = build_stream_design()
    design.dfe.simulator.engine = args.engine
    design.dfe.simulator.profile = args.profile
    harness = StreamHarness(design)
    vectors = min(args.vectors, harness.max_vectors)
    t0 = time.perf_counter()
    arrays = harness.load_arrays(vectors)
    cycles = harness.run_app(app, vectors)
    got = harness.offload_array(app.destination, vectors)
    wall = time.perf_counter() - t0
    want = app.expected(arrays["a"], arrays["b"], arrays["c"], DEFAULT_SCALAR)
    if not np.allclose(got, want, rtol=1e-12):
        print(f"{app.name}: offloaded data does not match the NumPy reference")
        return 1
    total = design.dfe.simulator.cycles
    elements = vectors * harness.lanes
    measurement = StreamMeasurement(
        app_name=app.name,
        elements=elements,
        runs=1,
        cycles_per_run=cycles,
        clock_mhz=design.dfe.clock_mhz,
        host_overhead_ns=design.dfe.board.pcie.call_overhead_ns,
        bytes_per_element=app.bytes_per_element,
        lanes=harness.lanes,
    ).record_telemetry()
    print(
        f"{app.name}: {vectors} vectors ({elements * 8 / 1024:.0f} KB) "
        f"on the {args.engine} engine (verified against NumPy)"
    )
    print(f"  compute cycles: {cycles}, total simulated: {total}")
    print(
        f"  bandwidth: {measurement.mbps:,.0f} MB/s of "
        f"{measurement.peak_mbps:,.0f} peak "
        f"({measurement.efficiency * 100:.2f}%)"
    )
    print(f"  wall time: {wall:.3f} s ({total / wall:,.0f} cycles/s)")
    report = Report(title="STREAM cycle-accurate run")
    report.entries.append(
        ReportEntry(
            experiment="§V STREAM",
            quantity=f"{app.name} compute cycles",
            measured=cycles,
            metrics={
                "engine": args.engine,
                "vectors": vectors,
                "elements": elements,
                "total_cycles": total,
                "wall_seconds": round(wall, 6),
                "mbps": round(measurement.mbps, 1),
                "peak_mbps": round(measurement.peak_mbps, 1),
                "efficiency": round(measurement.efficiency, 6),
            },
        )
    )
    if args.profile:
        stats = design.dfe.simulator.stats()
        print(
            f"\n  {'kernel':12s} {'active':>9s} {'total':>9s} "
            f"{'batched':>9s} {'util':>7s} {'in':>9s} {'out':>9s} "
            f"{'wall ms':>8s}"
        )
        for s in stats.values():
            print(
                f"  {s.name:12s} {s.active_cycles:9d} {s.total_cycles:9d} "
                f"{s.batched_cycles:9d} {s.utilization:7.1%} "
                f"{s.elements_in:9d} {s.elements_out:9d} "
                f"{s.wall_ns / 1e6:8.2f}"
            )
            report.entries.append(
                ReportEntry(
                    experiment="kernel profile",
                    quantity=s.name,
                    measured=round(s.utilization, 6),
                    metrics=s.to_dict(),
                )
            )
    _emit_json(args, report)
    return 0


def cmd_schedule(args) -> int:
    from .schedule import (
        column_trace,
        customize,
        diagonal_trace,
        random_trace,
        row_trace,
        transpose_trace,
    )

    factories = {
        "rows": lambda: row_trace(args.rows, args.cols),
        "columns": lambda: column_trace(args.rows, args.cols),
        "diagonal": lambda: diagonal_trace(min(args.rows, args.cols)),
        "transpose": lambda: transpose_trace(args.rows, args.cols),
        "random": lambda: random_trace(args.rows, args.cols, seed=args.seed),
    }
    trace = factories[args.workload]()
    result = customize(trace, lane_grids=[(args.p, args.q)], solver=args.solver)
    print(f"workload {trace.name!r} ({len(trace)} cells):")
    for s in sorted(result.schedules, key=lambda s: (-s.speedup, -s.efficiency)):
        print(f"  {s.scheme.value:5s}: {s.n_accesses:4d} accesses, "
              f"speedup {s.speedup:6.2f}, efficiency {s.efficiency:5.2f}"
              f"{'' if s.proven_optimal else '  (not proven optimal)'}")
    best = result.best
    print(f"recommended: {best.scheme.value} on a {best.p}x{best.q} grid")
    return 0


def _describe_op(op) -> str:
    from .program import Barrier, Compute, ParallelRead, ParallelWrite

    if isinstance(op, ParallelRead):
        flags = " fuse" if op.fuse else ""
        return (
            f"read   port={op.port} {op.kind_label()} x{op.n} "
            f"stride={op.stride} mem={op.mem!r} tag={op.tag!r}{flags}"
        )
    if isinstance(op, ParallelWrite):
        values = "deferred" if callable(op.values) else (
            "none" if op.values is None else "inline"
        )
        flags = " fuse" if op.fuse else ""
        return (
            f"write  {op.kind_label()} x{op.n} stride={op.stride} "
            f"mem={op.mem!r} values={values}{flags}"
        )
    if isinstance(op, Compute):
        return f"compute {op.label!r}"
    if isinstance(op, Barrier):
        return f"barrier {op.label!r}"
    return repr(op)


def _segment_stats(compiled, mems) -> list[dict]:
    """Dry per-segment cycle/element counts from the compiled program —
    derived from trace shapes alone, no execution.  ``elements`` is None
    for describe-only programs (no live memory to take the lane count
    from)."""
    stats = []
    for seg in compiled.segments:
        elements = 0
        for step in seg.steps:
            mem = mems.get(step.mem)
            if mem is None:
                elements = None
                break
            ports = len(step.reads) + (1 if step.write is not None else 0)
            elements += step.n * mem.lanes * ports
        stats.append(
            {
                "index": seg.index,
                "traces": len(seg.steps),
                "cycles": seg.access_cycles,
                "elements": elements,
            }
        )
    return stats


def cmd_program_dump(args) -> int:
    from .program import compile_program
    from .program.lower import lower_demo

    program, mems = lower_demo(args.kernel)
    compiled = compile_program(program)
    stats = _segment_stats(compiled, mems) if args.stats else None
    fusion = None
    if args.backend == "fused" and mems:
        from .program import fusion_plan, warm_plans

        warm_plans(compiled, mems)
        fusion = fusion_plan(compiled, mems).summary()
    if args.json_out is not None:
        import json

        doc = {
            "program": program.name,
            "metadata": dict(program.metadata),
            "backend": args.backend,
            "memories": list(compiled.mems),
            "access_cycles": compiled.access_cycles,
            "ops": [_describe_op(op) for op in program.ops],
            "segments": [
                {
                    "index": seg.index,
                    "boundary": getattr(seg.boundary, "label", None),
                    "traces": [
                        {
                            "mem": step.mem,
                            "cycles": step.n,
                            "read_ports": list(step.reads),
                            "has_write": step.write is not None,
                        }
                        for step in seg.steps
                    ],
                }
                for seg in compiled.segments
            ],
        }
        if fusion is not None:
            doc["fusion"] = fusion
        if stats is not None:
            doc["stats"] = {
                "segments": stats,
                "total_cycles": sum(s["cycles"] for s in stats),
                "total_elements": None
                if any(s["elements"] is None for s in stats)
                else sum(s["elements"] for s in stats),
            }
        text = json.dumps(doc, indent=2, default=str)
        if args.json_out == "-":
            print(text)
        else:
            with open(args.json_out, "w") as fh:
                fh.write(text + "\n")
            print(f"JSON dump written to {args.json_out}")
        return 0
    print(f"program {program.name!r}")
    if program.metadata:
        meta = ", ".join(f"{k}={v}" for k, v in program.metadata.items())
        print(f"  metadata: {meta}")
    print(f"  memories: {', '.join(compiled.mems) or '(none)'}"
          f"   access cycles: {compiled.access_cycles}")
    print("  ops:")
    for op in program.ops:
        print(f"    {_describe_op(op)}")
    print(f"  compiled: {len(compiled.segments)} segment(s), "
          f"{compiled.n_traces} trace(s)")
    for seg in compiled.segments:
        tail = ""
        if seg.boundary is not None:
            kind = type(seg.boundary).__name__.lower()
            tail = f" -> {kind} {seg.boundary.label!r}"
        print(f"    segment {seg.index}{tail}")
        for step in seg.steps:
            if step.write is not None:
                shape = "read+write" if step.reads else "write"
            else:
                shape = "read"
            ports = f" ports={list(step.reads)}" if step.reads else ""
            print(f"      trace: {shape} mem={step.mem!r} "
                  f"cycles={step.n}{ports}")
    if fusion is not None:
        cache = fusion["kernel_cache"]
        print(f"  fusion ({args.backend} backend): {fusion['groups']} "
              f"group(s) over {fusion['fused_segments']} segment(s)")
        print(f"    fused steps: {fusion['fused_steps']}, "
              f"fallback steps: {fusion['fallback_steps']}")
        print(f"    kernel cache: {cache['plan_hits']} hit(s), "
              f"{cache['plan_misses']} miss(es), {cache['size']} resident")
    elif args.backend == "fused":
        print("  fusion: unavailable (describe-only program, no live "
              "memories)")
    if stats is not None:
        print("  stats (dry, from trace shapes):")
        print(f"    {'segment':>7s} {'traces':>7s} {'cycles':>8s} "
              f"{'elements':>9s}")
        for s in stats:
            elems = "-" if s["elements"] is None else str(s["elements"])
            print(f"    {s['index']:7d} {s['traces']:7d} {s['cycles']:8d} "
                  f"{elems:>9s}")
        total_elems = sum(s["elements"] or 0 for s in stats)
        elems = "-" if any(s["elements"] is None for s in stats) \
            else str(total_elems)
        print(f"    {'total':>7s} {sum(s['traces'] for s in stats):7d} "
              f"{sum(s['cycles'] for s in stats):8d} {elems:>9s}")
    return 0


def cmd_whatif(args) -> int:
    from .backend import backend_names
    from .dse import whatif_devices
    from .exec import Report, ReportEntry

    cfg = PolyMemConfig.from_any(args)
    backends = tuple(args.backends) if args.backends else None
    rows = whatif_devices(
        cfg,
        **({"backends": backends} if backends else {}),
        stride_words=args.stride_words,
        n_words=args.n_words,
    )
    print(f"what-if sweep for {cfg.label()} "
          f"(stride {args.stride_words} words, {args.n_words} words):")
    print(f"  registered backends: {', '.join(backend_names())}")
    header = (
        f"  {'backend':10s} {'kind':8s} {'fits':>4s} {'MHz':>7s} "
        f"{'peak W':>8s} {'peak R':>8s} {'strided':>8s} {'layout':>8s} "
        f"{'seq':>8s} {'gain':>6s}"
    )
    print(header)
    for row in rows:
        print(
            f"  {row.backend:10s} {row.kind:8s} "
            f"{'yes' if row.feasible else 'no':>4s} {row.clock_mhz:7.1f} "
            f"{row.peak_write_gbps:8.2f} {row.peak_read_gbps:8.2f} "
            f"{row.strided_gbps:8.2f} {row.layout_gbps:8.2f} "
            f"{row.sequential_gbps:8.2f} {row.layout_speedup:5.1f}x"
        )
    report = Report(title="Device-backend what-if sweep")
    for row in rows:
        report.entries.append(
            ReportEntry(
                experiment="whatif",
                quantity=f"{row.backend} strided bandwidth [GB/s]",
                measured=round(row.strided_gbps, 3),
                metrics=row.to_dict(),
            )
        )
    _emit_json(args, report)
    return 0


def cmd_report(args) -> int:
    from .hw.report import synthesis_report_text

    print(synthesis_report_text(PolyMemConfig.from_any(args)))
    return 0


def cmd_experiments(args) -> int:
    from .experiments import run_scorecard

    card = run_scorecard(
        workers=args.workers,
        cache=_cache_from_args(args),
        progress=_progress_from_args(args),
        chunk_size=args.chunk_size,
    )
    print(card.report.render())
    _emit_json(args, card.report)
    return 0 if card.ok else 1


def cmd_telemetry_summary(args) -> int:
    import json

    from .core.exceptions import ConfigurationError
    from .telemetry import load_snapshot, render_summary

    text = sys.stdin.read() if args.file == "-" else open(args.file).read()
    try:
        snapshot = load_snapshot(json.loads(text))
    except (ValueError, json.JSONDecodeError) as exc:
        raise ConfigurationError(
            f"{args.file}: not a telemetry snapshot ({exc})"
        ) from exc
    print(render_summary(snapshot), end="")
    return 0


def cmd_telemetry_ledger(args) -> int:
    import json
    import time as _time

    from .telemetry.ledger import Ledger

    ledger = Ledger(args.file)
    entries = ledger.entries(args.bench)
    if args.last:
        entries = entries[-args.last:]
    if args.json_out is not None:
        text = json.dumps([e.to_dict() for e in entries], indent=2, sort_keys=True)
        if args.json_out == "-":
            print(text)
        else:
            with open(args.json_out, "w") as fh:
                fh.write(text + "\n")
            print(f"JSON written to {args.json_out}")
        return 0
    if not entries:
        print(f"{args.file}: no ledger entries"
              + (f" for bench {args.bench!r}" if args.bench else ""))
        return 0
    width = max(len(e.bench) for e in entries)
    for e in entries:
        git = (e.provenance.get("git") or {})
        sha = (git.get("sha") or "unknown")[:12]
        dirty = "+" if git.get("dirty") else ""
        when = _time.strftime("%Y-%m-%d %H:%M:%S", _time.localtime(e.ts))
        gates = (
            f"{sum(1 for g in e.gates if g.get('ok'))}/{len(e.gates)} gates ok"
            if e.gates
            else "no gates"
        )
        status = "ok  " if e.ok else "FAIL"
        print(
            f"{when}  {status}  {e.bench:<{width}}  {sha}{dirty}  "
            f"{e.provenance.get('backend', '-'):8s}  {gates}"
        )
    print(f"\n{len(entries)} entries in {args.file}")
    return 0


def cmd_telemetry_diff(args) -> int:
    import json

    from .telemetry.diff import (
        diff_entries,
        diff_snapshots,
        load_diff_source,
        render_diff,
    )
    from .telemetry.ledger import LedgerEntry

    a = load_diff_source(args.a)
    b = load_diff_source(args.b)
    kwargs = {"rel_threshold": args.noise, "abs_threshold": args.abs_threshold}
    if isinstance(a, LedgerEntry) and isinstance(b, LedgerEntry):
        diff = diff_entries(a, b, **kwargs)
    else:
        if isinstance(a, LedgerEntry):
            a = a.telemetry or {}
        if isinstance(b, LedgerEntry):
            b = b.telemetry or {}
        diff = diff_snapshots(a, b, labels=(args.a, args.b), **kwargs)
    if args.json_out is not None:
        text = json.dumps(diff.to_dict(), indent=2, sort_keys=True)
        if args.json_out == "-":
            print(text)
        else:
            with open(args.json_out, "w") as fh:
                fh.write(text + "\n")
            print(f"JSON written to {args.json_out}")
    else:
        print(render_diff(diff, show_all=args.all))
    return 0


def cmd_telemetry_regress(args) -> int:
    import json

    from .telemetry.regress import regress, render_regress

    report = regress(
        args.file,
        bench=args.bench,
        baseline_window=args.baseline_window,
        noise=args.noise,
    )
    if args.json_out is not None:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json_out == "-":
            print(text)
        else:
            with open(args.json_out, "w") as fh:
                fh.write(text + "\n")
            print(f"JSON written to {args.json_out}")
    else:
        print(render_regress(report))
    if not report.ok:
        return 1
    if args.strict and report.warned:
        return 1
    return 0


def cmd_telemetry_scorecard(args) -> int:
    from .telemetry.scorecard import build_scorecard, render_json, render_markdown

    card = build_scorecard(args.file)
    text = render_json(card) if args.format == "json" else render_markdown(card)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"scorecard written to {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_productivity(args) -> int:
    from .analysis import productivity_table
    from .analysis.productivity import render_table

    print(render_table(productivity_table()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="polymem",
        description="PolyMem: polymorphic parallel memories "
        "(MAX-PolyMem reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="package and scheme overview")
    p_info.add_argument("-p", type=int, default=2)
    p_info.add_argument("-q", type=int, default=4)
    p_info.set_defaults(fn=cmd_info)

    p_val = sub.add_parser("validate", help="run the §IV-A validation cycle")
    _add_config_args(p_val)
    p_val.add_argument("--style", default="fused", choices=["fused", "modular"])
    p_val.add_argument("--max-rows", type=int, default=32)
    p_val.set_defaults(fn=cmd_validate)

    p_dse = sub.add_parser("dse", help="design-space exploration (§IV)")
    p_dse.add_argument(
        "--source", default="both", choices=["model", "paper", "both"]
    )
    p_dse.add_argument("--figures", action="store_true",
                       help="also print the Fig. 4-8 series")
    p_dse.add_argument("--save", help="persist the sweep to a JSON file")
    p_dse.add_argument("--load", help="render from a saved sweep instead")
    p_dse.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="evaluate sibling grid points in vectorized batches "
        "(byte-identical payloads; --no-batch forces the scalar path)",
    )
    p_dse.add_argument(
        "--prune",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="drop Pareto-dominated points before evaluation (the "
        "frontier is unchanged but the point list is a subset)",
    )
    from .backend import backend_names

    p_dse.add_argument(
        "--backend",
        default=None,
        choices=backend_names(),
        help="device backend to retarget the sweep at (default: the "
        "seed Vectis path; REPRO_BACKEND only affects backend-"
        "parameterized helpers, not this sweep)",
    )
    _add_exec_args(p_dse)
    p_dse.set_defaults(fn=cmd_dse)

    p_whatif = sub.add_parser(
        "whatif",
        help="sweep one configuration across device backends "
        "(BRAM / DRAM / HBM / multi-DFE)",
    )
    _add_config_args(p_whatif)
    p_whatif.add_argument(
        "--backends",
        nargs="+",
        default=None,
        choices=backend_names(),
        metavar="NAME",
        help="backends to compare (default: all built-ins: "
        f"{', '.join(backend_names())})",
    )
    p_whatif.add_argument(
        "--stride-words",
        type=int,
        default=64,
        help="stride of the burst-hostile reference stream (words)",
    )
    p_whatif.add_argument(
        "--n-words",
        type=int,
        default=1 << 14,
        help="length of the reference streams (words)",
    )
    _add_json_arg(p_whatif)
    _add_telemetry_args(p_whatif)
    p_whatif.set_defaults(fn=cmd_whatif)

    p_stream = sub.add_parser("stream", help="STREAM benchmark (§V)")
    p_stream.add_argument("--runs", type=int, default=1000)
    p_stream.add_argument("--fig10", action="store_true")
    _add_exec_args(p_stream)
    p_stream.set_defaults(fn=cmd_stream)
    stream_sub = p_stream.add_subparsers(dest="stream_command")
    p_srun = stream_sub.add_parser(
        "run", help="one cycle-accurate Load/compute/Offload pass"
    )
    p_srun.add_argument(
        "--app", default="copy", choices=["copy", "scale", "sum", "triad"]
    )
    p_srun.add_argument("--vectors", type=int, default=1024)
    p_srun.add_argument(
        "--engine",
        default="batched",
        choices=["scalar", "batched"],
        help="tick engine (batched fast-forwards uniform phases)",
    )
    p_srun.add_argument(
        "--profile",
        action="store_true",
        help="print the per-kernel activity table",
    )
    _add_exec_args(p_srun)
    p_srun.set_defaults(fn=cmd_stream_run)

    p_sched = sub.add_parser("schedule", help="access-schedule optimizer (§III-A)")
    p_sched.add_argument(
        "workload",
        choices=["rows", "columns", "diagonal", "transpose", "random"],
    )
    p_sched.add_argument("--rows", type=int, default=4)
    p_sched.add_argument("--cols", type=int, default=32)
    p_sched.add_argument("-p", type=int, default=2)
    p_sched.add_argument("-q", type=int, default=4)
    p_sched.add_argument("--seed", type=int, default=0)
    p_sched.add_argument("--solver", default="ilp", choices=["ilp", "greedy"])
    p_sched.set_defaults(fn=cmd_schedule)

    from .program.lower import DEMO_NAMES

    p_prog = sub.add_parser(
        "program", help="access-program IR tools (lower/compile/inspect)"
    )
    prog_sub = p_prog.add_subparsers(dest="program_command", required=True)
    p_pdump = prog_sub.add_parser(
        "dump",
        help="lower one demo workload and print its ops and compiled "
        "segments",
    )
    p_pdump.add_argument("kernel", choices=list(DEMO_NAMES))
    _add_json_arg(p_pdump, what="the dump as JSON")
    from .program.engine import BACKENDS, DEFAULT_BACKEND

    p_pdump.add_argument(
        "--backend",
        default=DEFAULT_BACKEND,
        choices=list(BACKENDS),
        help="engine backend to compile the dump for; 'fused' includes "
        "the fusion plan summary (default: %(default)s)",
    )
    p_pdump.add_argument(
        "--stats",
        action="store_true",
        help="print per-segment cycle/element counts derived from the "
        "compiled trace shapes (no execution)",
    )
    _add_telemetry_args(p_pdump)
    p_pdump.set_defaults(fn=cmd_program_dump)

    p_tel = sub.add_parser(
        "telemetry",
        help="inspect recorded telemetry: snapshots, the run ledger, "
        "diffs, regression gates, the scorecard",
    )
    tel_sub = p_tel.add_subparsers(dest="telemetry_command", required=True)
    p_tsum = tel_sub.add_parser(
        "summary",
        help="pretty-print a telemetry snapshot (a report JSON with a "
        "telemetry block, or a raw snapshot)",
    )
    p_tsum.add_argument("file", help="JSON file ('-' reads stdin)")
    p_tsum.set_defaults(fn=cmd_telemetry_summary)

    p_tled = tel_sub.add_parser(
        "ledger", help="list recorded runs from a JSONL run ledger"
    )
    p_tled.add_argument("file", help="ledger file (JSONL)")
    p_tled.add_argument("--bench", default=None, help="only this bench")
    p_tled.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only the N most recent entries",
    )
    _add_json_arg(p_tled, what="the selected entries as JSON")
    p_tled.set_defaults(fn=cmd_telemetry_ledger)

    p_tdiff = tel_sub.add_parser(
        "diff",
        help="compare two runs: per-counter deltas, histogram percentile "
        "shifts, derived-metric deltas, gate/timing movement",
    )
    p_tdiff.add_argument(
        "a",
        help="first run: a snapshot/report JSON, or a ledger file "
        "(newest entry; select with PATH#-2, PATH#0 or PATH#bench-name)",
    )
    p_tdiff.add_argument("b", help="second run (same forms)")
    p_tdiff.add_argument(
        "--noise", type=float, default=0.05, metavar="FRAC",
        help="relative-change threshold below which a row is noise "
        "(default: %(default)s)",
    )
    p_tdiff.add_argument(
        "--abs-threshold", type=float, default=0.0, metavar="X",
        help="additional absolute-change threshold (default: off)",
    )
    p_tdiff.add_argument(
        "--all", action="store_true",
        help="show every compared quantity, not just significant movement",
    )
    _add_json_arg(p_tdiff, what="the structured diff as JSON")
    p_tdiff.set_defaults(fn=cmd_telemetry_diff)

    p_treg = tel_sub.add_parser(
        "regress",
        help="evaluate the newest ledger entries against the declared "
        "gates and a median-of-last-N baseline window",
    )
    p_treg.add_argument("file", help="ledger file (JSONL)")
    p_treg.add_argument("--bench", default=None, help="only this bench")
    p_treg.add_argument(
        "--baseline-window", type=int, default=5, metavar="N",
        help="baseline is the median of the previous N runs "
        "(default: %(default)s)",
    )
    p_treg.add_argument(
        "--noise", type=float, default=0.10, metavar="FRAC",
        help="warn when a passing gate is worse than baseline by more "
        "than this fraction (default: %(default)s)",
    )
    p_treg.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings too, not only hard gate failures",
    )
    _add_json_arg(p_treg, what="the verdicts as JSON")
    p_treg.set_defaults(fn=cmd_telemetry_regress)

    p_tcard = tel_sub.add_parser(
        "scorecard",
        help="render the workload x scheme x backend matrix from the "
        "ledger (ROADMAP item 4)",
    )
    p_tcard.add_argument("file", help="ledger file (JSONL)")
    p_tcard.add_argument(
        "--format", default="markdown", choices=["markdown", "json"]
    )
    p_tcard.add_argument(
        "--out", default=None, metavar="PATH",
        help="write to PATH instead of stdout",
    )
    p_tcard.set_defaults(fn=cmd_telemetry_scorecard)

    p_prod = sub.add_parser("productivity", help="Table II analysis (§III-C)")
    p_prod.set_defaults(fn=cmd_productivity)

    p_exp = sub.add_parser(
        "experiments", help="full paper-vs-reproduction scorecard"
    )
    _add_exec_args(p_exp)
    p_exp.set_defaults(fn=cmd_experiments)

    p_rep = sub.add_parser(
        "report", help="vendor-style synthesis estimate for one config"
    )
    _add_config_args(p_rep)
    p_rep.set_defaults(fn=cmd_report)

    return parser


def _print_span_profiles(tel) -> None:
    """Span cProfile attributions, for runs without a --trace-out file."""
    for ev in tel.tracer.to_chrome_trace()["traceEvents"]:
        rows = (ev.get("args") or {}).get("profile")
        if not rows:
            continue
        print(f"\nprofile of span {ev['name']!r} "
              f"({ev.get('dur', 0) / 1e3:.3f} ms):", file=sys.stderr)
        for row in rows:
            print(
                f"  {row['cumtime']:9.4f}s cum  {row['tottime']:9.4f}s self  "
                f"x{row['ncalls']:<7d} {row['func']}",
                file=sys.stderr,
            )


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    want_metrics = getattr(args, "metrics", False)
    trace_out = getattr(args, "trace_out", None)
    profile_spans = getattr(args, "profile_spans", None)
    if not want_metrics and trace_out is None and profile_spans is None:
        return args.fn(args)
    # --metrics / --trace-out / --profile-spans: run inside a telemetry
    # session (span profiling needs the tracer even without a trace file)
    from .telemetry import Telemetry, render_summary, session

    tel = Telemetry(
        tracing=trace_out is not None or profile_spans is not None,
        label=args.command,
    )
    if profile_spans is not None:
        tel.tracer.profile_spans(profile_spans)
    with session(tel):
        rc = args.fn(args)
    if trace_out is not None:
        tel.tracer.close_open_spans()
        tel.tracer.save(trace_out)
        print(f"trace written to {trace_out} "
              f"(load it at https://ui.perfetto.dev)", file=sys.stderr)
    elif profile_spans is not None:
        _print_span_profiles(tel)
    if want_metrics:
        print(render_summary(tel.snapshot()), end="")
    return rc


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
