"""Command-line interface: ``python -m repro`` (or the ``polymem`` script).

Subcommands map one-to-one onto the paper's artifacts:

* ``info``         — package overview and the Table I scheme matrix;
* ``validate``     — build a configuration and run the §IV-A validation;
* ``dse``          — the §IV design-space exploration (Table IV, Figs 4-8);
* ``stream``       — the §V STREAM experiment (Fig. 10);
* ``schedule``     — the §III-A access-schedule optimizer;
* ``productivity`` — the §III-C Table II analysis;
* ``experiments``  — the full paper-vs-reproduction scorecard;
* ``report``       — a vendor-style synthesis estimate for one config.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.config import KB, PolyMemConfig
from .core.schemes import Scheme

__all__ = ["main", "build_parser"]


def _config_from_args(args) -> PolyMemConfig:
    if args.config:
        return PolyMemConfig.from_text(Path(args.config).read_text())
    return PolyMemConfig(
        args.capacity_kb * KB,
        p=args.p,
        q=args.q,
        scheme=Scheme(args.scheme),
        read_ports=args.ports,
    )


def _add_config_args(sub) -> None:
    sub.add_argument("--config", help="PolyMem key=value configuration file")
    sub.add_argument("--capacity-kb", type=int, default=512)
    sub.add_argument("-p", type=int, default=2, help="lane-grid rows")
    sub.add_argument("-q", type=int, default=4, help="lane-grid columns")
    sub.add_argument(
        "--scheme", default="ReRo", choices=[s.value for s in Scheme]
    )
    sub.add_argument("--ports", type=int, default=1, help="read ports")


def cmd_info(args) -> int:
    from . import __version__
    from .core.conflict import ConflictAnalyzer

    print(f"repro {__version__} — MAX-PolyMem reproduction")
    print("schemes and conflict-free patterns "
          f"(empirical, {args.p}x{args.q} lanes):")
    table = ConflictAnalyzer(args.p, args.q).table()
    for scheme, row in table.items():
        pats = [
            f"{k.value}[{d.label}]" for k, d in row.items() if d.label != "none"
        ]
        print(f"  {scheme.value:5s}: {', '.join(pats)}")
    return 0


def cmd_validate(args) -> int:
    from .maxpolymem import build_design, validate_design

    cfg = _config_from_args(args)
    design = build_design(cfg, style=args.style, clock_source="auto")
    print(f"validating {cfg.label()} ({args.style}, "
          f"{design.dfe.clock_mhz:.0f} MHz) ...")
    report = validate_design(design, max_rows=args.max_rows)
    print(f"  writes: {report.writes}, reads: {report.reads}")
    if report.passed:
        print("  PASSED — every pattern read back the expected data")
        return 0
    for m in report.mismatches[:10]:
        print(f"  MISMATCH: {m}")
    return 1


def cmd_dse(args) -> int:
    from .dse import explore, figure_series, render_series_table, render_table_iv

    if args.load:
        from .util import load_dse_result

        result = load_dse_result(args.load)
    else:
        result = explore()
    if args.save:
        from .util import save_dse_result

        save_dse_result(result, args.save)
        print(f"sweep saved to {args.save}")
    print(render_table_iv(result, source=args.source))
    print(f"peak write bandwidth: {result.peak_write_gbps:.1f} GB/s")
    print(f"peak read  bandwidth: {result.peak_read_gbps:.1f} GB/s")
    if args.figures:
        metrics = {
            "fig4 write bandwidth [GB/s]": lambda p: p.bandwidth.write_gbps,
            "fig5 read bandwidth [GB/s]": lambda p: p.bandwidth.read_gbps,
            "fig6 logic [%]": lambda p: p.logic_pct,
            "fig7 LUT [%]": lambda p: p.lut_pct,
            "fig8 BRAM [%]": lambda p: p.bram_pct,
        }
        for title, fn in metrics.items():
            print(render_series_table(figure_series(result, fn), title, ""))
    return 0


def cmd_stream(args) -> int:
    from .stream_bench import StreamHarness, all_apps, stream_report, sweep_fig10

    harness = StreamHarness()
    measurements = [
        harness.measure_analytic(app, harness.max_vectors, runs=args.runs)
        for app in all_apps()
    ]
    print(stream_report(measurements))
    if args.fig10:
        print(f"\n{'copied KB':>10s} {'MB/s':>9s} {'of peak':>8s}")
        for pt in sweep_fig10(harness=harness, runs=args.runs):
            print(f"{pt.copied_kb:10.1f} {pt.mbps:9.0f} "
                  f"{pt.efficiency * 100:7.2f}%")
    return 0


def cmd_schedule(args) -> int:
    from .schedule import (
        column_trace,
        customize,
        diagonal_trace,
        random_trace,
        row_trace,
        transpose_trace,
    )

    factories = {
        "rows": lambda: row_trace(args.rows, args.cols),
        "columns": lambda: column_trace(args.rows, args.cols),
        "diagonal": lambda: diagonal_trace(min(args.rows, args.cols)),
        "transpose": lambda: transpose_trace(args.rows, args.cols),
        "random": lambda: random_trace(args.rows, args.cols, seed=args.seed),
    }
    trace = factories[args.workload]()
    result = customize(trace, lane_grids=[(args.p, args.q)], solver=args.solver)
    print(f"workload {trace.name!r} ({len(trace)} cells):")
    for s in sorted(result.schedules, key=lambda s: (-s.speedup, -s.efficiency)):
        print(f"  {s.scheme.value:5s}: {s.n_accesses:4d} accesses, "
              f"speedup {s.speedup:6.2f}, efficiency {s.efficiency:5.2f}"
              f"{'' if s.proven_optimal else '  (not proven optimal)'}")
    best = result.best
    print(f"recommended: {best.scheme.value} on a {best.p}x{best.q} grid")
    return 0


def cmd_report(args) -> int:
    from .hw.report import synthesis_report_text

    print(synthesis_report_text(_config_from_args(args)))
    return 0


def cmd_experiments(args) -> int:
    from .experiments import render_report, run_all

    rows = run_all()
    print(render_report(rows))
    return 0 if all(r.ok for r in rows) else 1


def cmd_productivity(args) -> int:
    from .analysis import productivity_table
    from .analysis.productivity import render_table

    print(render_table(productivity_table()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="polymem",
        description="PolyMem: polymorphic parallel memories "
        "(MAX-PolyMem reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="package and scheme overview")
    p_info.add_argument("-p", type=int, default=2)
    p_info.add_argument("-q", type=int, default=4)
    p_info.set_defaults(fn=cmd_info)

    p_val = sub.add_parser("validate", help="run the §IV-A validation cycle")
    _add_config_args(p_val)
    p_val.add_argument("--style", default="fused", choices=["fused", "modular"])
    p_val.add_argument("--max-rows", type=int, default=32)
    p_val.set_defaults(fn=cmd_validate)

    p_dse = sub.add_parser("dse", help="design-space exploration (§IV)")
    p_dse.add_argument(
        "--source", default="both", choices=["model", "paper", "both"]
    )
    p_dse.add_argument("--figures", action="store_true",
                       help="also print the Fig. 4-8 series")
    p_dse.add_argument("--save", help="persist the sweep to a JSON file")
    p_dse.add_argument("--load", help="render from a saved sweep instead")
    p_dse.set_defaults(fn=cmd_dse)

    p_stream = sub.add_parser("stream", help="STREAM benchmark (§V)")
    p_stream.add_argument("--runs", type=int, default=1000)
    p_stream.add_argument("--fig10", action="store_true")
    p_stream.set_defaults(fn=cmd_stream)

    p_sched = sub.add_parser("schedule", help="access-schedule optimizer (§III-A)")
    p_sched.add_argument(
        "workload",
        choices=["rows", "columns", "diagonal", "transpose", "random"],
    )
    p_sched.add_argument("--rows", type=int, default=4)
    p_sched.add_argument("--cols", type=int, default=32)
    p_sched.add_argument("-p", type=int, default=2)
    p_sched.add_argument("-q", type=int, default=4)
    p_sched.add_argument("--seed", type=int, default=0)
    p_sched.add_argument("--solver", default="ilp", choices=["ilp", "greedy"])
    p_sched.set_defaults(fn=cmd_schedule)

    p_prod = sub.add_parser("productivity", help="Table II analysis (§III-C)")
    p_prod.set_defaults(fn=cmd_productivity)

    p_exp = sub.add_parser(
        "experiments", help="full paper-vs-reproduction scorecard"
    )
    p_exp.set_defaults(fn=cmd_experiments)

    p_rep = sub.add_parser(
        "report", help="vendor-style synthesis estimate for one config"
    )
    _add_config_args(p_rep)
    p_rep.set_defaults(fn=cmd_report)

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
