"""Productivity analysis (paper §III-C, Table II).

The paper quantifies MaxJ productivity as lines of code and development
days per module of Fig. 3.  The effort-days are the original authors'
development diary and cannot be re-measured; they are reproduced as
published constants.  The LOC column *can* be re-measured against this
reproduction: each paper module maps to the Python module(s) implementing
the same block, and :func:`productivity_table` counts their non-blank,
non-comment source lines.

The absolute numbers differ (MaxJ vs Python, HDL-generator vs simulator),
but the *relative* weight of the modules — the Shuffle being the largest
single-module effort, Multiple Read Ports being the cheapest — is the
qualitative claim the bench checks.
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass
from pathlib import Path

__all__ = ["ModuleRow", "PAPER_TABLE_II", "count_loc", "productivity_table"]


@dataclass(frozen=True)
class ModuleRow:
    """One row of the productivity table."""

    module: str
    paper_effort_days: int
    paper_loc: int
    our_files: tuple[str, ...]
    our_loc: int = 0


#: Table II of the paper: module, effort (days), LOC — plus the mapping to
#: this reproduction's source files (relative to the ``repro`` package).
PAPER_TABLE_II: tuple[ModuleRow, ...] = (
    ModuleRow("AGU", 2, 194, ("core/agu.py",)),
    ModuleRow("A", 3, 292, ("core/addressing.py",)),
    ModuleRow("Shuffle", 10, 335, ("core/shuffle.py",)),
    ModuleRow("M", 4, 399, ("core/schemes.py",)),
    ModuleRow("Memory banks", 3, 242, ("core/banks.py",)),
    ModuleRow("Inv Shuffle", 4, 346, ()),  # folded into core/shuffle.py
    ModuleRow("Multiple Read Ports", 1, 127, ("core/polymem.py",)),
)

#: integration effort quoted in the §III-C prose
PAPER_INTEGRATION_DAYS = 5
PAPER_FUSED_REIMPLEMENTATION_DAYS = 7


def _docstring_lines(source: str) -> set[int]:
    """Line numbers occupied by module/class/function docstrings."""
    import ast

    doc_lines: set[int] = set()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        body = getattr(node, "body", [])
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            doc = body[0]
            doc_lines.update(range(doc.lineno, doc.end_lineno + 1))
    return doc_lines


def count_loc(path: Path) -> int:
    """Non-blank, non-comment, non-docstring logical source lines."""
    source = path.read_text()
    try:
        doc_lines = _docstring_lines(source)
    except SyntaxError:  # pragma: no cover - valid sources only
        return len([l for l in source.splitlines() if l.strip()])
    code_lines: set[int] = set()
    skip_types = (
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    )
    for tok in tokenize.generate_tokens(io.StringIO(source).readline):
        if tok.type in skip_types:
            continue
        for line in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(line)
    return len(code_lines - doc_lines)


def productivity_table(package_root: Path | None = None) -> list[ModuleRow]:
    """Table II with the ``our_loc`` column measured from this repository."""
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).parent
    rows = []
    for row in PAPER_TABLE_II:
        loc = sum(count_loc(package_root / f) for f in row.our_files)
        rows.append(
            ModuleRow(
                module=row.module,
                paper_effort_days=row.paper_effort_days,
                paper_loc=row.paper_loc,
                our_files=row.our_files,
                our_loc=loc,
            )
        )
    return rows


def render_table(rows: list[ModuleRow]) -> str:
    """Text rendering in the paper's Table II layout, plus our LOC column."""
    out = io.StringIO()
    out.write("PRODUCTIVITY ANALYSIS (paper Table II vs this reproduction)\n")
    out.write(
        f"{'Module/Feature':22s} {'Effort (days)':>13s} {'Paper LOC':>10s} "
        f"{'Repro LOC':>10s}  Repro files\n"
    )
    for r in rows:
        files = ", ".join(r.our_files) if r.our_files else "(see Shuffle)"
        out.write(
            f"{r.module:22s} {r.paper_effort_days:13d} {r.paper_loc:10d} "
            f"{r.our_loc:10d}  {files}\n"
        )
    total_days = sum(r.paper_effort_days for r in rows)
    total_paper = sum(r.paper_loc for r in rows)
    total_ours = sum(r.our_loc for r in rows)
    out.write(
        f"{'TOTAL':22s} {total_days:13d} {total_paper:10d} {total_ours:10d}\n"
    )
    out.write(
        f"(+ paper integration effort: {PAPER_INTEGRATION_DAYS} days modular, "
        f"{PAPER_FUSED_REIMPLEMENTATION_DAYS} days fused re-implementation)\n"
    )
    return out.getvalue()
