"""Productivity analysis (paper §III-C, Table II)."""

from .productivity import (
    PAPER_TABLE_II,
    ModuleRow,
    count_loc,
    productivity_table,
    render_table,
)

__all__ = [
    "ModuleRow",
    "PAPER_TABLE_II",
    "count_loc",
    "productivity_table",
    "render_table",
]
