"""Compilation: turn a :class:`~repro.maxj.graph.KernelGraph` into a
tickable dataflow kernel.

The compiled :class:`GraphKernel` consumes one element from every input
stream per tick, evaluates the graph in topological order (NumPy scalar
arithmetic with hardware wrap semantics), and pushes results to the output
streams after the graph's pipeline depth — MaxJ's balanced-pipeline timing
without simulating every register stage individually.

Stream offsets ``x.offset(-k)`` read a per-node history buffer; during the
first ``k`` cycles the buffer is not yet warm and offsets deliver the
configured ``fill`` value (hardware reads whatever the uninitialized
register chain holds — the DSL makes it deterministic instead).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.exceptions import SimulationError
from ..maxeler.kernel import Kernel
from .graph import _BINOPS, KernelGraph, Node

__all__ = ["GraphKernel", "compile_graph"]


class GraphKernel(Kernel):
    """A compiled dataflow graph as a :class:`~repro.maxeler.kernel.Kernel`.

    Ports match the graph's declared stream names.
    """

    def __init__(self, graph: KernelGraph, fill=0):
        super().__init__(graph.name)
        graph.validate()
        self.graph = graph
        self.fill = fill
        self.depth = graph.pipeline_depth()
        self._tick_index = 0
        # per-offset-node history of its source values
        self._history: dict[int, deque] = {
            n.id: deque(maxlen=n.payload)
            for n in graph.nodes
            if n.op == "offset"
        }
        # results waiting out the pipeline latency: (ready_tick, {name: value})
        self._pipe: deque[tuple[int, dict[str, object]]] = deque()
        self._counters: dict[int, int] = {
            n.id: 0 for n in graph.nodes if n.op == "counter"
        }
        self._accums: dict[int, object] = {
            n.id: n.payload for n in graph.nodes if n.op == "accum"
        }

    # -- evaluation -----------------------------------------------------------
    def _eval(self, node: Node, values: dict[int, object]):
        op = node.op
        if op == "input":
            return values[node.id]  # pre-filled by _tick
        if op == "const":
            return node.payload
        if op == "counter":
            count = self._counters[node.id]
            wrap = node.payload
            self._counters[node.id] = (
                (count + 1) % wrap if wrap else count + 1
            )
            return node.type.cast(count)
        if op == "offset":
            hist = self._history[node.id]
            src = values[node.inputs[0]]
            out = (
                hist[0]
                if len(hist) == hist.maxlen
                else node.type.cast(self.fill)
            )
            hist.append(src)
            return out
        if op == "accum":
            value = values[node.inputs[0]]
            reset = (
                bool(values[node.inputs[1]]) if len(node.inputs) > 1 else False
            )
            base = node.payload if reset else self._accums[node.id]
            import numpy as _np

            with _np.errstate(over="ignore"):
                total = node.type.cast(base + value)
            self._accums[node.id] = total
            return total
        if op == "mux":
            sel, a, b = (values[i] for i in node.inputs)
            return a if sel else b
        if op == "neg":
            return node.type.cast(-values[node.inputs[0]])
        if op == "abs":
            return node.type.cast(abs(values[node.inputs[0]]))
        if op == "cast":
            return node.type.cast(values[node.inputs[0]])
        fn = _BINOPS.get(op)
        if fn is None:  # pragma: no cover - exhaustive ops
            raise SimulationError(f"unknown op {op!r}")
        a, b = (values[i] for i in node.inputs)
        with np.errstate(over="ignore"):
            result = fn(a, b)
        return node.type.cast(result)

    def _tick(self) -> bool:
        progressed = bool(self._pipe)
        # 1) retire results whose pipeline latency elapsed
        while self._pipe and self._pipe[0][0] <= self._tick_index:
            _, outputs = self._pipe.popleft()
            if not all(
                self.outputs[name].can_push() for name in outputs
            ):
                self._pipe.appendleft((self._tick_index, outputs))
                break
            for name, value in outputs.items():
                self.outputs[name].push(value)
        self._tick_index += 1
        # 2) accept one element per input stream (all-or-nothing)
        in_streams = {
            name: self.inputs[name] for name in self.graph.inputs
        }
        if in_streams and not all(s.can_pop() for s in in_streams.values()):
            return progressed
        values: dict[int, object] = {}
        for name, node_id in self.graph.inputs.items():
            node = self.graph.nodes[node_id]
            values[node_id] = node.type.cast(in_streams[name].pop())
        for node in self.graph.nodes:
            if node.op == "input":
                continue
            values[node.id] = self._eval(node, values)
        outputs = {
            name: values[node_id]
            for name, node_id in self.graph.outputs.items()
        }
        self._pipe.append((self._tick_index + self.depth, outputs))
        return True

    @property
    def idle(self) -> bool:
        return not self._pipe


def compile_graph(graph: KernelGraph, fill=0) -> GraphKernel:
    """Compile *graph* into a kernel (the "generate the dataflow graph"
    step of the MaxJ toolchain, §II-B)."""
    return GraphKernel(graph, fill=fill)
