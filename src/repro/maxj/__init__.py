"""A MaxJ-like kernel DSL (paper §II-B's programming model, miniaturized).

Dataflow kernels are described as typed operation graphs with stream
offsets, then compiled into tickable kernels for the
:mod:`repro.maxeler` simulator:

>>> from repro.maxj import KernelGraph, compile_graph, FLOAT64
>>> g = KernelGraph("smooth")
>>> x = g.input("x", FLOAT64)
>>> g.output("y", (x.offset(-1) + x) / 2.0)
>>> kernel = compile_graph(g)
"""

from .compile import GraphKernel, compile_graph
from .graph import DFEVar, KernelGraph, Node
from .types import BOOL, FLOAT64, INT64, UINT32, UINT64, HWType

__all__ = [
    "BOOL",
    "DFEVar",
    "FLOAT64",
    "GraphKernel",
    "HWType",
    "INT64",
    "KernelGraph",
    "Node",
    "UINT32",
    "UINT64",
    "compile_graph",
]
