"""The dataflow graph of a MaxJ-like kernel.

Paper §II-B: *"MaxJ adopts the dataflow programming paradigm, where an
application is described as a directed graph: each node represents an
operation on the data, while the edges represent the flow of data."*

:class:`KernelGraph` builds that graph through a DFEVar-style API:

>>> g = KernelGraph("triad")
>>> x = g.input("x", FLOAT64)
>>> y = g.input("y", FLOAT64)
>>> g.output("out", x + g.constant(3.0, FLOAT64) * y)

Supported nodes: stream inputs/outputs, constants, unary/binary arithmetic
and comparisons, 2-way multiplexers, free-running counters, and *stream
offsets* into the past (``var.offset(-k)`` — MaxJ's signature feature for
windowed computations).  :mod:`repro.maxj.compile` turns the graph into a
tickable :class:`~repro.maxeler.kernel.Kernel`.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..core.exceptions import SimulationError
from .types import BOOL, HWType, unify

__all__ = ["DFEVar", "KernelGraph", "Node"]

#: per-operation pipeline latency in cycles (drives the compiled depth)
OP_LATENCY = {
    "input": 0,
    "const": 0,
    "counter": 0,
    "offset": 0,
    "accum": 1,
    "+": 1,
    "-": 1,
    "*": 2,
    "//": 8,
    "%": 8,
    "/": 4,
    "&": 1,
    "|": 1,
    "^": 1,
    "<<": 1,
    ">>": 1,
    "<": 1,
    "<=": 1,
    ">": 1,
    ">=": 1,
    "==": 1,
    "!=": 1,
    "mux": 1,
    "neg": 1,
    "abs": 1,
    "cast": 0,
}

_BINOPS: dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "//": operator.floordiv,
    "%": operator.mod,
    "/": operator.truediv,
    "&": operator.and_,
    "|": operator.or_,
    "^": operator.xor,
    "<<": np.left_shift,
    ">>": np.right_shift,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

_COMPARISONS = {"<", "<=", ">", ">=", "==", "!="}


@dataclass
class Node:
    """One operation node of the graph."""

    id: int
    op: str
    type: HWType
    inputs: tuple[int, ...] = ()
    payload: Any = None  # const value / input name / offset distance ...

    @property
    def latency(self) -> int:
        return OP_LATENCY[self.op]


class DFEVar:
    """A handle to a node, with MaxJ-style operator overloading."""

    __slots__ = ("graph", "node_id")
    #: keep NumPy from hijacking `np.uint64(x) + DFEVar`
    __array_ufunc__ = None

    def __init__(self, graph: "KernelGraph", node_id: int):
        self.graph = graph
        self.node_id = node_id

    @property
    def node(self) -> Node:
        return self.graph.nodes[self.node_id]

    @property
    def type(self) -> HWType:
        return self.node.type

    # -- arithmetic ---------------------------------------------------------
    def _bin(self, other, op: str, reflected: bool = False) -> "DFEVar":
        other_var = self.graph.as_var(other, self.type)
        a, b = (other_var, self) if reflected else (self, other_var)
        out_t = BOOL if op in _COMPARISONS else unify(a.type, b.type)
        return self.graph._add_node(op, out_t, (a.node_id, b.node_id))

    def __add__(self, other):
        return self._bin(other, "+")

    def __radd__(self, other):
        return self._bin(other, "+", reflected=True)

    def __sub__(self, other):
        return self._bin(other, "-")

    def __rsub__(self, other):
        return self._bin(other, "-", reflected=True)

    def __mul__(self, other):
        return self._bin(other, "*")

    def __rmul__(self, other):
        return self._bin(other, "*", reflected=True)

    def __floordiv__(self, other):
        return self._bin(other, "//")

    def __mod__(self, other):
        return self._bin(other, "%")

    def __truediv__(self, other):
        return self._bin(other, "/")

    def __and__(self, other):
        return self._bin(other, "&")

    def __or__(self, other):
        return self._bin(other, "|")

    def __xor__(self, other):
        return self._bin(other, "^")

    def __lshift__(self, other):
        return self._bin(other, "<<")

    def __rshift__(self, other):
        return self._bin(other, ">>")

    def __lt__(self, other):
        return self._bin(other, "<")

    def __le__(self, other):
        return self._bin(other, "<=")

    def __gt__(self, other):
        return self._bin(other, ">")

    def __ge__(self, other):
        return self._bin(other, ">=")

    def eq(self, other):
        """Element-wise equality (named to keep Python ``==`` for identity)."""
        return self._bin(other, "==")

    def neq(self, other):
        return self._bin(other, "!=")

    def __neg__(self):
        return self.graph._add_node("neg", self.type, (self.node_id,))

    def abs(self):
        return self.graph._add_node("abs", self.type, (self.node_id,))

    def cast(self, to: HWType) -> "DFEVar":
        """Explicit type conversion."""
        return self.graph._add_node("cast", to, (self.node_id,), payload=to)

    # -- MaxJ specials ---------------------------------------------------------
    def offset(self, distance: int) -> "DFEVar":
        """The stream's value *distance* cycles away.

        Only past offsets (negative distances) are synthesizable without
        lookahead; MaxJ's positive offsets buffer the whole stream, which
        the mini-DSL does not model.
        """
        if distance >= 0:
            raise SimulationError(
                "only negative (past) stream offsets are supported"
            )
        return self.graph._add_node(
            "offset", self.type, (self.node_id,), payload=-distance
        )


class KernelGraph:
    """Builder + container for a dataflow kernel graph."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: list[Node] = []
        self.inputs: dict[str, int] = {}
        self.outputs: dict[str, int] = {}

    # -- construction ----------------------------------------------------------
    def _add_node(self, op, type_, inputs=(), payload=None) -> DFEVar:
        node = Node(
            id=len(self.nodes), op=op, type=type_, inputs=tuple(inputs),
            payload=payload,
        )
        self.nodes.append(node)
        return DFEVar(self, node.id)

    def input(self, name: str, type_: HWType) -> DFEVar:
        """Declare a stream input."""
        if name in self.inputs:
            raise SimulationError(f"duplicate input {name!r}")
        var = self._add_node("input", type_, payload=name)
        self.inputs[name] = var.node_id
        return var

    def constant(self, value, type_: HWType) -> DFEVar:
        """A compile-time constant."""
        return self._add_node("const", type_, payload=type_.cast(value))

    def counter(self, type_: HWType, wrap: int | None = None) -> DFEVar:
        """A free-running counter (0, 1, 2, ... per cycle), optionally
        wrapping at *wrap*."""
        return self._add_node("counter", type_, payload=wrap)

    def accumulator(
        self, value: DFEVar, reset: DFEVar | None = None, init=0
    ) -> DFEVar:
        """A running sum: emits the accumulated total *including* this
        cycle's *value*; when *reset* is true the accumulation restarts at
        *value* (MaxJ's ``Reductions.streamHold``/accumulator idiom)."""
        inputs = [value.node_id]
        if reset is not None:
            inputs.append(reset.node_id)
        return self._add_node(
            "accum", value.type, tuple(inputs), payload=value.type.cast(init)
        )

    def mux(self, select: DFEVar, if_true: DFEVar, if_false) -> DFEVar:
        """2-way multiplexer: ``select ? if_true : if_false``."""
        if_false = self.as_var(if_false, if_true.type)
        out_t = unify(if_true.type, if_false.type)
        return self._add_node(
            "mux", out_t, (select.node_id, if_true.node_id, if_false.node_id)
        )

    def output(self, name: str, var: DFEVar) -> None:
        """Declare a stream output driven by *var*."""
        if name in self.outputs:
            raise SimulationError(f"duplicate output {name!r}")
        self.outputs[name] = var.node_id

    def as_var(self, value, type_: HWType) -> DFEVar:
        """Coerce a Python scalar to a constant node (pass DFEVars through)."""
        if isinstance(value, DFEVar):
            return value
        return self.constant(value, type_)

    # -- analysis ------------------------------------------------------------
    def pipeline_depth(self) -> int:
        """Longest latency path from any input to any output — the
        compiled kernel's cycle latency (MaxJ's scheduler balances all
        shorter paths with register chains)."""
        depth: dict[int, int] = {}
        for node in self.nodes:  # nodes are created in topological order
            base = max((depth[i] for i in node.inputs), default=0)
            depth[node.id] = base + node.latency
        return max((depth[i] for i in self.outputs.values()), default=0)

    def max_offset(self) -> int:
        """Deepest past offset (drives the warm-up prologue)."""
        return max(
            (n.payload for n in self.nodes if n.op == "offset"), default=0
        )

    def validate(self) -> None:
        """Structural checks before compilation."""
        if not self.outputs:
            raise SimulationError(f"kernel {self.name!r} has no outputs")
        for node in self.nodes:
            for dep in node.inputs:
                if dep >= node.id:
                    raise SimulationError(
                        "graph contains a combinational cycle"
                    )
