"""Hardware types for the MaxJ-like kernel DSL.

MaxJ describes dataflow hardware with typed stream variables (``DFEVar``).
This module provides the type lattice the mini-DSL uses: fixed-width
integers and IEEE double, each backed by a NumPy scalar type so simulation
arithmetic matches hardware width/wrap semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import SimulationError

__all__ = ["HWType", "UINT64", "INT64", "UINT32", "FLOAT64", "BOOL"]


@dataclass(frozen=True)
class HWType:
    """A hardware value type.

    ``cast`` wraps Python/NumPy values to the type's width (integers wrap
    modulo 2^width like hardware registers; floats pass through).
    """

    name: str
    bits: int
    dtype: type

    def cast(self, value):
        """Coerce *value* to this type's wrap/precision semantics.

        Integers wrap modulo ``2^bits`` (two's complement for signed
        types) like hardware registers; floats convert natively.
        """
        if self.dtype is np.bool_:
            return bool(value)
        if np.issubdtype(self.dtype, np.integer):
            modulus = 1 << self.bits
            v = int(value) % modulus
            if np.issubdtype(self.dtype, np.signedinteger) and v >= modulus // 2:
                v -= modulus
            return self.dtype(v)
        return self.dtype(value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


UINT64 = HWType("uint64", 64, np.uint64)
INT64 = HWType("int64", 64, np.int64)
UINT32 = HWType("uint32", 32, np.uint32)
FLOAT64 = HWType("float64", 64, np.float64)
BOOL = HWType("bool", 1, np.bool_)


def unify(a: HWType, b: HWType) -> HWType:
    """Result type of a binary operation (MaxJ requires explicit casts for
    mixed widths; we allow only identical types or bool promotion)."""
    if a == b:
        return a
    if a is BOOL:
        return b
    if b is BOOL:
        return a
    raise SimulationError(
        f"type mismatch: {a} vs {b} (insert an explicit cast)"
    )
