"""JSON persistence for DSE sweeps and access schedules.

DSE sweeps take seconds and schedules can take longer (exact ILP); both
are natural artifacts to cache between sessions or ship next to a paper.
The format is plain JSON with a ``format`` version tag; loaders
reconstruct full objects (configs included) and verify the tag.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.config import PolyMemConfig
from ..core.exceptions import ConfigurationError
from ..core.patterns import PatternKind
from ..core.schemes import Scheme
from ..dse.explore import DsePoint, DseResult
from ..dse.space import DesignSpace
from ..schedule.cover import CandidateAccess
from ..schedule.customize import Schedule

__all__ = [
    "dse_result_to_json",
    "save_dse_result",
    "load_dse_result",
    "schedule_to_json",
    "save_schedule",
    "load_schedule",
]

DSE_FORMAT = "repro.dse/1"
SCHEDULE_FORMAT = "repro.schedule/1"


# the single config (de)serialization surface lives on PolyMemConfig
_config_to_dict = PolyMemConfig.to_dict
_config_from_dict = PolyMemConfig.from_dict


# -- DSE results ----------------------------------------------------------------


def dse_result_to_json(result: DseResult) -> str:
    """Serialize a sweep (points + the space that produced it)."""
    payload = {
        "format": DSE_FORMAT,
        "space": {
            "capacities_kb": list(result.space.capacities_kb),
            "lane_counts": list(result.space.lane_counts),
            "read_ports": list(result.space.read_ports),
            "schemes": [s.value for s in result.space.schemes],
            "width_bits": result.space.width_bits,
            "max_ports_by_lanes": [
                list(x) for x in result.space.max_ports_by_lanes
            ],
        },
        "points": [
            {
                "config": _config_to_dict(p.config),
                "paper_mhz": p.paper_mhz,
                "model_mhz": p.model_mhz,
                "logic_pct": p.logic_pct,
                "lut_pct": p.lut_pct,
                "bram_pct": p.bram_pct,
                "validated": p.validated,
            }
            for p in result.points
        ],
    }
    return json.dumps(payload, indent=2)


def save_dse_result(result: DseResult, path: Path | str) -> Path:
    """Write the sweep to *path* (JSON)."""
    path = Path(path)
    path.write_text(dse_result_to_json(result))
    return path


def load_dse_result(path: Path | str) -> DseResult:
    """Reconstruct a sweep saved by :func:`save_dse_result`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != DSE_FORMAT:
        raise ConfigurationError(
            f"not a DSE result file (format {payload.get('format')!r})"
        )
    sp = payload["space"]
    space = DesignSpace(
        capacities_kb=tuple(sp["capacities_kb"]),
        lane_counts=tuple(sp["lane_counts"]),
        read_ports=tuple(sp["read_ports"]),
        schemes=tuple(Scheme(s) for s in sp["schemes"]),
        width_bits=sp["width_bits"],
        max_ports_by_lanes=tuple(tuple(x) for x in sp["max_ports_by_lanes"]),
    )
    points = [
        DsePoint(
            config=_config_from_dict(p["config"]),
            paper_mhz=p["paper_mhz"],
            model_mhz=p["model_mhz"],
            logic_pct=p["logic_pct"],
            lut_pct=p["lut_pct"],
            bram_pct=p["bram_pct"],
            validated=p["validated"],
        )
        for p in payload["points"]
    ]
    return DseResult(space=space, points=points)


# -- schedules --------------------------------------------------------------------


def schedule_to_json(schedule: Schedule) -> str:
    """Serialize an access schedule."""
    payload = {
        "format": SCHEDULE_FORMAT,
        "trace_name": schedule.trace_name,
        "scheme": schedule.scheme.value,
        "p": schedule.p,
        "q": schedule.q,
        "proven_optimal": schedule.proven_optimal,
        "solver": schedule.solver,
        "n_cells": schedule._n_cells,
        "accesses": [
            {"kind": a.kind.value, "i": a.i, "j": a.j}
            for a in schedule.accesses
        ],
    }
    return json.dumps(payload, indent=2)


def save_schedule(schedule: Schedule, path: Path | str) -> Path:
    path = Path(path)
    path.write_text(schedule_to_json(schedule))
    return path


def load_schedule(path: Path | str) -> Schedule:
    """Reconstruct a schedule saved by :func:`save_schedule`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != SCHEDULE_FORMAT:
        raise ConfigurationError(
            f"not a schedule file (format {payload.get('format')!r})"
        )
    return Schedule(
        trace_name=payload["trace_name"],
        scheme=Scheme(payload["scheme"]),
        p=payload["p"],
        q=payload["q"],
        accesses=tuple(
            CandidateAccess(PatternKind(a["kind"]), a["i"], a["j"])
            for a in payload["accesses"]
        ),
        proven_optimal=payload["proven_optimal"],
        solver=payload["solver"],
        _n_cells=payload["n_cells"],
    )
