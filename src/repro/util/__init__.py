"""Cross-cutting utilities: result persistence and experiment manifests."""

from .persist import (
    dse_result_to_json,
    load_dse_result,
    load_schedule,
    save_dse_result,
    save_schedule,
    schedule_to_json,
)

__all__ = [
    "dse_result_to_json",
    "load_dse_result",
    "load_schedule",
    "save_dse_result",
    "save_schedule",
    "schedule_to_json",
]
