"""Memory-bank array: the ``p x q`` grid of BRAM-backed banks (Fig. 3).

Each bank is a linear word store of ``bank_depth`` 64-bit words.  Multiple
read ports are realized by *replication* (paper §IV-C): with ``R`` read
ports, ``R`` identical bank sets exist; a write is broadcast to every
replica in the same cycle, while read port ``r`` is served exclusively by
replica ``r``.  This keeps every port single-ported at the BRAM level and
multiplies BRAM usage by ``R`` — exactly the behaviour the paper's Fig. 8
reports.

The storage itself is a single NumPy array of shape
``(replicas, p*q, bank_depth)``; bank reads/writes are fancy-indexed so a
whole parallel access (or a batch of accesses) is served without Python
loops.
"""

from __future__ import annotations

import numpy as np

from .exceptions import AddressError, ConfigurationError, PortError

__all__ = ["BankArray"]


class BankArray:
    """The replicated ``p x q`` bank grid.

    Parameters
    ----------
    num_banks:
        Number of banks per replica (= ``p * q`` lanes).
    bank_depth:
        Words per bank.
    read_ports:
        Number of independent read ports (replicas).
    dtype:
        Word type; the paper evaluates 64-bit words throughout.
    """

    def __init__(
        self,
        num_banks: int,
        bank_depth: int,
        read_ports: int = 1,
        dtype=np.uint64,
    ):
        if num_banks < 1:
            raise ConfigurationError(f"need >= 1 bank, got {num_banks}")
        if bank_depth < 1:
            raise ConfigurationError(f"need bank depth >= 1, got {bank_depth}")
        if read_ports < 1:
            raise ConfigurationError(f"need >= 1 read port, got {read_ports}")
        self.num_banks = num_banks
        self.bank_depth = bank_depth
        self.read_ports = read_ports
        self.dtype = np.dtype(dtype)
        self._data = np.zeros((read_ports, num_banks, bank_depth), dtype=self.dtype)

    # -- capacity ---------------------------------------------------------
    @property
    def words_per_replica(self) -> int:
        """Addressable words in one replica."""
        return self.num_banks * self.bank_depth

    @property
    def capacity_bytes(self) -> int:
        """User-visible capacity in bytes (replicas hold copies, not extra
        capacity)."""
        return self.words_per_replica * self.dtype.itemsize

    @property
    def stored_bytes(self) -> int:
        """Physical storage including replication (drives BRAM counts)."""
        return self.capacity_bytes * self.read_ports

    # -- access -----------------------------------------------------------
    def _check(self, banks: np.ndarray, addrs: np.ndarray) -> None:
        if banks.shape != addrs.shape:
            raise AddressError("banks/addrs shape mismatch")
        if banks.size == 0:
            return
        if banks.min() < 0 or banks.max() >= self.num_banks:
            raise AddressError(
                f"bank id out of range [0, {self.num_banks})"
            )
        if addrs.min() < 0 or addrs.max() >= self.bank_depth:
            raise AddressError(
                f"intra-bank address out of range [0, {self.bank_depth})"
            )

    def write(self, banks, addrs, values) -> None:
        """Broadcast-write *values* to (bank, addr) slots of every replica.

        All arguments are equal-shape arrays (any shape); one parallel
        access passes ``p*q``-length vectors.
        """
        banks = np.asarray(banks)
        addrs = np.asarray(addrs)
        values = np.asarray(values, dtype=self.dtype)
        self._check(banks, addrs)
        self._data[:, banks, addrs] = values

    def read(self, port: int, banks, addrs) -> np.ndarray:
        """Read (bank, addr) slots from read port *port*'s replica."""
        if not 0 <= port < self.read_ports:
            raise PortError(
                f"read port {port} out of range [0, {self.read_ports})"
            )
        banks = np.asarray(banks)
        addrs = np.asarray(addrs)
        self._check(banks, addrs)
        return self._data[port, banks, addrs]

    def read_slots(self, port: int, slots) -> np.ndarray:
        """Gather flat slot ids (``bank * bank_depth + addr``) from one
        replica.  No bounds check: callers pass plan-validated slots
        (a fitting access cannot produce an out-of-range id)."""
        return self._data[port].reshape(-1)[slots]

    def write_slots(self, slots, values) -> None:
        """Broadcast-scatter *values* to flat slot ids on every replica.

        Duplicate slot ids resolve to the value latest in flattened order
        (NumPy fancy-assignment semantics) — batched callers rely on this
        for last-write-wins.  No bounds check (see :meth:`read_slots`)."""
        values = np.asarray(values, dtype=self.dtype)
        flat = self._data.reshape(self.read_ports, -1)
        for replica in range(self.read_ports):
            flat[replica][slots] = values

    def fill(self, values: np.ndarray) -> None:
        """Bulk-load every replica with *values*, shaped ``(banks, depth)``."""
        values = np.asarray(values, dtype=self.dtype)
        if values.shape != (self.num_banks, self.bank_depth):
            raise AddressError(
                f"fill expects shape {(self.num_banks, self.bank_depth)}, "
                f"got {values.shape}"
            )
        self._data[:] = values[None, :, :]

    def snapshot(self, port: int = 0) -> np.ndarray:
        """Copy of one replica's raw contents, shape ``(banks, depth)``."""
        if not 0 <= port < self.read_ports:
            raise PortError(
                f"read port {port} out of range [0, {self.read_ports})"
            )
        return self._data[port].copy()

    def replicas_consistent(self) -> bool:
        """All replicas hold identical data (invariant after any sequence of
        writes; checked by property tests)."""
        return bool((self._data == self._data[0][None]).all())

    def clear(self) -> None:
        """Zero all storage."""
        self._data.fill(0)
