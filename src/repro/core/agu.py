"""Address Generation Unit (block ``AGU`` in paper Fig. 3).

The AGU expands a parallel access request — anchor ``(i, j)`` plus an access
type — into the ``p * q`` individual element coordinates, one per lane, in
PolyMem's canonical lane order.  One AGU expansion happens per port per
cycle; the write port and every read port own an independent AGU so that one
write and ``R`` reads can be expanded simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .exceptions import AddressError, PatternError
from .patterns import AccessPattern, PatternKind

__all__ = ["AccessRequest", "AGU"]


@dataclass(frozen=True)
class AccessRequest:
    """A single parallel access: shape + anchor (the ``(i, j, AccType)``
    triple of the paper), optionally dilated by a *stride* (sparse access,
    paper §VII)."""

    kind: PatternKind
    i: int
    j: int
    stride: int = 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tail = f"/s{self.stride}" if self.stride > 1 else ""
        return f"{self.kind.value}@({self.i},{self.j}){tail}"


@dataclass(frozen=True)
class AGU:
    """Address Generation Unit for a ``rows x cols`` space on ``p x q`` lanes.

    >>> agu = AGU(rows=8, cols=8, p=2, q=4)
    >>> ii, jj = agu.expand(AccessRequest(PatternKind.RECTANGLE, 0, 0))
    >>> len(ii)
    8
    """

    rows: int
    cols: int
    p: int
    q: int

    def pattern(self, kind: PatternKind, stride: int = 1) -> AccessPattern:
        """The :class:`AccessPattern` for *kind* on this AGU's lane grid."""
        return AccessPattern(PatternKind(kind), self.p, self.q, stride)

    def expand(self, request: AccessRequest) -> tuple[np.ndarray, np.ndarray]:
        """Expand *request* into per-lane coordinates ``(ii, jj)``.

        Raises :class:`AddressError` when the access leaves the logical
        address space (PolyMem performs no wrap-around).
        """
        pat = self.pattern(request.kind, request.stride)
        ii, jj = pat.coordinates(request.i, request.j)
        if (
            ii[0] < 0
            or jj.min() < 0
            or ii.max() >= self.rows
            or jj.max() >= self.cols
        ):
            raise AddressError(
                f"access {request} exceeds the {self.rows}x{self.cols} space"
            )
        return ii, jj

    def expand_many(
        self, kind: PatternKind, anchors_i, anchors_j, stride: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized expansion of a batch of same-shape accesses.

        Parameters
        ----------
        kind:
            Common shape of every access in the batch.
        anchors_i, anchors_j:
            1-D integer arrays of anchor coordinates, length ``B``.

        Returns
        -------
        (ii, jj):
            ``(B, p*q)`` arrays of element coordinates, lane order along
            axis 1.
        """
        anchors_i = np.asarray(anchors_i, dtype=np.int64)
        anchors_j = np.asarray(anchors_j, dtype=np.int64)
        if anchors_i.shape != anchors_j.shape or anchors_i.ndim != 1:
            raise PatternError("anchor arrays must be equal-length 1-D")
        di, dj = self.pattern(kind, stride).offsets
        ii = anchors_i[:, None] + di[None, :]
        jj = anchors_j[:, None] + dj[None, :]
        if ii.size and (
            ii.min() < 0
            or jj.min() < 0
            or ii.max() >= self.rows
            or jj.max() >= self.cols
        ):
            raise AddressError(
                f"batch of {kind} accesses exceeds the "
                f"{self.rows}x{self.cols} space"
            )
        return ii, jj
