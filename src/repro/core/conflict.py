"""Conflict-freedom checking and empirical anchor-domain analysis.

A parallel access is *conflict-free* when its ``p * q`` elements map to
``p * q`` distinct banks, so every element can be served by a different
BRAM in the same cycle.  This module provides:

* :func:`is_conflict_free` — check one access under one scheme;
* :func:`conflict_banks` — identify the clashing banks (for diagnostics);
* :class:`ConflictAnalyzer` — empirically derive, by exhaustive enumeration
  over anchor residue classes, the *anchor domain* in which a pattern is
  conflict-free for a scheme.  This is how Table I of the paper is
  reproduced and validated (``benchmarks/bench_table1_schemes.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .patterns import AccessPattern, PatternKind, kinds_in_table_order
from .schemes import Scheme, flat_module_assignment

__all__ = [
    "is_conflict_free",
    "conflict_banks",
    "serialization_factor",
    "AnchorDomain",
    "ConflictAnalyzer",
]


def access_banks(
    scheme: Scheme, kind: PatternKind, i: int, j: int, p: int, q: int,
    stride: int = 1,
) -> np.ndarray:
    """Flat bank ids (length ``p*q``) touched by the access, in lane order."""
    pat = AccessPattern(kind, p, q, stride)
    ii, jj = pat.coordinates(i, j)
    return flat_module_assignment(scheme, ii, jj, p, q)


def is_conflict_free(
    scheme: Scheme, kind: PatternKind, i: int, j: int, p: int, q: int,
    stride: int = 1,
) -> bool:
    """True when the access at anchor (i, j) touches p*q distinct banks."""
    banks = access_banks(scheme, kind, i, j, p, q, stride)
    return len(np.unique(banks)) == banks.size


def conflict_banks(
    scheme: Scheme, kind: PatternKind, i: int, j: int, p: int, q: int,
    stride: int = 1,
) -> list[int]:
    """Bank ids hit more than once by the access (empty = conflict-free)."""
    banks = access_banks(scheme, kind, i, j, p, q, stride)
    uniq, counts = np.unique(banks, return_counts=True)
    return uniq[counts > 1].tolist()


def serialization_factor(
    scheme: Scheme, kind: PatternKind, i: int, j: int, p: int, q: int,
    stride: int = 1,
) -> int:
    """Cycles hardware needs for this access: the worst per-bank load.

    A conflict-free access costs 1 cycle.  A conflicting one must be
    serialized by the bank arbiter: each bank serves one element per
    cycle, so the access takes ``max_k |{lanes mapped to bank k}|`` cycles
    — the quantity the scheme choice is minimizing.  (PolyMem itself
    refuses conflicting accesses; this function prices the alternative for
    analyses like the transpose example's ReO-vs-ReTr comparison.)
    """
    banks = access_banks(scheme, kind, i, j, p, q, stride)
    _, counts = np.unique(banks, return_counts=True)
    return int(counts.max())


@dataclass(frozen=True)
class AnchorDomain:
    """The set of anchors at which a (scheme, pattern) pair is conflict-free.

    ``label`` is one of:

    * ``"any"`` — every anchor;
    * ``"i_aligned"`` — anchors with ``i % p == 0``;
    * ``"j_aligned"`` — anchors with ``j % q == 0``;
    * ``"aligned"`` — anchors with both alignments;
    * ``"none"`` — no anchor (pattern unsupported).

    ``ok_residues`` is the exact set of working ``(i % P, j % P)`` residue
    classes over the MAF period ``P``, which the label summarizes.
    """

    label: str
    period_i: int
    period_j: int
    ok_residues: frozenset[tuple[int, int]]

    def contains(self, i: int, j: int) -> bool:
        """Whether anchor (i, j) lies in the conflict-free domain."""
        return (i % self.period_i, j % self.period_j) in self.ok_residues

    @property
    def fraction(self) -> float:
        """Fraction of all anchor residue classes that are conflict-free."""
        return len(self.ok_residues) / (self.period_i * self.period_j)


class ConflictAnalyzer:
    """Empirical anchor-domain analysis for a lane grid ``p x q``.

    The MAFs are periodic in ``i`` with period ``p * q`` (because of the
    ``i // p`` terms combined with ``mod p``/``mod q``) and in ``j`` with
    period ``p * q``; testing one full period of anchor residues is
    therefore exhaustive.
    """

    def __init__(self, p: int, q: int):
        self.p = p
        self.q = q
        #: anchor periodicity of every MAF on this lane grid
        self.period = p * q

    def _anchor_window(self, kind: PatternKind) -> tuple[range, range]:
        """Anchor ranges covering one full residue period, shifted so that
        every pattern (including the anti-diagonal, which extends to
        ``j - (pq - 1)``) stays at non-negative coordinates."""
        n = self.period
        base_j = n if kind is PatternKind.ANTI_DIAGONAL else 0
        return range(n), range(base_j, base_j + n)

    def domain(self, scheme: Scheme, kind: PatternKind) -> AnchorDomain:
        """Exhaustively derive the conflict-free anchor domain."""
        p, q, n = self.p, self.q, self.period
        ok: set[tuple[int, int]] = set()
        win_i, win_j = self._anchor_window(kind)
        for i0 in win_i:
            for j0 in win_j:
                if is_conflict_free(scheme, kind, i0, j0, p, q):
                    ok.add((i0 % n, j0 % n))
        label = self._label(ok)
        return AnchorDomain(label, n, n, frozenset(ok))

    def _label(self, ok: set[tuple[int, int]]) -> str:
        n = self.period
        full = {(a, b) for a in range(n) for b in range(n)}
        if ok == full:
            return "any"
        i_aligned = {(a, b) for a, b in full if a % self.p == 0}
        j_aligned = {(a, b) for a, b in full if b % self.q == 0}
        both = i_aligned & j_aligned
        if i_aligned <= ok:
            return "i_aligned"
        if j_aligned <= ok:
            return "j_aligned"
        if both <= ok:
            return "aligned"
        return "none" if not ok else "partial"

    def stride_domain(
        self, scheme: Scheme, kind: PatternKind, stride: int
    ) -> AnchorDomain:
        """Anchor domain of a strided (dilated) pattern.

        Strided patterns are the library's *sparse* accesses; the domain
        depends on arithmetic like gcd(stride, q), which this derives
        empirically (periodicity still holds: dilation preserves the MAF
        period)."""
        p, q, n = self.p, self.q, self.period
        ok: set[tuple[int, int]] = set()
        base_j = n * stride if kind is PatternKind.ANTI_DIAGONAL else 0
        for i0 in range(n):
            for j0 in range(base_j, base_j + n):
                if is_conflict_free(scheme, kind, i0, j0, p, q, stride):
                    ok.add((i0 % n, j0 % n))
        return AnchorDomain(self._label(ok), n, n, frozenset(ok))

    def stride_table(
        self, scheme: Scheme, kind: PatternKind, strides=range(1, 9)
    ) -> dict[int, str]:
        """Which strides keep *kind* conflict-free under *scheme*
        (labels as in :class:`AnchorDomain`)."""
        return {
            s: self.stride_domain(scheme, kind, s).label for s in strides
        }

    def table(self, schemes=None, kinds=None) -> dict[Scheme, dict[PatternKind, AnchorDomain]]:
        """Full scheme x pattern domain table (the reproduction of Table I)."""
        from .schemes import all_schemes, validate_lane_grid
        from .exceptions import SchemeError

        schemes = list(schemes) if schemes is not None else list(all_schemes())
        kinds = list(kinds) if kinds is not None else list(kinds_in_table_order())
        out: dict[Scheme, dict[PatternKind, AnchorDomain]] = {}
        for s in schemes:
            try:
                validate_lane_grid(s, self.p, self.q)
            except SchemeError:
                continue
            out[s] = {k: self.domain(s, k) for k in kinds}
        return out

    def verify_spec(self, scheme: Scheme) -> list[str]:
        """Cross-check the static :class:`~repro.core.schemes.SchemeSpec`
        claims against the empirical domains.

        Returns a list of human-readable discrepancies (empty = the spec is
        sound *and* complete for this lane grid).
        """
        from .schemes import SCHEME_SPECS

        spec = SCHEME_SPECS[scheme]
        problems: list[str] = []
        constraint_to_label = {
            "any": {"any"},
            "i_aligned": {"any", "i_aligned"},
            "j_aligned": {"any", "j_aligned"},
        }
        for kind in kinds_in_table_order():
            dom = self.domain(scheme, kind)
            entry = spec.entry_for(kind)
            claimed = entry is not None and entry.condition_holds(self.p, self.q)
            if claimed:
                allowed = constraint_to_label[entry.anchor_constraint]
                if dom.label not in allowed:
                    problems.append(
                        f"{scheme}/{kind.value}: spec claims "
                        f"{entry.anchor_constraint}, empirically {dom.label}"
                    )
        return problems
