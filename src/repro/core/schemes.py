"""PRF parallel access schemes and their Module Assignment Functions.

A *Module Assignment Function* (MAF) maps a 2-D logical coordinate ``(i, j)``
to one of ``p * q`` memory banks, identified by a ``(bank_row, bank_col)``
pair with ``bank_row in [0, p)`` and ``bank_col in [0, q)``.  The choice of
MAF determines which families of parallel accesses are *conflict-free*, i.e.
touch every bank at most once, and can therefore complete in a single cycle.

The five schemes reproduced here are the PRF schemes of Table I of the
MAX-PolyMem paper (Ciobanu et al., 2018):

========  =====================  =====================
Scheme    ``m_v(i, j)``          ``m_h(i, j)``
========  =====================  =====================
``ReO``   ``i % p``              ``j % q``
``ReRo``  ``(i + j // q) % p``   ``j % q``
``ReCo``  ``i % p``              ``(i // p + j) % q``
``RoCo``  ``(i + j // q) % p``   ``(i // p + j) % q``
``ReTr``  ``i % p``              ``(i + j) % q``      (for ``p | q``)
========  =====================  =====================

For ``ReTr`` with ``q | p`` (tall lane grids) the mirrored formula
``m_v = (i + j) % p``, ``m_h = j % q`` is used instead.

All MAFs are implemented with vectorized NumPy arithmetic; scalar ``int``
inputs produce scalar outputs, array inputs produce arrays of the same shape.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .exceptions import SchemeError
from .patterns import PatternKind

__all__ = ["Scheme", "SchemeSpec", "SCHEME_SPECS", "module_assignment", "all_schemes"]


class Scheme(str, enum.Enum):
    """The five PRF multiview access schemes (paper Table I)."""

    ReO = "ReO"
    ReRo = "ReRo"
    ReCo = "ReCo"
    RoCo = "RoCo"
    ReTr = "ReTr"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _retr_uses_mirror(p: int, q: int) -> bool:
    """Return True when ReTr must use the tall-grid (``q | p``) formula."""
    if q % p == 0:
        return False
    if p % q == 0:
        return True
    raise SchemeError(
        f"ReTr requires p | q or q | p; got p={p}, q={q} "
        f"(neither divides the other)"
    )


def module_assignment(scheme: Scheme, i, j, p: int, q: int):
    """Evaluate the MAF of *scheme* on coordinates ``(i, j)``.

    Parameters
    ----------
    scheme:
        One of the five :class:`Scheme` members.
    i, j:
        Logical row/column coordinates.  Scalars or equal-shape integer
        arrays; negative coordinates are accepted (Python's floored
        division/modulo semantics keep the MAF periodic).
    p, q:
        Lane-grid geometry: banks are arranged as ``p`` rows by ``q``
        columns.

    Returns
    -------
    (bank_row, bank_col):
        Pair of scalars or arrays matching the input shape.
    """
    i = np.asarray(i)
    j = np.asarray(j)
    if scheme is Scheme.ReO:
        mv, mh = i % p, j % q
    elif scheme is Scheme.ReRo:
        mv, mh = (i + j // q) % p, j % q
    elif scheme is Scheme.ReCo:
        mv, mh = i % p, (i // p + j) % q
    elif scheme is Scheme.RoCo:
        mv, mh = (i + j // q) % p, (i // p + j) % q
    elif scheme is Scheme.ReTr:
        if _retr_uses_mirror(p, q):
            mv, mh = (i + j) % p, j % q
        else:
            mv, mh = i % p, (i + j) % q
    else:  # pragma: no cover - exhaustive enum
        raise SchemeError(f"unknown scheme {scheme!r}")
    if mv.ndim == 0:
        return int(mv), int(mh)
    return mv, mh


def flat_module_assignment(scheme: Scheme, i, j, p: int, q: int):
    """Like :func:`module_assignment` but returns the flat bank id
    ``bank_row * q + bank_col`` in ``[0, p*q)``."""
    mv, mh = module_assignment(scheme, i, j, p, q)
    return mv * q + mh


@dataclass(frozen=True)
class SupportedPattern:
    """One conflict-free pattern entry of a scheme.

    Attributes
    ----------
    kind:
        The access-pattern shape.
    anchor_constraint:
        ``"any"`` — conflict-free at every anchor; ``"i_aligned"`` — the
        anchor row must satisfy ``i % p == 0``; ``"j_aligned"`` — the anchor
        column must satisfy ``j % q == 0``.
    condition:
        Human-readable arithmetic condition on (p, q) under which the entry
        holds (empty when unconditional).
    """

    kind: PatternKind
    anchor_constraint: str = "any"
    condition: str = ""

    def condition_holds(self, p: int, q: int) -> bool:
        """Evaluate the (p, q) side condition for this entry."""
        if not self.condition:
            return True
        if self.condition == "gcd(p, q+1) == 1":
            return math.gcd(p, q + 1) == 1
        if self.condition == "gcd(p, q-1) == 1":
            return math.gcd(p, q - 1) == 1
        if self.condition == "gcd(q, p+1) == 1":
            return math.gcd(q, p + 1) == 1
        if self.condition == "gcd(q, p-1) == 1":
            return math.gcd(q, p - 1) == 1
        if self.condition == "gcd(p, q) == 1":
            return math.gcd(p, q) == 1
        if self.condition == "p | q or q | p":
            return q % p == 0 or p % q == 0
        raise SchemeError(f"unknown side condition {self.condition!r}")

    def anchor_ok(self, i: int, j: int, p: int, q: int) -> bool:
        """Check whether an anchor satisfies this entry's alignment rule."""
        if self.anchor_constraint == "any":
            return True
        if self.anchor_constraint == "i_aligned":
            return i % p == 0
        if self.anchor_constraint == "j_aligned":
            return j % q == 0
        raise SchemeError(
            f"unknown anchor constraint {self.anchor_constraint!r}"
        )


@dataclass(frozen=True)
class SchemeSpec:
    """Static description of a scheme: its conflict-free pattern family."""

    scheme: Scheme
    description: str
    supported: tuple[SupportedPattern, ...]

    def supports(
        self, kind: PatternKind, p: int, q: int, anchor: tuple[int, int] | None = None
    ) -> bool:
        """True when *kind* is conflict-free for lane grid (p, q).

        When *anchor* is given the alignment constraint is also checked;
        otherwise the answer states whether the pattern is supported at
        least at aligned anchors.
        """
        for entry in self.supported:
            if entry.kind is not kind or not entry.condition_holds(p, q):
                continue
            if anchor is None or entry.anchor_ok(*anchor, p, q):
                return True
        return False

    def entry_for(self, kind: PatternKind) -> SupportedPattern | None:
        """Return the table entry for *kind*, if any."""
        for entry in self.supported:
            if entry.kind is kind:
                return entry
        return None

    def pattern_kinds(self, p: int, q: int) -> tuple[PatternKind, ...]:
        """The pattern kinds usable with lane grid (p, q)."""
        return tuple(
            e.kind for e in self.supported if e.condition_holds(p, q)
        )


SCHEME_SPECS: dict[Scheme, SchemeSpec] = {
    Scheme.ReO: SchemeSpec(
        Scheme.ReO,
        "Rectangle Only: dense p x q blocks at arbitrary anchors.",
        (
            SupportedPattern(PatternKind.RECTANGLE),
            SupportedPattern(PatternKind.MAIN_DIAGONAL, condition="gcd(p, q) == 1"),
            SupportedPattern(PatternKind.ANTI_DIAGONAL, condition="gcd(p, q) == 1"),
        ),
    ),
    Scheme.ReRo: SchemeSpec(
        Scheme.ReRo,
        "Rectangle + Row: blocks, 1 x (p*q) rows, and both diagonals.",
        (
            SupportedPattern(PatternKind.RECTANGLE),
            SupportedPattern(PatternKind.ROW),
            SupportedPattern(PatternKind.MAIN_DIAGONAL, condition="gcd(p, q+1) == 1"),
            SupportedPattern(PatternKind.ANTI_DIAGONAL, condition="gcd(p, q-1) == 1"),
        ),
    ),
    Scheme.ReCo: SchemeSpec(
        Scheme.ReCo,
        "Rectangle + Column: blocks, (p*q) x 1 columns, and both diagonals.",
        (
            SupportedPattern(PatternKind.RECTANGLE),
            SupportedPattern(PatternKind.COLUMN),
            SupportedPattern(PatternKind.MAIN_DIAGONAL, condition="gcd(q, p+1) == 1"),
            SupportedPattern(PatternKind.ANTI_DIAGONAL, condition="gcd(q, p-1) == 1"),
        ),
    ),
    Scheme.RoCo: SchemeSpec(
        Scheme.RoCo,
        "Row + Column: rows and columns anywhere, rectangles at row-aligned "
        "anchors (i % p == 0).",
        (
            SupportedPattern(PatternKind.ROW),
            SupportedPattern(PatternKind.COLUMN),
            SupportedPattern(PatternKind.RECTANGLE, anchor_constraint="i_aligned"),
        ),
    ),
    Scheme.ReTr: SchemeSpec(
        Scheme.ReTr,
        "Rectangle + Transposed Rectangle: p x q and q x p blocks at "
        "arbitrary anchors (requires p | q or q | p).",
        (
            SupportedPattern(PatternKind.RECTANGLE, condition="p | q or q | p"),
            SupportedPattern(
                PatternKind.TRANSPOSED_RECTANGLE, condition="p | q or q | p"
            ),
        ),
    ),
}


def all_schemes() -> tuple[Scheme, ...]:
    """All five schemes, in the paper's Table I order."""
    return (Scheme.ReO, Scheme.ReRo, Scheme.ReCo, Scheme.RoCo, Scheme.ReTr)


def spec(scheme: Scheme | str) -> SchemeSpec:
    """Look up the :class:`SchemeSpec` for *scheme* (accepts its name)."""
    if isinstance(scheme, str):
        try:
            scheme = Scheme(scheme)
        except ValueError as exc:
            raise SchemeError(f"unknown scheme name {scheme!r}") from exc
    return SCHEME_SPECS[scheme]


def validate_lane_grid(scheme: Scheme, p: int, q: int) -> None:
    """Raise :class:`SchemeError` when (p, q) is unusable with *scheme*."""
    if p < 1 or q < 1:
        raise SchemeError(f"lane grid must be positive, got p={p}, q={q}")
    if scheme is Scheme.ReTr:
        _retr_uses_mirror(p, q)  # raises when neither divides the other


def schemes_supporting(kinds: Iterable[PatternKind], p: int, q: int) -> list[Scheme]:
    """Schemes whose conflict-free family covers *all* of *kinds* at (p, q)."""
    wanted = set(kinds)
    result = []
    for s in all_schemes():
        try:
            validate_lane_grid(s, p, q)
        except SchemeError:
            continue
        if wanted <= set(SCHEME_SPECS[s].pattern_kinds(p, q)):
            result.append(s)
    return result
