"""The intra-bank addressing function ``A`` (block ``A`` in paper Fig. 3).

After the MAF decides *which* bank stores element ``(i, j)``, the addressing
function decides *where inside that bank* it lives:

.. math::

    A(i, j) = (i \\,\\mathrm{div}\\, p) \\cdot (M / q) + (j \\,\\mathrm{div}\\, q)

for a logical address space of ``N x M`` elements over a ``p x q`` lane
grid, with ``p | N`` and ``q | M``.  This is the standard PRF addressing
function; it is injective per bank for *all five* schemes (proved in
``tests/core/test_addressing.py`` by exhaustive enumeration and by a
hypothesis property test).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .exceptions import AddressError, ConfigurationError

__all__ = ["AddressingFunction"]


@dataclass(frozen=True)
class AddressingFunction:
    """Intra-bank address computation for an ``N x M`` space on ``p x q`` banks.

    Parameters
    ----------
    rows, cols:
        Logical address-space extent (``N`` rows by ``M`` columns).
    p, q:
        Lane-grid geometry.
    """

    rows: int
    cols: int
    p: int
    q: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError(
                f"address space must be positive, got {self.rows}x{self.cols}"
            )
        if self.p <= 0 or self.q <= 0:
            raise ConfigurationError(
                f"lane grid must be positive, got {self.p}x{self.q}"
            )
        if self.rows % self.p:
            raise ConfigurationError(
                f"rows ({self.rows}) must be a multiple of p ({self.p})"
            )
        if self.cols % self.q:
            raise ConfigurationError(
                f"cols ({self.cols}) must be a multiple of q ({self.q})"
            )

    @property
    def bank_depth(self) -> int:
        """Words stored in each bank: ``(N / p) * (M / q)``."""
        return (self.rows // self.p) * (self.cols // self.q)

    @property
    def blocks_per_row(self) -> int:
        """Number of ``q``-wide column blocks per logical row (``M / q``)."""
        return self.cols // self.q

    def __call__(self, i, j):
        """Intra-bank address of element(s) ``(i, j)``.

        Accepts scalars or equal-shape integer arrays.  Raises
        :class:`AddressError` when any coordinate is out of range.
        """
        i = np.asarray(i)
        j = np.asarray(j)
        if np.any(i < 0) or np.any(i >= self.rows) or np.any(j < 0) or np.any(j >= self.cols):
            raise AddressError(
                f"coordinates out of the {self.rows}x{self.cols} address space"
            )
        addr = (i // self.p) * self.blocks_per_row + (j // self.q)
        if addr.ndim == 0:
            return int(addr)
        return addr

    def inverse(self, bank_row: int, bank_col: int, addr: int, scheme) -> tuple[int, int]:
        """Recover the logical ``(i, j)`` stored at *(bank, addr)*.

        Needed by debugging and the offload path.  *scheme* is a
        :class:`~repro.core.schemes.Scheme`; the inverse depends on the MAF
        because the addressing function alone is not injective globally.
        """
        from .schemes import Scheme, module_assignment

        scheme = Scheme(scheme)
        block_i, block_j = divmod(int(addr), self.blocks_per_row)
        base_i, base_j = block_i * self.p, block_j * self.q
        # Within the p x q block starting at (base_i, base_j), exactly one
        # element maps to (bank_row, bank_col) for every scheme (blocks are
        # rectangles, always conflict-free).  Search it directly.
        for di in range(self.p):
            for dj in range(self.q):
                mv, mh = module_assignment(
                    scheme, base_i + di, base_j + dj, self.p, self.q
                )
                if (mv, mh) == (bank_row, bank_col):
                    return base_i + di, base_j + dj
        raise AddressError(
            f"no element of block ({block_i},{block_j}) maps to bank "
            f"({bank_row},{bank_col}) under {scheme}"
        )  # pragma: no cover - unreachable for valid schemes
