"""PolyMem configuration: the paper's compile-time parameter file.

The paper (§IV-A): *"Our design is easily configurable: a simple
configuration file sets, at compile time, the required DSE parameters."*
:class:`PolyMemConfig` is that file's in-memory form; it validates the
parameter combination, derives the bank geometry, and (de)serializes to the
``key = value`` format used by the original MaxJ build.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

from .exceptions import CapacityError, ConfigurationError
from .schemes import Scheme, validate_lane_grid

__all__ = ["PolyMemConfig", "KB", "MB"]

KB = 1024
MB = 1024 * KB

#: 64-bit data width used for every experiment in the paper (§IV-A)
DEFAULT_WIDTH_BITS = 64


@dataclass(frozen=True)
class PolyMemConfig:
    """A complete PolyMem instantiation (Table III parameter vector).

    Parameters
    ----------
    capacity_bytes:
        Total user-visible storage (e.g. ``512 * KB``).
    p, q:
        Lane grid; ``p * q`` = elements transferred per port per cycle.
    scheme:
        One of the five PRF access schemes.
    read_ports:
        Independent parallel read ports (1–4 in the paper's DSE).
    width_bits:
        Element width; the paper fixes 64.
    rows, cols:
        Logical 2-D address-space shape.  When omitted, a near-square
        default with ``p | rows`` and ``q | cols`` is derived from the
        capacity.
    """

    capacity_bytes: int
    p: int
    q: int
    scheme: Scheme = Scheme.ReRo
    read_ports: int = 1
    width_bits: int = DEFAULT_WIDTH_BITS
    rows: int = field(default=0)
    cols: int = field(default=0)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise CapacityError(f"capacity must be positive, got {self.capacity_bytes}")
        if self.width_bits % 8 or self.width_bits <= 0:
            raise ConfigurationError(
                f"width must be a positive multiple of 8 bits, got {self.width_bits}"
            )
        if self.read_ports < 1:
            raise ConfigurationError(f"need >= 1 read port, got {self.read_ports}")
        scheme = Scheme(self.scheme)
        object.__setattr__(self, "scheme", scheme)
        validate_lane_grid(scheme, self.p, self.q)
        if self.capacity_bytes % self.word_bytes:
            raise CapacityError(
                f"capacity {self.capacity_bytes} B is not a whole number of "
                f"{self.word_bytes}-byte words"
            )
        rows, cols = self.rows, self.cols
        if (rows == 0) != (cols == 0):
            raise ConfigurationError("set both rows and cols, or neither")
        if rows == 0:
            rows, cols = self._default_shape()
            object.__setattr__(self, "rows", rows)
            object.__setattr__(self, "cols", cols)
        if rows % self.p or cols % self.q:
            raise ConfigurationError(
                f"address space {rows}x{cols} must be divisible by the "
                f"{self.p}x{self.q} lane grid"
            )
        if rows * cols != self.total_words:
            raise CapacityError(
                f"{rows}x{cols} space holds {rows * cols} words but capacity "
                f"{self.capacity_bytes} B holds {self.total_words}"
            )

    # -- derived geometry ---------------------------------------------------
    @property
    def word_bytes(self) -> int:
        """Bytes per element."""
        return self.width_bits // 8

    @property
    def lanes(self) -> int:
        """Elements per port per cycle (= number of banks per replica)."""
        return self.p * self.q

    @property
    def total_words(self) -> int:
        """User-visible words stored."""
        return self.capacity_bytes // self.word_bytes

    @property
    def bank_depth(self) -> int:
        """Words per bank per replica."""
        return self.total_words // self.lanes

    @property
    def bank_bytes(self) -> int:
        """Bytes per bank per replica."""
        return self.bank_depth * self.word_bytes

    def _default_shape(self) -> tuple[int, int]:
        """Near-square rows x cols with p | rows, q | cols.

        Works in units of p x q blocks: ``total_words = (rows/p * cols/q) *
        lanes``; choose the block grid as square as possible.
        """
        blocks = self.total_words // self.lanes
        if blocks * self.lanes != self.total_words:
            raise CapacityError(
                f"capacity {self.capacity_bytes} B is not a whole number of "
                f"{self.p}x{self.q} element blocks"
            )
        br = int(blocks**0.5)
        while br > 1 and blocks % br:
            br -= 1
        return br * self.p, (blocks // br) * self.q

    # -- convenience ----------------------------------------------------------
    def with_(self, **kwargs) -> "PolyMemConfig":
        """A modified copy (clears the derived shape when geometry changes)."""
        if ("rows" not in kwargs and "cols" not in kwargs) and (
            {"capacity_bytes", "p", "q", "width_bits"} & set(kwargs)
        ):
            kwargs.setdefault("rows", 0)
            kwargs.setdefault("cols", 0)
        return replace(self, **kwargs)

    def label(self) -> str:
        """Short label used by the DSE tables, e.g. ``512KB-8L-2R-ReRo``."""
        cap = self.capacity_bytes
        cap_s = f"{cap // MB}MB" if cap % MB == 0 else f"{cap // KB}KB"
        return f"{cap_s}-{self.lanes}L-{self.read_ports}R-{self.scheme.value}"

    # -- serialization ----------------------------------------------------------
    def to_text(self) -> str:
        """Serialize to the MaxJ-style ``key = value`` configuration file."""
        out = io.StringIO()
        out.write("# PolyMem compile-time configuration\n")
        out.write(f"capacity_bytes = {self.capacity_bytes}\n")
        out.write(f"p = {self.p}\n")
        out.write(f"q = {self.q}\n")
        out.write(f"scheme = {self.scheme.value}\n")
        out.write(f"read_ports = {self.read_ports}\n")
        out.write(f"width_bits = {self.width_bits}\n")
        out.write(f"rows = {self.rows}\n")
        out.write(f"cols = {self.cols}\n")
        return out.getvalue()

    @classmethod
    def from_text(cls, text: str) -> "PolyMemConfig":
        """Parse the ``key = value`` configuration format."""
        values: dict[str, str] = {}
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "=" not in line:
                raise ConfigurationError(
                    f"config line {lineno}: expected 'key = value', got {raw!r}"
                )
            key, _, value = line.partition("=")
            values[key.strip()] = value.strip()
        required = {"capacity_bytes", "p", "q"}
        missing = required - values.keys()
        if missing:
            raise ConfigurationError(f"config missing keys: {sorted(missing)}")
        try:
            return cls(
                capacity_bytes=int(values["capacity_bytes"]),
                p=int(values["p"]),
                q=int(values["q"]),
                scheme=Scheme(values.get("scheme", "ReRo")),
                read_ports=int(values.get("read_ports", "1")),
                width_bits=int(values.get("width_bits", str(DEFAULT_WIDTH_BITS))),
                rows=int(values.get("rows", "0")),
                cols=int(values.get("cols", "0")),
            )
        except ValueError as exc:
            raise ConfigurationError(f"bad config value: {exc}") from exc

    def to_dict(self) -> dict:
        """Plain-JSON form (stable field order; used by caches and reports)."""
        return {
            "capacity_bytes": self.capacity_bytes,
            "p": self.p,
            "q": self.q,
            "scheme": self.scheme.value,
            "read_ports": self.read_ports,
            "width_bits": self.width_bits,
            "rows": self.rows,
            "cols": self.cols,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolyMemConfig":
        """Build from a mapping.  Accepts the aliases used around the repo:
        ``capacity_kb`` for ``capacity_bytes`` and ``ports`` for
        ``read_ports``."""
        d = dict(data)
        if "capacity_kb" in d and "capacity_bytes" not in d:
            d["capacity_bytes"] = int(d.pop("capacity_kb")) * KB
        d.pop("capacity_kb", None)
        if "ports" in d and "read_ports" not in d:
            d["read_ports"] = d.pop("ports")
        d.pop("ports", None)
        unknown = d.keys() - {
            "capacity_bytes", "p", "q", "scheme", "read_ports",
            "width_bits", "rows", "cols",
        }
        if unknown:
            raise ConfigurationError(f"unknown config keys: {sorted(unknown)}")
        missing = {"capacity_bytes", "p", "q"} - d.keys()
        if missing:
            raise ConfigurationError(f"config missing keys: {sorted(missing)}")
        try:
            return cls(
                capacity_bytes=int(d["capacity_bytes"]),
                p=int(d["p"]),
                q=int(d["q"]),
                scheme=Scheme(d.get("scheme", Scheme.ReRo)),
                read_ports=int(d.get("read_ports", 1)),
                width_bits=int(d.get("width_bits", DEFAULT_WIDTH_BITS)),
                rows=int(d.get("rows", 0)),
                cols=int(d.get("cols", 0)),
            )
        except ValueError as exc:
            raise ConfigurationError(f"bad config value: {exc}") from exc

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "PolyMemConfig":
        """Load a configuration file: ``*.json`` or the ``key = value``
        MaxJ-style format."""
        path = Path(path)
        text = path.read_text()
        if path.suffix == ".json":
            return cls.from_dict(json.loads(text))
        return cls.from_text(text)

    @classmethod
    def from_any(cls, source: Any, **overrides: Any) -> "PolyMemConfig":
        """The single config-construction surface.

        Accepts, in order of checks:

        * a :class:`PolyMemConfig` (returned as-is, or copied via
          :meth:`with_` when *overrides* are given);
        * a path (``str``/``os.PathLike``) to a ``key = value`` or JSON
          configuration file;
        * a mapping of field names (aliases ``capacity_kb``/``ports`` ok);
        * any namespace-like object with config attributes — notably an
          ``argparse.Namespace`` from the CLI parsers, honouring its
          ``config`` (file path), ``capacity_kb``, ``p``, ``q``, ``scheme``
          and ``ports`` attributes.

        Keyword *overrides* are applied on top of whatever *source* yields.
        """
        if isinstance(source, cls):
            return source.with_(**overrides) if overrides else source
        if isinstance(source, (str, os.PathLike)):
            cfg = cls.from_file(source)
            return cfg.with_(**overrides) if overrides else cfg
        if isinstance(source, Mapping):
            return cls.from_dict({**source, **overrides})
        # namespace-like (argparse.Namespace or similar attribute bag)
        if getattr(source, "config", None):
            cfg = cls.from_file(source.config)
            return cfg.with_(**overrides) if overrides else cfg
        fields = {}
        for attr, key in (
            ("capacity_bytes", "capacity_bytes"),
            ("capacity_kb", "capacity_kb"),
            ("p", "p"),
            ("q", "q"),
            ("scheme", "scheme"),
            ("read_ports", "read_ports"),
            ("ports", "ports"),
            ("width_bits", "width_bits"),
            ("rows", "rows"),
            ("cols", "cols"),
        ):
            value = getattr(source, attr, None)
            if value is not None:
                fields.setdefault(key, value)
        if not fields:
            raise ConfigurationError(
                f"cannot build a PolyMemConfig from {type(source).__name__!r}"
            )
        return cls.from_dict({**fields, **overrides})
