"""Typed exceptions raised by the PolyMem core.

Every error raised by :mod:`repro` derives from :class:`PolyMemError`, so
callers can catch the whole family with a single ``except`` clause while
tests can assert on precise subtypes.
"""

from __future__ import annotations

__all__ = [
    "PolyMemError",
    "ConfigurationError",
    "SchemeError",
    "PatternError",
    "ConflictError",
    "AddressError",
    "CapacityError",
    "PortError",
    "ProgramError",
    "SimulationError",
    "ScheduleError",
]


class PolyMemError(Exception):
    """Base class for all PolyMem errors."""


class ConfigurationError(PolyMemError):
    """An invalid :class:`~repro.core.config.PolyMemConfig` was supplied."""


class SchemeError(ConfigurationError):
    """A scheme was used with lane geometry it does not support."""


class PatternError(PolyMemError):
    """An access pattern is malformed or unsupported by the active scheme."""


class ConflictError(PolyMemError):
    """A parallel access would hit the same memory bank more than once.

    PolyMem guarantees conflict-free access only for the pattern/anchor
    combinations listed in Table I of the paper; any other access raises
    this error rather than silently serializing.
    """

    def __init__(self, message: str, banks=None):
        super().__init__(message)
        #: bank indices involved in the conflict (may be ``None``)
        self.banks = banks


class AddressError(PolyMemError):
    """An access falls outside the configured 2-D logical address space."""


class CapacityError(ConfigurationError):
    """Requested capacity does not fit the memory or the device."""


class PortError(PolyMemError):
    """A read/write used a port index outside the configured port count."""


class SimulationError(PolyMemError):
    """The dataflow simulation reached an inconsistent state."""


class ProgramError(PolyMemError):
    """An :class:`~repro.program.AccessProgram` is malformed (bad op
    structure, mismatched stream lengths, unresolvable write values)."""


class ScheduleError(PolyMemError):
    """The access-schedule optimizer could not produce a valid schedule."""
