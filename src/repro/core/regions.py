"""Memory regions: the programmer's view of PolyMem (paper Fig. 2).

Figure 2 of the paper shows a 2-D logical address space holding ten
*Regions* (R0–R9) of different shapes — matrices, rows, columns, diagonals
— each read with one or several parallel accesses.  This module provides
that abstraction:

* :class:`Region` — a named rectangular window of the PolyMem address
  space with relative-coordinate parallel accesses;
* :class:`RegionMap` — an allocator that places regions into a PolyMem
  without overlap (the "software cache" placement the paper's §I
  envisions: *"programmers easily place data structures such as vectors
  and matrices in this smart buffer"*).

Allocation uses a simple shelf packer aligned to the lane grid, so every
region's origin is block-aligned — which guarantees that aligned-rectangle
loads/stores work under every scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .exceptions import AddressError, CapacityError, PatternError
from .patterns import PatternKind
from .polymem import PolyMem

__all__ = ["Region", "RegionMap"]


@dataclass
class Region:
    """A named rows x cols window at (origin_i, origin_j) of a PolyMem."""

    name: str
    origin_i: int
    origin_j: int
    rows: int
    cols: int
    memory: PolyMem = field(repr=False)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    def _check(self, i: int, j: int) -> None:
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise AddressError(
                f"region {self.name!r}: ({i},{j}) outside {self.rows}x{self.cols}"
            )

    # -- parallel accesses in region-relative coordinates ------------------
    def read(self, kind: PatternKind, i: int, j: int, port: int = 0) -> np.ndarray:
        """One parallel read anchored at region-relative (i, j)."""
        self._check(i, j)
        return self.memory.read(kind, self.origin_i + i, self.origin_j + j, port)

    def write(self, kind: PatternKind, i: int, j: int, values) -> None:
        """One parallel write anchored at region-relative (i, j)."""
        self._check(i, j)
        self.memory.write(kind, self.origin_i + i, self.origin_j + j, values)

    def read_batch(self, kind: PatternKind, anchors_i, anchors_j, port: int = 0):
        """Vectorized reads at region-relative anchors."""
        anchors_i = np.asarray(anchors_i) + self.origin_i
        anchors_j = np.asarray(anchors_j) + self.origin_j
        return self.memory.read_batch(kind, anchors_i, anchors_j, port)

    # -- block tiling -------------------------------------------------------
    def anchor_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Absolute anchors of the ``p x q`` tiles covering the region,
        row-major — the anchor arrays an :class:`AccessTrace` streams."""
        p, q = self.memory.p, self.memory.q
        bi = np.arange(0, self.rows, p)
        bj = np.arange(0, self.cols, q)
        gi, gj = np.meshgrid(bi, bj, indexing="ij")
        return gi.ravel() + self.origin_i, gj.ravel() + self.origin_j

    def to_blocks(self, matrix: np.ndarray) -> np.ndarray:
        """Region-shaped matrix -> ``(tiles, p*q)`` lane-ordered blocks
        matching :meth:`anchor_grid` order."""
        p, q = self.memory.p, self.memory.q
        return (
            matrix.reshape(self.rows // p, p, self.cols // q, q)
            .swapaxes(1, 2)
            .reshape(-1, p * q)
        )

    def from_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`to_blocks`."""
        p, q = self.memory.p, self.memory.q
        return (
            blocks.reshape(self.rows // p, self.cols // q, p, q)
            .swapaxes(1, 2)
            .reshape(self.rows, self.cols)
        )

    # -- bulk host transfers ------------------------------------------------
    def store(self, matrix: np.ndarray) -> None:
        """Fill the whole region from a host matrix (block-aligned writes)."""
        matrix = np.asarray(matrix)
        if matrix.shape != self.shape:
            raise PatternError(
                f"region {self.name!r} expects {self.shape}, got {matrix.shape}"
            )
        anchors_i, anchors_j = self.anchor_grid()
        self.memory.write_batch(
            PatternKind.RECTANGLE,
            anchors_i,
            anchors_j,
            self.to_blocks(matrix),
            check=False,
        )

    def load(self) -> np.ndarray:
        """Read the whole region back into a host matrix."""
        anchors_i, anchors_j = self.anchor_grid()
        return self.from_blocks(
            self.memory.read_batch(
                PatternKind.RECTANGLE, anchors_i, anchors_j, check=False
            )
        )


class RegionMap:
    """Places named regions into a PolyMem (shelf allocator, block-aligned).

    >>> from repro.core.config import PolyMemConfig, KB
    >>> pm = PolyMem(PolyMemConfig(4 * KB, p=2, q=4))
    >>> rm = RegionMap(pm)
    >>> a = rm.allocate("A", 4, 8)
    >>> b = rm.allocate("B", 4, 8)
    >>> (a.origin_i, a.origin_j) != (b.origin_i, b.origin_j)
    True
    """

    def __init__(self, memory: PolyMem):
        self.memory = memory
        self.regions: dict[str, Region] = {}
        self._shelf_i = 0      # top of the current shelf
        self._shelf_h = 0      # height of the current shelf
        self._cursor_j = 0     # next free column on the current shelf
        self._free_list: list[tuple[int, int, int, int]] = []

    def _align(self, value: int, step: int) -> int:
        return -(-value // step) * step

    def allocate(self, name: str, rows: int, cols: int) -> Region:
        """Allocate a rows x cols region; origin is lane-grid aligned.

        Raises :class:`CapacityError` when the space is exhausted and
        :class:`PatternError` on duplicate names.
        """
        if name in self.regions:
            raise PatternError(f"region {name!r} already allocated")
        if rows < 1 or cols < 1:
            raise PatternError(f"region {name!r}: shape must be positive")
        p, q = self.memory.p, self.memory.q
        rows_a = self._align(rows, p)
        cols_a = self._align(cols, q)
        if cols_a > self.memory.cols:
            raise CapacityError(
                f"region {name!r} is wider ({cols}) than the memory "
                f"({self.memory.cols})"
            )
        recycled = self._try_free_list(rows_a, cols_a)
        if recycled is not None:
            region = Region(
                name=name,
                origin_i=recycled.origin_i,
                origin_j=recycled.origin_j,
                rows=rows_a,
                cols=cols_a,
                memory=self.memory,
            )
            self.regions[name] = region
            return region
        if self._cursor_j + cols_a > self.memory.cols:
            # open a new shelf
            self._shelf_i += self._shelf_h
            self._shelf_h = 0
            self._cursor_j = 0
        if self._shelf_i + rows_a > self.memory.rows:
            raise CapacityError(
                f"PolyMem exhausted: cannot place region {name!r} "
                f"({rows}x{cols})"
            )
        region = Region(
            name=name,
            origin_i=self._shelf_i,
            origin_j=self._cursor_j,
            rows=rows_a,
            cols=cols_a,
            memory=self.memory,
        )
        self._cursor_j += cols_a
        self._shelf_h = max(self._shelf_h, rows_a)
        self.regions[name] = region
        return region

    def free(self, name: str) -> None:
        """Release a region's name and footprint.

        The shelf cursor cannot be rewound (shelf packing), but freed
        footprints are kept on a free list and re-used by the next
        allocation that fits — enough for the Fig. 2 workflow of swapping
        data structures in and out of the smart buffer.
        """
        region = self.regions.pop(name, None)
        if region is None:
            raise PatternError(f"region {name!r} is not allocated")
        self._free_list.append(
            (region.origin_i, region.origin_j, region.rows, region.cols)
        )

    def _try_free_list(self, rows_a: int, cols_a: int) -> Region | None:
        for idx, (fi, fj, fr, fc) in enumerate(self._free_list):
            if rows_a <= fr and cols_a <= fc:
                del self._free_list[idx]
                # return the unused remainder (right strip) to the list
                if fc - cols_a >= self.memory.q:
                    self._free_list.append(
                        (fi, fj + cols_a, fr, fc - cols_a)
                    )
                # and the bottom strip under the allocation
                if fr - rows_a >= self.memory.p:
                    self._free_list.append(
                        (fi + rows_a, fj, fr - rows_a, cols_a)
                    )
                return Region("", fi, fj, rows_a, cols_a, self.memory)
        return None

    def __getitem__(self, name: str) -> Region:
        return self.regions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.regions

    def free_rows(self) -> int:
        """Rows left below the last shelf (a lower bound on free space)."""
        return self.memory.rows - (self._shelf_i + self._shelf_h)

    def overlaps(self) -> list[tuple[str, str]]:
        """Sanity check: pairs of overlapping regions (always empty)."""
        out = []
        items = list(self.regions.values())
        for a in range(len(items)):
            for b in range(a + 1, len(items)):
                r1, r2 = items[a], items[b]
                if (
                    r1.origin_i < r2.origin_i + r2.rows
                    and r2.origin_i < r1.origin_i + r1.rows
                    and r1.origin_j < r2.origin_j + r2.cols
                    and r2.origin_j < r1.origin_j + r1.cols
                ):
                    out.append((r1.name, r2.name))
        return out
