"""The PolyMem facade: a polymorphic parallel memory (paper Fig. 3).

:class:`PolyMem` is the functional model of the whole design: per-port AGUs,
the module-assignment block ``M``, the addressing function ``A``, the three
shuffles, and the replicated bank array.  One *cycle* moves one parallel
access through every port: up to one write plus one read per read port, all
independent (paper §III-B: "one write access and one read access for each
read port can happen independently at the same time").

Two access paths exist:

* the **architectural path** (:meth:`step`, :meth:`read`, :meth:`write`) —
  routes data through explicit :class:`~repro.core.shuffle.Shuffle` objects
  exactly as the hardware does, one access at a time;
* the **batch path** (:meth:`read_batch`, :meth:`write_batch`) — a
  vectorized fast path for simulation throughput that fancy-indexes the
  bank array directly; it is bit-identical to the architectural path
  (property-tested) and counts cycles the same way.

The naming convention for shuffles follows the implementation, not the
paper's signal convention: our reordering signal is the lane→bank
permutation, under which the write-side data shuffle is a *scatter*
(``repro``'s regular :class:`Shuffle`) and the read-side is a *gather*
(:class:`InverseShuffle`).  With the paper's bank→lane signal the labels
swap; the two conventions are functionally identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .addressing import AddressingFunction
from .agu import AGU, AccessRequest
from .banks import BankArray
from .config import PolyMemConfig
from .conflict import conflict_banks
from .exceptions import (
    ConfigurationError,
    ConflictError,
    PatternError,
    PortError,
    SimulationError,
)
from .patterns import PatternKind
from .schemes import SCHEME_SPECS, flat_module_assignment
from .shuffle import InverseShuffle, Shuffle

__all__ = ["PolyMem", "AccessRequest", "PortStats"]


@dataclass
class PortStats:
    """Per-port access counters (feeds bandwidth accounting)."""

    accesses: int = 0
    elements: int = 0

    def record(self, lanes: int) -> None:
        self.accesses += 1
        self.elements += lanes


class PolyMem:
    """A configured polymorphic parallel memory.

    >>> from repro.core.config import PolyMemConfig, KB
    >>> from repro.core.schemes import Scheme
    >>> pm = PolyMem(PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo))
    >>> import numpy as np
    >>> pm.write(PatternKind.RECTANGLE, 0, 0, np.arange(8))
    >>> pm.read(PatternKind.ROW, 0, 0)[:4]
    array([0, 1, 2, 3], dtype=uint64)
    """

    #: same-cycle read/write collision policies (Xilinx BRAM port semantics)
    COLLISION_POLICIES = ("read_first", "write_first", "forbid")

    def __init__(self, config: PolyMemConfig, collision_policy: str = "read_first"):
        if collision_policy not in self.COLLISION_POLICIES:
            raise ConfigurationError(
                f"collision_policy must be one of {self.COLLISION_POLICIES}, "
                f"got {collision_policy!r}"
            )
        #: what a read returns when the same cycle's write hits the same
        #: (bank, address) slot: ``"read_first"`` — the old data (the
        #: default, matching READ_FIRST BRAM ports and the paper's
        #: independent-port description); ``"write_first"`` — the freshly
        #: written data (WRITE_FIRST write-through); ``"forbid"`` — raise,
        #: turning same-cycle RAW hazards into hard errors (verification
        #: mode; real BRAMs return undefined data on cross-port collisions)
        self.collision_policy = collision_policy
        self.config = config
        self.scheme = config.scheme
        self.p, self.q = config.p, config.q
        self.rows, self.cols = config.rows, config.cols
        self.agu = AGU(self.rows, self.cols, self.p, self.q)
        self.addressing = AddressingFunction(self.rows, self.cols, self.p, self.q)
        self.banks = BankArray(
            num_banks=config.lanes,
            bank_depth=config.bank_depth,
            read_ports=config.read_ports,
            dtype=np.uint64 if config.width_bits == 64 else np.uint32,
        )
        self._addr_shuffle = Shuffle(config.lanes)
        self._write_shuffle = Shuffle(config.lanes)
        self._read_shuffle = InverseShuffle(config.lanes)
        #: total cycles consumed by parallel accesses
        self.cycles = 0
        self.write_stats = PortStats()
        self.read_stats = [PortStats() for _ in range(config.read_ports)]

    # -- geometry ---------------------------------------------------------
    @property
    def lanes(self) -> int:
        """Elements per port per cycle."""
        return self.config.lanes

    @property
    def read_ports(self) -> int:
        """Number of independent read ports."""
        return self.config.read_ports

    # -- access validation --------------------------------------------------
    def check_access(self, request: AccessRequest) -> None:
        """Raise :class:`ConflictError` when *request* is not conflict-free.

        The check combines the static scheme table (fast rejection with a
        helpful message) with the actual bank mapping (ground truth).
        """
        spec = SCHEME_SPECS[self.scheme]
        clashes = conflict_banks(
            self.scheme, request.kind, request.i, request.j, self.p, self.q,
            request.stride,
        )
        if clashes:
            entry = spec.entry_for(request.kind)
            if request.stride != 1:
                hint = (
                    f"stride-{request.stride} {request.kind.value} accesses "
                    f"are not conflict-free under {self.scheme} here"
                )
            elif entry is None or not entry.condition_holds(self.p, self.q):
                hint = (
                    f"scheme {self.scheme} does not support "
                    f"{request.kind.value} accesses on a {self.p}x{self.q} grid"
                )
            else:
                hint = (
                    f"anchor ({request.i},{request.j}) violates the "
                    f"'{entry.anchor_constraint}' constraint of {self.scheme}"
                )
            raise ConflictError(
                f"access {request} conflicts on banks {clashes}: {hint}",
                banks=clashes,
            )

    # -- architectural single-access path -------------------------------------
    def _expand(self, request: AccessRequest):
        ii, jj = self.agu.expand(request)
        self.check_access(request)
        banks = flat_module_assignment(self.scheme, ii, jj, self.p, self.q)
        addrs = self.addressing(ii, jj)
        return banks, addrs

    def step(
        self,
        reads: list[tuple[int, AccessRequest]] | None = None,
        write: tuple[AccessRequest, np.ndarray] | None = None,
    ) -> dict[int, np.ndarray]:
        """Execute one cycle: up to one access per port, all concurrent.

        Parameters
        ----------
        reads:
            ``(port, request)`` pairs; at most one per read port.
        write:
            Optional ``(request, values)``; *values* is the lane-ordered
            vector of ``p*q`` elements to store (the ``DataIn`` signal).

        Returns
        -------
        dict mapping each read port to its lane-ordered result vector (the
        ``DataOut_r`` signals).  Reads observe the state *before* this
        cycle's write (read-before-write port semantics, matching
        independent BRAM ports).
        """
        reads = reads or []
        used_ports = [p for p, _ in reads]
        if len(set(used_ports)) != len(used_ports):
            raise PortError("multiple reads issued to the same port in one cycle")
        # expand the write first so read/write collisions can be resolved
        # per the configured BRAM port policy
        write_slots = None
        write_by_lane = None
        if write is not None:
            w_banks, w_addrs = self._expand(write[0])
            write_slots = dict(
                zip(
                    (w_banks * self.banks.bank_depth + w_addrs).tolist(),
                    range(self.lanes),
                )
            )
            write_by_lane = np.asarray(write[1])
        results: dict[int, np.ndarray] = {}
        for port, request in reads:
            if not 0 <= port < self.read_ports:
                raise PortError(
                    f"read port {port} out of range [0, {self.read_ports})"
                )
            banks, addrs = self._expand(request)
            addr_by_bank = self._addr_shuffle(addrs, banks)
            data_by_bank = self.banks.read(
                port, np.arange(self.lanes), addr_by_bank
            )
            result = self._read_shuffle(data_by_bank, banks)
            if write_slots is not None and self.collision_policy != "read_first":
                slots = (banks * self.banks.bank_depth + addrs).tolist()
                for lane, slot in enumerate(slots):
                    w_lane = write_slots.get(slot)
                    if w_lane is None:
                        continue
                    if self.collision_policy == "forbid":
                        raise SimulationError(
                            f"same-cycle read/write collision on bank slot "
                            f"{slot} (read {request}, write {write[0]})"
                        )
                    result = result.copy()
                    result[lane] = write_by_lane[w_lane]
            results[port] = result
            self.read_stats[port].record(self.lanes)
        if write is not None:
            request, values = write
            values = np.asarray(values)
            if values.shape != (self.lanes,):
                raise PatternError(
                    f"write expects {self.lanes} lane values, got shape "
                    f"{values.shape}"
                )
            banks, addrs = self._expand(request)
            addr_by_bank = self._addr_shuffle(addrs, banks)
            data_by_bank = self._write_shuffle(values, banks)
            self.banks.write(
                np.arange(self.lanes), addr_by_bank, data_by_bank
            )
            self.write_stats.record(self.lanes)
        self.cycles += 1
        return results

    def read(
        self, kind: PatternKind, i: int, j: int, port: int = 0, stride: int = 1
    ) -> np.ndarray:
        """One parallel read; returns the ``p*q`` lane-ordered elements."""
        req = AccessRequest(PatternKind(kind), i, j, stride)
        return self.step(reads=[(port, req)])[port]

    def write(
        self, kind: PatternKind, i: int, j: int, values, stride: int = 1
    ) -> None:
        """One parallel write of ``p*q`` lane-ordered *values*."""
        req = AccessRequest(PatternKind(kind), i, j, stride)
        self.step(write=(req, np.asarray(values)))

    # -- vectorized batch path -----------------------------------------------
    def _expand_batch(
        self, kind: PatternKind, anchors_i, anchors_j, check: bool, stride: int = 1
    ):
        ii, jj = self.agu.expand_many(kind, anchors_i, anchors_j, stride)
        banks = flat_module_assignment(self.scheme, ii, jj, self.p, self.q)
        if check:
            sorted_banks = np.sort(banks, axis=1)
            dup = (sorted_banks[:, 1:] == sorted_banks[:, :-1]).any(axis=1)
            if dup.any():
                bad = int(np.flatnonzero(dup)[0])
                raise ConflictError(
                    f"batch access {bad} (anchor "
                    f"({anchors_i[bad]},{anchors_j[bad]})) is not conflict-free "
                    f"under {self.scheme}"
                )
        addrs = self.addressing(ii, jj)
        return banks, addrs

    def access_slots(
        self, kind: PatternKind, anchors_i, anchors_j, stride: int = 1
    ) -> np.ndarray:
        """Flat ``bank * depth + address`` slot ids touched by a batch of
        accesses, shaped ``(B, lanes)`` — no cycle cost, no conflict check.

        The batched tick engine uses this to prove, before fast-forwarding
        a chunk, that the chunk's reads and writes touch disjoint physical
        slots (so read-before-write ordering inside the chunk cannot be
        observed) and that its writes never overlap each other (so
        :meth:`write_batch`'s fancy-indexed assignment matches sequential
        issue order).
        """
        ii, jj = self.agu.expand_many(kind, anchors_i, anchors_j, stride)
        banks = flat_module_assignment(self.scheme, ii, jj, self.p, self.q)
        addrs = self.addressing(ii, jj)
        return banks * self.banks.bank_depth + addrs

    def read_batch(
        self,
        kind: PatternKind,
        anchors_i,
        anchors_j,
        port: int = 0,
        check: bool = True,
        stride: int = 1,
    ) -> np.ndarray:
        """Vectorized sequence of parallel reads on one port.

        Returns a ``(B, p*q)`` array; costs ``B`` cycles on *port*.
        """
        if not 0 <= port < self.read_ports:
            raise PortError(f"read port {port} out of range [0, {self.read_ports})")
        banks, addrs = self._expand_batch(kind, anchors_i, anchors_j, check, stride)
        out = self.banks.read(port, banks, addrs)
        n = banks.shape[0]
        self.cycles += n
        self.read_stats[port].accesses += n
        self.read_stats[port].elements += n * self.lanes
        return out

    def write_batch(
        self, kind: PatternKind, anchors_i, anchors_j, values, check: bool = True
    ) -> None:
        """Vectorized sequence of parallel writes; *values* is ``(B, p*q)``.

        Later accesses in the batch observe earlier writes (sequential
        semantics), which fancy-index assignment provides as long as the
        batch is conflict-free per access — overlapping *anchors* between
        accesses follow NumPy's last-write-wins, matching hardware issue
        order only for non-overlapping batches; pass overlapping sequences
        through :meth:`write` instead.
        """
        values = np.asarray(values)
        banks, addrs = self._expand_batch(kind, anchors_i, anchors_j, check)
        if values.shape != banks.shape:
            raise PatternError(
                f"write_batch expects values shaped {banks.shape}, got {values.shape}"
            )
        self.banks.write(banks, addrs, values)
        n = banks.shape[0]
        self.cycles += n
        self.write_stats.accesses += n
        self.write_stats.elements += n * self.lanes

    # -- partial (masked) accesses ---------------------------------------------
    def _expand_partial(self, kind: PatternKind, i: int, j: int, count: int):
        if not 1 <= count <= self.lanes:
            raise PatternError(
                f"partial access count must be in [1, {self.lanes}], got {count}"
            )
        di, dj = self.agu.pattern(kind).offsets
        ii = i + di[:count]
        jj = j + dj[:count]
        if (
            ii.min() < 0
            or jj.min() < 0
            or ii.max() >= self.rows
            or jj.max() >= self.cols
        ):
            raise AddressError(
                f"partial {kind} access at ({i},{j}) x{count} exceeds the "
                f"{self.rows}x{self.cols} space"
            )
        banks = flat_module_assignment(self.scheme, ii, jj, self.p, self.q)
        if len(np.unique(banks)) != banks.size:
            raise ConflictError(
                f"partial {kind} access at ({i},{j}) x{count} conflicts "
                f"under {self.scheme}"
            )
        return banks, self.addressing(ii, jj)

    def read_partial(
        self, kind: PatternKind, i: int, j: int, count: int, port: int = 0
    ) -> np.ndarray:
        """Read the first *count* lanes of a pattern — one cycle, with the
        remaining lanes masked off.

        The PRF supports partially-filled accesses for ragged edges (e.g.
        the tail of a row whose length is not a lane multiple): only the
        touched lanes are bounds- and conflict-checked, so a short access
        may sit where a full one would not fit.
        """
        if not 0 <= port < self.read_ports:
            raise PortError(f"read port {port} out of range [0, {self.read_ports})")
        banks, addrs = self._expand_partial(PatternKind(kind), i, j, count)
        out = self.banks.read(port, banks, addrs)
        self.cycles += 1
        self.read_stats[port].accesses += 1
        self.read_stats[port].elements += count
        return out

    def write_partial(
        self, kind: PatternKind, i: int, j: int, values
    ) -> None:
        """Write the first ``len(values)`` lanes of a pattern (one cycle)."""
        values = np.asarray(values)
        if values.ndim != 1:
            raise PatternError("partial write expects a 1-D value vector")
        banks, addrs = self._expand_partial(PatternKind(kind), i, j, values.size)
        self.banks.write(banks, addrs, values)
        self.cycles += 1
        self.write_stats.accesses += 1
        self.write_stats.elements += values.size

    # -- bulk host transfers -------------------------------------------------
    def load(self, matrix: np.ndarray) -> None:
        """Host-side bulk load of the whole 2-D logical space (PCIe path;
        not counted as kernel cycles)."""
        matrix = np.asarray(matrix)
        if matrix.shape != (self.rows, self.cols):
            raise PatternError(
                f"load expects a {self.rows}x{self.cols} matrix, got {matrix.shape}"
            )
        ii, jj = np.mgrid[0 : self.rows, 0 : self.cols]
        banks = flat_module_assignment(self.scheme, ii, jj, self.p, self.q)
        addrs = self.addressing(ii, jj)
        flat = np.zeros((self.lanes, self.config.bank_depth), dtype=self.banks.dtype)
        flat[banks, addrs] = matrix
        self.banks.fill(flat)

    def dump(self, port: int = 0) -> np.ndarray:
        """Host-side bulk read-back of the whole logical space."""
        ii, jj = np.mgrid[0 : self.rows, 0 : self.cols]
        banks = flat_module_assignment(self.scheme, ii, jj, self.p, self.q)
        addrs = self.addressing(ii, jj)
        return self.banks.read(port, banks, addrs)

    # -- runtime polymorphism -------------------------------------------------
    def reconfigure(self, scheme) -> int:
        """Switch the access scheme at runtime, preserving contents.

        The paper (§II-A) notes the scheme can be changed *"even at runtime
        using partial reconfiguration"*.  Functionally that means the MAF
        changes, so every element must migrate to its new bank/address slot.
        The migration is performed as a full redistribution and costs one
        write per ``p*q``-element block — the returned cycle count — which
        is also added to the cycle counter (reads of the old layout come
        from the pre-reconfiguration state, as a double-buffered partial
        reconfiguration would provide).
        """
        from .schemes import Scheme, validate_lane_grid

        new_scheme = Scheme(scheme)
        validate_lane_grid(new_scheme, self.p, self.q)
        if new_scheme is self.scheme:
            return 0
        contents = self.dump()
        self.scheme = new_scheme
        self.config = self.config.with_(scheme=new_scheme)
        self.load(contents)
        blocks = (self.rows // self.p) * (self.cols // self.q)
        self.cycles += blocks
        return blocks

    # -- introspection ------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero the cycle and port counters (not the contents)."""
        self.cycles = 0
        self.write_stats = PortStats()
        self.read_stats = [PortStats() for _ in range(self.read_ports)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PolyMem({self.config.label()}, {self.rows}x{self.cols})"
