"""The PolyMem facade: a polymorphic parallel memory (paper Fig. 3).

:class:`PolyMem` is the functional model of the whole design: per-port AGUs,
the module-assignment block ``M``, the addressing function ``A``, the three
shuffles, and the replicated bank array.  One *cycle* moves one parallel
access through every port: up to one write plus one read per read port, all
independent (paper §III-B: "one write access and one read access for each
read port can happen independently at the same time").

Three access paths exist:

* the **architectural path** (:meth:`step`, :meth:`read`, :meth:`write`) —
  one access at a time.  By default each access applies a compiled
  :class:`~repro.core.plan.AccessPlan` (the anchor-invariant bank/address/
  shuffle structure, cached per access family — the software analogue of
  the fixed combinational logic of Fig. 3); setting ``use_plans = False``
  re-derives everything per access and routes data through explicit
  :class:`~repro.core.shuffle.Shuffle` objects, which is the reference
  behaviour the planned path is property-tested against;
* the **batch path** (:meth:`read_batch`, :meth:`write_batch`) — a
  vectorized fast path for simulation throughput that fancy-indexes the
  bank array directly; it is bit-identical to the architectural path
  (property-tested) and counts cycles the same way;
* the **replay path** (:meth:`replay`) — executes a whole
  :class:`~repro.core.plan.AccessTrace` (multi-port reads plus a write
  stream, N cycles) as fancy-indexed NumPy operations, bit-identical to N
  serial :meth:`step` calls including collision policies, statistics and
  error behaviour.

The naming convention for shuffles follows the implementation, not the
paper's signal convention: our reordering signal is the lane→bank
permutation, under which the write-side data shuffle is a *scatter*
(``repro``'s regular :class:`Shuffle`) and the read-side is a *gather*
(:class:`InverseShuffle`).  With the paper's bank→lane signal the labels
swap; the two conventions are functionally identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .addressing import AddressingFunction
from .agu import AGU, AccessRequest
from .banks import BankArray
from .config import PolyMemConfig
from .conflict import conflict_banks
from .exceptions import (
    AddressError,
    ConfigurationError,
    ConflictError,
    PatternError,
    PortError,
    SimulationError,
)
from .patterns import PatternKind
from .plan import AccessPlan, AccessTrace, compile_plan
from .schemes import SCHEME_SPECS, flat_module_assignment
from .shuffle import InverseShuffle, Shuffle
from ..telemetry import context as _telemetry

__all__ = ["PolyMem", "AccessRequest", "AccessTrace", "PortStats"]


@dataclass
class PortStats:
    """Per-port access counters (feeds bandwidth accounting)."""

    accesses: int = 0
    elements: int = 0

    def record(self, lanes: int) -> None:
        self.accesses += 1
        self.elements += lanes


class PolyMem:
    """A configured polymorphic parallel memory.

    >>> from repro.core.config import PolyMemConfig, KB
    >>> from repro.core.schemes import Scheme
    >>> pm = PolyMem(PolyMemConfig(4 * KB, p=2, q=4, scheme=Scheme.ReRo))
    >>> import numpy as np
    >>> pm.write(PatternKind.RECTANGLE, 0, 0, np.arange(8))
    >>> pm.read(PatternKind.ROW, 0, 0)[:4]
    array([0, 1, 2, 3], dtype=uint64)
    """

    #: same-cycle read/write collision policies (Xilinx BRAM port semantics)
    COLLISION_POLICIES = ("read_first", "write_first", "forbid")

    #: :meth:`replay` keeps two dense per-slot tables (cycle + value) when
    #: the memory has at most this many bank slots *and* the trace writes
    #: no slot twice; beyond it (or with repeated slots) it falls back to
    #: the event-sort resolution
    DENSE_SLOT_LIMIT = 1 << 21

    def __init__(self, config: PolyMemConfig, collision_policy: str = "read_first"):
        if collision_policy not in self.COLLISION_POLICIES:
            raise ConfigurationError(
                f"collision_policy must be one of {self.COLLISION_POLICIES}, "
                f"got {collision_policy!r}"
            )
        #: what a read returns when the same cycle's write hits the same
        #: (bank, address) slot: ``"read_first"`` — the old data (the
        #: default, matching READ_FIRST BRAM ports and the paper's
        #: independent-port description); ``"write_first"`` — the freshly
        #: written data (WRITE_FIRST write-through); ``"forbid"`` — raise,
        #: turning same-cycle RAW hazards into hard errors (verification
        #: mode; real BRAMs return undefined data on cross-port collisions)
        self.collision_policy = collision_policy
        self.config = config
        self.scheme = config.scheme
        self.p, self.q = config.p, config.q
        self.rows, self.cols = config.rows, config.cols
        self.agu = AGU(self.rows, self.cols, self.p, self.q)
        self.addressing = AddressingFunction(self.rows, self.cols, self.p, self.q)
        self.banks = BankArray(
            num_banks=config.lanes,
            bank_depth=config.bank_depth,
            read_ports=config.read_ports,
            dtype=np.uint64 if config.width_bits == 64 else np.uint32,
        )
        self._addr_shuffle = Shuffle(config.lanes)
        self._write_shuffle = Shuffle(config.lanes)
        self._read_shuffle = InverseShuffle(config.lanes)
        #: apply compiled access plans (default); ``False`` re-derives the
        #: bank/address/shuffle structure per access — the reference path
        self.use_plans = True
        self._plan_cache: dict[tuple[PatternKind, int], AccessPlan] = {}
        self._lane_idx = np.arange(config.lanes)
        #: total cycles consumed by parallel accesses
        self.cycles = 0
        self.write_stats = PortStats()
        self.read_stats = [PortStats() for _ in range(config.read_ports)]

    # -- geometry ---------------------------------------------------------
    @property
    def lanes(self) -> int:
        """Elements per port per cycle."""
        return self.config.lanes

    @property
    def read_ports(self) -> int:
        """Number of independent read ports."""
        return self.config.read_ports

    # -- access validation --------------------------------------------------
    def check_access(self, request: AccessRequest) -> None:
        """Raise :class:`ConflictError` when *request* is not conflict-free.

        The check combines the static scheme table (fast rejection with a
        helpful message) with the actual bank mapping (ground truth).
        """
        spec = SCHEME_SPECS[self.scheme]
        clashes = conflict_banks(
            self.scheme, request.kind, request.i, request.j, self.p, self.q,
            request.stride,
        )
        if clashes:
            entry = spec.entry_for(request.kind)
            if request.stride != 1:
                hint = (
                    f"stride-{request.stride} {request.kind.value} accesses "
                    f"are not conflict-free under {self.scheme} here"
                )
            elif entry is None or not entry.condition_holds(self.p, self.q):
                hint = (
                    f"scheme {self.scheme} does not support "
                    f"{request.kind.value} accesses on a {self.p}x{self.q} grid"
                )
            else:
                hint = (
                    f"anchor ({request.i},{request.j}) violates the "
                    f"'{entry.anchor_constraint}' constraint of {self.scheme}"
                )
            raise ConflictError(
                f"access {request} conflicts on banks {clashes}: {hint}",
                banks=clashes,
            )

    # -- compiled access plans -------------------------------------------------
    def plan(self, kind: PatternKind, stride: int = 1) -> AccessPlan:
        """The compiled :class:`AccessPlan` for one ``(shape, stride)``
        family on this memory's geometry (instance-cached; the underlying
        compilation is shared process-wide across same-geometry memories).
        """
        key = (PatternKind(kind), stride)
        plan = self._plan_cache.get(key)
        tel = _telemetry.active()
        if plan is None:
            if tel is not None:
                tel.metrics.counter("polymem.plan_cache.misses").inc()
            plan = compile_plan(
                self.rows, self.cols, self.p, self.q, self.scheme, key[0], stride
            )
            self._plan_cache[key] = plan
        elif tel is not None:
            tel.metrics.counter("polymem.plan_cache.hits").inc()
        return plan

    # -- architectural single-access path -------------------------------------
    def _expand(self, request: AccessRequest):
        """Expand one request into ``(banks, addrs, lane_of_bank)``.

        ``lane_of_bank`` is the inverse lane→bank permutation used to
        apply the address/write-data scatter as a gather; it is ``None``
        on the unplanned path, signalling :meth:`step` to route through
        the explicit :class:`Shuffle` objects instead.
        """
        if not self.use_plans:
            ii, jj = self.agu.expand(request)
            self.check_access(request)
            banks = flat_module_assignment(self.scheme, ii, jj, self.p, self.q)
            addrs = self.addressing(ii, jj)
            return banks, addrs, None
        plan = self.plan(request.kind, request.stride)
        i, j = request.i, request.j
        if not plan.fits(i, j):
            raise AddressError(
                f"access {request} exceeds the {self.rows}x{self.cols} space"
            )
        if not plan.conflict_free(i, j):
            self.check_access(request)  # raises with the diagnostic message
        return plan.banks(i, j), plan.addrs(i, j), plan.inverse_permutation(i, j)

    def step(
        self,
        reads: list[tuple[int, AccessRequest]] | None = None,
        write: tuple[AccessRequest, np.ndarray] | None = None,
    ) -> dict[int, np.ndarray]:
        """Execute one cycle: up to one access per port, all concurrent.

        Parameters
        ----------
        reads:
            ``(port, request)`` pairs; at most one per read port.
        write:
            Optional ``(request, values)``; *values* is the lane-ordered
            vector of ``p*q`` elements to store (the ``DataIn`` signal).

        Returns
        -------
        dict mapping each read port to its lane-ordered result vector (the
        ``DataOut_r`` signals).  Reads observe the state *before* this
        cycle's write (read-before-write port semantics, matching
        independent BRAM ports).
        """
        reads = reads or []
        used_ports = [p for p, _ in reads]
        if len(set(used_ports)) != len(used_ports):
            raise PortError("multiple reads issued to the same port in one cycle")
        tel = _telemetry.active()
        # expand the write first so read/write collisions can be resolved
        # per the configured BRAM port policy; the slot index is built only
        # when a policy actually consults it (read_first never does)
        w_banks = w_addrs = w_lob = None
        w_slots_sorted = w_order = None
        write_by_lane = None
        if write is not None:
            w_banks, w_addrs, w_lob = self._expand(write[0])
            write_by_lane = np.asarray(write[1])
            if self.collision_policy != "read_first":
                w_slots = (
                    w_banks.astype(np.int64) * self.banks.bank_depth + w_addrs
                )
                w_order = np.argsort(w_slots)
                w_slots_sorted = w_slots[w_order]
        results: dict[int, np.ndarray] = {}
        for port, request in reads:
            if not 0 <= port < self.read_ports:
                raise PortError(
                    f"read port {port} out of range [0, {self.read_ports})"
                )
            banks, addrs, lob = self._expand(request)
            if lob is None:
                addr_by_bank = self._addr_shuffle(addrs, banks)
                data_by_bank = self.banks.read(port, self._lane_idx, addr_by_bank)
                result = self._read_shuffle(data_by_bank, banks)
            else:
                data_by_bank = self.banks.read(port, self._lane_idx, addrs[lob])
                result = data_by_bank[banks]
            if w_slots_sorted is not None:
                slots = banks.astype(np.int64) * self.banks.bank_depth + addrs
                pos = np.minimum(
                    np.searchsorted(w_slots_sorted, slots), self.lanes - 1
                )
                hit = w_slots_sorted[pos] == slots
                if hit.any():
                    if self.collision_policy == "forbid":
                        lane = int(np.flatnonzero(hit)[0])
                        raise SimulationError(
                            f"same-cycle read/write collision on bank slot "
                            f"{int(slots[lane])} (read {request}, "
                            f"write {write[0]})"
                        )
                    if tel is not None:
                        tel.metrics.counter("polymem.collision.forwarded").inc(
                            int(np.count_nonzero(hit))
                        )
                    result = result.copy()
                    result[hit] = write_by_lane[w_order[pos[hit]]]
            results[port] = result
            self.read_stats[port].record(self.lanes)
        if write is not None:
            values = np.asarray(write[1])
            if values.shape != (self.lanes,):
                raise PatternError(
                    f"write expects {self.lanes} lane values, got shape "
                    f"{values.shape}"
                )
            if w_lob is None:
                addr_by_bank = self._addr_shuffle(w_addrs, w_banks)
                data_by_bank = self._write_shuffle(values, w_banks)
            else:
                addr_by_bank = w_addrs[w_lob]
                data_by_bank = values[w_lob]
            self.banks.write(self._lane_idx, addr_by_bank, data_by_bank)
            self.write_stats.record(self.lanes)
        self.cycles += 1
        if tel is not None:
            m = tel.metrics
            m.counter("polymem.cycles.step").inc()
            m.counter("polymem.parallel_accesses").inc(
                len(reads) + (1 if write is not None else 0)
            )
        return results

    def read(
        self, kind: PatternKind, i: int, j: int, port: int = 0, stride: int = 1
    ) -> np.ndarray:
        """One parallel read; returns the ``p*q`` lane-ordered elements."""
        req = AccessRequest(PatternKind(kind), i, j, stride)
        return self.step(reads=[(port, req)])[port]

    def write(
        self, kind: PatternKind, i: int, j: int, values, stride: int = 1
    ) -> None:
        """One parallel write of ``p*q`` lane-ordered *values*."""
        req = AccessRequest(PatternKind(kind), i, j, stride)
        self.step(write=(req, np.asarray(values)))

    # -- vectorized batch path -----------------------------------------------
    def _batch_anchors(self, kind: PatternKind, anchors_i, anchors_j, stride: int):
        """Normalize batch anchors and fetch the plan; bounds-checked."""
        anchors_i = np.asarray(anchors_i, dtype=np.int64)
        anchors_j = np.asarray(anchors_j, dtype=np.int64)
        if anchors_i.shape != anchors_j.shape or anchors_i.ndim != 1:
            raise PatternError("anchor arrays must be equal-length 1-D")
        plan = self.plan(kind, stride)
        if anchors_i.size and not plan.fits_mask(anchors_i, anchors_j).all():
            raise AddressError(
                f"batch of {PatternKind(kind)} accesses exceeds the "
                f"{self.rows}x{self.cols} space"
            )
        return plan, anchors_i, anchors_j

    def _expand_batch(
        self, kind: PatternKind, anchors_i, anchors_j, check: bool, stride: int = 1
    ):
        plan, anchors_i, anchors_j = self._batch_anchors(
            kind, anchors_i, anchors_j, stride
        )
        if check and anchors_i.size:
            ok = plan.ok_mask(anchors_i, anchors_j)
            if not ok.all():
                bad = int(np.flatnonzero(~ok)[0])
                raise ConflictError(
                    f"batch access {bad} (anchor "
                    f"({anchors_i[bad]},{anchors_j[bad]})) is not conflict-free "
                    f"under {self.scheme}"
                )
        return (
            plan.banks_many(anchors_i, anchors_j),
            plan.addrs_many(anchors_i, anchors_j),
        )

    def access_slots(
        self, kind: PatternKind, anchors_i, anchors_j, stride: int = 1
    ) -> np.ndarray:
        """Flat ``bank * depth + address`` slot ids touched by a batch of
        accesses, shaped ``(B, lanes)`` — no cycle cost, no conflict check.

        The batched tick engine uses this to prove, before fast-forwarding
        a chunk, that the chunk's reads and writes touch disjoint physical
        slots (so read-before-write ordering inside the chunk cannot be
        observed) and that its writes never overlap each other (so
        :meth:`write_batch`'s fancy-indexed assignment matches sequential
        issue order).
        """
        plan, anchors_i, anchors_j = self._batch_anchors(
            kind, anchors_i, anchors_j, stride
        )
        return plan.slots_many(anchors_i, anchors_j)

    def read_batch(
        self,
        kind: PatternKind,
        anchors_i,
        anchors_j,
        port: int = 0,
        check: bool = True,
        stride: int = 1,
    ) -> np.ndarray:
        """Vectorized sequence of parallel reads on one port.

        Returns a ``(B, p*q)`` array; costs ``B`` cycles on *port*.
        """
        if not 0 <= port < self.read_ports:
            raise PortError(f"read port {port} out of range [0, {self.read_ports})")
        banks, addrs = self._expand_batch(kind, anchors_i, anchors_j, check, stride)
        out = self.banks.read(port, banks, addrs)
        n = banks.shape[0]
        self.cycles += n
        self.read_stats[port].accesses += n
        self.read_stats[port].elements += n * self.lanes
        tel = _telemetry.active()
        if tel is not None:
            m = tel.metrics
            m.counter("polymem.cycles.batch").inc(n)
            m.counter("polymem.parallel_accesses").inc(n)
        return out

    def write_batch(
        self, kind: PatternKind, anchors_i, anchors_j, values, check: bool = True
    ) -> None:
        """Vectorized sequence of parallel writes; *values* is ``(B, p*q)``.

        Later accesses in the batch observe earlier writes (sequential
        semantics), which fancy-index assignment provides as long as the
        batch is conflict-free per access — overlapping *anchors* between
        accesses follow NumPy's last-write-wins, matching hardware issue
        order only for non-overlapping batches; pass overlapping sequences
        through :meth:`write` instead.
        """
        values = np.asarray(values)
        banks, addrs = self._expand_batch(kind, anchors_i, anchors_j, check)
        if values.shape != banks.shape:
            raise PatternError(
                f"write_batch expects values shaped {banks.shape}, got {values.shape}"
            )
        self.banks.write(banks, addrs, values)
        n = banks.shape[0]
        self.cycles += n
        self.write_stats.accesses += n
        self.write_stats.elements += n * self.lanes
        tel = _telemetry.active()
        if tel is not None:
            m = tel.metrics
            m.counter("polymem.cycles.batch").inc(n)
            m.counter("polymem.parallel_accesses").inc(n)

    # -- whole-trace replay ----------------------------------------------------
    def _expand_stream(self, stream):
        """Expand one trace stream into ``(slots, valid)`` arrays.

        ``slots`` holds flat ``bank * depth + address`` ids, ``(n, lanes)``;
        ``valid[t]`` is True when cycle *t*'s access is in bounds and
        conflict-free.  Slot rows are computed unconditionally (the residue
        tables accept any anchor, producing garbage ids on invalid rows),
        but are only *used* to touch memory when the whole trace is valid.

        The expansion itself lives on the stream
        (:meth:`repro.core.plan._Stream.tables` /
        :func:`repro.core.plan.stream_tables`) so the fusion backend can
        precompute the same tables without a PolyMem in hand.
        """
        return stream.tables(self.plan)

    def replay(self, trace: AccessTrace) -> dict[int, np.ndarray]:
        """Execute a whole :class:`AccessTrace` as vectorized operations.

        Bit-identical to issuing the trace's ``n`` cycles through
        :meth:`step` one at a time — same results, same memory state, same
        cycle/port accounting, same collision-policy semantics (including
        the exact error, partial statistics and partial memory state when a
        cycle is invalid) — but executed as a handful of whole-trace
        fancy-indexed NumPy operations.

        Returns a dict mapping each read port to its ``(n, lanes)`` result
        matrix (row *t* is what ``step`` cycle *t* would have returned).
        """
        tel = _telemetry.active()
        if tel is None or tel.tracer is None:
            return self._replay(trace)
        with tel.tracer.span(
            "polymem.replay", cat="core", cycles=trace.n,
            ports=len(trace.read_ports), write=trace.has_write,
        ):
            return self._replay(trace)

    def _replay(self, trace: AccessTrace) -> dict[int, np.ndarray]:
        n = trace.n
        for port in trace.read_ports:
            if not 0 <= port < self.read_ports:
                raise PortError(
                    f"read port {port} out of range [0, {self.read_ports})"
                )
        if n == 0:
            return {
                port: np.empty((0, self.lanes), dtype=self.banks.dtype)
                for port in trace.read_ports
            }
        depth = self.banks.bank_depth
        reads = {
            port: self._expand_stream(stream)
            for port, stream in trace._reads.items()
        }
        bad = np.zeros(n, dtype=bool)
        for _, (_, valid) in reads.items():
            bad |= ~valid
        w_slots = w_values = None
        if trace.has_write:
            w_stream = trace._write
            w_expanded, w_valid = self._expand_stream(w_stream)
            bad |= ~w_valid
            w_values = np.asarray(w_stream.values)
            if w_values.shape[1] != self.lanes:
                bad[0] = True  # step() raises the shape PatternError there
            else:
                w_slots = w_expanded
        # Read/write resolution needs, per read element (slot, t), the
        # latest write to that slot before (or at) cycle t.  Fast path:
        # when no slot is written twice in the whole trace, a dense
        # per-slot table answers that with two gathers — no sorting at
        # all.  General path: order write events by key
        # slot * (n + 1) + cycle (slot-major, then time; keys are unique
        # because one valid cycle's write slots are distinct) and binary
        # search for exact predecessors.
        kw_sorted = w_order = last_t = last_val = None
        if w_slots is not None:
            t_col = np.arange(n, dtype=np.int64)[:, None]
            flat_w = w_slots.ravel()
            total_slots = self.lanes * depth
            # invalid cycles expand to out-of-range slot ids the dense
            # tables cannot index; the event keys tolerate them, so traces
            # headed for the serial error fallback take the event path
            if total_slots <= self.DENSE_SLOT_LIMIT and not bad.any():
                # sentinel n ("written later than every cycle") instead of
                # -1 keeps the fold to a single comparison per element;
                # int32 halves the table the fold gathers from
                last_t = np.full(total_slots, n, dtype=np.int32)
                last_t[w_slots] = t_col
                if int(np.count_nonzero(last_t != n)) == flat_w.size:
                    last_val = np.empty(total_slots, dtype=self.banks.dtype)
                    last_val[w_slots] = w_values
                else:
                    last_t = None  # a slot is written twice: event path
            if last_t is None:
                kw = (w_slots * (n + 1) + t_col).ravel()
                w_order = np.argsort(kw)
                kw_sorted = kw[w_order]
            if self.collision_policy == "forbid" and not bad.all():
                for port, (r_slots, _) in reads.items():
                    if last_t is not None:
                        hit = last_t[r_slots] == t_col
                    else:
                        kr = r_slots * (n + 1) + t_col
                        pos = np.searchsorted(kw_sorted, kr.ravel())
                        pos = np.minimum(pos, kw_sorted.size - 1)
                        hit = (kw_sorted[pos] == kr.ravel()).reshape(
                            n, self.lanes
                        )
                    bad |= hit.any(axis=1)
        if bad.any():
            # replay the valid prefix, then re-issue the first bad cycle
            # serially: step() raises the exact error with the exact
            # partial statistics and memory state
            t_star = int(np.flatnonzero(bad)[0])
            self.replay(trace.prefix(t_star))
            step_reads, step_write = trace.cycle_args(t_star)
            self.step(reads=step_reads, write=step_write)
            raise SimulationError(
                f"replay flagged cycle {t_star} but serial step succeeded"
            )  # pragma: no cover - detection is property-tested against step
        tel = _telemetry.active()
        results: dict[int, np.ndarray] = {}
        for port, (r_slots, _) in reads.items():
            # pre-trace state; same-trace writes are folded in below.
            # a read at cycle t observes writes with cycle < t
            # (read-before-write port semantics); under write_first the
            # same cycle's write is forwarded too, hence <= t
            result = self.banks.read_slots(port, r_slots)
            if w_slots is not None:
                if last_t is not None:
                    wt = last_t[r_slots]
                    if self.collision_policy == "write_first":
                        hit = wt <= t_col
                    else:
                        hit = wt < t_col
                    if hit.any():
                        if tel is not None:
                            tel.metrics.counter("polymem.collision.forwarded").inc(
                                int(np.count_nonzero(hit))
                            )
                        result[hit] = last_val[r_slots[hit]]
                else:
                    bound = (
                        t_col + 1
                        if self.collision_policy == "write_first"
                        else t_col
                    )
                    kr = (r_slots * (n + 1) + bound).ravel()
                    pos = np.searchsorted(kw_sorted, kr, side="left") - 1
                    clipped = np.maximum(pos, 0)
                    hit = (pos >= 0) & (
                        kw_sorted[clipped] // (n + 1) == r_slots.ravel()
                    )
                    if hit.any():
                        if tel is not None:
                            tel.metrics.counter("polymem.collision.forwarded").inc(
                                int(np.count_nonzero(hit))
                            )
                        flat = result.reshape(-1)
                        flat[hit] = w_values.ravel()[w_order[clipped[hit]]]
            results[port] = result
            self.read_stats[port].accesses += n
            self.read_stats[port].elements += n * self.lanes
        if w_slots is not None:
            # flattened fancy assignment applies events in cycle order, so
            # duplicate slots resolve to the latest write — last-write-wins
            # without any sort
            self.banks.write_slots(flat_w, w_values.ravel())
            self.write_stats.accesses += n
            self.write_stats.elements += n * self.lanes
        self.cycles += n
        if tel is not None:
            m = tel.metrics
            m.counter("polymem.replay.calls").inc()
            m.counter("polymem.cycles.replay").inc(n)
            m.counter("polymem.parallel_accesses").inc(
                n * (len(reads) + (1 if w_slots is not None else 0))
            )
        return results

    # -- partial (masked) accesses ---------------------------------------------
    def _expand_partial(self, kind: PatternKind, i: int, j: int, count: int):
        if not 1 <= count <= self.lanes:
            raise PatternError(
                f"partial access count must be in [1, {self.lanes}], got {count}"
            )
        di, dj = self.agu.pattern(kind).offsets
        ii = i + di[:count]
        jj = j + dj[:count]
        if (
            ii.min() < 0
            or jj.min() < 0
            or ii.max() >= self.rows
            or jj.max() >= self.cols
        ):
            raise AddressError(
                f"partial {kind} access at ({i},{j}) x{count} exceeds the "
                f"{self.rows}x{self.cols} space"
            )
        banks = flat_module_assignment(self.scheme, ii, jj, self.p, self.q)
        if len(np.unique(banks)) != banks.size:
            raise ConflictError(
                f"partial {kind} access at ({i},{j}) x{count} conflicts "
                f"under {self.scheme}"
            )
        return banks, self.addressing(ii, jj)

    def read_partial(
        self, kind: PatternKind, i: int, j: int, count: int, port: int = 0
    ) -> np.ndarray:
        """Read the first *count* lanes of a pattern — one cycle, with the
        remaining lanes masked off.

        The PRF supports partially-filled accesses for ragged edges (e.g.
        the tail of a row whose length is not a lane multiple): only the
        touched lanes are bounds- and conflict-checked, so a short access
        may sit where a full one would not fit.
        """
        if not 0 <= port < self.read_ports:
            raise PortError(f"read port {port} out of range [0, {self.read_ports})")
        banks, addrs = self._expand_partial(PatternKind(kind), i, j, count)
        out = self.banks.read(port, banks, addrs)
        self.cycles += 1
        self.read_stats[port].accesses += 1
        self.read_stats[port].elements += count
        return out

    def write_partial(
        self, kind: PatternKind, i: int, j: int, values
    ) -> None:
        """Write the first ``len(values)`` lanes of a pattern (one cycle)."""
        values = np.asarray(values)
        if values.ndim != 1:
            raise PatternError("partial write expects a 1-D value vector")
        banks, addrs = self._expand_partial(PatternKind(kind), i, j, values.size)
        self.banks.write(banks, addrs, values)
        self.cycles += 1
        self.write_stats.accesses += 1
        self.write_stats.elements += values.size

    # -- bulk host transfers -------------------------------------------------
    def load(self, matrix: np.ndarray) -> None:
        """Host-side bulk load of the whole 2-D logical space (PCIe path;
        not counted as kernel cycles)."""
        matrix = np.asarray(matrix)
        if matrix.shape != (self.rows, self.cols):
            raise PatternError(
                f"load expects a {self.rows}x{self.cols} matrix, got {matrix.shape}"
            )
        ii, jj = np.mgrid[0 : self.rows, 0 : self.cols]
        banks = flat_module_assignment(self.scheme, ii, jj, self.p, self.q)
        addrs = self.addressing(ii, jj)
        flat = np.zeros((self.lanes, self.config.bank_depth), dtype=self.banks.dtype)
        flat[banks, addrs] = matrix
        self.banks.fill(flat)

    def dump(self, port: int = 0) -> np.ndarray:
        """Host-side bulk read-back of the whole logical space."""
        ii, jj = np.mgrid[0 : self.rows, 0 : self.cols]
        banks = flat_module_assignment(self.scheme, ii, jj, self.p, self.q)
        addrs = self.addressing(ii, jj)
        return self.banks.read(port, banks, addrs)

    # -- runtime polymorphism -------------------------------------------------
    def reconfigure(self, scheme) -> int:
        """Switch the access scheme at runtime, preserving contents.

        The paper (§II-A) notes the scheme can be changed *"even at runtime
        using partial reconfiguration"*.  Functionally that means the MAF
        changes, so every element must migrate to its new bank/address slot.
        The migration is performed as a full redistribution and costs one
        write per ``p*q``-element block — the returned cycle count — which
        is also added to the cycle counter (reads of the old layout come
        from the pre-reconfiguration state, as a double-buffered partial
        reconfiguration would provide).
        """
        from .schemes import Scheme, validate_lane_grid

        new_scheme = Scheme(scheme)
        validate_lane_grid(new_scheme, self.p, self.q)
        if new_scheme is self.scheme:
            return 0
        contents = self.dump()
        self.scheme = new_scheme
        self.config = self.config.with_(scheme=new_scheme)
        self._plan_cache.clear()  # plans are scheme-specific
        self.load(contents)
        blocks = (self.rows // self.p) * (self.cols // self.q)
        self.cycles += blocks
        return blocks

    # -- introspection ------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero the cycle and port counters (not the contents)."""
        self.cycles = 0
        self.write_stats = PortStats()
        self.read_stats = [PortStats() for _ in range(self.read_ports)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PolyMem({self.config.label()}, {self.rows}x{self.cols})"
