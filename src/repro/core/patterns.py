"""Parallel access patterns: the dense 2-D shapes PolyMem reads/writes.

A *parallel access* touches exactly ``p * q`` elements in one cycle.  Its
shape is one of the :class:`PatternKind` members (Fig. 2 of the paper), and
an :class:`AccessPattern` instance binds a shape to a lane grid and produces
the coordinate offsets of every accessed element, in PolyMem's canonical
lane order (left-to-right, top-to-bottom).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .exceptions import PatternError

__all__ = ["PatternKind", "AccessPattern", "pattern_offsets"]


class PatternKind(str, enum.Enum):
    """Shapes of a single parallel access (paper Fig. 2)."""

    #: dense ``p x q`` block
    RECTANGLE = "rectangle"
    #: dense ``q x p`` block (the transposed rectangle of the ReTr scheme)
    TRANSPOSED_RECTANGLE = "transposed_rectangle"
    #: ``1 x (p*q)`` horizontal strip
    ROW = "row"
    #: ``(p*q) x 1`` vertical strip
    COLUMN = "column"
    #: ``p*q`` elements along ``(i+k, j+k)``
    MAIN_DIAGONAL = "main_diagonal"
    #: ``p*q`` elements along ``(i+k, j-k)`` (secondary diagonal)
    ANTI_DIAGONAL = "anti_diagonal"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@lru_cache(maxsize=512)
def _offsets_cached(
    kind: PatternKind, p: int, q: int, stride: int
) -> tuple[np.ndarray, np.ndarray]:
    n = p * q
    if kind is PatternKind.RECTANGLE:
        a, b = np.divmod(np.arange(n), q)
    elif kind is PatternKind.TRANSPOSED_RECTANGLE:
        a, b = np.divmod(np.arange(n), p)
    elif kind is PatternKind.ROW:
        a = np.zeros(n, dtype=np.int64)
        b = np.arange(n)
    elif kind is PatternKind.COLUMN:
        a = np.arange(n)
        b = np.zeros(n, dtype=np.int64)
    elif kind is PatternKind.MAIN_DIAGONAL:
        a = np.arange(n)
        b = np.arange(n)
    elif kind is PatternKind.ANTI_DIAGONAL:
        a = np.arange(n)
        b = -np.arange(n)
    else:  # pragma: no cover - exhaustive enum
        raise PatternError(f"unknown pattern kind {kind!r}")
    a = np.ascontiguousarray(a, dtype=np.int64) * stride
    b = np.ascontiguousarray(b, dtype=np.int64) * stride
    a.setflags(write=False)
    b.setflags(write=False)
    return a, b


def pattern_offsets(
    kind: PatternKind, p: int, q: int, stride: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Coordinate offsets ``(di, dj)`` of a parallel access of shape *kind*.

    Both arrays have length ``p * q`` and are ordered in PolyMem's canonical
    lane order: the element served by lane ``k`` is at offset
    ``(di[k], dj[k])`` from the access anchor.  With ``stride > 1`` the
    shape is dilated — a strided row touches every stride-th element, a
    strided rectangle becomes a dilated block — PolyMem's *sparse* access
    patterns (paper §VII).  The returned arrays are cached and read-only.
    """
    if p < 1 or q < 1:
        raise PatternError(f"lane grid must be positive, got p={p}, q={q}")
    if stride < 1:
        raise PatternError(f"stride must be >= 1, got {stride}")
    return _offsets_cached(PatternKind(kind), p, q, stride)


@dataclass(frozen=True)
class AccessPattern:
    """A pattern shape bound to a lane grid.

    >>> pat = AccessPattern(PatternKind.RECTANGLE, p=2, q=4)
    >>> pat.lanes
    8
    >>> pat.coordinates(3, 5)[0][:3]          # doctest: +ELLIPSIS
    array([3, 3, 3...])
    """

    kind: PatternKind
    p: int
    q: int
    stride: int = 1

    def __post_init__(self) -> None:
        if self.p < 1 or self.q < 1:
            raise PatternError(
                f"lane grid must be positive, got p={self.p}, q={self.q}"
            )
        if self.stride < 1:
            raise PatternError(f"stride must be >= 1, got {self.stride}")

    @property
    def lanes(self) -> int:
        """Number of elements touched per access (= ``p * q``)."""
        return self.p * self.q

    @property
    def offsets(self) -> tuple[np.ndarray, np.ndarray]:
        """Offsets ``(di, dj)`` relative to the anchor, in lane order."""
        return pattern_offsets(self.kind, self.p, self.q, self.stride)

    @property
    def shape(self) -> tuple[int, int]:
        """Bounding-box (rows, cols) of the pattern."""
        di, dj = self.offsets
        return (
            int(di.max() - di.min()) + 1,
            int(dj.max() - dj.min()) + 1,
        )

    def coordinates(self, i: int, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Absolute coordinates of all ``p * q`` elements anchored at (i, j)."""
        di, dj = self.offsets
        return i + di, j + dj

    def bounds(self, i: int, j: int) -> tuple[int, int, int, int]:
        """Inclusive bounding box ``(i_min, i_max, j_min, j_max)`` at (i, j)."""
        ii, jj = self.coordinates(i, j)
        return int(ii.min()), int(ii.max()), int(jj.min()), int(jj.max())

    def fits(self, i: int, j: int, rows: int, cols: int) -> bool:
        """Whether the access anchored at (i, j) stays inside rows x cols."""
        i_min, i_max, j_min, j_max = self.bounds(i, j)
        return 0 <= i_min and i_max < rows and 0 <= j_min and j_max < cols

    def cover_cells(self, i: int, j: int) -> frozenset[tuple[int, int]]:
        """The set of (i, j) cells covered — used by the schedule optimizer."""
        ii, jj = self.coordinates(i, j)
        return frozenset(zip(ii.tolist(), jj.tolist()))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tail = f"/s{self.stride}" if self.stride > 1 else ""
        return f"{self.kind.value}[{self.p}x{self.q}{tail}]"


def kinds_in_table_order() -> tuple[PatternKind, ...]:
    """Pattern kinds in the order used by the paper's figures and tables."""
    return (
        PatternKind.RECTANGLE,
        PatternKind.TRANSPOSED_RECTANGLE,
        PatternKind.ROW,
        PatternKind.COLUMN,
        PatternKind.MAIN_DIAGONAL,
        PatternKind.ANTI_DIAGONAL,
    )
