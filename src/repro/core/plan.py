"""Compiled access plans: the anchor-invariant half of a parallel access.

In hardware (paper Fig. 3) the AGU, the module-assignment block ``M``, the
addressing function ``A`` and the shuffle routing are *fixed combinational
logic* — their structure is paid for once, at synthesis time, and every
cycle merely applies a new anchor to it.  The software model used to pay
the full derivation cost per access: a fresh AGU expansion, a MAF
evaluation over ``p*q`` coordinates, a conflict check and a
permutation-validated shuffle, per ``step()``.

:func:`compile_plan` performs that derivation once per
``(rows, cols, p, q, scheme, kind, stride)`` key and caches the result.
The insight making this exact (not approximate) is that every MAF of
:mod:`repro.core.schemes` is periodic in each coordinate with period
``P = p * q``, and the addressing function splits into an anchor *base*
plus a residue-indexed *delta*:

* ``bank(i + di[k], j + dj[k])`` depends only on ``(i mod P, j mod P)``
  — tabulated as ``bank_table[P, P, lanes]``;
* ``A(i + di, j + dj) = (i div p) * (M/q) + (j div q)
  + addr_delta[i mod p, j mod q]`` exactly (floored division), because
  ``(x + d) div m = x div m + ((x mod m) + d) div m``;
* conflict-freedom of the whole access is a property of the anchor
  residue — tabulated as ``ok[P, P]``;
* the lane→bank permutation's inverse (``lane_of_bank``) is tabulated
  alongside, so shuffle routing is a gather instead of a validated
  scatter.

Applying an anchor therefore costs a handful of vectorized mods, adds and
table gathers — for one access *or for a whole trace of them at once*.
:class:`AccessTrace` packages such a trace (multi-port reads plus a write
stream, optionally with heterogeneous pattern kinds) for
:meth:`repro.core.polymem.PolyMem.replay`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..telemetry import context as _telemetry
from .exceptions import PatternError, PortError
from .patterns import PatternKind, pattern_offsets
from .schemes import Scheme, flat_module_assignment

__all__ = [
    "AccessPlan",
    "AccessTrace",
    "compile_plan",
    "compile_plan_batch",
    "plan_cache_keys",
    "plan_cache_stats",
    "stream_tables",
    "warm_plans_from_keys",
]

#: every plan family ever compiled in this process, in compile order.
#: Appended on cache *misses* only (the memoized body runs once per key),
#: so it enumerates the warm set a parent process can export to workers —
#: it is a superset of the live LRU contents when eviction has occurred.
_compiled_keys: dict[tuple, None] = {}

#: plans pre-built by :func:`compile_plan_batch`, waiting to be adopted by
#: the memoized :func:`compile_plan` body (which pops them on its next
#: miss for the key).  Never more than one batch's worth of entries live.
_batch_built: dict[tuple, "AccessPlan"] = {}


def _readonly(a: np.ndarray) -> np.ndarray:
    a.setflags(write=False)
    return a


@dataclass(frozen=True)
class AccessPlan:
    """The anchor-invariant pieces of one ``(shape, stride)`` access family.

    Instances are immutable and shared (see :func:`compile_plan`); all
    array fields are read-only.  ``bank_table`` / ``lane_of_bank`` are
    stored as ``int16`` (lane counts are tiny) — cast before arithmetic.
    """

    rows: int
    cols: int
    p: int
    q: int
    scheme: Scheme
    kind: PatternKind
    stride: int
    #: lane-relative coordinate offsets, length ``p*q``
    di: np.ndarray = field(repr=False)
    dj: np.ndarray = field(repr=False)
    #: inclusive valid anchor ranges (empty when ``i_hi < i_lo``)
    i_lo: int = 0
    i_hi: int = 0
    j_lo: int = 0
    j_hi: int = 0
    #: MAF periodicity in each anchor coordinate (= ``p * q``)
    period: int = 0
    #: per-lane flat bank id for each anchor residue, ``(P, P, lanes)``
    bank_table: np.ndarray = field(default=None, repr=False)
    #: inverse permutation per residue: ``lane_of_bank[ri, rj, b]`` is the
    #: lane whose element lands in bank ``b`` (garbage where ``~ok``)
    lane_of_bank: np.ndarray = field(default=None, repr=False)
    #: conflict-free anchor residues, ``(P, P)`` bool
    ok: np.ndarray = field(default=None, repr=False)
    #: residue part of the in-bank address, ``(p, q, lanes)``
    addr_delta: np.ndarray = field(default=None, repr=False)
    #: fused residue table ``bank * bank_depth + addr_delta``, shaped
    #: ``(P, P, lanes)`` — flat slot ids are one gather plus the base add
    slot_delta: np.ndarray = field(default=None, repr=False)
    blocks_per_row: int = 0
    bank_depth: int = 0

    @property
    def lanes(self) -> int:
        return self.p * self.q

    # -- single-anchor application ---------------------------------------
    def fits(self, i: int, j: int) -> bool:
        """Whether the access anchored at (i, j) stays inside the space."""
        return self.i_lo <= i <= self.i_hi and self.j_lo <= j <= self.j_hi

    def conflict_free(self, i: int, j: int) -> bool:
        """O(1) conflict check from the residue table."""
        return bool(self.ok[i % self.period, j % self.period])

    def banks(self, i: int, j: int) -> np.ndarray:
        """Per-lane bank ids at anchor (i, j) (read-only table row)."""
        return self.bank_table[i % self.period, j % self.period]

    def inverse_permutation(self, i: int, j: int) -> np.ndarray:
        """``lane_of_bank`` row at anchor (i, j); only valid where
        :meth:`conflict_free` holds."""
        return self.lane_of_bank[i % self.period, j % self.period]

    def addrs(self, i: int, j: int) -> np.ndarray:
        """Per-lane in-bank addresses at anchor (i, j): base + delta."""
        base = (i // self.p) * self.blocks_per_row + (j // self.q)
        return base + self.addr_delta[i % self.p, j % self.q]

    # -- batched application ---------------------------------------------
    def fits_mask(self, anchors_i: np.ndarray, anchors_j: np.ndarray) -> np.ndarray:
        """Per-anchor in-bounds mask."""
        return (
            (anchors_i >= self.i_lo)
            & (anchors_i <= self.i_hi)
            & (anchors_j >= self.j_lo)
            & (anchors_j <= self.j_hi)
        )

    def ok_mask(self, anchors_i: np.ndarray, anchors_j: np.ndarray) -> np.ndarray:
        """Per-anchor conflict-freedom mask."""
        return self.ok[anchors_i % self.period, anchors_j % self.period]

    def banks_many(self, anchors_i: np.ndarray, anchors_j: np.ndarray) -> np.ndarray:
        """``(B, lanes)`` bank ids (int16 table gather)."""
        return self.bank_table[anchors_i % self.period, anchors_j % self.period]

    def addrs_many(self, anchors_i: np.ndarray, anchors_j: np.ndarray) -> np.ndarray:
        """``(B, lanes)`` in-bank addresses."""
        base = (anchors_i // self.p) * self.blocks_per_row + (anchors_j // self.q)
        return base[:, None] + self.addr_delta[anchors_i % self.p, anchors_j % self.q]

    def slots_many(self, anchors_i: np.ndarray, anchors_j: np.ndarray) -> np.ndarray:
        """``(B, lanes)`` flat ``bank * depth + address`` slot ids.

        One fused-table gather plus the anchor-base add — the whole-trace
        replay path lives on this."""
        base = (anchors_i // self.p) * self.blocks_per_row + (anchors_j // self.q)
        return base[:, None] + self.slot_delta[
            anchors_i % self.period, anchors_j % self.period
        ]


@lru_cache(maxsize=256)
def compile_plan(
    rows: int,
    cols: int,
    p: int,
    q: int,
    scheme: Scheme,
    kind: PatternKind,
    stride: int = 1,
) -> AccessPlan:
    """Compile (and memoize) the :class:`AccessPlan` for one access family.

    The cache is process-wide: every PolyMem instance with the same
    geometry shares the same compiled tables (they are immutable).  The
    LRU bound (256) is sized to hold the full Table III warm set (~112
    families) plus runtime extras, so a parent that pre-warms before
    forking workers keeps every family resident.
    """
    kind = PatternKind(kind)
    scheme = Scheme(scheme)
    _compiled_keys[(rows, cols, p, q, scheme, kind, stride)] = None
    prebuilt = _batch_built.pop((rows, cols, p, q, scheme, kind, stride), None)
    if prebuilt is not None:
        return prebuilt
    di, dj = pattern_offsets(kind, p, q, stride)
    period = p * q
    res = np.arange(period, dtype=np.int64)
    # (P, 1, L) x (1, P, L) broadcast: every MAF mixes i and j terms
    ii = res[:, None, None] + di[None, None, :]
    jj = res[None, :, None] + dj[None, None, :]
    bank_table = flat_module_assignment(scheme, ii, jj, p, q)
    bank_table = np.broadcast_to(
        bank_table, (period, period, p * q)
    ).astype(np.int16)
    sorted_b = np.sort(bank_table, axis=-1)
    ok = ~(sorted_b[..., 1:] == sorted_b[..., :-1]).any(axis=-1)
    if p * q == 1:
        ok = np.ones((period, period), dtype=bool)
    # argsort of a permutation row is its inverse; stable sort keeps the
    # result deterministic on conflicting (non-permutation) rows too
    lane_of_bank = np.argsort(bank_table, axis=-1, kind="stable").astype(np.int16)
    blocks_per_row = cols // q
    rp = np.arange(p, dtype=np.int64)
    rq = np.arange(q, dtype=np.int64)
    addr_delta = ((rp[:, None, None] + di[None, None, :]) // p) * blocks_per_row + (
        (rq[None, :, None] + dj[None, None, :]) // q
    )
    bank_depth = (rows // p) * blocks_per_row
    slot_delta = bank_table.astype(np.int64) * bank_depth + addr_delta[
        res[:, None] % p, res[None, :] % q
    ]
    return AccessPlan(
        rows=rows,
        cols=cols,
        p=p,
        q=q,
        scheme=scheme,
        kind=kind,
        stride=stride,
        di=di,
        dj=dj,
        i_lo=int(-di.min()) if di.size else 0,
        i_hi=rows - 1 - int(di.max()) if di.size else rows - 1,
        j_lo=int(-dj.min()) if dj.size else 0,
        j_hi=cols - 1 - int(dj.max()) if dj.size else cols - 1,
        period=period,
        bank_table=_readonly(np.ascontiguousarray(bank_table)),
        lane_of_bank=_readonly(np.ascontiguousarray(lane_of_bank)),
        ok=_readonly(ok),
        addr_delta=_readonly(addr_delta),
        slot_delta=_readonly(np.ascontiguousarray(slot_delta)),
        blocks_per_row=blocks_per_row,
        bank_depth=bank_depth,
    )


def _normalize_plan_key(key) -> tuple:
    rows, cols, p, q, scheme, kind, *rest = key
    stride = int(rest[0]) if rest else 1
    return (
        int(rows), int(cols), int(p), int(q),
        Scheme(scheme), PatternKind(kind), stride,
    )


def compile_plan_batch(keys) -> dict[tuple, AccessPlan]:
    """Compile a whole grid of plan families in shared broadcast passes.

    *keys* are ``(rows, cols, p, q, scheme, kind[, stride])`` tuples as
    accepted by :func:`compile_plan`.  Families not yet resident are
    grouped by their residue *core* ``(p, q, scheme, kind, stride)``: the
    bank/ok/inverse-permutation tables depend only on the core (every MAF
    is periodic with period ``P = p * q``, independent of the geometry),
    and the address tables are linear in the geometry —
    ``addr_delta = A * blocks_per_row + B`` with core-only ``A``/``B`` —
    so one residue build covers every ``(rows, cols)`` member of the core
    via two integer broadcasts, with arithmetic identical to the scalar
    body's (bit-identical tables; the core members share the read-only
    residue arrays instead of owning copies).

    Each pre-built plan is adopted by the memoized :func:`compile_plan`
    (its body pops :data:`_batch_built` on the miss), so batch-built
    families land in the same process-wide LRU with the same miss
    accounting — single-config callers are unaffected and later scalar
    lookups hit.  Returns ``{normalized key: plan}`` for every input key.
    """
    normd = [_normalize_plan_key(k) for k in keys]
    fresh = [k for k in dict.fromkeys(normd) if k not in _compiled_keys]
    by_core: dict[tuple, list[tuple]] = {}
    for k in fresh:
        rows, cols, p, q, scheme, kind, stride = k
        by_core.setdefault((p, q, scheme, kind, stride), []).append(k)
    for (p, q, scheme, kind, stride), members in by_core.items():
        di, dj = pattern_offsets(kind, p, q, stride)
        period = p * q
        res = np.arange(period, dtype=np.int64)
        ii = res[:, None, None] + di[None, None, :]
        jj = res[None, :, None] + dj[None, None, :]
        bank_table = flat_module_assignment(scheme, ii, jj, p, q)
        bank_table = np.broadcast_to(
            bank_table, (period, period, p * q)
        ).astype(np.int16)
        sorted_b = np.sort(bank_table, axis=-1)
        ok = ~(sorted_b[..., 1:] == sorted_b[..., :-1]).any(axis=-1)
        if p * q == 1:
            ok = np.ones((period, period), dtype=bool)
        lane_of_bank = np.argsort(
            bank_table, axis=-1, kind="stable"
        ).astype(np.int16)
        rp = np.arange(p, dtype=np.int64)
        rq = np.arange(q, dtype=np.int64)
        delta_a = (rp[:, None, None] + di[None, None, :]) // p
        delta_b = (rq[None, :, None] + dj[None, None, :]) // q
        bank64 = bank_table.astype(np.int64)
        res_p = res[:, None] % p
        res_q = res[None, :] % q
        bank_table = _readonly(np.ascontiguousarray(bank_table))
        lane_of_bank = _readonly(np.ascontiguousarray(lane_of_bank))
        ok = _readonly(ok)
        i_lo = int(-di.min()) if di.size else 0
        j_lo = int(-dj.min()) if dj.size else 0
        for rows, cols, *_ in members:
            blocks_per_row = cols // q
            addr_delta = delta_a * blocks_per_row + delta_b
            bank_depth = (rows // p) * blocks_per_row
            slot_delta = bank64 * bank_depth + addr_delta[res_p, res_q]
            _batch_built[(rows, cols, p, q, scheme, kind, stride)] = AccessPlan(
                rows=rows,
                cols=cols,
                p=p,
                q=q,
                scheme=scheme,
                kind=kind,
                stride=stride,
                di=di,
                dj=dj,
                i_lo=i_lo,
                i_hi=rows - 1 - int(di.max()) if di.size else rows - 1,
                j_lo=j_lo,
                j_hi=cols - 1 - int(dj.max()) if dj.size else cols - 1,
                period=period,
                bank_table=bank_table,
                lane_of_bank=lane_of_bank,
                ok=ok,
                addr_delta=_readonly(addr_delta),
                slot_delta=_readonly(np.ascontiguousarray(slot_delta)),
                blocks_per_row=blocks_per_row,
                bank_depth=bank_depth,
            )
    if fresh:
        tel = _telemetry.active()
        if tel is not None:
            tel.metrics.counter("polymem.plan_batch.families").inc(len(fresh))
            tel.metrics.counter("polymem.plan_batch.cores").inc(len(by_core))
    return {k: compile_plan(*k) for k in dict.fromkeys(normd)}


def plan_cache_keys() -> list[tuple]:
    """Every plan-family key compiled in this process, in compile order.

    The exportable warm set of the fork-after-warm exec runtime: a parent
    calls this after pre-compiling, ships the plain tuples to spawn-start
    workers, and :func:`warm_plans_from_keys` re-materializes them there
    (fork-start workers inherit the compiled tables copy-on-write and
    never need the export).
    """
    return list(_compiled_keys)


def warm_plans_from_keys(keys) -> int:
    """Compile every plan family in *keys* (tuples as produced by
    :func:`plan_cache_keys`); returns the number of families compiled
    fresh (0 when everything was already warm)."""
    before = compile_plan.cache_info().misses
    for key in keys:
        compile_plan(*key)
    return compile_plan.cache_info().misses - before


def plan_cache_stats() -> dict:
    """Process-wide plan-cache accounting as plain JSON (the exec
    runtime's per-worker cache telemetry reads the hit/miss deltas)."""
    info = compile_plan.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "size": info.currsize,
        "maxsize": info.maxsize,
    }


def _as_anchor_array(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise PatternError(f"{name} anchors must be a 1-D integer array")
    return arr


class _Stream:
    """One port's access stream: per-cycle kinds + anchors (+ values)."""

    __slots__ = ("kinds", "codes", "anchors_i", "anchors_j", "stride", "values")

    def __init__(self, kind, anchors_i, anchors_j, stride=1, values=None):
        self.anchors_i = _as_anchor_array(anchors_i, "i")
        self.anchors_j = _as_anchor_array(anchors_j, "j")
        if self.anchors_i.shape != self.anchors_j.shape:
            raise PatternError("anchor arrays must be equal-length 1-D")
        n = self.anchors_i.size
        if isinstance(kind, (PatternKind, str)):
            self.kinds = (PatternKind(kind),)
            self.codes = None
        else:
            seq = [PatternKind(k) for k in kind]
            if len(seq) != n:
                raise PatternError(
                    f"per-cycle kinds: got {len(seq)} kinds for {n} anchors"
                )
            distinct = list(dict.fromkeys(seq))
            self.kinds = tuple(distinct)
            index = {k: c for c, k in enumerate(distinct)}
            self.codes = np.fromiter(
                (index[k] for k in seq), dtype=np.int64, count=n
            )
        if stride < 1:
            raise PatternError(f"stride must be >= 1, got {stride}")
        self.stride = stride
        self.values = values

    @property
    def n(self) -> int:
        return self.anchors_i.size

    def kind_at(self, t: int) -> PatternKind:
        if self.codes is None:
            return self.kinds[0]
        return self.kinds[int(self.codes[t])]

    def tables(self, plan_of) -> tuple[np.ndarray, np.ndarray]:
        """Expand this stream into ``(slots, valid)`` index tables.

        ``plan_of(kind, stride)`` supplies the compiled
        :class:`AccessPlan` for each pattern family (typically
        ``PolyMem.plan``).  ``slots`` holds flat ``bank * depth +
        address`` ids, ``(n, lanes)``; ``valid[t]`` is True when cycle
        *t*'s access is in bounds and conflict-free.  Slot rows are
        computed unconditionally (the residue tables accept any anchor,
        producing garbage ids on invalid rows), so callers must gate
        memory traffic on ``valid``.
        """
        ai, aj = self.anchors_i, self.anchors_j
        if self.codes is None:
            plan = plan_of(self.kinds[0], self.stride)
            valid = plan.fits_mask(ai, aj) & plan.ok_mask(ai, aj)
            return plan.slots_many(ai, aj), valid
        n = self.n
        slots = None
        valid = np.empty(n, dtype=bool)
        for code, kind in enumerate(self.kinds):
            m = self.codes == code
            mi, mj = ai[m], aj[m]
            plan = plan_of(kind, self.stride)
            if slots is None:
                slots = np.empty((n, plan.lanes), dtype=np.int64)
            valid[m] = plan.fits_mask(mi, mj) & plan.ok_mask(mi, mj)
            slots[m] = plan.slots_many(mi, mj)
        if slots is None:  # zero-length heterogeneous stream
            slots = np.empty((0, 0), dtype=np.int64)
        return slots, valid

    def sliced(self, stop: int) -> "_Stream":
        kind = (
            self.kinds[0]
            if self.codes is None
            else [self.kinds[int(c)] for c in self.codes[:stop]]
        )
        values = None if self.values is None else self.values[:stop]
        return _Stream(
            kind, self.anchors_i[:stop], self.anchors_j[:stop], self.stride, values
        )


def stream_tables(
    kind, anchors_i, anchors_j, plan_of, stride: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Expand one access stream into ``(slots, valid)`` index tables.

    The public face of the index-table expansion the replay path and the
    fusion backend share: *kind* is one :class:`PatternKind` (or a
    per-cycle sequence of kinds), ``plan_of(kind, stride)`` resolves each
    family to its compiled :class:`AccessPlan`.  Returns the flat slot-id
    table ``(n, lanes)`` plus the per-cycle validity mask ``(n,)``.
    """
    return _Stream(kind, anchors_i, anchors_j, stride).tables(plan_of)


class AccessTrace:
    """A trace of parallel accesses for :meth:`PolyMem.replay`.

    One trace describes ``n`` consecutive cycles; each added stream issues
    exactly one access per cycle on its port (reads) or on the write port.
    Replay is bit-identical to issuing cycle ``t``'s accesses with one
    ``step()`` call per cycle, reads in the order the streams were added.

    >>> import numpy as np
    >>> t = AccessTrace().read("row", np.arange(4), np.zeros(4, int))
    >>> t.n
    4
    """

    def __init__(self):
        self._reads: dict[int, _Stream] = {}
        self._write: _Stream | None = None

    # -- construction ------------------------------------------------------
    def _check_length(self, stream: _Stream) -> None:
        if (self._reads or self._write is not None) and stream.n != self.n:
            raise PatternError(
                f"trace streams must share one length: trace has {self.n} "
                f"cycles, new stream has {stream.n}"
            )

    def read(self, kind, anchors_i, anchors_j, port: int = 0, stride: int = 1):
        """Add a read stream on *port*; *kind* is one shape or a per-cycle
        sequence of shapes.  Returns the trace (chainable)."""
        if port in self._reads:
            raise PortError(f"trace already has a read stream on port {port}")
        stream = _Stream(kind, anchors_i, anchors_j, stride)
        self._check_length(stream)
        self._reads[port] = stream
        return self

    def write(self, kind, anchors_i, anchors_j, values, stride: int = 1):
        """Add the write stream; *values* is the ``(n, lanes)`` data."""
        if self._write is not None:
            raise PortError("trace already has a write stream")
        values = np.asarray(values)
        stream = _Stream(kind, anchors_i, anchors_j, stride, values)
        if values.ndim != 2 or values.shape[0] != stream.n:
            raise PatternError(
                f"write values must be (n, lanes) = ({stream.n}, ...), "
                f"got shape {values.shape}"
            )
        self._check_length(stream)
        self._write = stream
        return self

    # -- introspection -----------------------------------------------------
    @property
    def n(self) -> int:
        """Trace length in cycles."""
        for stream in self._reads.values():
            return stream.n
        return self._write.n if self._write is not None else 0

    @property
    def read_ports(self) -> tuple[int, ...]:
        return tuple(self._reads)

    @property
    def has_write(self) -> bool:
        return self._write is not None

    # -- replay plumbing (used by PolyMem.replay) --------------------------
    def prefix(self, stop: int) -> "AccessTrace":
        """The first *stop* cycles as a new trace."""
        out = AccessTrace()
        for port, stream in self._reads.items():
            out._reads[port] = stream.sliced(stop)
        if self._write is not None:
            out._write = self._write.sliced(stop)
        return out

    def cycle_args(self, t: int):
        """Cycle *t* as ``step()`` arguments: ``(reads, write)``."""
        from .agu import AccessRequest

        reads = [
            (
                port,
                AccessRequest(
                    s.kind_at(t), int(s.anchors_i[t]), int(s.anchors_j[t]), s.stride
                ),
            )
            for port, s in self._reads.items()
        ]
        write = None
        if self._write is not None:
            s = self._write
            write = (
                AccessRequest(
                    s.kind_at(t), int(s.anchors_i[t]), int(s.anchors_j[t]), s.stride
                ),
                s.values[t],
            )
        return reads, write
