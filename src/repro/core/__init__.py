"""PolyMem core: schemes, patterns, AGU, shuffles, banks, and the facade.

This subpackage is the paper's primary contribution — a functional model of
the polymorphic parallel memory of Fig. 3, independent of any particular
hardware substrate.
"""

from .addressing import AddressingFunction
from .agu import AGU, AccessRequest
from .banks import BankArray
from .config import KB, MB, PolyMemConfig
from .conflict import AnchorDomain, ConflictAnalyzer, conflict_banks, is_conflict_free
from .exceptions import (
    AddressError,
    CapacityError,
    ConfigurationError,
    ConflictError,
    PatternError,
    PolyMemError,
    PortError,
    ScheduleError,
    SchemeError,
    SimulationError,
)
from .patterns import AccessPattern, PatternKind, pattern_offsets
from .plan import (
    AccessPlan,
    AccessTrace,
    compile_plan,
    plan_cache_keys,
    plan_cache_stats,
    warm_plans_from_keys,
)
from .polymem import PolyMem
from .regions import Region, RegionMap
from .schemes import SCHEME_SPECS, Scheme, all_schemes, module_assignment
from .shuffle import (
    BenesNetwork,
    FullCrossbar,
    InverseShuffle,
    Shuffle,
    route_memo,
    warm_routes,
)

__all__ = [
    "AGU",
    "AccessPattern",
    "AccessPlan",
    "AccessRequest",
    "AccessTrace",
    "AddressError",
    "AddressingFunction",
    "AnchorDomain",
    "BankArray",
    "BenesNetwork",
    "CapacityError",
    "ConfigurationError",
    "ConflictAnalyzer",
    "ConflictError",
    "FullCrossbar",
    "InverseShuffle",
    "KB",
    "MB",
    "PatternError",
    "PatternKind",
    "PolyMem",
    "PolyMemConfig",
    "PolyMemError",
    "Region",
    "RegionMap",
    "PortError",
    "SCHEME_SPECS",
    "ScheduleError",
    "Scheme",
    "SchemeError",
    "Shuffle",
    "SimulationError",
    "all_schemes",
    "compile_plan",
    "conflict_banks",
    "is_conflict_free",
    "module_assignment",
    "pattern_offsets",
    "plan_cache_keys",
    "plan_cache_stats",
    "route_memo",
    "warm_plans_from_keys",
    "warm_routes",
]
