"""Shuffle networks: the reordering crossbars of paper Fig. 3.

MAX-PolyMem contains three shuffles — the Address Shuffle, the Write Data
Shuffle and the Read Data Shuffle.  Given a *reordering signal* (the
per-lane bank assignment produced by ``M``), the regular :class:`Shuffle`
moves lane-ordered values into bank order, while the :class:`InverseShuffle`
with the same signal restores lane order.  The paper implements the Write
Data Shuffle as an inverse shuffle and the Read Data Shuffle as a regular
shuffle.

Two hardware realizations are modeled, for the crossbar-area ablation bench:

* :class:`FullCrossbar` — the paper's implementation; O(n^2) multiplexer
  area, single stage.
* :class:`BenesNetwork` — a rearrangeable non-blocking permutation network;
  O(n log n) 2x2 switches across ``2*log2(n) - 1`` stages, routed with the
  classic looping algorithm.

Both realizations are functionally exact permutations; they differ only in
the resource/latency estimates consumed by :mod:`repro.hw`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .exceptions import PatternError, SimulationError
from ..telemetry import context as _telemetry

__all__ = [
    "Shuffle",
    "InverseShuffle",
    "FullCrossbar",
    "BenesNetwork",
    "RouteMemo",
    "permutation_from_banks",
    "route_memo",
    "warm_routes",
]


def permutation_from_banks(banks: np.ndarray) -> np.ndarray:
    """Build the lane->bank permutation from a bank-assignment vector.

    *banks[k]* is the flat bank id accessed by lane ``k``.  For a
    conflict-free access this is a permutation of ``0..n-1``; otherwise a
    :class:`SimulationError` is raised (hardware would corrupt data here —
    the model refuses instead).
    """
    banks = np.asarray(banks)
    n = banks.size
    if banks.ndim != 1:
        raise PatternError("bank assignment must be 1-D")
    seen = np.zeros(n, dtype=bool)
    if banks.min(initial=0) < 0 or banks.max(initial=-1) >= n:
        raise SimulationError(f"bank ids out of range for {n} banks")
    seen[banks] = True
    if not seen.all():
        raise SimulationError(
            "bank assignment is not a permutation (conflicting access)"
        )
    return banks


class Shuffle:
    """Regular shuffle: ``out[banks[k]] = in[k]`` (lane order -> bank order)."""

    def __init__(self, lanes: int):
        if lanes < 1:
            raise PatternError(f"lanes must be positive, got {lanes}")
        self.lanes = lanes

    def __call__(self, values: np.ndarray, banks: np.ndarray) -> np.ndarray:
        """Reorder *values* so position ``banks[k]`` holds lane ``k``'s value.

        *values* may be 1-D (one access) or 2-D ``(B, lanes)`` (a batch
        sharing one reordering signal per row when *banks* is 2-D).
        """
        values = np.asarray(values)
        banks = np.asarray(banks)
        if values.ndim == 1:
            perm = permutation_from_banks(banks)
            out = np.empty_like(values)
            out[perm] = values
            return out
        if values.ndim == 2 and banks.ndim == 2:
            if values.shape != banks.shape:
                raise PatternError("batched values/banks shape mismatch")
            out = np.empty_like(values)
            rows = np.arange(values.shape[0])[:, None]
            out[rows, banks] = values
            return out
        raise PatternError("values must be 1-D, or 2-D with 2-D banks")


class InverseShuffle(Shuffle):
    """Inverse shuffle: ``out[k] = in[banks[k]]`` (bank order -> lane order).

    With the same reordering signal, ``InverseShuffle(Shuffle(x)) == x``.
    """

    def __call__(self, values: np.ndarray, banks: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        banks = np.asarray(banks)
        if values.ndim == 1:
            permutation_from_banks(banks)
            return values[banks]
        if values.ndim == 2 and banks.ndim == 2:
            if values.shape != banks.shape:
                raise PatternError("batched values/banks shape mismatch")
            rows = np.arange(values.shape[0])[:, None]
            return values[rows, banks]
        raise PatternError("values must be 1-D, or 2-D with 2-D banks")


class RouteMemo:
    """The process-wide Benes route memo, shared by every network instance.

    Routes are a pure function of ``(lanes, permutation)`` — the hardware
    analogue is fixed combinational control logic — so there is nothing
    instance-specific to key on.  Sharing one memo per process means (a)
    every :class:`BenesNetwork` with the same lane count reuses routes,
    and (b) a parent that pre-routes the permutations of a sweep before
    forking workers hands each worker a warm memo copy-on-write (the
    fork-after-warm path of :mod:`repro.exec.runtime`).  ``hits`` /
    ``misses`` mirror the ``benes.route_cache.*`` telemetry counters for
    the exec runtime's per-worker cache accounting.
    """

    def __init__(self):
        self._entries: dict[tuple[int, bytes], list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, lanes: int, key: bytes):
        """The memoized stages for one permutation, or ``None``."""
        entry = self._entries.get((lanes, key))
        tel = _telemetry.active()
        if entry is None:
            self.misses += 1
            if tel is not None:
                tel.metrics.counter("benes.route_cache.misses").inc()
            return None
        self.hits += 1
        if tel is not None:
            tel.metrics.counter("benes.route_cache.hits").inc()
        return entry

    def store(self, lanes: int, key: bytes, stages: list[np.ndarray]) -> None:
        self._entries[(lanes, key)] = stages

    def clear(self) -> None:
        self._entries.clear()
        self.hits = self.misses = 0

    def stats(self) -> dict:
        return {"size": len(self._entries), "hits": self.hits, "misses": self.misses}

    def export_keys(self) -> list[tuple[int, list[int]]]:
        """Routed permutations as ``(lanes, permutation list)`` pairs — the
        exportable warm set :func:`warm_routes` replays in spawn-start
        workers."""
        return [
            (lanes, np.frombuffer(key, dtype=np.int64).tolist())
            for lanes, key in self._entries
        ]


#: the process-wide route memo (mirrors the plan cache's sharing model)
route_memo = RouteMemo()


def warm_routes(perms) -> int:
    """Route every ``(lanes, permutation)`` pair in *perms* into
    :data:`route_memo`; returns the number routed fresh."""
    before = route_memo.misses
    networks: dict[int, BenesNetwork] = {}
    for lanes, perm in perms:
        net = networks.get(lanes)
        if net is None:
            net = networks[lanes] = BenesNetwork(lanes)
        net.route(np.asarray(perm, dtype=np.int64))
    return route_memo.misses - before


@dataclass(frozen=True)
class CrossbarCost:
    """Hardware cost estimate of a shuffle realization."""

    muxes: int
    """Equivalent n:1 multiplexer count (full crossbar) or 2x2 switches."""
    stages: int
    """Pipeline depth in switching stages."""
    lut_estimate: int
    """Rough LUT count (6-input LUTs, 64-bit datapath)."""


class FullCrossbar(Shuffle):
    """Single-stage n x n crossbar: the realization used by MAX-PolyMem.

    Area grows quadratically with the lane count, which the paper identifies
    as the cause of the supra-linear logic increase from 8 to 16 lanes.
    """

    #: LUTs per 2:1 mux bit (one LUT6 implements two 2:1 muxes -> 0.5)
    LUTS_PER_MUX_BIT = 0.5

    def __init__(self, lanes: int, width_bits: int = 64):
        super().__init__(lanes)
        self.width_bits = width_bits

    def cost(self) -> CrossbarCost:
        """O(n^2) mux cost: each of n outputs needs an n:1 mux, which is
        built from (n - 1) 2:1 muxes, replicated across the datapath."""
        n = self.lanes
        mux2 = n * (n - 1) * self.width_bits
        return CrossbarCost(
            muxes=n,
            stages=1,
            lut_estimate=int(mux2 * self.LUTS_PER_MUX_BIT),
        )


class BenesNetwork(Shuffle):
    """Benes rearrangeable permutation network over ``n = 2^k`` lanes.

    Functionally identical to a full crossbar for permutation traffic, with
    O(n log n) area — the ablation bench quantifies the trade against the
    paper's full-crossbar choice.  Routing uses the classical looping
    algorithm, recursively splitting the permutation across the outer
    switch stages into two half-size sub-networks.
    """

    LUTS_PER_MUX_BIT = 0.5

    def __init__(self, lanes: int, width_bits: int = 64):
        super().__init__(lanes)
        if lanes & (lanes - 1):
            raise PatternError(f"Benes network requires power-of-two lanes, got {lanes}")
        self.width_bits = width_bits

    # -- routing ---------------------------------------------------------
    def route(self, perm: np.ndarray) -> list[np.ndarray]:
        """Compute per-stage switch settings realizing *perm*.

        Returns one boolean array per stage; entry ``s`` of a stage array
        tells whether 2x2 switch ``s`` of that stage crosses its inputs.
        The result has ``2*log2(n) - 1`` stages (a single 1-switch stage
        when n == 2).  Routing uses the looping algorithm expressed as a
        2-coloring of the input/output switch constraint graph.

        Settings are memoized per ``(lanes, permutation)`` in the
        process-wide :data:`route_memo` — the steady-state traffic of a
        PRF repeats the same few reordering signals every cycle, so after
        warm-up a route is one dict probe (the hardware analogue: the
        switch-control signals are a pure function of the already-computed
        bank assignment), and forked exec workers inherit every route the
        parent has already computed.
        """
        perm = permutation_from_banks(np.asarray(perm))
        key = np.ascontiguousarray(perm, dtype=np.int64).tobytes()
        cached = route_memo.lookup(self.lanes, key)
        if cached is None:
            cached = self._route_two_coloring(perm.tolist())
            route_memo.store(self.lanes, key, cached)
        # stage arrays are shared; callers treat them as read-only settings
        return list(cached)

    def _route_two_coloring(self, perm: list[int]) -> list[np.ndarray]:
        """Route by 2-coloring the constraint graph between input and output
        switches: legs sharing an input switch must use different subnets,
        and legs sharing an output switch must use different subnets.  The
        constraint graph is a union of even cycles, hence always
        2-colorable (Benes rearrangeability)."""
        n = len(perm)
        if n == 2:
            return [np.array([perm[0] == 1])]
        half = n // 2
        inv = [0] * n
        for leg, dst in enumerate(perm):
            inv[dst] = leg
        color = [-1] * n  # subnet (0/1) carrying each input leg
        for start in range(n):
            if color[start] != -1:
                continue
            color[start] = 0
            stack = [start]
            while stack:
                leg = stack.pop()
                c = color[leg]
                # input-switch constraint: partner leg uses other subnet
                partner_in = leg ^ 1
                if color[partner_in] == -1:
                    color[partner_in] = 1 - c
                    stack.append(partner_in)
                elif color[partner_in] == c:
                    raise SimulationError("Benes routing coloring conflict")
                # output-switch constraint: the leg delivering the partner
                # output must use the other subnet
                partner_leg = inv[perm[leg] ^ 1]
                if color[partner_leg] == -1:
                    color[partner_leg] = 1 - c
                    stack.append(partner_leg)
                elif color[partner_leg] == c:
                    raise SimulationError("Benes routing coloring conflict")
        in_sw = np.array([color[2 * s] == 1 for s in range(half)])
        out_sw = np.zeros(half, dtype=bool)
        sub = [[-1] * half, [-1] * half]
        for leg in range(n):
            net = color[leg]
            dst = perm[leg]
            sub[net][leg // 2] = dst // 2
            out_sw[dst // 2] = (dst % 2) != net
        upper = self._route_two_coloring(sub[0])
        lower = self._route_two_coloring(sub[1])
        mid = [np.concatenate([u, l]) for u, l in zip(upper, lower)]
        return [in_sw, *mid, out_sw]

    def apply_route(self, values: np.ndarray, stages: list[np.ndarray]) -> np.ndarray:
        """Push *values* through the switch settings (for verification)."""
        return self._apply_rec(np.asarray(values), stages)

    def _apply_rec(self, values: np.ndarray, stages: list[np.ndarray]) -> np.ndarray:
        n = values.size
        if n == 2:
            return values[::-1].copy() if stages[0][0] else values.copy()
        half = n // 2
        in_sw, mid, out_sw = stages[0], stages[1:-1], stages[-1]
        upper_in = np.empty(half, dtype=values.dtype)
        lower_in = np.empty(half, dtype=values.dtype)
        for s in range(half):
            a, b = values[2 * s], values[2 * s + 1]
            if in_sw[s]:
                a, b = b, a
            upper_in[s], lower_in[s] = a, b
        # each sub-network has `half` lanes, hence half//2 switches per stage
        up_stages = [m[: half // 2] for m in mid]
        lo_stages = [m[half // 2 :] for m in mid]
        upper_out = self._apply_rec(upper_in, up_stages)
        lower_out = self._apply_rec(lower_in, lo_stages)
        out = np.empty(n, dtype=values.dtype)
        for s in range(half):
            a, b = upper_out[s], lower_out[s]
            if out_sw[s]:
                a, b = b, a
            out[2 * s], out[2 * s + 1] = a, b
        return out

    def __call__(self, values: np.ndarray, banks: np.ndarray) -> np.ndarray:
        """Permute via routed switch stages (slow path, proves equivalence).

        The result equals ``Shuffle.__call__`` — tested property.
        """
        values = np.asarray(values)
        if values.ndim != 1:
            # fall back to direct permutation semantics for batches
            return Shuffle.__call__(self, values, banks)
        perm = permutation_from_banks(np.asarray(banks))
        stages = self.route(perm)
        return self.apply_route(values, stages)

    @property
    def num_stages(self) -> int:
        """Stage count: ``2*log2(n) - 1``."""
        return 2 * int(math.log2(self.lanes)) - 1

    def cost(self) -> CrossbarCost:
        """O(n log n) switches, ``2 log2 n - 1`` stages."""
        n = self.lanes
        switches = (n // 2) * self.num_stages
        # one 2x2 switch = 2 two-input muxes per bit
        mux2 = switches * 2 * self.width_bits
        return CrossbarCost(
            muxes=switches,
            stages=self.num_stages,
            lut_estimate=int(mux2 * self.LUTS_PER_MUX_BIT),
        )
