"""Off-chip DRAM/HBM channel backends: burst coalescing + row buffers.

Where on-chip BRAM delivers a full parallel word every cycle regardless of
the address stream, an off-chip channel's *achieved* bandwidth is a
function of the stream's shape (arXiv 2202.05933):

* the controller moves **aligned bursts** of ``burst_bytes``; touching one
  word of a burst pays for the whole granule, so a stride that visits one
  word per burst wastes ``burst_bytes / word_bytes`` of the wire;
* each (pseudo-)channel keeps one **row buffer** of ``row_bytes`` open;
  a burst landing in a different row pays the activate/precharge penalty
  ``row_miss_ns``;
* consecutive addresses **interleave** across channels every
  ``interleave_bytes``, so channels drain in parallel and the stream's
  wall time is the busiest channel's.

:class:`DramChannelModel.traffic` evaluates that model for one
:class:`~repro.backend.base.AddressStream` in a handful of vectorized
passes — the streams themselves come from the same compiled-plan
``di``/``dj`` address tables the batched replay engine gathers from
(:meth:`AddressStream.from_plan`).  The burst-friendly layout pass in
:mod:`repro.backend.layout` exists to move real streams toward the
sequential corner of this model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import PolyMemConfig
from ..telemetry import context as _telemetry
from .base import (
    AchievedBandwidth,
    AddressStream,
    DeviceBackend,
    Feasibility,
    LinkModel,
)
from .fpga import FpgaBramBackend, VectisBramBackend

__all__ = [
    "DramChannelModel",
    "DramChannelBackend",
    "DDR3_LMEM",
    "HBM2_STACK",
]


@dataclass(frozen=True)
class DramChannelModel:
    """One off-chip memory system: N identical (pseudo-)channels.

    ``channel_gbps`` is the per-channel pin bandwidth; GB/s equals
    bytes/ns, which keeps the timing arithmetic below unit-free.
    """

    name: str
    channels: int
    channel_gbps: float
    row_bytes: int
    burst_bytes: int
    interleave_bytes: int
    row_miss_ns: float
    capacity_bytes: int

    @property
    def peak_gbps(self) -> float:
        """Aggregate pin bandwidth over all channels."""
        return self.channels * self.channel_gbps

    def traffic(self, stream: AddressStream) -> AchievedBandwidth:
        """Evaluate the burst/row-buffer model for one address stream."""
        byte0 = stream.addresses * stream.word_bytes
        chan = (byte0 // self.interleave_bytes) % self.channels
        granule = byte0 // self.burst_bytes
        row = byte0 // self.row_bytes
        bursts = row_hits = row_misses = 0
        busiest_ns = 0.0
        transferred = 0
        for c in range(self.channels):
            mask = chan == c
            if not mask.any():
                continue
            g = granule[mask]
            new_burst = np.empty(g.size, dtype=bool)
            new_burst[0] = True
            np.not_equal(g[1:], g[:-1], out=new_burst[1:])
            burst_rows = row[mask][new_burst]
            miss = np.empty(burst_rows.size, dtype=bool)
            miss[0] = True
            np.not_equal(burst_rows[1:], burst_rows[:-1], out=miss[1:])
            n_bursts = int(new_burst.sum())
            n_misses = int(miss.sum())
            moved = n_bursts * self.burst_bytes
            time_ns = moved / self.channel_gbps + n_misses * self.row_miss_ns
            bursts += n_bursts
            row_misses += n_misses
            row_hits += n_bursts - n_misses
            transferred += moved
            busiest_ns = max(busiest_ns, time_ns)
        useful = stream.payload_bytes
        achieved = useful / busiest_ns if busiest_ns else 0.0
        return AchievedBandwidth(
            peak_gbps=self.peak_gbps,
            achieved_gbps=achieved,
            useful_bytes=useful,
            transferred_bytes=transferred,
            time_ns=busiest_ns,
            bursts=bursts,
            row_hits=row_hits,
            row_misses=row_misses,
        )


#: the Vectis board's LMem, seen as a channel system: 4 DDR3 channels
#: summing to the 38.4 GB/s the LMem model streams at.
DDR3_LMEM = DramChannelModel(
    name="ddr3-lmem",
    channels=4,
    channel_gbps=9.6,
    row_bytes=8 * 1024,
    burst_bytes=64,
    interleave_bytes=1024,
    row_miss_ns=50.0,
    capacity_bytes=24 * 1024**3,
)

#: one HBM2 stack: 16 pseudo-channels of 16 GB/s (256 GB/s aggregate),
#: 2 KB row buffers, 32 B bursts — the substrate of the multi-die
#: "what-if" sweeps (arXiv 2203.10850).
HBM2_STACK = DramChannelModel(
    name="hbm2-stack",
    channels=16,
    channel_gbps=16.0,
    row_bytes=2 * 1024,
    burst_bytes=32,
    interleave_bytes=256,
    row_miss_ns=45.0,
    capacity_bytes=8 * 1024**3,
)


class DramChannelBackend(DeviceBackend):
    """A PolyMem whose data lives off-chip in DRAM/HBM channels.

    The FPGA *fabric* (crossbars, MAFs, the clock model) is still an FPGA
    — ``fabric`` supplies synthesis estimates and the design clock — but
    the banks map onto channel memory, so capacity is bounded by the
    channel system and bandwidth by its burst behaviour, not by BRAM.
    """

    def __init__(
        self,
        model: DramChannelModel,
        fabric: FpgaBramBackend | None = None,
        name: str | None = None,
    ):
        self.model = model
        self.fabric = fabric if fabric is not None else VectisBramBackend()
        self.name = name or model.name

    # -- identity ---------------------------------------------------------
    def describe(self) -> dict:
        return {
            "name": self.name,
            "kind": "dram",
            "channels": self.model.channels,
            "channel_gbps": self.model.channel_gbps,
            "peak_gbps": self.model.peak_gbps,
            "row_bytes": self.model.row_bytes,
            "burst_bytes": self.model.burst_bytes,
            "capacity_bytes": self.model.capacity_bytes,
            "fabric": self.fabric.device.name,
        }

    # -- capacity / area --------------------------------------------------
    def feasibility(self, config: PolyMemConfig) -> Feasibility:
        utilization = config.capacity_bytes / self.model.capacity_bytes
        feasible = config.capacity_bytes <= self.model.capacity_bytes
        return Feasibility(
            feasible=feasible,
            utilization=utilization,
            reason=""
            if feasible
            else (
                f"{config.capacity_bytes} B exceeds the "
                f"{self.model.capacity_bytes} B channel capacity"
            ),
            detail={"capacity_bytes": self.model.capacity_bytes},
        )

    # -- clock / synthesis ------------------------------------------------
    def clock_mhz(self, config: PolyMemConfig) -> float:
        return self.fabric.clock_mhz(config)

    def paper_mhz(self, config: PolyMemConfig) -> float | None:
        return self.fabric.paper_mhz(config)

    def synthesis(self, config: PolyMemConfig):
        return self.fabric.synthesis(config)

    # -- host link --------------------------------------------------------
    @property
    def link(self) -> LinkModel:
        return self.fabric.link

    # -- bandwidth --------------------------------------------------------
    def peak_write_gbps(self, config: PolyMemConfig) -> float:
        """The channel system's aggregate pin bandwidth — the bound the
        burst/row model's achieved figure approaches on a balanced,
        burst-aligned stream.  (The fabric's single-port Fig. 4 number is
        a different layer: channels drain in parallel behind it.)"""
        return self.model.peak_gbps

    def peak_read_gbps(self, config: PolyMemConfig) -> float:
        return self.model.peak_gbps

    def achieved_bandwidth(
        self, config: PolyMemConfig, stream: AddressStream
    ) -> AchievedBandwidth:
        stats = self.model.traffic(stream)
        tel = _telemetry.active()
        if tel is not None:
            metrics = tel.metrics
            metrics.counter("backend.dram.bursts").inc(stats.bursts)
            metrics.counter("backend.dram.row_hits").inc(stats.row_hits)
            metrics.counter("backend.dram.row_misses").inc(stats.row_misses)
            metrics.counter("backend.dram.useful_bytes").inc(
                stats.useful_bytes
            )
            metrics.counter("backend.dram.transferred_bytes").inc(
                stats.transferred_bytes
            )
            metrics.gauge("backend.dram.efficiency").set(stats.efficiency)
        return stats
