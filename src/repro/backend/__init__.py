"""Pluggable device backends: the hardware substrate behind one interface.

Built-in backends (``get_backend(name)``):

========== ===========================================================
``vectis``  the paper's board — Virtex-6 SX475T BRAM, PCIe gen2 link
            (the default; byte-identical to the pre-backend code path)
``lx240t``  the smaller Virtex-6 LX240T sibling
``dram``    4-channel DDR3 (LMem-class) with the burst/row-buffer model
``hbm2``    one HBM2 stack: 16 pseudo-channels, 256 GB/s aggregate
``dual-dfe`` a logical PolyMem sharded across two Vectis boards
========== ===========================================================

``REPRO_BACKEND=<name>`` selects the default for CLI runs and the
backend-parameterized tests.  This package imports lazily — the ``hw``
layer reads board constants from :mod:`repro.backend.vectis`, so nothing
here may import ``hw`` at module-import time.
"""

from __future__ import annotations

from .base import (
    AchievedBandwidth,
    AddressStream,
    DeviceBackend,
    Feasibility,
    LinkModel,
    backend_names,
    default_backend_name,
    get_backend,
    register_backend,
)
from .vectis import VECTIS, BoardConstants

__all__ = [
    "AchievedBandwidth",
    "AddressStream",
    "BoardConstants",
    "BurstLayout",
    "DeviceBackend",
    "DramChannelBackend",
    "DramChannelModel",
    "Feasibility",
    "FpgaBramBackend",
    "LinkModel",
    "Lx240tBramBackend",
    "ShardedPolyMemBackend",
    "VECTIS",
    "VectisBramBackend",
    "backend_names",
    "default_backend_name",
    "get_backend",
    "plan_layout",
    "register_backend",
]

#: names re-exported lazily (module import would cycle through repro.hw)
_LAZY = {
    "FpgaBramBackend": ("fpga", "FpgaBramBackend"),
    "VectisBramBackend": ("fpga", "VectisBramBackend"),
    "Lx240tBramBackend": ("fpga", "Lx240tBramBackend"),
    "DramChannelModel": ("dram", "DramChannelModel"),
    "DramChannelBackend": ("dram", "DramChannelBackend"),
    "ShardedPolyMemBackend": ("sharded", "ShardedPolyMemBackend"),
    "BurstLayout": ("layout", "BurstLayout"),
    "plan_layout": ("layout", "plan_layout"),
}


def __getattr__(name: str):
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    return getattr(import_module(f".{module}", __name__), attr)


def _vectis() -> DeviceBackend:
    from .fpga import VectisBramBackend

    return VectisBramBackend()


def _lx240t() -> DeviceBackend:
    from .fpga import Lx240tBramBackend

    return Lx240tBramBackend()


def _dram() -> DeviceBackend:
    from .dram import DDR3_LMEM, DramChannelBackend

    return DramChannelBackend(DDR3_LMEM, name="dram")


def _hbm2() -> DeviceBackend:
    from .dram import HBM2_STACK, DramChannelBackend

    return DramChannelBackend(HBM2_STACK, name="hbm2")


def _dual_dfe() -> DeviceBackend:
    from .sharded import ShardedPolyMemBackend

    return ShardedPolyMemBackend(n_shards=2, name="dual-dfe")


register_backend("vectis", _vectis)
register_backend("lx240t", _lx240t)
register_backend("dram", _dram)
register_backend("hbm2", _hbm2)
register_backend("dual-dfe", _dual_dfe)
