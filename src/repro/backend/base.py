"""The device-backend interface: pluggable memory substrates.

A :class:`DeviceBackend` bundles everything the rest of the system used to
hard-code against the one Maxeler Vectis board:

* **capacity/area feasibility** — does a :class:`~repro.core.config.
  PolyMemConfig` fit the substrate (:meth:`DeviceBackend.feasibility`)?
* **clock model** — the frequency bandwidth figures are quoted at
  (:meth:`DeviceBackend.clock_mhz`: paper Table IV on-grid, calibrated
  model otherwise);
* **host-transfer cost** — a :class:`LinkModel` charging per-call latency
  plus payload time (:class:`~repro.maxeler.pcie.PcieLink` satisfies it);
* **achieved bandwidth** — what the substrate actually delivers for a
  concrete address stream (:meth:`DeviceBackend.achieved_bandwidth`).
  On-chip BRAM substrates deliver peak for every conflict-free stream;
  DRAM/HBM substrates degrade with poor burst coalescing
  (:mod:`repro.backend.dram`).

Backends register by name (:func:`register_backend`) and are resolved
lazily (:func:`get_backend`); the ``REPRO_BACKEND`` environment variable
selects the default for backend-parameterized tests and CLI runs.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

from ..core.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import PolyMemConfig
    from ..hw.synthesis import SynthesisReport

__all__ = [
    "AddressStream",
    "AchievedBandwidth",
    "DeviceBackend",
    "Feasibility",
    "LinkModel",
    "backend_names",
    "default_backend_name",
    "get_backend",
    "register_backend",
]


@runtime_checkable
class LinkModel(Protocol):
    """Host-link cost model: fixed call overhead + payload time."""

    def transfer_ns(self, payload_bytes: int) -> float:
        """Wall time of one blocking call moving *payload_bytes*."""
        ...

    def signal_ns(self) -> float:
        """Wall time of a payload-free control call."""
        ...


@dataclass(frozen=True)
class AddressStream:
    """A linear (host-side) word-address stream, in access order.

    This is the currency :meth:`DeviceBackend.achieved_bandwidth` consumes:
    the order in which words of a host array are touched during a transfer
    or an off-chip access phase.  ``addresses`` are word indices; byte
    addresses are ``addresses * word_bytes``.
    """

    addresses: np.ndarray
    word_bytes: int = 8

    def __post_init__(self) -> None:
        addrs = np.ascontiguousarray(self.addresses, dtype=np.int64).ravel()
        object.__setattr__(self, "addresses", addrs)
        if self.word_bytes <= 0:
            raise ConfigurationError(
                f"word_bytes must be positive, got {self.word_bytes}"
            )

    @property
    def n_words(self) -> int:
        return int(self.addresses.size)

    @property
    def payload_bytes(self) -> int:
        return self.n_words * self.word_bytes

    # -- constructors -----------------------------------------------------
    @classmethod
    def sequential(cls, n_words: int, word_bytes: int = 8) -> "AddressStream":
        """The ideal stream: ``0, 1, 2, ...``."""
        return cls(np.arange(n_words, dtype=np.int64), word_bytes)

    @classmethod
    def strided(
        cls, n_words: int, stride: int, word_bytes: int = 8
    ) -> "AddressStream":
        """A fixed-stride stream (column walks, interleaved arrays...)."""
        return cls(np.arange(n_words, dtype=np.int64) * stride, word_bytes)

    @classmethod
    def from_plan(
        cls,
        plan,
        anchors_i: np.ndarray,
        anchors_j: np.ndarray,
        word_bytes: int = 8,
    ) -> "AddressStream":
        """The host-address stream of a compiled access family.

        Uses the same anchor + per-lane offset tables
        (:class:`repro.core.plan.AccessPlan` ``di``/``dj``) the batched
        replay engine gathers from: lane ``k`` of the access anchored at
        ``(i, j)`` touches host word ``(i + di[k]) * cols + (j + dj[k])``,
        emitted in cycle-major, lane-minor order.
        """
        ai = np.asarray(anchors_i, dtype=np.int64)
        aj = np.asarray(anchors_j, dtype=np.int64)
        rows_idx = ai[:, None] + plan.di[None, :]
        cols_idx = aj[:, None] + plan.dj[None, :]
        return cls((rows_idx * plan.cols + cols_idx).ravel(), word_bytes)


@dataclass(frozen=True)
class Feasibility:
    """Capacity/area verdict for one configuration on one substrate."""

    feasible: bool
    #: fraction (0..1+) of the limiting capacity resource consumed
    utilization: float
    reason: str = ""
    detail: dict = field(default_factory=dict)


@dataclass(frozen=True)
class AchievedBandwidth:
    """What a substrate delivered for one address stream.

    ``achieved_gbps <= peak_gbps`` always; for on-chip BRAM the two are
    equal on conflict-free streams, for DRAM/HBM the gap is the burst and
    row-buffer behaviour of the stream.
    """

    peak_gbps: float
    achieved_gbps: float
    useful_bytes: int
    transferred_bytes: int
    time_ns: float
    bursts: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def efficiency(self) -> float:
        """Achieved as a fraction of peak (0..1)."""
        return self.achieved_gbps / self.peak_gbps if self.peak_gbps else 0.0

    def to_dict(self) -> dict:
        return {
            "peak_gbps": self.peak_gbps,
            "achieved_gbps": self.achieved_gbps,
            "efficiency": self.efficiency,
            "useful_bytes": self.useful_bytes,
            "transferred_bytes": self.transferred_bytes,
            "time_ns": self.time_ns,
            "bursts": self.bursts,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
        }


class DeviceBackend(ABC):
    """One pluggable memory substrate (see the module docstring)."""

    #: registry name; set by subclasses
    name: str = ""

    # -- identity ---------------------------------------------------------
    @abstractmethod
    def describe(self) -> dict:
        """Plain-JSON self-description (for reports and ``whatif`` tables)."""

    # -- capacity / area --------------------------------------------------
    @abstractmethod
    def feasibility(self, config: "PolyMemConfig") -> Feasibility:
        """Whether *config* fits this substrate, and how tightly."""

    # -- clock ------------------------------------------------------------
    @abstractmethod
    def clock_mhz(self, config: "PolyMemConfig") -> float:
        """Best available clock estimate for *config* on this substrate."""

    def paper_mhz(self, config: "PolyMemConfig") -> float | None:
        """Published Table IV frequency when on-grid (None otherwise)."""
        return None

    def synthesis(self, config: "PolyMemConfig") -> "SynthesisReport | None":
        """Full synthesis estimate, when the substrate has an FPGA fabric."""
        return None

    # -- host link --------------------------------------------------------
    @property
    @abstractmethod
    def link(self) -> LinkModel:
        """The host-transfer cost model."""

    def transfer_ns(self, payload_bytes: int) -> float:
        """Host-transfer wall time (one blocking call) for a payload."""
        return self.link.transfer_ns(payload_bytes)

    # -- bandwidth --------------------------------------------------------
    @abstractmethod
    def peak_read_gbps(self, config: "PolyMemConfig") -> float:
        """Aggregated peak read bandwidth (Fig. 5 axis) at the backend
        clock."""

    @abstractmethod
    def peak_write_gbps(self, config: "PolyMemConfig") -> float:
        """Peak single-port (write) bandwidth (Fig. 4 axis)."""

    @abstractmethod
    def achieved_bandwidth(
        self, config: "PolyMemConfig", stream: AddressStream
    ) -> AchievedBandwidth:
        """Delivered bandwidth for one concrete address stream."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


# -- registry -------------------------------------------------------------

_FACTORIES: dict[str, Callable[[], DeviceBackend]] = {}
_INSTANCES: dict[str, DeviceBackend] = {}

#: the registry default when ``REPRO_BACKEND`` is unset
DEFAULT_BACKEND = "vectis"


def register_backend(
    name: str, factory: Callable[[], DeviceBackend], replace: bool = False
) -> None:
    """Register a backend *factory* under *name* (built lazily, cached)."""
    if name in _FACTORIES and not replace:
        raise ConfigurationError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, registration order."""
    return tuple(_FACTORIES)


def default_backend_name() -> str:
    """``$REPRO_BACKEND`` when set (validated), else ``"vectis"``."""
    name = os.environ.get("REPRO_BACKEND", "").strip() or DEFAULT_BACKEND
    if name not in _FACTORIES:
        raise ConfigurationError(
            f"REPRO_BACKEND={name!r} is not a registered backend "
            f"(available: {', '.join(backend_names())})"
        )
    return name


def get_backend(name: str | None = None) -> DeviceBackend:
    """Resolve a backend by name (None: the default, honouring
    ``REPRO_BACKEND``).  Instances are built once and cached."""
    if name is None:
        name = default_backend_name()
    if isinstance(name, DeviceBackend):
        return name
    if name not in _FACTORIES:
        raise ConfigurationError(
            f"unknown backend {name!r} "
            f"(available: {', '.join(backend_names())})"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]
