"""The Maxeler Vectis board, as data.

Every number describing the paper's board used to live twice — once in
:mod:`repro.hw.fpga` (the FPGA part inventory) and once more in
:mod:`repro.hw.bram` / :mod:`repro.maxeler.pcie` comments and default
arguments.  This module is the single source of truth; the ``hw`` and
``maxeler`` modules (and the :class:`~repro.backend.fpga.FpgaBramBackend`
built on them) all read from here.

Deliberately import-free with respect to the rest of the package: the
``hw`` layer imports *this* module, so nothing here may import ``hw``.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType

__all__ = [
    "BoardConstants",
    "VECTIS",
    "VECTIS_FPGA",
    "LX240T_FPGA",
    "INFRA_BLOCKS_NOMINAL",
    "RAMB36_DATA_BITS",
    "RAMB36_PARITY_BITS",
    "RAMB36_WIDE_DEPTH",
    "RAMB36_WIDE_WIDTH",
]

#: RAMB36E1 primitive geometry (Virtex-6 Memory Resources, UG363)
RAMB36_DATA_BITS = 32 * 1024
RAMB36_PARITY_BITS = 4 * 1024
#: widest aspect ratio — 512 x 72 — the one 64-bit PolyMem banks use
RAMB36_WIDE_DEPTH = 512
RAMB36_WIDE_WIDTH = 72

#: Maxeler static infrastructure (PCIe streams, manager) block allowance,
#: calibrated against the paper's quoted 16.07% for a 512KB/8-lane/1-port
#: PolyMem (= 171 blocks total, 128 of which are data).
INFRA_BLOCKS_NOMINAL = 43

#: the Vectis DFE's FPGA — Virtex-6 SX475T (Family Overview, DS150)
VECTIS_FPGA = MappingProxyType(
    {
        "name": "xc6vsx475t",
        "logic_cells": 476_160,
        "slices": 74_400,
        "luts": 297_600,
        "flip_flops": 595_200,
        "bram36": 1_064,
        "dsp48": 2_016,
    }
)

#: a smaller Virtex-6 sibling, useful for feasibility what-ifs
LX240T_FPGA = MappingProxyType(
    {
        "name": "xc6vlx240t",
        "logic_cells": 241_152,
        "slices": 37_680,
        "luts": 150_720,
        "flip_flops": 301_440,
        "bram36": 416,
        "dsp48": 768,
    }
)


@dataclass(frozen=True)
class BoardConstants:
    """Board-level constants of one DFE card (FPGA part aside)."""

    name: str
    #: fixed per-blocking-call host overhead measured by the paper (§V)
    pcie_call_overhead_ns: float
    #: sustained PCIe payload bandwidth in GB/s (gen2 x8 effective)
    pcie_bandwidth_gbps: float
    #: on-board DRAM (LMem) capacity in bytes
    lmem_capacity_bytes: int
    #: fixed latency per LMem burst (row activation + controller), ns
    lmem_burst_latency_ns: float
    #: sustained LMem streaming bandwidth, GB/s
    lmem_bandwidth_gbps: float


#: the paper's board: Maxeler MAX3424A "Vectis"
VECTIS = BoardConstants(
    name="vectis",
    pcie_call_overhead_ns=300.0,
    pcie_bandwidth_gbps=2.0,
    lmem_capacity_bytes=24 * 1024**3,
    lmem_burst_latency_ns=200.0,
    lmem_bandwidth_gbps=38.4,
)
