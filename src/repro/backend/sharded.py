"""A logical PolyMem sharded across multiple DFEs.

The paper instantiates one PolyMem per board; the obvious scale-out is to
split the address space across ``N`` boards running in lockstep, each
holding ``capacity / N`` and serving the accesses that land in its half.
:class:`ShardedPolyMemBackend` models exactly that: per-shard feasibility
on each board's own substrate, the lockstep clock (the slowest shard sets
the pace), additive peak bandwidth, and parallel host links.
"""

from __future__ import annotations

from ..core.config import PolyMemConfig
from ..core.exceptions import CapacityError, ConfigurationError
from .base import (
    AchievedBandwidth,
    AddressStream,
    DeviceBackend,
    Feasibility,
    LinkModel,
)
from .fpga import FpgaBramBackend, VectisBramBackend

__all__ = ["ShardedPolyMemBackend"]


class _ParallelLinks(LinkModel):
    """N host links driven concurrently: the payload splits evenly and the
    call returns when the slowest link finishes."""

    def __init__(self, links: list[LinkModel]):
        self._links = links

    def transfer_ns(self, payload_bytes: int) -> float:
        n = len(self._links)
        base, extra = divmod(payload_bytes, n)
        return max(
            link.transfer_ns(base + (1 if i < extra else 0))
            for i, link in enumerate(self._links)
        )

    def signal_ns(self) -> float:
        return max(link.signal_ns() for link in self._links)


class ShardedPolyMemBackend(DeviceBackend):
    """One logical PolyMem spread over ``len(shards)`` boards."""

    def __init__(
        self,
        shards: list[FpgaBramBackend] | None = None,
        n_shards: int = 2,
        name: str | None = None,
    ):
        if shards is None:
            shards = [VectisBramBackend() for _ in range(n_shards)]
        if len(shards) < 2:
            raise ConfigurationError(
                f"sharding needs >= 2 boards, got {len(shards)}"
            )
        self.shards = list(shards)
        self.name = name or f"{len(self.shards)}x-{self.shards[0].name}"
        self._link = _ParallelLinks([s.link for s in self.shards])

    # -- shard geometry ---------------------------------------------------
    def shard_config(self, config: PolyMemConfig) -> PolyMemConfig:
        """The per-board slice: same lane grid and ports, 1/N capacity."""
        n = len(self.shards)
        if config.capacity_bytes % n:
            raise CapacityError(
                f"{config.capacity_bytes} B does not shard over {n} boards"
            )
        return config.with_(capacity_bytes=config.capacity_bytes // n)

    # -- identity ---------------------------------------------------------
    def describe(self) -> dict:
        return {
            "name": self.name,
            "kind": "sharded",
            "shards": len(self.shards),
            "shard_device": self.shards[0].device.name,
        }

    # -- capacity / area --------------------------------------------------
    def feasibility(self, config: PolyMemConfig) -> Feasibility:
        try:
            part = self.shard_config(config)
        except (CapacityError, ConfigurationError) as exc:
            return Feasibility(feasible=False, utilization=0.0, reason=str(exc))
        verdicts = [shard.feasibility(part) for shard in self.shards]
        worst = max(verdicts, key=lambda f: f.utilization)
        return Feasibility(
            feasible=all(f.feasible for f in verdicts),
            utilization=worst.utilization,
            reason=next((f.reason for f in verdicts if f.reason), ""),
            detail={"per_shard": worst.detail, "shards": len(self.shards)},
        )

    # -- clock ------------------------------------------------------------
    def clock_mhz(self, config: PolyMemConfig) -> float:
        part = self.shard_config(config)
        return min(shard.clock_mhz(part) for shard in self.shards)

    def paper_mhz(self, config: PolyMemConfig) -> float | None:
        part = self.shard_config(config)
        mhz = [shard.paper_mhz(part) for shard in self.shards]
        if any(v is None for v in mhz):
            return None
        return min(mhz)

    def synthesis(self, config: PolyMemConfig):
        return self.shards[0].synthesis(self.shard_config(config))

    # -- host link --------------------------------------------------------
    @property
    def link(self) -> LinkModel:
        return self._link

    # -- bandwidth --------------------------------------------------------
    def peak_write_gbps(self, config: PolyMemConfig) -> float:
        from ..dse.bandwidth import port_bandwidth_gbps

        part = self.shard_config(config)
        clock = self.clock_mhz(config)
        return len(self.shards) * port_bandwidth_gbps(part, clock)

    def peak_read_gbps(self, config: PolyMemConfig) -> float:
        return self.peak_write_gbps(config) * config.read_ports

    def achieved_bandwidth(
        self, config: PolyMemConfig, stream: AddressStream
    ) -> AchievedBandwidth:
        """Shards serve disjoint contiguous address halves concurrently;
        wall time is the busiest shard's."""
        part = self.shard_config(config)
        shard_words = max(1, part.total_words)
        owner = stream.addresses // shard_words
        peak = self.peak_read_gbps(config)
        busiest_ns = 0.0
        bursts = hits = 0
        for idx, shard in enumerate(self.shards):
            mask = owner == idx
            if not mask.any():
                continue
            sub = AddressStream(
                stream.addresses[mask] - idx * shard_words, stream.word_bytes
            )
            stats = shard.achieved_bandwidth(part, sub)
            busiest_ns = max(busiest_ns, stats.time_ns)
            bursts += stats.bursts
            hits += stats.row_hits
        useful = stream.payload_bytes
        achieved = useful / busiest_ns if busiest_ns else 0.0
        return AchievedBandwidth(
            peak_gbps=peak,
            achieved_gbps=min(achieved, peak),
            useful_bytes=useful,
            transferred_bytes=useful,
            time_ns=busiest_ns,
            bursts=bursts,
            row_hits=hits,
            row_misses=0,
        )
