"""Burst-friendly layout transformation for host arrays.

The DRAM channel model (:mod:`repro.backend.dram`) punishes streams that
touch one word per burst granule.  Most such streams are *regular* — a
fixed stride, a tile walk — so the words they touch can simply be stored
in the order they will be read (arXiv 2202.05933's burst-friendly layout):
the host reorders the array once, cheaply, before the DMA transfer, and
the device-visible stream becomes sequential.

:func:`plan_layout` derives that permutation from an address stream (the
first-touch order of every word), :meth:`BurstLayout.apply` reorders a
host array to match, and :meth:`BurstLayout.remap` rewrites the stream
into the transformed address space.  ``remap(plan(s), s)`` of any
fixed-stride stream is exactly sequential.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import AddressError
from ..telemetry import context as _telemetry
from .base import AddressStream

__all__ = ["BurstLayout", "plan_layout"]


@dataclass(frozen=True)
class BurstLayout:
    """A word permutation: ``new_of_old[a]`` is the transformed address of
    original word ``a``.  Words the planning stream never touches keep
    their relative order after all touched words."""

    new_of_old: np.ndarray
    touched_words: int

    @property
    def n_words(self) -> int:
        return int(self.new_of_old.size)

    def remap(self, stream: AddressStream) -> AddressStream:
        """The stream as the device sees it after the transformation."""
        addrs = stream.addresses
        if addrs.size and (addrs.min() < 0 or addrs.max() >= self.n_words):
            raise AddressError(
                f"stream addresses exceed the {self.n_words}-word layout"
            )
        return AddressStream(self.new_of_old[addrs], stream.word_bytes)

    def apply(self, host_array: np.ndarray) -> np.ndarray:
        """Reorder a flat host array into the burst-friendly layout."""
        flat = np.ascontiguousarray(host_array).ravel()
        if flat.size != self.n_words:
            raise AddressError(
                f"array holds {flat.size} words, layout covers {self.n_words}"
            )
        out = np.empty_like(flat)
        out[self.new_of_old] = flat
        return out

    def restore(self, transformed: np.ndarray) -> np.ndarray:
        """Invert :meth:`apply` (after offloading results back)."""
        flat = np.ascontiguousarray(transformed).ravel()
        if flat.size != self.n_words:
            raise AddressError(
                f"array holds {flat.size} words, layout covers {self.n_words}"
            )
        return flat[self.new_of_old]


def plan_layout(stream: AddressStream, n_words: int | None = None) -> BurstLayout:
    """Plan the burst-friendly permutation for *stream*.

    Word ``a`` moves to position ``k`` when it is the ``k``-th *distinct*
    word the stream touches; untouched words (of an ``n_words``-word
    array) are packed behind them in address order.
    """
    addrs = stream.addresses
    if addrs.size and addrs.min() < 0:
        raise AddressError("layout planning needs non-negative addresses")
    span = int(addrs.max()) + 1 if addrs.size else 0
    if n_words is None:
        n_words = span
    elif n_words < span:
        raise AddressError(
            f"stream touches word {span - 1}, beyond the {n_words}-word array"
        )
    unique, first_pos = np.unique(addrs, return_index=True)
    order = unique[np.argsort(first_pos, kind="stable")]
    new_of_old = np.full(n_words, -1, dtype=np.int64)
    new_of_old[order] = np.arange(order.size, dtype=np.int64)
    untouched = np.flatnonzero(new_of_old < 0)
    new_of_old[untouched] = np.arange(
        order.size, order.size + untouched.size, dtype=np.int64
    )
    tel = _telemetry.active()
    if tel is not None:
        metrics = tel.metrics
        metrics.counter("backend.layout.plans").inc()
        metrics.counter("backend.layout.words").inc(int(n_words))
        metrics.counter("backend.layout.touched_words").inc(int(order.size))
    return BurstLayout(new_of_old=new_of_old, touched_words=int(order.size))
