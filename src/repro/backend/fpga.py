"""On-chip BRAM backends: the refactored Vectis default (and siblings).

:class:`FpgaBramBackend` wraps exactly the pieces the pre-backend code
called directly — :func:`repro.hw.bram.polymem_bram_usage`,
:class:`repro.hw.synthesis.SynthesisModel`,
:func:`repro.hw.calibration.table_iv_frequency` and
:class:`repro.maxeler.pcie.PcieLink` — so every figure it returns is
byte-for-byte the seed value (pinned by
``tests/backend/test_vectis_equivalence.py``).

An on-chip PolyMem delivers its full parallel word every cycle for any
conflict-free stream, so :meth:`achieved_bandwidth` reports peak for every
stream: burst behaviour is a property of *off-chip* substrates
(:mod:`repro.backend.dram`).
"""

from __future__ import annotations

from ..core.config import PolyMemConfig
from ..hw.bram import BramBudget, polymem_bram_usage
from ..hw.calibration import table_iv_frequency
from ..hw.fpga import FpgaDevice, VIRTEX6_LX240T, VIRTEX6_SX475T
from ..hw.synthesis import SynthesisModel, SynthesisReport, default_model
from ..maxeler.pcie import VECTIS_PCIE, PcieLink
from .base import (
    AchievedBandwidth,
    AddressStream,
    DeviceBackend,
    Feasibility,
    LinkModel,
)

__all__ = ["FpgaBramBackend", "VectisBramBackend", "Lx240tBramBackend"]


class FpgaBramBackend(DeviceBackend):
    """A PolyMem built from the block RAM of one FPGA part."""

    def __init__(
        self,
        device: FpgaDevice,
        link: LinkModel | None = None,
        name: str | None = None,
    ):
        self.device = device
        self.name = name or device.name
        self._link = link if link is not None else VECTIS_PCIE
        self._paper_grid = device.name == VIRTEX6_SX475T.name

    # -- identity ---------------------------------------------------------
    def describe(self) -> dict:
        return {
            "name": self.name,
            "kind": "bram",
            "device": self.device.name,
            "bram36": self.device.bram36,
            "bram_bytes": self.device.bram_bytes_64bit,
            "luts": self.device.luts,
            "link_gbps": getattr(self._link, "bandwidth_gbps", None),
        }

    # -- model plumbing ---------------------------------------------------
    @property
    def model(self) -> SynthesisModel:
        """The calibrated synthesis model (fit once per device, process-wide
        — the same :func:`~repro.hw.synthesis.default_model` instance the
        pre-backend call sites used)."""
        return default_model(self.device.name)

    def bram_budget(self, config: PolyMemConfig) -> BramBudget:
        """The exact Fig. 8 BRAM arithmetic for *config* on this part."""
        return polymem_bram_usage(config, self.device.bram36)

    # -- capacity / area --------------------------------------------------
    def feasibility(self, config: PolyMemConfig) -> Feasibility:
        budget = self.bram_budget(config)
        logic = self.model.logic_pct(config)
        feasible = budget.feasible and logic <= 100.0
        if not budget.feasible:
            reason = (
                f"data needs {budget.data_blocks} RAMB36 of "
                f"{budget.device_blocks}"
            )
        elif logic > 100.0:
            reason = f"logic estimate {logic:.1f}% exceeds the device"
        else:
            reason = ""
        return Feasibility(
            feasible=feasible,
            utilization=budget.utilization,
            reason=reason,
            detail={
                "data_blocks": budget.data_blocks,
                "infra_blocks": budget.infra_blocks,
                "device_blocks": budget.device_blocks,
                "logic_pct": logic,
            },
        )

    # -- clock ------------------------------------------------------------
    def paper_mhz(self, config: PolyMemConfig) -> float | None:
        if not self._paper_grid:
            return None
        return table_iv_frequency(
            config.scheme,
            config.capacity_bytes // 1024,
            config.lanes,
            config.read_ports,
        )

    def clock_mhz(self, config: PolyMemConfig) -> float:
        paper = self.paper_mhz(config)
        return paper if paper is not None else self.model.frequency_mhz(config)

    def synthesis(self, config: PolyMemConfig) -> SynthesisReport:
        return self.model.estimate(config)

    # -- host link --------------------------------------------------------
    @property
    def link(self) -> LinkModel:
        return self._link

    # -- bandwidth --------------------------------------------------------
    def peak_write_gbps(self, config: PolyMemConfig) -> float:
        from ..dse.bandwidth import port_bandwidth_gbps

        return port_bandwidth_gbps(config, self.clock_mhz(config))

    def peak_read_gbps(self, config: PolyMemConfig) -> float:
        return self.peak_write_gbps(config) * config.read_ports

    def achieved_bandwidth(
        self, config: PolyMemConfig, stream: AddressStream
    ) -> AchievedBandwidth:
        """On-chip BRAM: a full parallel word every cycle, independent of
        the address stream — achieved equals peak, one "burst" per access
        cycle, every access a hit."""
        peak = self.peak_read_gbps(config)
        useful = stream.payload_bytes
        cycles = -(-stream.n_words // max(1, config.lanes))
        time_ns = useful / peak if peak else 0.0
        return AchievedBandwidth(
            peak_gbps=peak,
            achieved_gbps=peak,
            useful_bytes=useful,
            transferred_bytes=useful,
            time_ns=time_ns,
            bursts=cycles,
            row_hits=stream.n_words,
            row_misses=0,
        )


class VectisBramBackend(FpgaBramBackend):
    """The default substrate: the paper's Vectis board, bit-identical to
    the pre-backend code path."""

    def __init__(self, link: LinkModel | None = None):
        super().__init__(
            VIRTEX6_SX475T,
            link=link if link is not None else VECTIS_PCIE,
            name="vectis",
        )


class Lx240tBramBackend(FpgaBramBackend):
    """The smaller Virtex-6 LX240T sibling (what-if sweeps)."""

    def __init__(self, link: PcieLink | None = None):
        super().__init__(
            VIRTEX6_LX240T,
            link=link if link is not None else VECTIS_PCIE,
            name="lx240t",
        )
