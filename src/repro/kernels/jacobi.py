"""Jacobi iteration on PolyMem: an iterative PDE smoother.

One Jacobi step of the 2-D Laplace problem replaces every interior cell by
the mean of its four neighbours.  The kernel keeps the grid resident in
PolyMem across iterations — the data-reuse pattern the paper's software
cache targets: stage once, iterate many times, write back once.

Values are float64, bit-cast into PolyMem's 64-bit words (the same
convention as the STREAM arithmetic kernels).  Each sweep fetches four
shifted neighbour windows per tile row using strip (ROW) accesses; the
update happens host-side, and the new grid is written back with ROW
strips.  The whole solve lowers to one
:class:`~repro.program.AccessProgram` (``build("kernel.jacobi")``) —
sweep reads and write-backs alternate as separate traces, so every
sweep observes the previous write-back exactly as the hand-built loop
did.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..core.config import PolyMemConfig
from ..core.exceptions import PatternError
from ..core.patterns import PatternKind
from ..core.polymem import PolyMem
from ..core.schemes import Scheme
from ..program import AccessProgram
from ..program.builder import build
from .base import KernelReport

__all__ = ["jacobi_reference", "jacobi_program", "jacobi_solve"]


def _bits(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x, dtype=np.float64).view(np.uint64)


def _floats(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x, dtype=np.uint64).view(np.float64)


def jacobi_reference(grid: np.ndarray, iterations: int) -> np.ndarray:
    """NumPy reference: fixed (Dirichlet) boundary, interior averaged."""
    g = np.array(grid, dtype=np.float64)
    for _ in range(iterations):
        nxt = g.copy()
        nxt[1:-1, 1:-1] = 0.25 * (
            g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:]
        )
        g = nxt
    return g


def _jacobi_program(
    grid: np.ndarray, iterations: int, p: int = 2, q: int = 4
) -> tuple[AccessProgram, PolyMem]:
    """Lower *iterations* Jacobi sweeps to one access program.

    Per sweep ``it``: one ROW read stream of every interior row's north,
    south and center strips (tag ``sweep{it}``), a Compute producing the
    averaged rows, and a late-bound ROW write stream of them.
    """
    grid = np.asarray(grid, dtype=np.float64)
    rows, cols = grid.shape
    lanes = p * q
    if rows % p or cols % lanes:
        raise PatternError(
            f"grid {rows}x{cols} must align to p={p} rows and "
            f"{lanes}-element strips"
        )
    if rows < 3:
        raise PatternError("need at least one interior row")
    pm = PolyMem(
        PolyMemConfig(rows * cols * 8, p=p, q=q, scheme=Scheme.ReRo,
                      rows=rows, cols=cols)
    )
    pm.load(_bits(grid).reshape(rows, cols))
    pm.reset_stats()
    per_row = cols // lanes
    strip_j = np.arange(per_row) * lanes
    interior = np.arange(1, rows - 1, dtype=np.int64)
    # every interior row's strips, row-major: (rows-2) * per_row anchors
    row_ai = np.repeat(interior, per_row)
    row_aj = np.tile(strip_j, interior.size)
    n_int = interior.size

    prog = AccessProgram("jacobi", metadata={"result_elements": rows * cols})
    for it in range(iterations):
        # all of a sweep's neighbour fetches in one replayed trace:
        # north, south and center strips for every interior row
        prog.read(
            PatternKind.ROW,
            np.concatenate([row_ai - 1, row_ai + 1, row_ai]),
            np.concatenate([row_aj, row_aj, row_aj]),
            tag=f"sweep{it}",
        )

        def _average(env, it=it):
            north, south, center = (
                _floats(part.ravel()).reshape(n_int, cols)
                for part in np.split(env[f"sweep{it}"], 3)
            )
            west = np.empty_like(center)
            east = np.empty_like(center)
            west[:, 1:] = center[:, :-1]
            west[:, 0] = center[:, 0]  # boundary column stays fixed anyway
            east[:, :-1] = center[:, 1:]
            east[:, -1] = center[:, -1]
            updated = center.copy()
            updated[:, 1:-1] = 0.25 * (
                north[:, 1:-1] + south[:, 1:-1] + west[:, 1:-1] + east[:, 1:-1]
            )
            return {f"wb{it}": _bits(updated.ravel()).reshape(-1, lanes)}

        prog.compute(_average, label=f"average{it}")
        # write the sweep back (Jacobi: updates use the old grid only)
        prog.write(
            PatternKind.ROW,
            row_ai,
            row_aj,
            values=lambda env, it=it: env[f"wb{it}"],
        )
    return prog, pm


def jacobi_program(
    grid: np.ndarray, iterations: int, p: int = 2, q: int = 4
) -> tuple[AccessProgram, PolyMem]:
    """Deprecated: use ``repro.program.builder.build("kernel.jacobi", ...)``."""
    warnings.warn(
        "jacobi_program() is deprecated; use "
        "repro.program.builder.build('kernel.jacobi', grid=..., iterations=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _jacobi_program(grid, iterations, p, q)


def jacobi_solve(
    grid: np.ndarray, iterations: int, p: int = 2, q: int = 4
) -> tuple[np.ndarray, KernelReport]:
    """Run *iterations* Jacobi sweeps with all grid traffic through PolyMem."""
    built = build("kernel.jacobi", grid=grid, iterations=iterations, p=p, q=q)
    res = built.run()
    pm = built.mems["default"]
    rows, cols = np.asarray(grid).shape
    result = _floats(pm.dump().ravel()).reshape(rows, cols)
    return result, res.report
