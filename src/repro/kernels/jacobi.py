"""Jacobi iteration on PolyMem: an iterative PDE smoother.

One Jacobi step of the 2-D Laplace problem replaces every interior cell by
the mean of its four neighbours.  The kernel keeps the grid resident in
PolyMem across iterations — the data-reuse pattern the paper's software
cache targets: stage once, iterate many times, write back once.

Values are float64, bit-cast into PolyMem's 64-bit words (the same
convention as the STREAM arithmetic kernels).  Each sweep fetches four
shifted neighbour windows per tile row using strip (ROW) accesses; the
update happens host-side, and the new grid is written back with aligned
rectangles.
"""

from __future__ import annotations

import numpy as np

from ..core.config import PolyMemConfig
from ..core.exceptions import PatternError
from ..core.patterns import PatternKind
from ..core.plan import AccessTrace
from ..core.polymem import PolyMem
from ..core.schemes import Scheme
from .base import CycleScope, KernelReport

__all__ = ["jacobi_reference", "jacobi_solve"]


def _bits(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x, dtype=np.float64).view(np.uint64)


def _floats(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x, dtype=np.uint64).view(np.float64)


def jacobi_reference(grid: np.ndarray, iterations: int) -> np.ndarray:
    """NumPy reference: fixed (Dirichlet) boundary, interior averaged."""
    g = np.array(grid, dtype=np.float64)
    for _ in range(iterations):
        nxt = g.copy()
        nxt[1:-1, 1:-1] = 0.25 * (
            g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:]
        )
        g = nxt
    return g


def jacobi_solve(
    grid: np.ndarray, iterations: int, p: int = 2, q: int = 4
) -> tuple[np.ndarray, KernelReport]:
    """Run *iterations* Jacobi sweeps with all grid traffic through PolyMem.

    Per sweep, each interior row is fetched via four neighbour-shifted ROW
    strips (north, south, west, east) — ``4 * cols/lanes`` parallel reads
    per row — and the averaged row is written back with ROW strips.
    """
    grid = np.asarray(grid, dtype=np.float64)
    rows, cols = grid.shape
    lanes = p * q
    if rows % p or cols % lanes:
        raise PatternError(
            f"grid {rows}x{cols} must align to p={p} rows and "
            f"{lanes}-element strips"
        )
    if rows < 3:
        raise PatternError("need at least one interior row")
    pm = PolyMem(
        PolyMemConfig(rows * cols * 8, p=p, q=q, scheme=Scheme.ReRo,
                      rows=rows, cols=cols)
    )
    pm.load(_bits(grid).reshape(rows, cols))
    pm.reset_stats()
    per_row = cols // lanes
    strip_j = np.arange(per_row) * lanes
    interior = np.arange(1, rows - 1, dtype=np.int64)
    # every interior row's strips, row-major: (rows-2) * per_row anchors
    row_ai = np.repeat(interior, per_row)
    row_aj = np.tile(strip_j, interior.size)

    with CycleScope(pm, "jacobi") as scope:
        for _ in range(iterations):
            # all of a sweep's neighbour fetches in one replayed trace:
            # north, south and center strips for every interior row
            fetched = pm.replay(
                AccessTrace().read(
                    PatternKind.ROW,
                    np.concatenate([row_ai - 1, row_ai + 1, row_ai]),
                    np.concatenate([row_aj, row_aj, row_aj]),
                )
            )[0]
            north, south, center = (
                _floats(part.ravel()).reshape(interior.size, cols)
                for part in np.split(fetched, 3)
            )
            west = np.empty_like(center)
            east = np.empty_like(center)
            west[:, 1:] = center[:, :-1]
            west[:, 0] = center[:, 0]  # boundary column stays fixed anyway
            east[:, :-1] = center[:, 1:]
            east[:, -1] = center[:, -1]
            updated = center.copy()
            updated[:, 1:-1] = 0.25 * (
                north[:, 1:-1] + south[:, 1:-1] + west[:, 1:-1] + east[:, 1:-1]
            )
            # write the sweep back (Jacobi: updates use the old grid only)
            pm.replay(
                AccessTrace().write(
                    PatternKind.ROW,
                    row_ai,
                    row_aj,
                    _bits(updated.ravel()).reshape(-1, lanes),
                )
            )
    result = _floats(pm.dump().ravel()).reshape(rows, cols)
    return result, scope.report(result_elements=rows * cols)
