"""Row/column reductions through PolyMem strip accesses.

Reductions along either axis want the *other* orientation streamed: a
row-sum reads rows, a column-sum reads columns.  RoCo serves both from the
same stored matrix — one parallel access per ``p*q`` elements either way,
demonstrating the multiview pay-off on a single data structure (the
paper's §II-A motivation for multiview schemes).
"""

from __future__ import annotations

import numpy as np

from ..core.config import PolyMemConfig
from ..core.exceptions import PatternError
from ..core.patterns import PatternKind
from ..core.plan import AccessTrace
from ..core.polymem import PolyMem
from ..core.schemes import Scheme
from .base import CycleScope, KernelReport

__all__ = ["reduce_rows", "reduce_columns", "load_matrix"]


def load_matrix(matrix: np.ndarray, p: int = 2, q: int = 4) -> PolyMem:
    """Store *matrix* in a RoCo PolyMem sized exactly for it."""
    matrix = np.asarray(matrix, dtype=np.uint64)
    rows, cols = matrix.shape
    lanes = p * q
    if rows % lanes or cols % lanes:
        raise PatternError(
            f"matrix {rows}x{cols} must align to {lanes}-element strips"
        )
    pm = PolyMem(
        PolyMemConfig(rows * cols * 8, p=p, q=q, scheme=Scheme.RoCo,
                      rows=rows, cols=cols)
    )
    pm.load(matrix)
    pm.reset_stats()
    return pm


def reduce_rows(pm: PolyMem) -> tuple[np.ndarray, KernelReport]:
    """Per-row sums: streams ROW accesses (batch path)."""
    lanes = pm.lanes
    per_row = pm.cols // lanes
    anchors_i = np.repeat(np.arange(pm.rows), per_row)
    anchors_j = np.tile(np.arange(per_row) * lanes, pm.rows)
    with CycleScope(pm, "reduce_rows") as scope:
        strips = pm.replay(
            AccessTrace().read(PatternKind.ROW, anchors_i, anchors_j)
        )[0]
        sums = strips.reshape(pm.rows, per_row * lanes).sum(axis=1)
    return sums, scope.report(result_elements=pm.rows)


def reduce_columns(pm: PolyMem) -> tuple[np.ndarray, KernelReport]:
    """Per-column sums: streams COLUMN accesses over the same data."""
    lanes = pm.lanes
    per_col = pm.rows // lanes
    anchors_j = np.repeat(np.arange(pm.cols), per_col)
    anchors_i = np.tile(np.arange(per_col) * lanes, pm.cols)
    with CycleScope(pm, "reduce_columns") as scope:
        strips = pm.replay(
            AccessTrace().read(PatternKind.COLUMN, anchors_i, anchors_j)
        )[0]
        sums = strips.reshape(pm.cols, per_col * lanes).sum(axis=1)
    return sums, scope.report(result_elements=pm.cols)
