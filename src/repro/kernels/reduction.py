"""Row/column reductions through PolyMem strip accesses.

Reductions along either axis want the *other* orientation streamed: a
row-sum reads rows, a column-sum reads columns.  RoCo serves both from the
same stored matrix — one parallel access per ``p*q`` elements either way,
demonstrating the multiview pay-off on a single data structure (the
paper's §II-A motivation for multiview schemes).  Both directions lower
to one-read-one-Compute access programs (``build("kernel.reduce_rows")``,
``build("kernel.reduce_columns")``).
"""

from __future__ import annotations

import warnings

import numpy as np

from ..core.config import PolyMemConfig
from ..core.exceptions import PatternError
from ..core.patterns import PatternKind
from ..core.polymem import PolyMem
from ..core.schemes import Scheme
from ..program import AccessProgram
from ..program.builder import build
from .base import KernelReport

__all__ = [
    "reduce_rows",
    "reduce_rows_program",
    "reduce_columns",
    "reduce_columns_program",
    "load_matrix",
]


def load_matrix(matrix: np.ndarray, p: int = 2, q: int = 4) -> PolyMem:
    """Store *matrix* in a RoCo PolyMem sized exactly for it."""
    matrix = np.asarray(matrix, dtype=np.uint64)
    rows, cols = matrix.shape
    lanes = p * q
    if rows % lanes or cols % lanes:
        raise PatternError(
            f"matrix {rows}x{cols} must align to {lanes}-element strips"
        )
    pm = PolyMem(
        PolyMemConfig(rows * cols * 8, p=p, q=q, scheme=Scheme.RoCo,
                      rows=rows, cols=cols)
    )
    pm.load(matrix)
    pm.reset_stats()
    return pm


def _reduce_rows_program(pm: PolyMem) -> AccessProgram:
    """Lower per-row sums: one ROW read stream plus the summing Compute."""
    lanes = pm.lanes
    per_row = pm.cols // lanes
    anchors_i = np.repeat(np.arange(pm.rows), per_row)
    anchors_j = np.tile(np.arange(per_row) * lanes, pm.rows)
    rows = pm.rows
    return (
        AccessProgram("reduce_rows", metadata={"result_elements": rows})
        .read(PatternKind.ROW, anchors_i, anchors_j, tag="strips")
        .compute(
            lambda env: {
                "sums": env["strips"].reshape(rows, per_row * lanes).sum(axis=1)
            },
            label="sum",
        )
    )


def reduce_rows_program(pm: PolyMem) -> AccessProgram:
    """Deprecated: use ``repro.program.builder.build("kernel.reduce_rows", ...)``."""
    warnings.warn(
        "reduce_rows_program() is deprecated; use "
        "repro.program.builder.build('kernel.reduce_rows', pm=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _reduce_rows_program(pm)


def reduce_rows(pm: PolyMem) -> tuple[np.ndarray, KernelReport]:
    """Per-row sums: streams ROW accesses (batch path)."""
    res = build("kernel.reduce_rows", pm=pm).run()
    return res["sums"], res.report


def _reduce_columns_program(pm: PolyMem) -> AccessProgram:
    """Lower per-column sums: one COLUMN read stream plus the Compute."""
    lanes = pm.lanes
    per_col = pm.rows // lanes
    anchors_j = np.repeat(np.arange(pm.cols), per_col)
    anchors_i = np.tile(np.arange(per_col) * lanes, pm.cols)
    cols = pm.cols
    return (
        AccessProgram("reduce_columns", metadata={"result_elements": cols})
        .read(PatternKind.COLUMN, anchors_i, anchors_j, tag="strips")
        .compute(
            lambda env: {
                "sums": env["strips"].reshape(cols, per_col * lanes).sum(axis=1)
            },
            label="sum",
        )
    )


def reduce_columns_program(pm: PolyMem) -> AccessProgram:
    """Deprecated: use ``repro.program.builder.build("kernel.reduce_columns", ...)``."""
    warnings.warn(
        "reduce_columns_program() is deprecated; use "
        "repro.program.builder.build('kernel.reduce_columns', pm=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _reduce_columns_program(pm)


def reduce_columns(pm: PolyMem) -> tuple[np.ndarray, KernelReport]:
    """Per-column sums: streams COLUMN accesses over the same data."""
    res = build("kernel.reduce_columns", pm=pm).run()
    return res["sums"], res.report
