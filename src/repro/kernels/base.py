"""Shared infrastructure for PolyMem-backed application kernels.

The paper's future work (§VII) plans "a proof-of-concept, systematic use
of MAX-PolyMem for more complex applications"; this subpackage provides
that: matrix multiply, transpose, stencils and reductions, each expressed
entirely through PolyMem parallel accesses, verified against NumPy and
accounted in cycles.

:class:`~repro.program.report.KernelReport` and
:class:`~repro.program.report.CycleScope` now live in
:mod:`repro.program.report` — the execution engine is the one place that
produces them — and are re-exported here for compatibility.
"""

from __future__ import annotations

from ..program.report import CycleScope, KernelReport

__all__ = ["KernelReport", "CycleScope"]
