"""Stencil sweeps fed by PolyMem rectangle accesses.

Image filters and PDE kernels read a halo-extended neighbourhood per
output tile; PolyMem serves those as dense rectangle reads at *unaligned*
anchors — the capability the paper's multimedia motivation leans on.
:func:`stencil_sweep` applies an arbitrary (2r+1)² convolution kernel
(integer weights, zero boundary) by streaming one rectangle access per
shifted window per output tile row.
"""

from __future__ import annotations

import numpy as np

from ..core.config import PolyMemConfig
from ..core.exceptions import PatternError
from ..core.patterns import PatternKind
from ..core.polymem import PolyMem
from ..core.schemes import Scheme
from .base import CycleScope, KernelReport

__all__ = ["stencil_sweep", "stencil_reference", "stencil_serial_cycles"]


def stencil_reference(image: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """NumPy reference: zero-padded integer convolution (correlation)."""
    image = np.asarray(image, dtype=np.int64)
    k = weights.shape[0]
    r = k // 2
    padded = np.pad(image, r)
    out = np.zeros_like(image)
    for di in range(k):
        for dj in range(k):
            out += int(weights[di, dj]) * padded[
                di : di + image.shape[0], dj : dj + image.shape[1]
            ]
    return out


def stencil_sweep(
    image: np.ndarray, weights: np.ndarray, p: int = 2, q: int = 4
) -> tuple[np.ndarray, KernelReport]:
    """Apply *weights* (odd-square integer kernel) through PolyMem reads.

    The image is stored once; for every kernel offset (di, dj), the sweep
    streams shifted ``p x q`` rectangle reads over the interior using the
    vectorized batch path, accumulating ``weights[di, dj] * window``.
    Boundary cells use zero padding, handled host-side.
    """
    image = np.asarray(image)
    weights = np.asarray(weights)
    rows, cols = image.shape
    k = weights.shape[0]
    if weights.shape != (k, k) or k % 2 == 0:
        raise PatternError("weights must be an odd square kernel")
    if rows % p or cols % q:
        raise PatternError(f"image {rows}x{cols} must align to {p}x{q}")
    r = k // 2
    pm = PolyMem(
        PolyMemConfig(rows * cols * 8, p=p, q=q, scheme=Scheme.ReRo,
                      rows=rows, cols=cols)
    )
    pm.load(image.astype(np.uint64))
    pm.reset_stats()

    acc = np.zeros((rows, cols), dtype=np.int64)
    bi = np.arange(0, rows, p)
    bj = np.arange(0, cols, q)
    gi, gj = np.meshgrid(bi, bj, indexing="ij")
    base_i, base_j = gi.ravel(), gj.ravel()
    with CycleScope(pm, "stencil") as scope:
        for di in range(-r, r + 1):
            for dj in range(-r, r + 1):
                w = int(weights[di + r, dj + r])
                if w == 0:
                    continue
                # the desired window may poke outside the image; fetch the
                # nearest in-bounds rectangle and extract the overlap (the
                # outside cells contribute zero — the padding)
                ai = np.clip(base_i + di, 0, rows - p)
                aj = np.clip(base_j + dj, 0, cols - q)
                tiles = pm.read_batch(PatternKind.RECTANGLE, ai, aj)
                for t in range(base_i.size):
                    ti, tj = int(base_i[t]), int(base_j[t])
                    block = tiles[t].reshape(p, q).astype(np.int64)
                    window = np.zeros((p, q), dtype=np.int64)
                    for a in range(p):
                        gi_abs = ti + di + a
                        if not 0 <= gi_abs < rows:
                            continue
                        for b in range(q):
                            gj_abs = tj + dj + b
                            if not 0 <= gj_abs < cols:
                                continue
                            window[a, b] = block[
                                gi_abs - int(ai[t]), gj_abs - int(aj[t])
                            ]
                    acc[ti : ti + p, tj : tj + q] += w * window
    return acc, scope.report(result_elements=rows * cols)


def stencil_serial_cycles(rows: int, cols: int, weights: np.ndarray) -> int:
    """Same traffic at one element per cycle."""
    taps = int(np.count_nonzero(weights))
    return rows * cols * taps
