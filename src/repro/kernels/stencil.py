"""Stencil sweeps fed by PolyMem rectangle accesses.

Image filters and PDE kernels read a halo-extended neighbourhood per
output tile; PolyMem serves those as dense rectangle reads at *unaligned*
anchors — the capability the paper's multimedia motivation leans on.
:func:`stencil_sweep` applies an arbitrary (2r+1)² convolution kernel
(integer weights, zero boundary) by lowering one rectangle access per
shifted window per output tile to an
:class:`~repro.program.AccessProgram` (see :func:`stencil_program`).
"""

from __future__ import annotations

import warnings

import numpy as np

from ..core.config import PolyMemConfig
from ..core.exceptions import PatternError
from ..core.patterns import PatternKind
from ..core.polymem import PolyMem
from ..core.schemes import Scheme
from ..program import AccessProgram
from ..program.builder import build
from .base import KernelReport

__all__ = [
    "stencil_program",
    "stencil_sweep",
    "stencil_reference",
    "stencil_serial_cycles",
]


def stencil_reference(image: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """NumPy reference: zero-padded integer convolution (correlation)."""
    image = np.asarray(image, dtype=np.int64)
    k = weights.shape[0]
    r = k // 2
    padded = np.pad(image, r)
    out = np.zeros_like(image)
    for di in range(k):
        for dj in range(k):
            out += int(weights[di, dj]) * padded[
                di : di + image.shape[0], dj : dj + image.shape[1]
            ]
    return out


def _stencil_program(
    image: np.ndarray, weights: np.ndarray, p: int = 2, q: int = 4
) -> tuple[AccessProgram, PolyMem]:
    """Lower the stencil sweep to an access program over a ReRo memory.

    All taps' windows become one RECTANGLE read stream (tag ``tiles``);
    the accumulation is a single Compute binding the result to ``out``.
    """
    image = np.asarray(image)
    weights = np.asarray(weights)
    rows, cols = image.shape
    k = weights.shape[0]
    if weights.shape != (k, k) or k % 2 == 0:
        raise PatternError("weights must be an odd square kernel")
    if rows % p or cols % q:
        raise PatternError(f"image {rows}x{cols} must align to {p}x{q}")
    r = k // 2
    pm = PolyMem(
        PolyMemConfig(rows * cols * 8, p=p, q=q, scheme=Scheme.ReRo,
                      rows=rows, cols=cols)
    )
    pm.load(image.astype(np.uint64))
    pm.reset_stats()

    acc = np.zeros((rows, cols), dtype=np.int64)
    bi = np.arange(0, rows, p)
    bj = np.arange(0, cols, q)
    gi, gj = np.meshgrid(bi, bj, indexing="ij")
    base_i, base_j = gi.ravel(), gj.ravel()
    taps = [
        (di, dj, int(weights[di + r, dj + r]))
        for di in range(-r, r + 1)
        for dj in range(-r, r + 1)
        if int(weights[di + r, dj + r]) != 0
    ]
    nt = base_i.size
    prog = AccessProgram("stencil", metadata={"result_elements": rows * cols})
    if not taps:
        return prog.compute(lambda env: {"out": acc}, label="accumulate"), pm
    # the desired windows may poke outside the image; fetch the nearest
    # in-bounds rectangles — all taps in one replayed trace — and extract
    # the overlaps (outside cells contribute zero)
    ai_all = np.concatenate(
        [np.clip(base_i + di, 0, rows - p) for di, _, _ in taps]
    )
    aj_all = np.concatenate(
        [np.clip(base_j + dj, 0, cols - q) for _, dj, _ in taps]
    )

    def _accumulate(env):
        tiles = env["tiles"].reshape(len(taps), nt, p, q).astype(np.int64)
        acc4 = acc.reshape(rows // p, p, cols // q, q)
        a_off = np.arange(p)
        b_off = np.arange(q)
        t_idx = np.arange(nt)[:, None, None]
        for tap, (di, dj, w) in enumerate(taps):
            ai = np.clip(base_i + di, 0, rows - p)
            aj = np.clip(base_j + dj, 0, cols - q)
            gi_abs = base_i[:, None] + di + a_off[None, :]
            gj_abs = base_j[:, None] + dj + b_off[None, :]
            in_i = (gi_abs >= 0) & (gi_abs < rows)
            in_j = (gj_abs >= 0) & (gj_abs < cols)
            idx_i = np.clip(gi_abs - ai[:, None], 0, p - 1)
            idx_j = np.clip(gj_abs - aj[:, None], 0, q - 1)
            window = tiles[tap][t_idx, idx_i[:, :, None], idx_j[:, None, :]]
            window = np.where(in_i[:, :, None] & in_j[:, None, :], window, 0)
            acc4 += w * window.reshape(rows // p, cols // q, p, q).swapaxes(1, 2)
        return {"out": acc}

    prog.read(PatternKind.RECTANGLE, ai_all, aj_all, tag="tiles")
    prog.compute(_accumulate, label="accumulate")
    return prog, pm


def stencil_program(
    image: np.ndarray, weights: np.ndarray, p: int = 2, q: int = 4
) -> tuple[AccessProgram, PolyMem]:
    """Deprecated: use ``repro.program.builder.build("kernel.stencil", ...)``."""
    warnings.warn(
        "stencil_program() is deprecated; use "
        "repro.program.builder.build('kernel.stencil', image=..., weights=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _stencil_program(image, weights, p, q)


def stencil_sweep(
    image: np.ndarray, weights: np.ndarray, p: int = 2, q: int = 4
) -> tuple[np.ndarray, KernelReport]:
    """Apply *weights* (odd-square integer kernel) through PolyMem reads.

    Boundary cells use zero padding, handled host-side in the program's
    accumulate step.
    """
    res = build("kernel.stencil", image=image, weights=weights, p=p, q=q).run()
    return res["out"], res.report


def stencil_serial_cycles(rows: int, cols: int, weights: np.ndarray) -> int:
    """Same traffic at one element per cycle."""
    taps = int(np.count_nonzero(weights))
    return rows * cols * taps
