"""PolyMem-backed application kernels (the paper's §VII future work).

Each kernel routes *all* of its operand traffic through PolyMem parallel
accesses, verifies against a NumPy reference, and reports cycle counts and
speedups over a scalar memory — the application-level evidence for the
multiview design.
"""

from .base import CycleScope, KernelReport
from .jacobi import jacobi_reference, jacobi_solve
from .matmul import matmul, matmul_scalar_cycles
from .reduction import load_matrix, reduce_columns, reduce_rows
from .stencil import stencil_reference, stencil_serial_cycles, stencil_sweep
from .transpose import transpose, transpose_serial_cycles

__all__ = [
    "CycleScope",
    "KernelReport",
    "jacobi_reference",
    "jacobi_solve",
    "load_matrix",
    "matmul",
    "matmul_scalar_cycles",
    "reduce_columns",
    "reduce_rows",
    "stencil_reference",
    "stencil_serial_cycles",
    "stencil_sweep",
    "transpose",
    "transpose_serial_cycles",
]
