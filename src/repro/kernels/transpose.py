"""Blocked matrix transpose through the ReTr scheme.

Reads ``p x q`` tiles, writes ``q x p`` tiles — both single-cycle at any
anchor under ReTr.  The library version of ``examples/matrix_transpose.py``
with batch-vectorized accesses and full cycle accounting, plus the
serialization cost a rectangle-only memory would pay.  Lowers to a
two-memory :class:`~repro.program.AccessProgram` (``src`` / ``dst``,
``build("kernel.transpose")``).
"""

from __future__ import annotations

import warnings

import numpy as np

from ..core.config import PolyMemConfig
from ..core.exceptions import PatternError
from ..core.patterns import PatternKind
from ..core.polymem import PolyMem
from ..core.schemes import Scheme
from ..program import AccessProgram
from ..program.builder import build
from .base import KernelReport

__all__ = ["transpose", "transpose_program", "transpose_serial_cycles"]


def _transpose_program(
    matrix: np.ndarray, p: int = 2, q: int = 4
) -> tuple[AccessProgram, dict[str, PolyMem]]:
    """Lower the blocked transpose to a two-memory access program.

    RECTANGLE tile reads from ``src`` (tag ``tiles``), a Compute
    transposing each tile's lane order, and TRANSPOSED_RECTANGLE writes
    into ``dst`` at swapped anchors.
    """
    matrix = np.asarray(matrix, dtype=np.uint64)
    rows, cols = matrix.shape
    if rows % p or cols % q or cols % p or rows % q:
        raise PatternError(
            f"shape {rows}x{cols} must align with both tile orientations"
        )
    src = PolyMem(
        PolyMemConfig(rows * cols * 8, p=p, q=q, scheme=Scheme.ReTr,
                      rows=rows, cols=cols)
    )
    dst = PolyMem(
        PolyMemConfig(rows * cols * 8, p=p, q=q, scheme=Scheme.ReTr,
                      rows=cols, cols=rows)
    )
    src.load(matrix)
    src.reset_stats()

    bi = np.arange(0, rows, p)
    bj = np.arange(0, cols, q)
    gi, gj = np.meshgrid(bi, bj, indexing="ij")
    anchors_i, anchors_j = gi.ravel(), gj.ravel()

    def _tile_transpose(env):
        # transpose each p x q tile into q x p lane order
        tiles = env["tiles"]
        return {
            "tiles_t": tiles.reshape(-1, p, q).transpose(0, 2, 1).reshape(-1, p * q)
        }

    prog = (
        AccessProgram("transpose", metadata={"result_elements": rows * cols})
        .read(PatternKind.RECTANGLE, anchors_i, anchors_j, tag="tiles", mem="src")
        .compute(_tile_transpose, label="tile_transpose")
        .write(
            PatternKind.TRANSPOSED_RECTANGLE,
            anchors_j,
            anchors_i,
            values=lambda env: env["tiles_t"],
            mem="dst",
        )
    )
    return prog, {"src": src, "dst": dst}


def transpose_program(
    matrix: np.ndarray, p: int = 2, q: int = 4
) -> tuple[AccessProgram, dict[str, PolyMem]]:
    """Deprecated: use ``repro.program.builder.build("kernel.transpose", ...)``."""
    warnings.warn(
        "transpose_program() is deprecated; use "
        "repro.program.builder.build('kernel.transpose', matrix=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _transpose_program(matrix, p, q)


def transpose(
    matrix: np.ndarray, p: int = 2, q: int = 4
) -> tuple[np.ndarray, KernelReport]:
    """Transpose via PolyMem tile traffic (ReTr, batch path).

    *matrix* must be rows x cols with ``p | rows`` and ``q | cols`` and
    square-compatible dims (``p | cols`` and ``q | rows``) so the
    transposed tiles land on a valid grid.
    """
    built = build("kernel.transpose", matrix=matrix, p=p, q=q)
    res = built.run()
    return built.mems["dst"].dump(), res.report


def transpose_serial_cycles(rows: int, cols: int, p: int = 2, q: int = 4) -> int:
    """Cycles for the same transpose on rectangle-only (ReO) banking.

    The tile reads stay single-cycle; the transposed writes conflict and
    serialize by the worst per-bank load (see
    :func:`repro.core.conflict.serialization_factor`) — ``min(p, q)``
    lanes land on each touched bank, so each write takes that many cycles.
    """
    from ..core.conflict import serialization_factor
    from ..core.schemes import Scheme

    cycles = 0
    for i in range(0, rows, p):
        for j in range(0, cols, q):
            cycles += serialization_factor(
                Scheme.ReO, PatternKind.RECTANGLE, i, j, p, q
            )
            cycles += serialization_factor(
                Scheme.ReO, PatternKind.TRANSPOSED_RECTANGLE, j, i, p, q
            )
    return cycles
