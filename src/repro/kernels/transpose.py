"""Blocked matrix transpose through the ReTr scheme.

Reads ``p x q`` tiles, writes ``q x p`` tiles — both single-cycle at any
anchor under ReTr.  The library version of ``examples/matrix_transpose.py``
with batch-vectorized accesses and full cycle accounting, plus the
serialization cost a rectangle-only memory would pay.
"""

from __future__ import annotations

import numpy as np

from ..core.config import PolyMemConfig
from ..core.exceptions import PatternError
from ..core.patterns import PatternKind
from ..core.plan import AccessTrace
from ..core.polymem import PolyMem
from ..core.schemes import Scheme
from .base import CycleScope, KernelReport

__all__ = ["transpose", "transpose_serial_cycles"]


def transpose(
    matrix: np.ndarray, p: int = 2, q: int = 4
) -> tuple[np.ndarray, KernelReport]:
    """Transpose via PolyMem tile traffic (ReTr, batch path).

    *matrix* must be rows x cols with ``p | rows`` and ``q | cols`` and
    square-compatible dims (``p | cols`` and ``q | rows``) so the
    transposed tiles land on a valid grid.
    """
    matrix = np.asarray(matrix, dtype=np.uint64)
    rows, cols = matrix.shape
    if rows % p or cols % q or cols % p or rows % q:
        raise PatternError(
            f"shape {rows}x{cols} must align with both tile orientations"
        )
    src = PolyMem(
        PolyMemConfig(rows * cols * 8, p=p, q=q, scheme=Scheme.ReTr,
                      rows=rows, cols=cols)
    )
    dst = PolyMem(
        PolyMemConfig(rows * cols * 8, p=p, q=q, scheme=Scheme.ReTr,
                      rows=cols, cols=rows)
    )
    src.load(matrix)
    src.reset_stats()

    bi = np.arange(0, rows, p)
    bj = np.arange(0, cols, q)
    gi, gj = np.meshgrid(bi, bj, indexing="ij")
    anchors_i, anchors_j = gi.ravel(), gj.ravel()
    with CycleScope(src, "transpose", dst) as scope:
        tiles = src.replay(
            AccessTrace().read(PatternKind.RECTANGLE, anchors_i, anchors_j)
        )[0]
        # transpose each p x q tile into q x p lane order
        tiles_t = (
            tiles.reshape(-1, p, q).transpose(0, 2, 1).reshape(-1, p * q)
        )
        dst.replay(
            AccessTrace().write(
                PatternKind.TRANSPOSED_RECTANGLE, anchors_j, anchors_i, tiles_t
            )
        )
    out = dst.dump()
    return out, scope.report(result_elements=rows * cols)


def transpose_serial_cycles(rows: int, cols: int, p: int = 2, q: int = 4) -> int:
    """Cycles for the same transpose on rectangle-only (ReO) banking.

    The tile reads stay single-cycle; the transposed writes conflict and
    serialize by the worst per-bank load (see
    :func:`repro.core.conflict.serialization_factor`) — ``min(p, q)``
    lanes land on each touched bank, so each write takes that many cycles.
    """
    from ..core.conflict import serialization_factor
    from ..core.schemes import Scheme

    cycles = 0
    for i in range(0, rows, p):
        for j in range(0, cols, q):
            cycles += serialization_factor(
                Scheme.ReO, PatternKind.RECTANGLE, i, j, p, q
            )
            cycles += serialization_factor(
                Scheme.ReO, PatternKind.TRANSPOSED_RECTANGLE, j, i, p, q
            )
    return cycles
