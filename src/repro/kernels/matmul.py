"""Matrix multiply through PolyMem parallel accesses.

The classic PRF showcase (the paper cites its CG/SARC lineage): computing
``C = A @ B`` needs *rows* of A and *columns* of B simultaneously — exactly
the RoCo scheme's specialty.  Both operands live in one PolyMem (regions),
and every operand fetch is a single conflict-free parallel access:

* one ROW access per (i, k-block) of A;
* one COLUMN access per (k-block, j) of B.

A rectangle-only memory (ReO) would serialize the column fetches; the
report quantifies the difference.  The kernel *lowers* to an
:class:`~repro.program.AccessProgram` (``build("kernel.matmul")``) and
runs through the shared execution engine.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..core.config import PolyMemConfig
from ..core.exceptions import PatternError
from ..core.patterns import PatternKind
from ..core.polymem import PolyMem
from ..core.regions import RegionMap
from ..core.schemes import Scheme
from ..program import AccessProgram
from ..program.builder import build
from .base import KernelReport

__all__ = ["matmul", "matmul_program", "matmul_scalar_cycles"]


def _matmul_program(
    a: np.ndarray, b: np.ndarray, p: int = 2, q: int = 4
) -> tuple[AccessProgram, PolyMem]:
    """Lower ``C = A @ B`` to an access program over one RoCo memory.

    Returns the program (reads tagged ``a_rows`` / ``b_cols``, product
    bound to ``c``) and the loaded memory.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    n, k = a.shape
    k2, m = b.shape
    lanes = p * q
    if k != k2:
        raise PatternError(f"inner dimensions differ: {k} vs {k2}")
    if k % lanes or m % lanes or n % p:
        raise PatternError(
            f"dims must align to the lane grid: n%p, k%{lanes}, m%{lanes}"
        )
    # one memory, two regions, RoCo: rows AND columns anywhere
    # place both operands in a single address space wide enough for each
    cols = max(k, m)
    rows = n + k
    cfg = PolyMemConfig(
        rows * cols * 8,
        p=p,
        q=q,
        scheme=Scheme.RoCo,
        rows=rows,
        cols=cols,
    )
    pm = PolyMem(cfg)
    regions = RegionMap(pm)
    ra = regions.allocate("A", n, k)
    rb = regions.allocate("B", k, m)
    ra.store(np.pad(a, ((0, ra.rows - n), (0, ra.cols - k))))
    rb.store(np.pad(b, ((0, rb.rows - k), (0, rb.cols - m))))
    pm.reset_stats()

    kb = np.arange(0, k, lanes, dtype=np.int64)
    nb = kb.size
    # row i of A: k/lanes ROW accesses anchored at (i, kb) — one anchor
    # array, replayed as a single stream
    row_ai = np.repeat(np.arange(n, dtype=np.int64), nb) + ra.origin_i
    row_aj = np.tile(kb, n) + ra.origin_j
    # columns of B are refetched for every output row, exactly like the
    # serial inner loop: n * m * (k/lanes) COLUMN accesses
    col_ai = np.tile(kb, n * m) + rb.origin_i
    col_aj = np.tile(np.repeat(np.arange(m, dtype=np.int64), nb), n) + rb.origin_j

    def _einsum(env):
        a_rows = env["a_rows"].reshape(n, k)
        b_cols = env["b_cols"].reshape(n, m, k)
        # uint64 einsum wraps mod 2**64 like the per-(i,j) np.dot did
        return {"c": np.einsum("ik,imk->im", a_rows, b_cols)}

    prog = (
        AccessProgram("matmul", metadata={"result_elements": n * m})
        .read(PatternKind.ROW, row_ai, row_aj, tag="a_rows")
        .read(PatternKind.COLUMN, col_ai, col_aj, tag="b_cols")
        .compute(_einsum, label="einsum")
    )
    return prog, pm


def matmul_program(
    a: np.ndarray, b: np.ndarray, p: int = 2, q: int = 4
) -> tuple[AccessProgram, PolyMem]:
    """Deprecated: use ``repro.program.builder.build("kernel.matmul", ...)``."""
    warnings.warn(
        "matmul_program() is deprecated; use "
        "repro.program.builder.build('kernel.matmul', a=..., b=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _matmul_program(a, b, p, q)


def matmul(
    a: np.ndarray, b: np.ndarray, p: int = 2, q: int = 4
) -> tuple[np.ndarray, KernelReport]:
    """``C = A @ B`` with every operand fetch a parallel PolyMem access.

    Matrix dimensions must be multiples of ``p*q`` (the parallel-access
    length).  Returns the integer product and the cycle report.
    """
    res = build("kernel.matmul", a=a, b=b, p=p, q=q).run()
    return res["c"], res.report


def matmul_scalar_cycles(n: int, k: int, m: int) -> int:
    """Cycle cost of the same traffic on a one-element-per-cycle memory."""
    return n * k + n * m * k  # row fetches + per-(i,j) column fetches
