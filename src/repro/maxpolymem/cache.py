"""PolyMem as a software cache between LMem and the kernel (paper Fig. 1).

The paper's envisioned use: performance-critical data is staged from the
board DRAM (LMem) into PolyMem, the kernel hammers it with parallel
accesses (high reuse), and results stream back.  :class:`SoftwareCache`
implements that tiling driver for matrices larger than the PolyMem:

* tiles are fetched/written back as LMem bursts (latency + bandwidth
  charged by the :class:`~repro.maxeler.lmem.LMem` model);
* on-chip accesses run at one parallel access per cycle;
* a time ledger splits the run into staging vs compute, quantifying the
  reuse factor at which the PolyMem pays for itself.

There are deliberately no placement/replacement heuristics — the paper:
*"instead of supporting placement and replacement policies, our memory is
configured for the application at hand"* — the application drives tiling
explicitly through :meth:`SoftwareCache.tiles`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.config import PolyMemConfig
from ..core.exceptions import CapacityError
from ..core.patterns import PatternKind
from ..core.polymem import PolyMem
from ..maxeler.lmem import LMem

__all__ = ["CacheTimings", "SoftwareCache", "Tile"]


@dataclass
class CacheTimings:
    """Where the wall-clock went."""

    stage_in_ns: float = 0.0
    stage_out_ns: float = 0.0
    compute_cycles: int = 0

    def compute_ns(self, clock_mhz: float) -> float:
        return self.compute_cycles * 1e3 / clock_mhz

    def total_ns(self, clock_mhz: float) -> float:
        return self.stage_in_ns + self.stage_out_ns + self.compute_ns(clock_mhz)

    def staging_fraction(self, clock_mhz: float) -> float:
        """Fraction of time spent moving data instead of computing."""
        total = self.total_ns(clock_mhz)
        return (self.stage_in_ns + self.stage_out_ns) / total if total else 0.0


@dataclass
class Tile:
    """One resident tile: its LMem location and PolyMem contents."""

    row0: int
    col0: int
    rows: int
    cols: int


class SoftwareCache:
    """Tile-wise staging of a big LMem matrix through a PolyMem.

    Parameters
    ----------
    config:
        The PolyMem configuration (its whole space is one tile frame).
    lmem:
        The board DRAM holding the full matrix.
    matrix_shape:
        (rows, cols) of the LMem-resident matrix, row-major at
        ``base_addr``.
    clock_mhz:
        Kernel clock for the time ledger.
    """

    def __init__(
        self,
        config: PolyMemConfig,
        lmem: LMem,
        matrix_shape: tuple[int, int],
        base_addr: int = 0,
        clock_mhz: float = 120.0,
    ):
        self.memory = PolyMem(config)
        self.lmem = lmem
        self.matrix_rows, self.matrix_cols = matrix_shape
        self.base_addr = base_addr
        self.clock_mhz = clock_mhz
        self.timings = CacheTimings()
        self.tile: Tile | None = None
        if self.matrix_rows * self.matrix_cols * 8 > lmem.capacity_bytes:
            raise CapacityError("matrix exceeds LMem capacity")

    @property
    def tile_rows(self) -> int:
        return self.memory.rows

    @property
    def tile_cols(self) -> int:
        return self.memory.cols

    def tiles(self) -> Iterator[Tile]:
        """All tile frames covering the matrix, row-major order."""
        for r in range(0, self.matrix_rows, self.tile_rows):
            for c in range(0, self.matrix_cols, self.tile_cols):
                yield Tile(
                    row0=r,
                    col0=c,
                    rows=min(self.tile_rows, self.matrix_rows - r),
                    cols=min(self.tile_cols, self.matrix_cols - c),
                )

    def _addr(self, row: int, col: int) -> int:
        return self.base_addr + row * self.matrix_cols + col

    # -- staging ------------------------------------------------------------
    def stage_in(self, tile: Tile) -> None:
        """Fetch *tile* from LMem into the PolyMem (padding short tiles)."""
        data, ns = self.lmem.read_matrix(
            self._addr(tile.row0, tile.col0),
            tile.rows,
            tile.cols,
            row_stride=self.matrix_cols,
        )
        frame = np.zeros((self.tile_rows, self.tile_cols), dtype=np.uint64)
        frame[: tile.rows, : tile.cols] = data
        self.memory.load(frame)
        self.timings.stage_in_ns += ns
        self.tile = tile

    def stage_out(self) -> None:
        """Write the resident tile back to LMem."""
        if self.tile is None:
            raise CapacityError("no tile resident")
        tile = self.tile
        frame = self.memory.dump()
        ns = self.lmem.write_matrix(
            self._addr(tile.row0, tile.col0),
            frame[: tile.rows, : tile.cols],
            row_stride=self.matrix_cols,
        )
        self.timings.stage_out_ns += ns

    # -- compute ------------------------------------------------------------
    def read(self, kind: PatternKind, i: int, j: int, port: int = 0) -> np.ndarray:
        """One on-chip parallel read (tile-relative)."""
        before = self.memory.cycles
        out = self.memory.read(kind, i, j, port)
        self.timings.compute_cycles += self.memory.cycles - before
        return out

    def write(self, kind: PatternKind, i: int, j: int, values) -> None:
        """One on-chip parallel write (tile-relative)."""
        before = self.memory.cycles
        self.memory.write(kind, i, j, values)
        self.timings.compute_cycles += self.memory.cycles - before

    def read_batch(self, kind: PatternKind, anchors_i, anchors_j, port: int = 0):
        before = self.memory.cycles
        out = self.memory.read_batch(kind, anchors_i, anchors_j, port)
        self.timings.compute_cycles += self.memory.cycles - before
        return out

    def write_batch(self, kind: PatternKind, anchors_i, anchors_j, values):
        before = self.memory.cycles
        self.memory.write_batch(kind, anchors_i, anchors_j, values)
        self.timings.compute_cycles += self.memory.cycles - before

    # -- analysis ------------------------------------------------------------
    def breakeven_reuse(self) -> float:
        """Accesses per element at which staging cost equals compute cost.

        Below this reuse factor the kernel is staging-bound and the cache
        buys little; above it, PolyMem bandwidth dominates — the Fig. 1
        design rationale, quantified.
        """
        tile_words = self.tile_rows * self.tile_cols
        stage_ns = (
            2 * (self.tile_rows * self.lmem.burst_latency_ns
                 + tile_words * 8 / self.lmem.bandwidth_gbps)
        )
        accesses_per_ns = self.clock_mhz * 1e-3  # parallel accesses per ns
        access_elems = self.memory.lanes
        # reuse r => r * tile_words / access_elems cycles of compute
        return stage_ns * accesses_per_ns * access_elems / tile_words
