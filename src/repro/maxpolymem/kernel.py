"""The fused MAX-PolyMem kernel: the whole Fig. 3 design in one kernel.

The paper built two variants of MAX-PolyMem (§III-C): a modular multi-kernel
design and a fused single-kernel design (which halves resource usage).
:class:`FusedPolyMemKernel` is the fused variant — a single dataflow kernel
that accepts one write command and one read command per port per cycle and
produces read data after a fixed pipeline latency (the paper measures 14
cycles for the synthesized STREAM design).

Stream protocol
---------------
* ``wr_cmd``  — elements are :class:`WriteCommand` (request + lane data).
* ``rd_cmd{r}`` — per read port, elements are
  :class:`~repro.core.agu.AccessRequest`.
* ``rd_out{r}`` — per read port, lane-ordered result vectors, emerging
  ``read_latency`` cycles after the command entered.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.agu import AccessRequest
from ..core.config import PolyMemConfig
from ..core.polymem import PolyMem
from ..maxeler.kernel import Kernel

__all__ = ["WriteCommand", "FusedPolyMemKernel", "DEFAULT_READ_LATENCY"]

#: pipeline depth of the synthesized design, estimated by Maxeler's tools
#: for the paper's STREAM experiment (§V)
DEFAULT_READ_LATENCY = 14


@dataclass(frozen=True)
class WriteCommand:
    """One parallel write: the (i, j, AccType, DataIn) signal bundle."""

    request: AccessRequest
    values: np.ndarray


class FusedPolyMemKernel(Kernel):
    """Single-kernel MAX-PolyMem with pipelined reads.

    Per tick it consumes at most one ``wr_cmd`` and one ``rd_cmd{r}`` per
    read port — the paper's "one write access and one read access for each
    read port ... independently at the same time".
    """

    def __init__(
        self,
        name: str,
        config: PolyMemConfig,
        read_latency: int = DEFAULT_READ_LATENCY,
    ):
        super().__init__(name)
        self.config = config
        self.memory = PolyMem(config)
        self.read_latency = read_latency
        self._now = 0
        # per-port in-flight pipelines of (issue_cycle, result_vector)
        self._pipes: list[deque[tuple[int, np.ndarray]]] = [
            deque() for _ in range(config.read_ports)
        ]

    def _tick(self) -> bool:
        self._now += 1
        # an occupied read pipeline advances every cycle — that is progress,
        # or the simulator would flag the latency wait as a deadlock
        progressed = any(self._pipes)
        # 1) retire pipelined reads whose latency elapsed
        for port, pipe in enumerate(self._pipes):
            out = self.outputs.get(f"rd_out{port}")
            if (
                pipe
                and out is not None
                and pipe[0][0] + self.read_latency <= self._now
                and out.can_push()
            ):
                out.push(pipe.popleft()[1])
                progressed = True
        # 2) accept one command per port; reads and the write share a cycle
        reads: list[tuple[int, AccessRequest]] = []
        for port in range(self.config.read_ports):
            cmd = self.inputs.get(f"rd_cmd{port}")
            if (
                cmd is not None
                and cmd.can_pop()
                and len(self._pipes[port]) < self.read_latency
            ):
                reads.append((port, cmd.peek()))
        write = None
        wr = self.inputs.get("wr_cmd")
        if wr is not None and wr.can_pop():
            write = wr.peek()
        if reads or write is not None:
            results = self.memory.step(
                reads=reads,
                write=(write.request, write.values) if write else None,
            )
            for port, _ in reads:
                self.inputs[f"rd_cmd{port}"].pop()
                self._pipes[port].append((self._now, results[port]))
            if write is not None:
                wr.pop()
            progressed = True
        return progressed

    @property
    def idle(self) -> bool:
        return all(not pipe for pipe in self._pipes)

    @property
    def cycles(self) -> int:
        """Parallel-access cycles consumed by the underlying memory."""
        return self.memory.cycles
