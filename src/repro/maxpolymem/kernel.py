"""The fused MAX-PolyMem kernel: the whole Fig. 3 design in one kernel.

The paper built two variants of MAX-PolyMem (§III-C): a modular multi-kernel
design and a fused single-kernel design (which halves resource usage).
:class:`FusedPolyMemKernel` is the fused variant — a single dataflow kernel
that accepts one write command and one read command per port per cycle and
produces read data after a fixed pipeline latency (the paper measures 14
cycles for the synthesized STREAM design).

Stream protocol
---------------
* ``wr_cmd``  — elements are :class:`WriteCommand` (request + lane data).
* ``rd_cmd{r}`` — per read port, elements are
  :class:`~repro.core.agu.AccessRequest`.
* ``rd_out{r}`` — per read port, lane-ordered result vectors, emerging
  ``read_latency`` cycles after the command entered.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.agu import AccessRequest
from ..core.config import PolyMemConfig
from ..core.polymem import PolyMem
from ..maxeler.batch import IDLE_PLAN, BatchOp, BatchPlan
from ..maxeler.kernel import Kernel
from ..program import AccessProgram, slot_disjoint

__all__ = ["WriteCommand", "FusedPolyMemKernel", "DEFAULT_READ_LATENCY"]

#: pipeline depth of the synthesized design, estimated by Maxeler's tools
#: for the paper's STREAM experiment (§V)
DEFAULT_READ_LATENCY = 14


def _bound(current: int | None, new: int) -> int:
    return new if current is None else min(current, new)


@dataclass(frozen=True)
class WriteCommand:
    """One parallel write: the (i, j, AccType, DataIn) signal bundle."""

    request: AccessRequest
    values: np.ndarray


class FusedPolyMemKernel(Kernel):
    """Single-kernel MAX-PolyMem with pipelined reads.

    Per tick it consumes at most one ``wr_cmd`` and one ``rd_cmd{r}`` per
    read port — the paper's "one write access and one read access for each
    read port ... independently at the same time".
    """

    def __init__(
        self,
        name: str,
        config: PolyMemConfig,
        read_latency: int = DEFAULT_READ_LATENCY,
        collision_policy: str = "read_first",
    ):
        super().__init__(name)
        self.config = config
        self.memory = PolyMem(config, collision_policy=collision_policy)
        self.read_latency = read_latency
        self._now = 0
        # per-port in-flight pipelines of (issue_cycle, result_vector)
        self._pipes: list[deque[tuple[int, np.ndarray]]] = [
            deque() for _ in range(config.read_ports)
        ]
        # batched-chunk scratch: per-port results accepted this chunk,
        # per-chunk claims, and the step-counter compensation flag
        self._accepted: dict[int, list[np.ndarray]] = {}
        self._rd_claims: dict[int, object] = {}
        self._wr_claim = None
        self._chunk_accesses = 0

    def _tick(self) -> bool:
        self._now += 1
        # an occupied read pipeline advances every cycle — that is progress,
        # or the simulator would flag the latency wait as a deadlock
        progressed = any(self._pipes)
        # 1) retire pipelined reads whose latency elapsed
        for port, pipe in enumerate(self._pipes):
            out = self.outputs.get(f"rd_out{port}")
            if (
                pipe
                and out is not None
                and pipe[0][0] + self.read_latency <= self._now
                and out.can_push()
            ):
                out.push(pipe.popleft()[1])
                progressed = True
        # 2) accept one command per port; reads and the write share a cycle
        reads: list[tuple[int, AccessRequest]] = []
        for port in range(self.config.read_ports):
            cmd = self.inputs.get(f"rd_cmd{port}")
            if (
                cmd is not None
                and cmd.can_pop()
                and len(self._pipes[port]) < self.read_latency
            ):
                reads.append((port, cmd.peek()))
        write = None
        wr = self.inputs.get("wr_cmd")
        if wr is not None and wr.can_pop():
            write = wr.peek()
        if reads or write is not None:
            results = self.memory.step(
                reads=reads,
                write=(write.request, write.values) if write else None,
            )
            for port, _ in reads:
                self.inputs[f"rd_cmd{port}"].pop()
                self._pipes[port].append((self._now, results[port]))
            if write is not None:
                wr.pop()
            progressed = True
        return progressed

    @property
    def idle(self) -> bool:
        return all(not pipe for pipe in self._pipes)

    @property
    def cycles(self) -> int:
        """Parallel-access cycles consumed by the underlying memory."""
        return self.memory.cycles

    # -- batched execution --------------------------------------------------
    #
    # The chunked sub-activities below reproduce `_tick`'s per-cycle
    # behaviour exactly, under the uniformity conditions `batch_plan`
    # checks: every accepted command stream delivers one command per cycle
    # (claimed by the upstream plan), every streaming pipe is full with
    # consecutive stamps and an exactly-ripe head, and the chunk's reads
    # and writes touch disjoint memory slots (so read-before-write
    # ordering inside the chunk is unobservable and all collision
    # policies coincide).

    def _pop_cmds_read(self, port: int, n: int) -> None:
        """Accept n read commands on *port* and execute them vectorized
        against the pre-chunk memory state."""
        self.inputs[f"rd_cmd{port}"].pop_many(n)
        kind, ai, aj = self._rd_claims[port].anchors(n)
        rows = self.memory.read_batch(kind, ai, aj, port=port, check=True)
        self._chunk_accesses += 1
        self._accepted[port] = list(rows)

    def _accept_fill(self, port: int):
        # pipe empty at chunk start: n <= latency commands enter, nothing
        # ripens inside the window
        def run(n: int) -> None:
            self._pop_cmds_read(port, n)
            rows = self._accepted.pop(port)
            base = self._now
            self._pipes[port] = deque(
                (base + t + 1, rows[t]) for t in range(n)
            )

        return run

    def _accept_steady(self, port: int):
        def run(n: int) -> None:
            self._pop_cmds_read(port, n)

        return run

    def _retire_steady(self, port: int):
        # full pipe + accepted results have consecutive stamps: n cycles
        # retire the first n, keep the last `read_latency`
        def run(n: int) -> None:
            values = [v for _, v in self._pipes[port]]
            values.extend(self._accepted.pop(port))
            self.outputs[f"rd_out{port}"].push_many(values[:n])
            first = self._now + 1 - self.read_latency
            self._pipes[port] = deque(
                (first + m, values[m])
                for m in range(n, n + self.read_latency)
            )

        return run

    def _retire_drain(self, port: int):
        def run(n: int) -> None:
            pipe = self._pipes[port]
            self.outputs[f"rd_out{port}"].push_many(
                [pipe.popleft()[1] for _ in range(n)]
            )

        return run

    def _accept_write(self, n: int) -> None:
        cmds = self.inputs["wr_cmd"].pop_many(n)
        values = np.stack([c.values for c in cmds])
        kind, ai, aj = self._wr_claim.anchors(n)
        self.memory.write_batch(kind, ai, aj, values, check=True)
        self._chunk_accesses += 1

    def _advance(self, n: int) -> None:
        """Last sub-activity of every chunk: advance local time and undo
        the per-call cycle counting of read_batch/write_batch so
        ``memory.cycles`` matches the scalar path (one `step` per cycle,
        however many ports it served)."""
        self._now += n
        extra = self._planned_accesses - 1
        if extra > 0:
            self.memory.cycles -= extra * n

    def _ripe_prefix(self, port: int) -> int:
        """Length of the pipe prefix retiring one element per cycle from
        the next tick on (consecutive stamps from an exactly-ripe head)."""
        pipe = self._pipes[port]
        head = pipe[0][0]
        if head + self.read_latency != self._now + 1:
            return 0
        run = 0
        for stamp, _ in pipe:
            if stamp != head + run:
                break
            run += 1
        return run

    def batch_plan(self, ctx: dict) -> BatchPlan | None:
        latency = self.read_latency
        ops: list[BatchOp] = []
        write_ops: list[BatchOp] = []
        sensitive: list[str] = []
        cycles: int | None = None
        self._rd_claims = {}
        self._wr_claim = None
        self._chunk_accesses = 0
        engaged = any(self._pipes)

        for port in range(self.config.read_ports):
            cmd_name = f"rd_cmd{port}"
            cmd_s = self.inputs.get(cmd_name)
            out_s = self.outputs.get(f"rd_out{port}")
            pipe = self._pipes[port]
            claim = ctx.get(cmd_s) if cmd_s is not None else None
            if claim is not None:
                if out_s is None or len(cmd_s) > 0:
                    return None  # command backlog: irregular, keep scalar
                if getattr(claim, "anchors", None) is None:
                    return None  # untyped producer: cannot prove the chunk
                self._rd_claims[port] = claim
                if not pipe:
                    ops.append(
                        BatchOp(
                            f"accept{port}",
                            self._accept_fill(port),
                            pops=(cmd_name,),
                        )
                    )
                    cycles = _bound(cycles, latency)
                elif len(pipe) == latency and self._ripe_prefix(port) == latency:
                    ops.append(
                        BatchOp(
                            f"accept{port}",
                            self._accept_steady(port),
                            pops=(cmd_name,),
                        )
                    )
                    ops.append(
                        BatchOp(
                            f"retire{port}",
                            self._retire_steady(port),
                            pushes=(f"rd_out{port}",),
                        )
                    )
                else:
                    return None  # partially-filled or stalled pipe
            else:
                if cmd_s is not None:
                    if len(cmd_s) > 0:
                        return None  # queued commands: scalar accepts them
                    sensitive.append(cmd_name)
                if pipe:
                    if out_s is None:
                        return None
                    prefix = self._ripe_prefix(port)
                    if prefix:
                        ops.append(
                            BatchOp(
                                f"retire{port}",
                                self._retire_drain(port),
                                pushes=(f"rd_out{port}",),
                            )
                        )
                        cycles = _bound(cycles, prefix)
                    else:
                        wait = pipe[0][0] + latency - self._now - 1
                        if wait < 1:
                            return None  # overdue head (stalled): scalar
                        cycles = _bound(cycles, wait)

        wr_s = self.inputs.get("wr_cmd")
        wr_claim = ctx.get(wr_s) if wr_s is not None else None
        if wr_claim is not None:
            if len(wr_s) > 0:
                return None
            if getattr(wr_claim, "anchors", None) is None:
                return None
            self._wr_claim = wr_claim
            write_ops.append(
                BatchOp("accept_wr", self._accept_write, pops=("wr_cmd",))
            )
        elif wr_s is not None:
            if len(wr_s) > 0:
                return None
            sensitive.append("wr_cmd")

        if not ops and not write_ops and cycles is None:
            if engaged:
                return None
            if not sensitive:
                return IDLE_PLAN
            return BatchPlan(sensitive=tuple(sensitive))
        # reads run before the write (the intra-kernel chain), pinning the
        # read-before-write semantics the slot-disjointness proof assumes;
        # `advance` runs last to move local time once per chunk
        ops.extend(write_ops)
        self._planned_accesses = len(self._rd_claims) + len(write_ops)
        ops.append(BatchOp("advance", self._advance))
        return BatchPlan(
            cycles=cycles,
            ops=ops,
            sensitive=tuple(sensitive),
            active=True,
            validate=self._validate_chunk,
        )

    def _chunk_program(self, n: int) -> AccessProgram:
        """The chunk's claimed accesses as a describe-only program."""
        prog = AccessProgram(f"{self.name}.chunk")
        for port, claim in self._rd_claims.items():
            kind, ai, aj = claim.anchors(n)
            prog.read(kind, ai, aj, port=port)
        if self._wr_claim is not None:
            kind, ai, aj = self._wr_claim.anchors(n)
            prog.write(kind, ai, aj)
        return prog

    def _validate_chunk(self, n: int) -> bool:
        """Prove slot disjointness for the chunk's accesses.

        Lowers the chunk's claims to a describe-only
        :class:`AccessProgram` and delegates to
        :func:`repro.program.slot_disjoint` — one sort of the write slots
        plus a searchsorted probe per read claim, slot ids straight from
        the compiled access plans.
        """
        if self._wr_claim is None:
            return True
        return slot_disjoint(self._chunk_program(n), self.memory)
