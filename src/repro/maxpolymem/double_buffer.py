"""Double-buffered software cache: overlap staging with compute.

The single-frame :class:`~repro.maxpolymem.cache.SoftwareCache` serializes
stage-in → compute → stage-out per tile.  With two PolyMem frames in
ping-pong, tile ``k+1`` streams in from LMem while the kernel computes on
tile ``k`` — the standard DFE double-buffering idiom the Fig. 1
architecture enables (PolyMem capacity permitting two frames).

The timing model charges, per pipeline step, ``max(stage_time,
compute_time)`` instead of their sum; :meth:`PingPongCache.run` reports
both the overlapped wall clock and the serialized equivalent so the bench
can quantify the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


from ..core.config import PolyMemConfig
from ..maxeler.lmem import LMem
from .cache import SoftwareCache, Tile

__all__ = ["PingPongReport", "PingPongCache"]


@dataclass(frozen=True)
class PingPongReport:
    """Timing of one double-buffered sweep."""

    tiles: int
    overlapped_ns: float
    serialized_ns: float
    compute_cycles: int
    clock_mhz: float

    @property
    def overlap_speedup(self) -> float:
        return self.serialized_ns / self.overlapped_ns if self.overlapped_ns else 1.0


class PingPongCache:
    """Two software-cache frames in ping-pong over one LMem matrix.

    Parameters mirror :class:`~repro.maxpolymem.cache.SoftwareCache`;
    *config* describes ONE frame (the device must afford two of them).
    """

    def __init__(
        self,
        config: PolyMemConfig,
        lmem: LMem,
        matrix_shape: tuple[int, int],
        base_addr: int = 0,
        clock_mhz: float = 120.0,
    ):
        self.frames = [
            SoftwareCache(config, lmem, matrix_shape, base_addr, clock_mhz)
            for _ in range(2)
        ]
        self.lmem = lmem
        self.clock_mhz = clock_mhz

    def tiles(self):
        """Tile frames covering the matrix (delegates to frame 0)."""
        return self.frames[0].tiles()

    def run(
        self,
        compute: Callable[[SoftwareCache, Tile], None],
        writeback: bool = True,
    ) -> PingPongReport:
        """Sweep every tile, overlapping tile k+1's staging with tile k's
        compute.

        *compute(frame, tile)* performs the on-chip work using the frame's
        ``read``/``write``/``read_batch`` accessors (cycle-accounted).
        """
        tiles = list(self.tiles())
        overlapped = 0.0
        serialized = 0.0
        total_cycles = 0
        if not tiles:
            return PingPongReport(0, 0.0, 0.0, 0, self.clock_mhz)

        def stage_in_time(frame, tile):
            before = frame.timings.stage_in_ns
            frame.stage_in(tile)
            return frame.timings.stage_in_ns - before

        def stage_out_time(frame):
            before = frame.timings.stage_out_ns
            frame.stage_out()
            return frame.timings.stage_out_ns - before

        def compute_time(frame, tile):
            before = frame.timings.compute_cycles
            compute(frame, tile)
            cycles = frame.timings.compute_cycles - before
            return cycles, cycles * 1e3 / self.clock_mhz

        # prologue: stage the first tile (not overlappable)
        t_in = stage_in_time(self.frames[0], tiles[0])
        overlapped += t_in
        serialized += t_in
        for k, tile in enumerate(tiles):
            cur = self.frames[k % 2]
            nxt = self.frames[(k + 1) % 2]
            cycles, t_compute = compute_time(cur, tile)
            total_cycles += cycles
            t_stage_next = 0.0
            if k + 1 < len(tiles):
                t_stage_next = stage_in_time(nxt, tiles[k + 1])
            t_out = stage_out_time(cur) if writeback else 0.0
            # compute overlaps the next tile's staging; write-back of the
            # current frame shares the LMem port with the stage-in, so the
            # two LMem transfers serialize against each other
            overlapped += max(t_compute, t_stage_next + t_out)
            serialized += t_compute + t_stage_next + t_out
        return PingPongReport(
            tiles=len(tiles),
            overlapped_ns=overlapped,
            serialized_ns=serialized,
            compute_cycles=total_cycles,
            clock_mhz=self.clock_mhz,
        )
