"""The modular MAX-PolyMem: Fig. 3 as separate dataflow kernels.

This is the paper's first, multi-kernel implementation (§III-C): each block
of Fig. 3 — AGU, M, A, the Shuffles, and the Memory Banks — is its own
kernel, connected by the manager through inter-kernel streams.  It is
behaviourally identical to :class:`~repro.maxpolymem.kernel.
FusedPolyMemKernel` (integration-tested), but pays stream-infrastructure
resources on every internal edge and accumulates one cycle of latency per
pipeline stage — reproducing the paper's observation that the modular
version consumes about twice the resources of the fused one.

Pipeline element protocol: a :class:`Bundle` travels down the write path
(AGU → M → A → Address/Write-Data Shuffle → Banks) and each read path
(AGU → M → A → Address Shuffle → Banks → Read Data Shuffle), accumulating
fields at each stage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.addressing import AddressingFunction
from ..core.agu import AGU, AccessRequest
from ..core.banks import BankArray
from ..core.config import PolyMemConfig
from ..core.schemes import flat_module_assignment
from ..core.shuffle import InverseShuffle, Shuffle
from ..maxeler.kernel import Kernel
from ..maxeler.manager import Manager
from .kernel import WriteCommand

__all__ = ["Bundle", "build_modular_design", "ModularDesign"]


@dataclass(frozen=True)
class Bundle:
    """A parallel access in flight through the modular pipeline."""

    request: AccessRequest
    values: np.ndarray | None = None  # DataIn (write path only)
    ii: np.ndarray | None = None      # expanded coordinates (after AGU)
    jj: np.ndarray | None = None
    banks: np.ndarray | None = None   # reordering signal (after M)
    addrs: np.ndarray | None = None   # intra-bank addresses (after A)


class _StageKernel(Kernel):
    """A one-in one-out pipeline stage applying ``transform`` per element."""

    def __init__(self, name: str):
        super().__init__(name)

    def transform(self, element):  # pragma: no cover - abstract
        raise NotImplementedError

    def _tick(self) -> bool:
        inp, out = self.inputs["in"], self.outputs["out"]
        if inp.can_pop() and out.can_push():
            out.push(self.transform(inp.pop()))
            return True
        return False


class AGUKernel(_StageKernel):
    """Expands (i, j, AccType) into per-lane coordinates (paper block AGU)."""

    def __init__(self, name: str, config: PolyMemConfig):
        super().__init__(name)
        self.agu = AGU(config.rows, config.cols, config.p, config.q)

    def transform(self, b: Bundle) -> Bundle:
        ii, jj = self.agu.expand(b.request)
        return replace(b, ii=ii, jj=jj)


class MKernel(_StageKernel):
    """Module Assignment Function: emits the reordering signal (block M)."""

    def __init__(self, name: str, config: PolyMemConfig):
        super().__init__(name)
        self.config = config

    def transform(self, b: Bundle) -> Bundle:
        banks = flat_module_assignment(
            self.config.scheme, b.ii, b.jj, self.config.p, self.config.q
        )
        return replace(b, banks=banks)


class AKernel(_StageKernel):
    """Addressing function: intra-bank addresses (block A)."""

    def __init__(self, name: str, config: PolyMemConfig):
        super().__init__(name)
        self.addressing = AddressingFunction(
            config.rows, config.cols, config.p, config.q
        )

    def transform(self, b: Bundle) -> Bundle:
        return replace(b, addrs=self.addressing(b.ii, b.jj))


class WriteShuffleKernel(_StageKernel):
    """Address Shuffle + Write Data Shuffle: reorders addresses and DataIn
    into bank order before they hit the Memory Banks."""

    def __init__(self, name: str, lanes: int):
        super().__init__(name)
        self._shuffle = Shuffle(lanes)

    def transform(self, b: Bundle) -> Bundle:
        addr_by_bank = self._shuffle(b.addrs, b.banks)
        data_by_bank = self._shuffle(b.values, b.banks)
        return replace(b, addrs=addr_by_bank, values=data_by_bank)


class AddrShuffleKernel(_StageKernel):
    """Address Shuffle of a read path (no data to reorder yet)."""

    def __init__(self, name: str, lanes: int):
        super().__init__(name)
        self._shuffle = Shuffle(lanes)

    def transform(self, b: Bundle) -> Bundle:
        return replace(b, addrs=self._shuffle(b.addrs, b.banks))


class BanksKernel(Kernel):
    """The p x q Memory Banks with one write port and R read ports.

    Inputs: ``write`` (bank-ordered bundles) and ``read{r}``; outputs
    ``rdata{r}`` carrying bank-ordered data plus the reordering signal.
    """

    def __init__(self, name: str, config: PolyMemConfig):
        super().__init__(name)
        self.config = config
        self.banks = BankArray(
            num_banks=config.lanes,
            bank_depth=config.bank_depth,
            read_ports=config.read_ports,
        )
        self._lane_ids = np.arange(config.lanes)

    def _tick(self) -> bool:
        progressed = False
        # reads happen before the write lands (independent port semantics,
        # matching PolyMem.step)
        for port in range(self.config.read_ports):
            inp = self.inputs.get(f"read{port}")
            out = self.outputs.get(f"rdata{port}")
            if inp is not None and inp.can_pop() and out.can_push():
                b: Bundle = inp.pop()
                data = self.banks.read(port, self._lane_ids, b.addrs)
                out.push(replace(b, values=data))
                progressed = True
        wr = self.inputs.get("write")
        if wr is not None and wr.can_pop():
            b = wr.pop()
            self.banks.write(self._lane_ids, b.addrs, b.values)
            progressed = True
        return progressed


class ReadShuffleKernel(_StageKernel):
    """Read Data Shuffle: restores lane order on the way out (inverse of the
    write-side reordering, per §III-B's regular/inverse shuffle pairing)."""

    def __init__(self, name: str, lanes: int):
        super().__init__(name)
        self._shuffle = InverseShuffle(lanes)

    def transform(self, b: Bundle) -> np.ndarray:
        return self._shuffle(b.values, b.banks)


class _WriteCmdAdapter(_StageKernel):
    """Adapts host :class:`WriteCommand` elements into pipeline bundles."""

    def transform(self, cmd: WriteCommand) -> Bundle:
        return Bundle(request=cmd.request, values=np.asarray(cmd.values))


class _ReadCmdAdapter(_StageKernel):
    """Adapts host :class:`AccessRequest` elements into pipeline bundles."""

    def transform(self, req: AccessRequest) -> Bundle:
        return Bundle(request=req)


@dataclass
class ModularEndpoints:
    """Connection points of a modular PolyMem embedded in a larger design.

    ``wr_cmd`` is the (kernel, port) accepting :class:`WriteCommand`
    elements; ``rd_cmd[r]`` accept :class:`AccessRequest` elements;
    ``rd_out[r]`` produce lane-ordered result vectors.
    """

    banks: BanksKernel
    wr_cmd: tuple[Kernel, str]
    rd_cmd: list[tuple[Kernel, str]]
    rd_out: list[tuple[Kernel, str]]


@dataclass
class ModularDesign:
    """The assembled modular design and its endpoints."""

    manager: Manager
    config: PolyMemConfig
    banks: BanksKernel

    @property
    def pipeline_latency(self) -> int:
        """Read-path stages: adapter, AGU, M, A, addr shuffle, banks, read
        shuffle — one cycle each."""
        return 7


def add_modular_polymem(
    mgr: Manager, config: PolyMemConfig, prefix: str = ""
) -> ModularEndpoints:
    """Instantiate the Fig. 3 pipeline inside an existing design.

    Used both by :func:`build_modular_design` (standalone, host-wired) and
    by larger compositions (e.g. a modular STREAM design) that connect the
    returned endpoints to their own kernels.
    """
    banks = BanksKernel(f"{prefix}banks", config)
    mgr.add_kernel(banks)

    # write path
    wr_in = mgr.add_kernel(_WriteCmdAdapter(f"{prefix}wr_adapter"))
    wr_agu = mgr.add_kernel(AGUKernel(f"{prefix}wr_agu", config))
    wr_m = mgr.add_kernel(MKernel(f"{prefix}wr_m", config))
    wr_a = mgr.add_kernel(AKernel(f"{prefix}wr_a", config))
    wr_sh = mgr.add_kernel(WriteShuffleKernel(f"{prefix}wr_shuffle", config.lanes))
    mgr.connect(wr_in, "out", wr_agu, "in")
    mgr.connect(wr_agu, "out", wr_m, "in")
    mgr.connect(wr_m, "out", wr_a, "in")
    mgr.connect(wr_a, "out", wr_sh, "in")
    mgr.connect(wr_sh, "out", banks, "write")

    rd_cmd: list[tuple[Kernel, str]] = []
    rd_out: list[tuple[Kernel, str]] = []
    for port in range(config.read_ports):
        rd_in = mgr.add_kernel(_ReadCmdAdapter(f"{prefix}rd_adapter{port}"))
        rd_agu = mgr.add_kernel(AGUKernel(f"{prefix}rd_agu{port}", config))
        rd_m = mgr.add_kernel(MKernel(f"{prefix}rd_m{port}", config))
        rd_a = mgr.add_kernel(AKernel(f"{prefix}rd_a{port}", config))
        rd_sh = mgr.add_kernel(
            AddrShuffleKernel(f"{prefix}rd_addr_shuffle{port}", config.lanes)
        )
        rd_data = mgr.add_kernel(
            ReadShuffleKernel(f"{prefix}rd_data_shuffle{port}", config.lanes)
        )
        mgr.connect(rd_in, "out", rd_agu, "in")
        mgr.connect(rd_agu, "out", rd_m, "in")
        mgr.connect(rd_m, "out", rd_a, "in")
        mgr.connect(rd_a, "out", rd_sh, "in")
        mgr.connect(rd_sh, "out", banks, f"read{port}")
        mgr.connect(banks, f"rdata{port}", rd_data, "in")
        rd_cmd.append((rd_in, "in"))
        rd_out.append((rd_data, "out"))

    return ModularEndpoints(
        banks=banks, wr_cmd=(wr_in, "in"), rd_cmd=rd_cmd, rd_out=rd_out
    )


def build_modular_design(
    config: PolyMemConfig, name: str = "max-polymem"
) -> ModularDesign:
    """Assemble the full Fig. 3 pipeline as a standalone modular design.

    Host endpoints: input streams ``wr_cmd`` and ``rd_cmd{r}``; output
    streams ``rd_out{r}``.
    """
    mgr = Manager(name, style="modular")
    ep = add_modular_polymem(mgr, config)
    mgr.host_to_kernel("wr_cmd", *ep.wr_cmd)
    for port in range(config.read_ports):
        mgr.host_to_kernel(f"rd_cmd{port}", *ep.rd_cmd[port])
        mgr.kernel_to_host(f"rd_out{port}", *ep.rd_out[port])
    return ModularDesign(manager=mgr, config=config, banks=ep.banks)
