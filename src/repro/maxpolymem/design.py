"""Design assembly: a complete MAX-PolyMem DFE from a PolyMemConfig.

Combines the fused kernel (or the modular pipeline), a clock frequency from
the calibrated synthesis model (or the paper's Table IV when the
configuration is on its grid), and the board model into a ready-to-run
:class:`~repro.maxeler.dfe.DFE` plus a resource report.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import PolyMemConfig
from ..hw.calibration import table_iv_frequency
from ..hw.crossbar import design_shuffles
from ..hw.synthesis import SynthesisReport, default_model
from ..maxeler.dfe import DFE, VectisBoard
from ..maxeler.host import Host
from ..maxeler.manager import Manager
from .kernel import DEFAULT_READ_LATENCY, FusedPolyMemKernel
from .modular import ModularDesign, build_modular_design

__all__ = ["PolyMemDesign", "build_design", "clock_for"]


def clock_for(config: PolyMemConfig, source: str = "auto") -> float:
    """Clock frequency (MHz) for *config*.

    ``source``:

    * ``"paper"`` — Table IV lookup (raises KeyError off-grid);
    * ``"model"`` — the calibrated synthesis model;
    * ``"auto"`` — paper value when the configuration is on the Table IV
      grid, model estimate otherwise.
    """
    cap_kb = config.capacity_bytes // 1024
    paper = table_iv_frequency(
        config.scheme, cap_kb, config.lanes, config.read_ports
    )
    if source == "paper":
        if paper is None:
            raise KeyError(f"{config.label()} is not in Table IV")
        return paper
    if source == "model":
        return default_model().frequency_mhz(config)
    if source == "auto":
        return paper if paper is not None else default_model().frequency_mhz(config)
    raise ValueError(f"unknown clock source {source!r}")


@dataclass
class PolyMemDesign:
    """A built MAX-PolyMem design, ready to simulate."""

    config: PolyMemConfig
    dfe: DFE
    kernel: FusedPolyMemKernel | None
    modular: ModularDesign | None
    synthesis: SynthesisReport
    style: str

    @property
    def read_latency(self) -> int:
        if self.kernel is not None:
            return self.kernel.read_latency
        return self.modular.pipeline_latency

    def host(self) -> Host:
        """A fresh host attached to this design's DFE."""
        return Host(self.dfe)

    def resource_luts(self) -> int:
        """Shuffle LUTs plus (for modular style) interconnect overhead."""
        shuffles = design_shuffles(self.config).total_luts
        interconnect = self.dfe.manager.resources().interconnect_luts
        return shuffles + interconnect


def build_design(
    config: PolyMemConfig,
    style: str = "fused",
    clock_source: str = "auto",
    read_latency: int = DEFAULT_READ_LATENCY,
    board: VectisBoard | None = None,
) -> PolyMemDesign:
    """Build a complete MAX-PolyMem design.

    Host endpoints exposed by both styles: ``wr_cmd``, ``rd_cmd{r}`` inputs
    and ``rd_out{r}`` outputs.
    """
    synth = default_model().estimate(config)
    clock = clock_for(config, clock_source)
    if style == "fused":
        mgr = Manager("max-polymem", style="fused")
        kernel = FusedPolyMemKernel("polymem", config, read_latency=read_latency)
        mgr.add_kernel(kernel)
        mgr.host_to_kernel("wr_cmd", kernel, "wr_cmd")
        for port in range(config.read_ports):
            mgr.host_to_kernel(f"rd_cmd{port}", kernel, f"rd_cmd{port}")
            mgr.kernel_to_host(f"rd_out{port}", kernel, f"rd_out{port}")
        dfe = DFE(mgr, clock_mhz=clock, board=board)
        return PolyMemDesign(
            config=config,
            dfe=dfe,
            kernel=kernel,
            modular=None,
            synthesis=synth,
            style=style,
        )
    if style == "modular":
        modular = build_modular_design(config)
        dfe = DFE(modular.manager, clock_mhz=clock, board=board)
        return PolyMemDesign(
            config=config,
            dfe=dfe,
            kernel=None,
            modular=modular,
            synthesis=synth,
            style=style,
        )
    raise ValueError(f"unknown design style {style!r}")
