"""MAX-PolyMem: PolyMem realized as a dataflow design (paper Fig. 3).

Two implementations mirror the paper's §III-C development history:

* :class:`FusedPolyMemKernel` — the optimized single-kernel design;
* :func:`build_modular_design` — the multi-kernel pipeline (AGU, M, A,
  Shuffles, Banks as separate kernels), ~2x the resources.

:func:`build_design` assembles either into a runnable DFE;
:func:`validate_design` runs the paper's §IV-A unique-value read/write
validation cycle.
"""

from .cache import CacheTimings, SoftwareCache, Tile
from .double_buffer import PingPongCache, PingPongReport
from .design import PolyMemDesign, build_design, clock_for
from .kernel import DEFAULT_READ_LATENCY, FusedPolyMemKernel, WriteCommand
from .modular import Bundle, ModularDesign, build_modular_design
from .validation import (
    ValidationReport,
    validate_config,
    validate_configs,
    validate_design,
)

__all__ = [
    "Bundle",
    "CacheTimings",
    "SoftwareCache",
    "Tile",
    "DEFAULT_READ_LATENCY",
    "FusedPolyMemKernel",
    "ModularDesign",
    "PingPongCache",
    "PingPongReport",
    "PolyMemDesign",
    "ValidationReport",
    "WriteCommand",
    "build_design",
    "build_modular_design",
    "clock_for",
    "validate_config",
    "validate_configs",
    "validate_design",
]
