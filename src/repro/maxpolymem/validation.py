"""The paper's §IV-A validation cycle.

*"We validate each design with a simple read/write cycle: the host fills
MAX-PolyMem with unique numerical values, and then reads them back using
parallel accesses."*

:func:`validate_design` reproduces that procedure through the dataflow
design's streams (not by touching the memory model directly): unique
values are written through the write port using aligned rectangle accesses
(conflict-free under every scheme), then read back through every read port
using every pattern the scheme supports, and compared against the expected
layout.

:func:`validate_configs` runs the cycle over a whole grid of
configurations through :mod:`repro.exec` — in parallel and cached when
asked — which is how the paper "validate[s] each design" across the DSE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..core.agu import AccessRequest
from ..core.config import PolyMemConfig
from ..core.exceptions import ConflictError
from ..core.patterns import AccessPattern, PatternKind
from ..core.plan import compile_plan, compile_plan_batch
from ..core.schemes import SCHEME_SPECS
from .design import PolyMemDesign
from .kernel import WriteCommand

__all__ = [
    "ValidationReport",
    "conflict_free_chunk",
    "validate_design",
    "validate_config",
    "validate_configs",
    "validate_points_batch",
    "warm_validation",
]


def warm_validation(config: PolyMemConfig, max_rows=None, style=None, **_: object) -> None:
    """Pre-compile the plan families one §IV-A cycle touches.

    This is the :class:`~repro.exec.SweepTask` ``warmup`` hook for the
    validation grid: the fill phase uses aligned ``RECTANGLE`` accesses and
    the readback phase every supported pattern whose condition holds, so
    warming exactly that set in the parent lets forked workers start with
    every :func:`~repro.core.plan.compile_plan` family already resident.
    Extra keyword arguments (``max_rows``/``style``/...) are accepted and
    ignored so the hook matches any caller's task params.
    """
    compile_plan_batch(_validation_plan_keys(config))


def _validation_plan_keys(config: PolyMemConfig) -> list[tuple]:
    """The plan-family keys one §IV-A cycle touches."""
    p, q = config.p, config.q
    kinds = {PatternKind.RECTANGLE}
    for entry in SCHEME_SPECS[config.scheme].supported:
        if entry.condition_holds(p, q):
            kinds.add(entry.kind)
    return [
        (config.rows, config.cols, p, q, config.scheme, kind, 1)
        for kind in kinds
    ]


def _warm_validation_family(config: PolyMemConfig, **_: object) -> tuple:
    """Warmup dedup key: the compiled plan families are blind to the read
    port count, so sibling configs differing only in ports share one
    warm-up (see :func:`repro.exec.warm.collect_warmups`)."""
    return (config.rows, config.cols, config.p, config.q, config.scheme)


warm_validation.warm_family = _warm_validation_family


@dataclass
class ValidationReport:
    """Outcome of one validation cycle."""

    config_label: str
    writes: int = 0
    reads: int = 0
    mismatches: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatches and self.reads > 0


def _reference_matrix(rows: int, cols: int) -> np.ndarray:
    """Unique values: flat index + 1 (nonzero to catch missed writes)."""
    return (np.arange(rows * cols, dtype=np.uint64) + 1).reshape(rows, cols)


def _read_anchors(pattern: AccessPattern, rows: int, cols: int, entry, p, q):
    """A probe set of anchors per pattern: corners and a misaligned interior
    point where the scheme allows it."""
    h, w = pattern.shape
    j_base = w - 1 if pattern.kind is PatternKind.ANTI_DIAGONAL else 0
    candidates = [
        (0, j_base),
        (rows - h, j_base),
        (0, j_base + (cols - w)),
        (rows - h, j_base + (cols - w)),
        (max(0, rows // 2 - h), j_base + max(0, cols // 2 - w)),
        (1, j_base + 1),
    ]
    # dedupe, keep only anchors the scheme supports and that fit
    out = []
    for i, j in dict.fromkeys(candidates):
        ii, jj = pattern.coordinates(i, j)
        if ii.min() < 0 or jj.min() < 0 or ii.max() >= rows or jj.max() >= cols:
            continue
        if entry.anchor_ok(i, j, p, q):
            out.append((i, j))
    return out


def validate_design(design: PolyMemDesign, max_rows: int | None = 64) -> ValidationReport:
    """Run the §IV-A validation cycle through the design's streams.

    ``max_rows`` bounds the validated region for very large memories (the
    full 4 MB space would need half a million stream elements); ``None``
    validates everything.
    """
    cfg = design.config
    host = design.host()
    rows = cfg.rows if max_rows is None else min(cfg.rows, max_rows)
    cols = cfg.cols
    p, q = cfg.p, cfg.q
    report = ValidationReport(config_label=cfg.label())
    ref = _reference_matrix(rows, cols)

    # -- fill with unique values: aligned p x q rectangles ----------------
    host.begin_stage("fill")
    commands = []
    for bi in range(0, rows, p):
        for bj in range(0, cols, q):
            vals = ref[bi : bi + p, bj : bj + q].ravel()
            commands.append(
                WriteCommand(AccessRequest(PatternKind.RECTANGLE, bi, bj), vals)
            )
    host.write_stream("wr_cmd", commands)
    report.writes = len(commands)
    host.run_kernel(max_cycles=20 * len(commands) + 1000)

    # -- read back through every supported pattern on every port -----------
    spec = SCHEME_SPECS[cfg.scheme]
    host.begin_stage("readback")
    for port in range(cfg.read_ports):
        out_stream = design.dfe.manager.host_output(f"rd_out{port}")
        for entry in spec.supported:
            if not entry.condition_holds(p, q):
                continue
            pattern = AccessPattern(entry.kind, p, q)
            anchors = _read_anchors(pattern, rows, cols, entry, p, q)
            if not anchors:
                continue
            reqs = [AccessRequest(entry.kind, i, j) for i, j in anchors]
            host.write_stream(f"rd_cmd{port}", reqs)
            expected_n = len(reqs)
            host.run_kernel(
                until=lambda s=out_stream, n=expected_n: len(s) == n,
                max_cycles=50 * expected_n + 10 * design.read_latency + 1000,
            )
            results = host.read_stream(f"rd_out{port}")
            for (i, j), got in zip(anchors, results):
                ii, jj = pattern.coordinates(i, j)
                want = ref[ii, jj]
                report.reads += 1
                if not np.array_equal(np.asarray(got), want):
                    report.mismatches.append(
                        f"port {port} {entry.kind.value}@({i},{j}): "
                        f"got {got}, want {want}"
                    )
    return report


def validate_config(
    config: PolyMemConfig,
    max_rows: int | None = 16,
    style: str = "fused",
) -> dict:
    """Build + validate one configuration, returning the plain-JSON
    payload (module-level and picklable: the :class:`~repro.exec.SweepTask`
    function for the validation grid)."""
    from .design import build_design

    design = build_design(config, style=style, clock_source="model")
    report = validate_design(design, max_rows=max_rows)
    return {
        "config_label": report.config_label,
        "passed": report.passed,
        "writes": report.writes,
        "reads": report.reads,
        "mismatches": list(report.mismatches),
    }


def conflict_free_chunk(
    configs,
    kind,
    anchors_i,
    anchors_j,
    stride: int = 1,
    *,
    policy: str = "allow",
    vectorized: bool = True,
) -> np.ndarray:
    """Conflict-freedom of one shared access chunk across N configs.

    Returns an ``(N, B)`` boolean mask: entry ``[n, b]`` is True when the
    *kind* access anchored at ``(anchors_i[b], anchors_j[b])`` is in
    bounds *and* bank-conflict-free for ``configs[n]``.  The vectorized
    path compiles every plan family through one
    :func:`~repro.core.plan.compile_plan_batch` build and, per lane grid,
    stacks the residue ``ok`` tables of the distinct families so the whole
    chunk resolves in one fancy-indexed gather; ``vectorized=False`` is
    the scalar per-anchor reference the hypothesis parity suite pins the
    fast path against (bit-identical masks and errors).

    ``policy="forbid"`` raises :class:`~repro.core.exceptions.ConflictError`
    for the first failing ``(config, anchor)`` in config-major order —
    identical across both paths.
    """
    configs = list(configs)
    kind = PatternKind(kind)
    ai = np.asarray(anchors_i, dtype=np.int64)
    aj = np.asarray(anchors_j, dtype=np.int64)
    if ai.shape != aj.shape or ai.ndim != 1:
        raise ValueError("anchors must be equal-length 1-D arrays")
    out = np.empty((len(configs), ai.size), dtype=bool)
    keys = [
        (cfg.rows, cfg.cols, cfg.p, cfg.q, cfg.scheme, kind, stride)
        for cfg in configs
    ]
    if not vectorized:
        for n, key in enumerate(keys):
            plan = compile_plan(*key)
            for b in range(ai.size):
                i, j = int(ai[b]), int(aj[b])
                out[n, b] = plan.fits(i, j) and plan.conflict_free(i, j)
    else:
        plans = compile_plan_batch(keys)
        by_grid: dict[tuple[int, int], list[int]] = {}
        for n, key in enumerate(keys):
            by_grid.setdefault((key[2], key[3]), []).append(n)
        for (p, q), ns in by_grid.items():
            period = p * q
            ri = ai % period
            rj = aj % period
            distinct = list(dict.fromkeys(keys[n] for n in ns))
            # (D, B): every distinct family's residue verdicts in one pass
            ok_rows = np.stack([plans[k].ok for k in distinct])[:, ri, rj]
            row_of = {k: d for d, k in enumerate(distinct)}
            for n in ns:
                out[n] = plans[keys[n]].fits_mask(ai, aj) & ok_rows[row_of[keys[n]]]
    if policy == "forbid":
        bad = np.argwhere(~out)
        if bad.size:
            n, b = (int(x) for x in bad[0])
            raise ConflictError(
                f"{configs[n].label()}: {kind.value} access at "
                f"({int(ai[b])}, {int(aj[b])}) is out of bounds or "
                f"bank-conflicting"
            )
    elif policy != "allow":
        raise ValueError(f"unknown conflict policy {policy!r}")
    return out


def _validate_family_tables(
    cfg: PolyMemConfig, rows_v: int, ref: np.ndarray, bi: np.ndarray, bj: np.ndarray
) -> tuple[int, int] | None:
    """Run one family's §IV-A cycle on the compiled slot tables alone.

    Simulates the fill scatter and every supported readback gather on a
    flat slot image (the same ``bank * depth + address`` ids the design's
    write and read paths resolve to), in the scalar cycle's write order.
    Returns ``(reads_per_port, writes)`` when every probe matches the
    reference — the clean case, where the full-simulator cycle passes too
    — or ``None`` for *any* irregularity (a probe out of bounds or
    conflicting, a value mismatch), telling the caller to fall back to
    the scalar :func:`validate_config` so payloads stay byte-identical by
    construction.
    """
    rows, cols, p, q = cfg.rows, cfg.cols, cfg.p, cfg.q
    plan_rect = compile_plan(rows, cols, p, q, cfg.scheme, PatternKind.RECTANGLE, 1)
    vals = ref[bi[:, None] + plan_rect.di[None, :], bj[:, None] + plan_rect.dj[None, :]]
    image = np.zeros(cfg.total_words, dtype=np.uint64)
    # duplicate slot ids resolve last-write-wins, matching the sequential
    # command order of the stream-driven fill
    image[plan_rect.slots_many(bi, bj).reshape(-1)] = vals.reshape(-1)
    reads = 0
    for entry in SCHEME_SPECS[cfg.scheme].supported:
        if not entry.condition_holds(p, q):
            continue
        pattern = AccessPattern(entry.kind, p, q)
        anchors = _read_anchors(pattern, rows_v, cols, entry, p, q)
        if not anchors:
            continue
        ai = np.array([a[0] for a in anchors], dtype=np.int64)
        aj = np.array([a[1] for a in anchors], dtype=np.int64)
        plan = compile_plan(rows, cols, p, q, cfg.scheme, entry.kind, 1)
        if not (plan.fits_mask(ai, aj) & plan.ok_mask(ai, aj)).all():
            return None
        got = image[plan.slots_many(ai, aj)]
        want = ref[ai[:, None] + plan.di[None, :], aj[:, None] + plan.dj[None, :]]
        if not (got == want).all():
            return None
        reads += len(anchors)
    return reads, int(bi.size)


def validate_points_batch(
    configs,
    max_rows: int | None = 16,
    style: str = "fused",
) -> list[dict]:
    """Vectorized :func:`validate_config` over a config array.

    Configs are grouped by geometry family ``(rows, cols, p, q)``; each
    family shares one batched plan-table build
    (:func:`~repro.core.plan.compile_plan_batch`), one fill anchor chunk
    checked across all schemes by :func:`conflict_free_chunk`, and one
    slot-image fill/readback pass per scheme (read ports only replicate
    the readback, so sibling port counts reuse the same pass).  Any
    config the fast path cannot prove clean — a misaligned validated
    region, a conflicting or mismatching probe — falls back to the scalar
    simulator cycle, so every payload equals the scalar one byte for byte
    (pinned by ``tests/dse/test_batch_equivalence.py``).
    """
    configs = list(configs)
    payloads: list[dict | None] = [None] * len(configs)
    compile_plan_batch(
        [key for cfg in configs for key in _validation_plan_keys(cfg)]
    )
    geo_groups: dict[tuple, list[int]] = {}
    for n, cfg in enumerate(configs):
        geo_groups.setdefault((cfg.rows, cfg.cols, cfg.p, cfg.q), []).append(n)
    for (rows, cols, p, q), members in geo_groups.items():
        rows_v = rows if max_rows is None else min(rows, max_rows)
        scheme_of: dict = {}
        for n in members:
            scheme_of.setdefault(configs[n].scheme, []).append(n)
        if rows_v <= 0 or rows_v % p or cols % q:
            fill_ok = np.zeros((len(scheme_of), 1), dtype=bool)
            bi = bj = None
        else:
            bi = np.repeat(
                np.arange(0, rows_v, p, dtype=np.int64), len(range(0, cols, q))
            )
            bj = np.tile(
                np.arange(0, cols, q, dtype=np.int64), len(range(0, rows_v, p))
            )
            fill_ok = conflict_free_chunk(
                [configs[ns[0]] for ns in scheme_of.values()],
                PatternKind.RECTANGLE,
                bi,
                bj,
            )
        ref = _reference_matrix(rows_v, cols) if rows_v > 0 else None
        for (scheme, ns), ok_row in zip(scheme_of.items(), fill_ok):
            family = None
            if bi is not None and ok_row.all():
                family = _validate_family_tables(configs[ns[0]], rows_v, ref, bi, bj)
            if family is None:
                for n in ns:
                    payloads[n] = validate_config(configs[n], max_rows, style)
                continue
            reads, writes = family
            for n in ns:
                cfg = configs[n]
                payloads[n] = {
                    "config_label": cfg.label(),
                    "passed": reads > 0,
                    "writes": writes,
                    "reads": cfg.read_ports * reads,
                    "mismatches": [],
                }
    return payloads


def validate_configs(
    configs: Iterable[PolyMemConfig],
    max_rows: int | None = 16,
    style: str = "fused",
    workers: int | None = None,
    cache=None,
    progress: Callable | None = None,
    chunk_size: int | None = None,
    batch: bool = True,
) -> list[ValidationReport]:
    """The §IV-A cycle over a grid of configurations via :mod:`repro.exec`.

    Returns one :class:`ValidationReport` per config, in input order.
    ``workers``/``cache``/``progress``/``chunk_size`` go to
    :func:`repro.exec.run_sweep`; every task carries
    :func:`warm_validation` so parallel runs fork from pre-warmed caches.
    With ``batch`` (the default), sibling tasks in one chunk evaluate
    through :func:`validate_points_batch` in a single vectorized call;
    payloads are byte-identical either way.
    """
    from ..exec import SweepTask, run_sweep

    tasks = [
        SweepTask(
            "maxpolymem.validate",
            validate_config,
            cfg,
            params={"max_rows": max_rows, "style": style},
            warmup=warm_validation,
            batch_fn=validate_points_batch if batch else None,
        )
        for cfg in configs
    ]
    sweep = run_sweep(
        tasks, workers=workers, cache=cache, progress=progress, chunk_size=chunk_size
    )
    return [
        ValidationReport(
            config_label=v["config_label"],
            writes=v["writes"],
            reads=v["reads"],
            mismatches=list(v["mismatches"]),
        )
        for v in sweep.values()
    ]
