"""The paper's §IV-A validation cycle.

*"We validate each design with a simple read/write cycle: the host fills
MAX-PolyMem with unique numerical values, and then reads them back using
parallel accesses."*

:func:`validate_design` reproduces that procedure through the dataflow
design's streams (not by touching the memory model directly): unique
values are written through the write port using aligned rectangle accesses
(conflict-free under every scheme), then read back through every read port
using every pattern the scheme supports, and compared against the expected
layout.

:func:`validate_configs` runs the cycle over a whole grid of
configurations through :mod:`repro.exec` — in parallel and cached when
asked — which is how the paper "validate[s] each design" across the DSE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..core.agu import AccessRequest
from ..core.config import PolyMemConfig
from ..core.patterns import AccessPattern, PatternKind
from ..core.schemes import SCHEME_SPECS
from .design import PolyMemDesign
from .kernel import WriteCommand

__all__ = [
    "ValidationReport",
    "validate_design",
    "validate_config",
    "validate_configs",
    "warm_validation",
]


def warm_validation(config: PolyMemConfig, max_rows=None, style=None, **_: object) -> None:
    """Pre-compile the plan families one §IV-A cycle touches.

    This is the :class:`~repro.exec.SweepTask` ``warmup`` hook for the
    validation grid: the fill phase uses aligned ``RECTANGLE`` accesses and
    the readback phase every supported pattern whose condition holds, so
    warming exactly that set in the parent lets forked workers start with
    every :func:`~repro.core.plan.compile_plan` family already resident.
    Extra keyword arguments (``max_rows``/``style``/...) are accepted and
    ignored so the hook matches any caller's task params.
    """
    from ..core.plan import compile_plan

    p, q = config.p, config.q
    kinds = {PatternKind.RECTANGLE}
    for entry in SCHEME_SPECS[config.scheme].supported:
        if entry.condition_holds(p, q):
            kinds.add(entry.kind)
    for kind in kinds:
        compile_plan(config.rows, config.cols, p, q, config.scheme, kind, 1)


@dataclass
class ValidationReport:
    """Outcome of one validation cycle."""

    config_label: str
    writes: int = 0
    reads: int = 0
    mismatches: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatches and self.reads > 0


def _reference_matrix(rows: int, cols: int) -> np.ndarray:
    """Unique values: flat index + 1 (nonzero to catch missed writes)."""
    return (np.arange(rows * cols, dtype=np.uint64) + 1).reshape(rows, cols)


def _read_anchors(pattern: AccessPattern, rows: int, cols: int, entry, p, q):
    """A probe set of anchors per pattern: corners and a misaligned interior
    point where the scheme allows it."""
    h, w = pattern.shape
    j_base = w - 1 if pattern.kind is PatternKind.ANTI_DIAGONAL else 0
    candidates = [
        (0, j_base),
        (rows - h, j_base),
        (0, j_base + (cols - w)),
        (rows - h, j_base + (cols - w)),
        (max(0, rows // 2 - h), j_base + max(0, cols // 2 - w)),
        (1, j_base + 1),
    ]
    # dedupe, keep only anchors the scheme supports and that fit
    out = []
    for i, j in dict.fromkeys(candidates):
        ii, jj = pattern.coordinates(i, j)
        if ii.min() < 0 or jj.min() < 0 or ii.max() >= rows or jj.max() >= cols:
            continue
        if entry.anchor_ok(i, j, p, q):
            out.append((i, j))
    return out


def validate_design(design: PolyMemDesign, max_rows: int | None = 64) -> ValidationReport:
    """Run the §IV-A validation cycle through the design's streams.

    ``max_rows`` bounds the validated region for very large memories (the
    full 4 MB space would need half a million stream elements); ``None``
    validates everything.
    """
    cfg = design.config
    host = design.host()
    rows = cfg.rows if max_rows is None else min(cfg.rows, max_rows)
    cols = cfg.cols
    p, q = cfg.p, cfg.q
    report = ValidationReport(config_label=cfg.label())
    ref = _reference_matrix(rows, cols)

    # -- fill with unique values: aligned p x q rectangles ----------------
    host.begin_stage("fill")
    commands = []
    for bi in range(0, rows, p):
        for bj in range(0, cols, q):
            vals = ref[bi : bi + p, bj : bj + q].ravel()
            commands.append(
                WriteCommand(AccessRequest(PatternKind.RECTANGLE, bi, bj), vals)
            )
    host.write_stream("wr_cmd", commands)
    report.writes = len(commands)
    host.run_kernel(max_cycles=20 * len(commands) + 1000)

    # -- read back through every supported pattern on every port -----------
    spec = SCHEME_SPECS[cfg.scheme]
    host.begin_stage("readback")
    for port in range(cfg.read_ports):
        out_stream = design.dfe.manager.host_output(f"rd_out{port}")
        for entry in spec.supported:
            if not entry.condition_holds(p, q):
                continue
            pattern = AccessPattern(entry.kind, p, q)
            anchors = _read_anchors(pattern, rows, cols, entry, p, q)
            if not anchors:
                continue
            reqs = [AccessRequest(entry.kind, i, j) for i, j in anchors]
            host.write_stream(f"rd_cmd{port}", reqs)
            expected_n = len(reqs)
            host.run_kernel(
                until=lambda s=out_stream, n=expected_n: len(s) == n,
                max_cycles=50 * expected_n + 10 * design.read_latency + 1000,
            )
            results = host.read_stream(f"rd_out{port}")
            for (i, j), got in zip(anchors, results):
                ii, jj = pattern.coordinates(i, j)
                want = ref[ii, jj]
                report.reads += 1
                if not np.array_equal(np.asarray(got), want):
                    report.mismatches.append(
                        f"port {port} {entry.kind.value}@({i},{j}): "
                        f"got {got}, want {want}"
                    )
    return report


def validate_config(
    config: PolyMemConfig,
    max_rows: int | None = 16,
    style: str = "fused",
) -> dict:
    """Build + validate one configuration, returning the plain-JSON
    payload (module-level and picklable: the :class:`~repro.exec.SweepTask`
    function for the validation grid)."""
    from .design import build_design

    design = build_design(config, style=style, clock_source="model")
    report = validate_design(design, max_rows=max_rows)
    return {
        "config_label": report.config_label,
        "passed": report.passed,
        "writes": report.writes,
        "reads": report.reads,
        "mismatches": list(report.mismatches),
    }


def validate_configs(
    configs: Iterable[PolyMemConfig],
    max_rows: int | None = 16,
    style: str = "fused",
    workers: int | None = None,
    cache=None,
    progress: Callable | None = None,
    chunk_size: int | None = None,
) -> list[ValidationReport]:
    """The §IV-A cycle over a grid of configurations via :mod:`repro.exec`.

    Returns one :class:`ValidationReport` per config, in input order.
    ``workers``/``cache``/``progress``/``chunk_size`` go to
    :func:`repro.exec.run_sweep`; every task carries
    :func:`warm_validation` so parallel runs fork from pre-warmed caches.
    """
    from ..exec import SweepTask, run_sweep

    tasks = [
        SweepTask(
            "maxpolymem.validate",
            validate_config,
            cfg,
            params={"max_rows": max_rows, "style": style},
            warmup=warm_validation,
        )
        for cfg in configs
    ]
    sweep = run_sweep(
        tasks, workers=workers, cache=cache, progress=progress, chunk_size=chunk_size
    )
    return [
        ValidationReport(
            config_label=v["config_label"],
            writes=v["writes"],
            reads=v["reads"],
            mismatches=list(v["mismatches"]),
        )
        for v in sweep.values()
    ]
