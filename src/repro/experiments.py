"""One-shot reproduction report: every paper number vs this repository.

``python -m repro experiments`` regenerates the quantitative core of
EXPERIMENTS.md at runtime — Table I through Fig. 10 — and prints a
paper-vs-measured scorecard with pass/fail marks.  The benches under
``benchmarks/`` assert the same claims; this module is the human-readable
single entry point.

The scorecard routes its grid work (the Table III sweep, the §IV-A
validation cycles) through :mod:`repro.exec`, so ``--workers`` fans it out
over processes and a warm cache makes re-runs skip straight to the
answers.  The printed table is a renderer over the unified
:class:`repro.exec.Report` JSON schema (``--json`` emits it raw).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .exec import Report, ReportEntry, ResultCache, rel_error

__all__ = [
    "ExperimentRow",
    "Scorecard",
    "run_all",
    "run_scorecard",
    "scorecard_report",
    "render_report",
]


@dataclass(frozen=True)
class ExperimentRow:
    """One scorecard line."""

    experiment: str
    quantity: str
    paper: str
    measured: str
    ok: bool
    #: numeric values behind the display strings, when the quantity is a
    #: single number (lets the JSON schema carry a relative error)
    paper_value: float | None = None
    measured_value: float | None = None


def _table1_rows() -> list[ExperimentRow]:
    from .core.conflict import ConflictAnalyzer
    from .core.patterns import PatternKind
    from .core.schemes import Scheme

    expected = {
        Scheme.ReO: {PatternKind.RECTANGLE},
        Scheme.ReRo: {
            PatternKind.RECTANGLE,
            PatternKind.ROW,
            PatternKind.MAIN_DIAGONAL,
            PatternKind.ANTI_DIAGONAL,
        },
        Scheme.ReCo: {
            PatternKind.RECTANGLE,
            PatternKind.COLUMN,
            PatternKind.MAIN_DIAGONAL,
            PatternKind.ANTI_DIAGONAL,
        },
        Scheme.RoCo: {
            PatternKind.ROW,
            PatternKind.COLUMN,
            PatternKind.RECTANGLE,
        },
        Scheme.ReTr: {
            PatternKind.RECTANGLE,
            PatternKind.TRANSPOSED_RECTANGLE,
        },
    }
    table = ConflictAnalyzer(2, 4).table()
    rows = []
    for scheme, patterns in expected.items():
        got = {k for k, d in table[scheme].items() if d.label != "none"}
        ok = patterns <= got
        rows.append(
            ExperimentRow(
                "Table I",
                f"{scheme.value} patterns",
                ", ".join(sorted(p.value for p in patterns)),
                ", ".join(sorted(p.value for p in got)),
                ok,
            )
        )
    return rows


def _table4_rows() -> list[ExperimentRow]:
    from .hw.synthesis import default_model

    stats = default_model().freq_fit_stats
    return [
        ExperimentRow(
            "Table IV",
            "frequency model fit (90 cells)",
            "published MHz table",
            f"R^2={stats['r2']:.3f}, mean |err|={stats['mean_abs_pct_err']:.1f}%",
            stats["r2"] > 0.8,
            measured_value=stats["r2"],
        )
    ]


def _bandwidth_rows(result) -> list[ExperimentRow]:
    best_w = result.best(lambda p: p.bandwidth.write_gbps)
    best_r = result.best(lambda p: p.bandwidth.read_gbps)
    return [
        ExperimentRow(
            "Fig. 4",
            "peak write bandwidth",
            ">22 GB/s @ 512KB/16L ReO",
            f"{result.peak_write_gbps:.1f} GB/s @ {best_w.config.label()}",
            result.peak_write_gbps > 22 and best_w.capacity_kb == 512,
            paper_value=22.0,
            measured_value=result.peak_write_gbps,
        ),
        ExperimentRow(
            "Fig. 5",
            "peak aggregated read bandwidth",
            "~32 GB/s @ 512KB/8L/4P ReTr",
            f"{result.peak_read_gbps:.1f} GB/s @ {best_r.config.label()}",
            result.peak_read_gbps > 32
            and best_r.config.read_ports == 4
            and best_r.config.scheme.value == "ReTr",
            paper_value=32.0,
            measured_value=result.peak_read_gbps,
        ),
    ]


def _utilization_rows(result) -> list[ExperimentRow]:
    from .hw.calibration import BRAM_POINTS, LOGIC_POINTS

    rows = []
    logic = [result.lookup(p.scheme, p.capacity_kb, p.lanes, p.read_ports)
             for p in LOGIC_POINTS]
    worst_logic = max(
        abs(pt.logic_pct - ref.percent)
        for pt, ref in zip(logic, LOGIC_POINTS)
    )
    rows.append(
        ExperimentRow(
            "Fig. 6",
            "logic % on the 5 published points",
            "10.58 / 10.78 / 13.05 / 22.34 / 23.73",
            f"max |err| = {worst_logic:.2f} pp",
            worst_logic < 0.5,
            measured_value=worst_logic,
        )
    )
    luts = [p.lut_pct for p in result.points]
    rows.append(
        ExperimentRow(
            "Fig. 7",
            "LUT % range over the grid",
            "7% .. 28%",
            f"{min(luts):.1f}% .. {max(luts):.1f}%",
            min(luts) > 6 and max(luts) < 28,
        )
    )
    brams = [result.lookup(p.scheme, p.capacity_kb, p.lanes, p.read_ports)
             for p in BRAM_POINTS]
    worst_bram = max(
        abs(pt.bram_pct - ref.percent)
        for pt, ref in zip(brams, BRAM_POINTS)
    )
    rows.append(
        ExperimentRow(
            "Fig. 8",
            "BRAM % on the 4 published points",
            "16.07 / 19.31 / 29.04 / ~97",
            f"max |err| = {worst_bram:.2f} pp",
            worst_bram < 3.5,
            measured_value=worst_bram,
        )
    )
    return rows


def _stream_rows() -> list[ExperimentRow]:
    from .hw.calibration import STREAM_COPY
    from .stream_bench import COPY, StreamHarness

    harness = StreamHarness()
    full = harness.measure_analytic(COPY, harness.max_vectors, runs=1000)
    return [
        ExperimentRow(
            "Fig. 10",
            "theoretical Copy peak",
            f"{STREAM_COPY.peak_mbps:.0f} MB/s",
            f"{full.peak_mbps:.0f} MB/s",
            abs(full.peak_mbps - STREAM_COPY.peak_mbps) < 1,
            paper_value=STREAM_COPY.peak_mbps,
            measured_value=full.peak_mbps,
        ),
        ExperimentRow(
            "Fig. 10",
            "max measured Copy bandwidth",
            f"{STREAM_COPY.measured_mbps:.0f} MB/s (99.62%)",
            f"{full.mbps:.0f} MB/s ({full.efficiency * 100:.2f}%)",
            full.efficiency > 0.99
            and abs(full.mbps - STREAM_COPY.measured_mbps)
            / STREAM_COPY.measured_mbps
            < 0.01,
            paper_value=STREAM_COPY.measured_mbps,
            measured_value=full.mbps,
        ),
    ]


def _validation_rows(
    workers: int | None = None, cache: ResultCache | None = None,
    chunk_size: int | None = None,
) -> tuple[list[ExperimentRow], object]:
    from .core.config import KB, PolyMemConfig
    from .core.schemes import Scheme
    from .exec import SweepTask, run_sweep
    from .maxpolymem.validation import validate_config, warm_validation

    cfgs = [
        PolyMemConfig(16 * KB, p=2, q=4, scheme=scheme, read_ports=2)
        for scheme in Scheme
    ]
    tasks = [
        SweepTask(
            "maxpolymem.validate",
            validate_config,
            cfg,
            params={"max_rows": 8, "style": "fused"},
            warmup=warm_validation,
        )
        for cfg in cfgs
    ]
    sweep = run_sweep(tasks, workers=workers, cache=cache, chunk_size=chunk_size)
    passed = sum(
        v["passed"] and not v["mismatches"] for v in sweep.values()
    )
    total = len(cfgs)
    rows = [
        ExperimentRow(
            "§IV-A",
            "unique-value validation cycle",
            "every design validates",
            f"{passed}/{total} schemes pass (2 read ports)",
            passed == total,
            paper_value=float(total),
            measured_value=float(passed),
        )
    ]
    return rows, sweep


@dataclass
class Scorecard:
    """The full scorecard: rows plus the unified JSON report."""

    rows: list[ExperimentRow]
    report: Report

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.rows)


def run_scorecard(
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable | None = None,
    chunk_size: int | None = None,
) -> Scorecard:
    """Run every experiment through :mod:`repro.exec`.

    ``workers`` fans the Table III sweep and the validation grid out over
    a warm-forked process pool; ``cache`` makes warm re-runs skip every
    sweep point whose inputs did not change; ``chunk_size`` overrides the
    automatic dispatch batch sizing.
    """
    from .dse import explore

    result = explore(
        workers=workers, cache=cache, progress=progress, chunk_size=chunk_size
    )
    rows: list[ExperimentRow] = []
    rows += _table1_rows()
    rows += _table4_rows()
    rows += _bandwidth_rows(result)
    rows += _utilization_rows(result)
    rows += _stream_rows()
    val_rows, val_sweep = _validation_rows(
        workers=workers, cache=cache, chunk_size=chunk_size
    )
    rows += val_rows
    report = scorecard_report(rows)
    if result.sweep is not None:
        report.add_sweep_meta(result.sweep)
    report.add_sweep_meta(val_sweep)
    return Scorecard(rows=rows, report=report)


def run_all(
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable | None = None,
    chunk_size: int | None = None,
) -> list[ExperimentRow]:
    """Run every experiment and return the scorecard rows."""
    return run_scorecard(
        workers=workers, cache=cache, progress=progress, chunk_size=chunk_size
    ).rows


def scorecard_report(rows: list[ExperimentRow]) -> Report:
    """The rows in the unified ``repro.exec.report`` JSON schema."""
    entries = [
        ReportEntry(
            experiment=row.experiment,
            quantity=row.quantity,
            measured=row.measured,
            paper=row.paper,
            rel_err=rel_error(row.measured_value, row.paper_value),
            ok=row.ok,
            metrics={
                k: v
                for k, v in (
                    ("paper_value", row.paper_value),
                    ("measured_value", row.measured_value),
                )
                if v is not None
            },
        )
        for row in rows
    ]
    return Report(
        title="MAX-POLYMEM REPRODUCTION SCORECARD (paper vs this repository)",
        entries=entries,
    )


def render_report(rows: list[ExperimentRow]) -> str:
    """The printable scorecard (a renderer over the JSON schema)."""
    return scorecard_report(rows).render()
