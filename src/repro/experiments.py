"""One-shot reproduction report: every paper number vs this repository.

``python -m repro experiments`` regenerates the quantitative core of
EXPERIMENTS.md at runtime — Table I through Fig. 10 — and prints a
paper-vs-measured scorecard with pass/fail marks.  The benches under
``benchmarks/`` assert the same claims; this module is the human-readable
single entry point.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

__all__ = ["ExperimentRow", "run_all", "render_report"]


@dataclass(frozen=True)
class ExperimentRow:
    """One scorecard line."""

    experiment: str
    quantity: str
    paper: str
    measured: str
    ok: bool


def _table1_rows() -> list[ExperimentRow]:
    from .core.conflict import ConflictAnalyzer
    from .core.patterns import PatternKind
    from .core.schemes import Scheme

    expected = {
        Scheme.ReO: {PatternKind.RECTANGLE},
        Scheme.ReRo: {
            PatternKind.RECTANGLE,
            PatternKind.ROW,
            PatternKind.MAIN_DIAGONAL,
            PatternKind.ANTI_DIAGONAL,
        },
        Scheme.ReCo: {
            PatternKind.RECTANGLE,
            PatternKind.COLUMN,
            PatternKind.MAIN_DIAGONAL,
            PatternKind.ANTI_DIAGONAL,
        },
        Scheme.RoCo: {
            PatternKind.ROW,
            PatternKind.COLUMN,
            PatternKind.RECTANGLE,
        },
        Scheme.ReTr: {
            PatternKind.RECTANGLE,
            PatternKind.TRANSPOSED_RECTANGLE,
        },
    }
    table = ConflictAnalyzer(2, 4).table()
    rows = []
    for scheme, patterns in expected.items():
        got = {k for k, d in table[scheme].items() if d.label != "none"}
        ok = patterns <= got
        rows.append(
            ExperimentRow(
                "Table I",
                f"{scheme.value} patterns",
                ", ".join(sorted(p.value for p in patterns)),
                ", ".join(sorted(p.value for p in got)),
                ok,
            )
        )
    return rows


def _table4_rows() -> list[ExperimentRow]:
    from .hw.synthesis import default_model

    stats = default_model().freq_fit_stats
    return [
        ExperimentRow(
            "Table IV",
            "frequency model fit (90 cells)",
            "published MHz table",
            f"R^2={stats['r2']:.3f}, mean |err|={stats['mean_abs_pct_err']:.1f}%",
            stats["r2"] > 0.8,
        )
    ]


def _bandwidth_rows() -> list[ExperimentRow]:
    from .dse import explore

    result = explore()
    best_w = result.best(lambda p: p.bandwidth.write_gbps)
    best_r = result.best(lambda p: p.bandwidth.read_gbps)
    return [
        ExperimentRow(
            "Fig. 4",
            "peak write bandwidth",
            ">22 GB/s @ 512KB/16L ReO",
            f"{result.peak_write_gbps:.1f} GB/s @ {best_w.config.label()}",
            result.peak_write_gbps > 22 and best_w.capacity_kb == 512,
        ),
        ExperimentRow(
            "Fig. 5",
            "peak aggregated read bandwidth",
            "~32 GB/s @ 512KB/8L/4P ReTr",
            f"{result.peak_read_gbps:.1f} GB/s @ {best_r.config.label()}",
            result.peak_read_gbps > 32
            and best_r.config.read_ports == 4
            and best_r.config.scheme.value == "ReTr",
        ),
    ]


def _utilization_rows() -> list[ExperimentRow]:
    from .dse import explore
    from .hw.calibration import BRAM_POINTS, LOGIC_POINTS

    result = explore()
    rows = []
    logic = [result.lookup(p.scheme, p.capacity_kb, p.lanes, p.read_ports)
             for p in LOGIC_POINTS]
    worst_logic = max(
        abs(pt.logic_pct - ref.percent)
        for pt, ref in zip(logic, LOGIC_POINTS)
    )
    rows.append(
        ExperimentRow(
            "Fig. 6",
            "logic % on the 5 published points",
            "10.58 / 10.78 / 13.05 / 22.34 / 23.73",
            f"max |err| = {worst_logic:.2f} pp",
            worst_logic < 0.5,
        )
    )
    luts = [p.lut_pct for p in result.points]
    rows.append(
        ExperimentRow(
            "Fig. 7",
            "LUT % range over the grid",
            "7% .. 28%",
            f"{min(luts):.1f}% .. {max(luts):.1f}%",
            min(luts) > 6 and max(luts) < 28,
        )
    )
    brams = [result.lookup(p.scheme, p.capacity_kb, p.lanes, p.read_ports)
             for p in BRAM_POINTS]
    worst_bram = max(
        abs(pt.bram_pct - ref.percent)
        for pt, ref in zip(brams, BRAM_POINTS)
    )
    rows.append(
        ExperimentRow(
            "Fig. 8",
            "BRAM % on the 4 published points",
            "16.07 / 19.31 / 29.04 / ~97",
            f"max |err| = {worst_bram:.2f} pp",
            worst_bram < 3.5,
        )
    )
    return rows


def _stream_rows() -> list[ExperimentRow]:
    from .hw.calibration import STREAM_COPY
    from .stream_bench import COPY, StreamHarness

    harness = StreamHarness()
    full = harness.measure_analytic(COPY, harness.max_vectors, runs=1000)
    return [
        ExperimentRow(
            "Fig. 10",
            "theoretical Copy peak",
            f"{STREAM_COPY.peak_mbps:.0f} MB/s",
            f"{full.peak_mbps:.0f} MB/s",
            abs(full.peak_mbps - STREAM_COPY.peak_mbps) < 1,
        ),
        ExperimentRow(
            "Fig. 10",
            "max measured Copy bandwidth",
            f"{STREAM_COPY.measured_mbps:.0f} MB/s (99.62%)",
            f"{full.mbps:.0f} MB/s ({full.efficiency * 100:.2f}%)",
            full.efficiency > 0.99
            and abs(full.mbps - STREAM_COPY.measured_mbps)
            / STREAM_COPY.measured_mbps
            < 0.01,
        ),
    ]


def _validation_rows() -> list[ExperimentRow]:
    from .core.config import KB, PolyMemConfig
    from .core.schemes import Scheme
    from .maxpolymem import build_design, validate_design

    passed = 0
    total = 0
    for scheme in Scheme:
        cfg = PolyMemConfig(16 * KB, p=2, q=4, scheme=scheme, read_ports=2)
        report = validate_design(build_design(cfg, clock_source="model"), max_rows=8)
        total += 1
        passed += report.passed
    return [
        ExperimentRow(
            "§IV-A",
            "unique-value validation cycle",
            "every design validates",
            f"{passed}/{total} schemes pass (2 read ports)",
            passed == total,
        )
    ]


def run_all() -> list[ExperimentRow]:
    """Run every experiment and return the scorecard."""
    rows: list[ExperimentRow] = []
    rows += _table1_rows()
    rows += _table4_rows()
    rows += _bandwidth_rows()
    rows += _utilization_rows()
    rows += _stream_rows()
    rows += _validation_rows()
    return rows


def render_report(rows: list[ExperimentRow]) -> str:
    """The printable scorecard."""
    out = io.StringIO()
    out.write("MAX-POLYMEM REPRODUCTION SCORECARD (paper vs this repository)\n")
    out.write("=" * 78 + "\n")
    current = None
    for row in rows:
        if row.experiment != current:
            current = row.experiment
            out.write(f"\n{current}\n" + "-" * len(current) + "\n")
        mark = "PASS" if row.ok else "FAIL"
        out.write(f"  [{mark}] {row.quantity}\n")
        out.write(f"         paper:    {row.paper}\n")
        out.write(f"         measured: {row.measured}\n")
    n_ok = sum(r.ok for r in rows)
    out.write(f"\n{n_ok}/{len(rows)} checks passed\n")
    return out.getvalue()
