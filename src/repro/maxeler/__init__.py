"""Maxeler-like dataflow substrate: kernels, streams, manager, simulator.

A cycle-accurate stand-in for the MaxJ platform the paper targets (see
DESIGN.md).  Designs are built from :class:`Kernel` nodes connected by
:class:`Stream` edges under a :class:`Manager`, loaded onto a :class:`DFE`,
and driven by a :class:`Host` through blocking calls that model PCIe
overheads.
"""

from .batch import BatchOp, BatchPlan, PushClaim, UNSET
from .conditions import Predicate, RunCondition, StreamFill
from .dfe import DFE, VectisBoard
from .host import Host, StageTiming
from .lmem import LMem
from .kernel import (
    BinOpKernel,
    DelayKernel,
    DemuxKernel,
    Kernel,
    MapKernel,
    MuxKernel,
    SinkKernel,
    SourceKernel,
)
from .manager import DesignResources, Manager
from .pcie import VECTIS_PCIE, PcieLink
from .simulator import ENGINES, KernelStats, SimulationResult, Simulator
from .stream import Stream
from .trace import CycleEvent, TraceRecorder

__all__ = [
    "BatchOp",
    "BatchPlan",
    "BinOpKernel",
    "DFE",
    "ENGINES",
    "KernelStats",
    "Predicate",
    "PushClaim",
    "RunCondition",
    "StreamFill",
    "UNSET",
    "DelayKernel",
    "DemuxKernel",
    "DesignResources",
    "Host",
    "Kernel",
    "LMem",
    "Manager",
    "MapKernel",
    "MuxKernel",
    "PcieLink",
    "SimulationResult",
    "Simulator",
    "SinkKernel",
    "SourceKernel",
    "StageTiming",
    "Stream",
    "TraceRecorder",
    "CycleEvent",
    "VECTIS_PCIE",
    "VectisBoard",
]
