"""The custom manager: connects kernels into a design (paper §III-C).

The paper builds MAX-PolyMem twice — a *modular* multi-kernel design
(easier to test, ~2x resource usage due to inter-kernel stream
infrastructure) and a *fused* single-kernel design.  :class:`Manager`
models both: the composition style only changes the resource estimate, not
the behaviour, reproducing the paper's modularity-vs-performance trade-off
(`benchmarks/bench_ablation_modular_vs_fused.py`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.exceptions import SimulationError
from .kernel import Kernel
from .stream import Stream

__all__ = ["Manager", "DesignResources"]

#: LUT cost of one inter-kernel stream endpoint pair (FIFO + handshake),
#: the "additional inter-kernel communication infrastructure" of §III-C
INTERKERNEL_STREAM_LUTS = 420


@dataclass(frozen=True)
class DesignResources:
    """Resource summary of a composed design."""

    kernel_luts: int
    interconnect_luts: int
    num_kernels: int
    num_streams: int

    @property
    def total_luts(self) -> int:
        return self.kernel_luts + self.interconnect_luts


class Manager:
    """Builds and owns a dataflow design: kernels + streams + host I/O.

    Parameters
    ----------
    name:
        Design name.
    style:
        ``"modular"`` — each kernel is a separate MaxJ kernel with stream
        interconnect between them (the paper's multi-kernel design);
        ``"fused"`` — kernels share one context, inter-kernel streams are
        plain wires (the paper's single-kernel design).
    """

    def __init__(self, name: str, style: str = "modular"):
        if style not in ("modular", "fused"):
            raise SimulationError(f"unknown design style {style!r}")
        self.name = name
        self.style = style
        self.kernels: dict[str, Kernel] = {}
        self.streams: dict[str, Stream] = {}
        self._host_inputs: dict[str, Stream] = {}
        self._host_outputs: dict[str, Stream] = {}
        self._frozen = False

    # -- construction -----------------------------------------------------
    def add_kernel(self, kernel: Kernel) -> Kernel:
        """Register *kernel* with the design."""
        self._check_mutable()
        if kernel.name in self.kernels:
            raise SimulationError(f"duplicate kernel name {kernel.name!r}")
        self.kernels[kernel.name] = kernel
        return kernel

    def connect(
        self,
        src: Kernel,
        src_port: str,
        dst: Kernel,
        dst_port: str,
        capacity: int = 16,
    ) -> Stream:
        """Create a stream from *src.src_port* to *dst.dst_port*."""
        self._check_mutable()
        self._check_registered(src)
        self._check_registered(dst)
        name = f"{src.name}.{src_port}->{dst.name}.{dst_port}"
        stream = Stream(name, capacity)
        src.bind_output(src_port, stream)
        dst.bind_input(dst_port, stream)
        self.streams[name] = stream
        return stream

    def host_to_kernel(self, name: str, dst: Kernel, dst_port: str) -> Stream:
        """An unbounded stream the host writes and *dst* reads (PCIe in)."""
        self._check_mutable()
        self._check_registered(dst)
        stream = Stream(f"host->{name}", capacity=None)
        dst.bind_input(dst_port, stream)
        self.streams[stream.name] = stream
        self._host_inputs[name] = stream
        return stream

    def kernel_to_host(self, name: str, src: Kernel, src_port: str) -> Stream:
        """An unbounded stream *src* writes and the host drains (PCIe out)."""
        self._check_mutable()
        self._check_registered(src)
        stream = Stream(f"{name}->host", capacity=None)
        src.bind_output(src_port, stream)
        self.streams[stream.name] = stream
        self._host_outputs[name] = stream
        return stream

    def host_input(self, name: str) -> Stream:
        return self._host_inputs[name]

    def host_output(self, name: str) -> Stream:
        return self._host_outputs[name]

    def freeze(self) -> None:
        """Finish construction ("generate the bitstream")."""
        self._frozen = True

    def _check_mutable(self) -> None:
        if self._frozen:
            raise SimulationError(f"design {self.name!r} is frozen")

    def _check_registered(self, kernel: Kernel) -> None:
        if self.kernels.get(kernel.name) is not kernel:
            raise SimulationError(
                f"kernel {kernel.name!r} is not part of design {self.name!r}"
            )

    # -- resources -----------------------------------------------------------
    def resources(self, kernel_luts: dict[str, int] | None = None) -> DesignResources:
        """Resource estimate of the composed design.

        *kernel_luts* maps kernel name to its intrinsic LUT cost (defaults
        to 0 for generic glue kernels).  In the ``modular`` style every
        kernel-to-kernel stream adds FIFO/handshake infrastructure; fused
        designs pay nothing for internal wires — the §III-C observation
        that the modular version consumes about twice the resources.
        """
        kernel_luts = kernel_luts or {}
        kluts = sum(kernel_luts.get(n, 0) for n in self.kernels)
        internal = [
            s
            for n, s in self.streams.items()
            if "host" not in n.split(".")[0] and not n.endswith("->host")
            and not n.startswith("host->")
        ]
        if self.style == "modular":
            interconnect = INTERKERNEL_STREAM_LUTS * len(internal)
        else:
            interconnect = 0
        return DesignResources(
            kernel_luts=kluts,
            interconnect_luts=interconnect,
            num_kernels=len(self.kernels),
            num_streams=len(self.streams),
        )
