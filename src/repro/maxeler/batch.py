"""The batched tick engine's planning contract.

A kernel that can fast-forward publishes a :class:`BatchPlan` describing a
*uniform phase*: a window of cycles in which its externally observable
behaviour is one element per port per cycle, decomposed into
:class:`BatchOp` sub-activities.  The simulator collects plans from every
kernel (registration order), validates that a chunk of ``n`` cycles is
safe against stream occupancy/headroom, orders the sub-activities along
the dataflow dependencies, and executes each as one vectorized call.

Why sub-activities instead of whole-kernel ``tick_many``?  Feedback loops.
In Fig. 9's STREAM design the controller consumes, mid-chunk, data the
PolyMem kernel produces mid-chunk — and vice versa.  No whole-kernel
order can satisfy both, but the kernels' *sub*-machines (command issue,
pipeline retire, write drain, ...) form an acyclic graph, because the
only cycle-carrying dependency (read data feeding writes) is broken by
the pipeline latency slack each plan proves it has.

The correctness argument lives in DESIGN.md ("Batched tick engine"); the
short form: a chunk is executed only when every plan guarantees exact
one-element-per-cycle progress for all ``n`` cycles, so per-cycle
interleaving is immaterial — FIFO order fixes which values meet which.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["UNSET", "PushClaim", "BatchOp", "BatchPlan", "IDLE_PLAN"]


class _Unset:
    """Sentinel: a claim with no statically-known uniform value."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNSET"


UNSET = _Unset()


@dataclass
class PushClaim:
    """What a planned push promises about the elements it will produce.

    ``value`` is the uniform element value when it is statically known at
    plan time (e.g. a controller pushing the same mux select every cycle) —
    downstream kernels use it to plan data-dependent routing.  ``anchors``
    lazily materializes the access anchors behind a command stream
    (``anchors(n) -> (kind, i[n], j[n])``) so the PolyMem kernel can prove
    read/write slot disjointness for the chunk before committing to it.
    """

    value: Any = UNSET
    anchors: Callable[[int], tuple] | None = None


@dataclass(eq=False)
class BatchOp:
    """One uniform sub-activity: pops exactly one element per cycle from
    each port in ``pops`` and pushes exactly one per cycle to each port in
    ``pushes``, for the whole chunk.  ``run(n)`` executes the n cycles in
    one vectorized call."""

    name: str
    run: Callable[[int], None]
    pops: tuple[str, ...] = ()
    pushes: tuple[str, ...] = ()
    claims: dict[str, PushClaim] = field(default_factory=dict)

    # engine-filled during planning (kernel, registration index, intra-
    # kernel predecessor) — not part of the kernel-facing contract
    def __post_init__(self) -> None:
        self._kernel = None
        self._kidx = -1
        self._prev: "BatchOp | None" = None


@dataclass
class BatchPlan:
    """A kernel's declaration of its current uniform phase.

    ``cycles`` bounds how long the phase is guaranteed to last (``None`` =
    unbounded; the chunk is capped by other kernels/streams).  ``ops`` is
    empty for a provably idle kernel.  ``sensitive`` lists input ports
    whose *silence* the plan assumes — if any other plan pushes to one of
    them, the chunk is abandoned (scalar fallback).  ``active`` states
    whether a scalar :meth:`Kernel.tick` would report progress each cycle
    of the phase (defaults to ``bool(ops)``), keeping the utilization
    counters bit-identical.  ``validate(n)``, when given, gets the final
    chunk size for a last safety check (e.g. memory-slot disjointness).
    """

    cycles: int | None = None
    ops: list[BatchOp] = field(default_factory=list)
    sensitive: tuple[str, ...] = ()
    active: bool | None = None
    validate: Callable[[int], bool] | None = None

    @property
    def is_active(self) -> bool:
        return bool(self.ops) if self.active is None else self.active


#: shared plan for kernels that are provably idle with no sensitivity
IDLE_PLAN = BatchPlan()
