"""Dataflow kernels: the nodes of a MaxJ-like design.

A :class:`Kernel` owns named input and output :class:`~repro.maxeler.stream.
Stream` endpoints and advances one clock cycle per :meth:`Kernel.tick` call.
The contract per tick:

* pop at most one element from each input stream;
* push at most one element to each output stream;
* stall (do nothing) when required inputs are missing or outputs are full.

Two faster execution surfaces ride on top of the scalar tick:

* :meth:`Kernel.tick_many` — ``n`` consecutive ticks of *this* kernel in
  one call (default: a scalar loop; library kernels vectorize the uniform
  prefix).  Exactly equivalent to calling :meth:`tick` ``n`` times with no
  other kernel in between.
* :meth:`Kernel.batch_plan` — the batched tick engine's contract (see
  :mod:`repro.maxeler.batch`): a kernel in a *uniform phase* publishes the
  sub-activities the simulator may fast-forward chunk-wise, interleaved
  with every other kernel.  Returning ``None`` (the default) always falls
  back to exact scalar ticking.

A library of generic kernels used by the STREAM design is provided:
:class:`SourceKernel`, :class:`SinkKernel`, :class:`MapKernel`,
:class:`DelayKernel` (fixed-latency pipeline), :class:`MuxKernel`,
:class:`DemuxKernel`, and :class:`BinOpKernel`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable

from ..core.exceptions import SimulationError
from .batch import IDLE_PLAN, UNSET, BatchOp, BatchPlan, PushClaim
from .stream import Stream

__all__ = [
    "Kernel",
    "SourceKernel",
    "SinkKernel",
    "MapKernel",
    "BinOpKernel",
    "DelayKernel",
    "MuxKernel",
    "DemuxKernel",
]


class Kernel:
    """Base class for dataflow kernels."""

    def __init__(self, name: str):
        self.name = name
        self.inputs: dict[str, Stream] = {}
        self.outputs: dict[str, Stream] = {}
        #: ticks in which the kernel made progress (for utilization stats)
        self.active_cycles = 0
        self.total_cycles = 0
        #: cycles executed through the batched fast path
        self.batched_cycles = 0
        #: wall-clock attributed to this kernel (simulator-filled, profile)
        self.wall_ns = 0

    # -- wiring -----------------------------------------------------------
    def bind_input(self, port: str, stream: Stream) -> None:
        """Attach *stream* to input *port*."""
        if port in self.inputs:
            raise SimulationError(f"{self.name}: input {port!r} already bound")
        self.inputs[port] = stream

    def bind_output(self, port: str, stream: Stream) -> None:
        """Attach *stream* to output *port*."""
        if port in self.outputs:
            raise SimulationError(f"{self.name}: output {port!r} already bound")
        self.outputs[port] = stream

    def require(self, *ports: str) -> None:
        """Assert all *ports* are bound (called by the manager at build)."""
        for port in ports:
            if port not in self.inputs and port not in self.outputs:
                raise SimulationError(
                    f"{self.name}: port {port!r} is not connected"
                )

    # -- execution ---------------------------------------------------------
    def tick(self) -> bool:
        """Advance one cycle; return True when progress was made."""
        self.total_cycles += 1
        progressed = self._tick()
        if progressed:
            self.active_cycles += 1
        return progressed

    def _tick(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def tick_many(self, n: int) -> None:
        """Advance *n* consecutive cycles of this kernel.

        Semantically identical to ``for _ in range(n): self.tick()`` with
        no other kernel ticking in between.  Subclasses override to
        vectorize the uniform prefix of the window.
        """
        for _ in range(n):
            self.tick()

    def batch_plan(self, ctx: dict) -> BatchPlan | None:
        """Declare this kernel's current uniform phase for the batched
        engine, or ``None`` to force exact scalar ticking.  *ctx* maps
        streams already claimed by earlier-registered kernels' plans to
        their :class:`~repro.maxeler.batch.PushClaim`."""
        return None

    # plan helper: will elements flow on this input during a chunk?
    def _flows(self, stream: Stream, ctx: dict) -> bool:
        return stream in ctx or len(stream) > 0

    def _charge(self, n: int, active: bool) -> None:
        """Batched-path bookkeeping mirror of :meth:`tick`'s counters."""
        self.total_cycles += n
        if active:
            self.active_cycles += n
        self.batched_cycles += n

    @property
    def idle(self) -> bool:
        """True when the kernel has no internal work pending (used by the
        simulator's quiescence detection).  Kernels with internal state
        override this."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class SourceKernel(Kernel):
    """Feeds a fixed sequence into its ``out`` stream, one element/cycle."""

    def __init__(self, name: str, values: Iterable[Any]):
        super().__init__(name)
        self._pending = deque(values)

    def _tick(self) -> bool:
        out = self.outputs["out"]
        if self._pending and out.can_push():
            out.push(self._pending.popleft())
            return True
        return False

    def _emit(self, n: int) -> None:
        out = self.outputs["out"]
        out.push_many([self._pending.popleft() for _ in range(n)])

    def tick_many(self, n: int) -> None:
        out = self.outputs["out"]
        room = len(self._pending)
        if out.capacity is not None:
            room = min(room, out.capacity - len(out))
        k = min(n, room)
        if k:
            self._emit(k)
            self._charge(k, active=True)
        if n - k:
            self._charge(n - k, active=False)

    def batch_plan(self, ctx: dict) -> BatchPlan | None:
        if not self._pending:
            return IDLE_PLAN
        if self.outputs["out"].full:
            # a consumer's pops would un-stall us mid-chunk
            return BatchPlan(sensitive=("out",))
        op = BatchOp("emit", self._emit, pushes=("out",))
        return BatchPlan(cycles=len(self._pending), ops=[op])

    @property
    def exhausted(self) -> bool:
        return not self._pending

    @property
    def idle(self) -> bool:
        return self.exhausted


class SinkKernel(Kernel):
    """Collects everything arriving on its ``in`` stream."""

    def __init__(self, name: str):
        super().__init__(name)
        self.collected: list[Any] = []

    def _tick(self) -> bool:
        inp = self.inputs["in"]
        if inp.can_pop():
            self.collected.append(inp.pop())
            return True
        return False

    def _absorb(self, n: int) -> None:
        self.collected.extend(self.inputs["in"].pop_many(n))

    def tick_many(self, n: int) -> None:
        k = min(n, len(self.inputs["in"]))
        if k:
            self._absorb(k)
            self._charge(k, active=True)
        if n - k:
            self._charge(n - k, active=False)

    def batch_plan(self, ctx: dict) -> BatchPlan | None:
        if not self._flows(self.inputs["in"], ctx):
            return BatchPlan(sensitive=("in",))
        return BatchPlan(ops=[BatchOp("absorb", self._absorb, pops=("in",))])


class MapKernel(Kernel):
    """Applies a pointwise function: ``out = fn(in)``, one element/cycle."""

    def __init__(self, name: str, fn: Callable[[Any], Any]):
        super().__init__(name)
        self.fn = fn

    def _tick(self) -> bool:
        inp, out = self.inputs["in"], self.outputs["out"]
        if inp.can_pop() and out.can_push():
            out.push(self.fn(inp.pop()))
            return True
        return False

    def _apply(self, n: int) -> None:
        fn = self.fn
        values = self.inputs["in"].pop_many(n)
        self.outputs["out"].push_many([fn(v) for v in values])

    def tick_many(self, n: int) -> None:
        inp, out = self.inputs["in"], self.outputs["out"]
        k = min(n, len(inp))
        if out.capacity is not None:
            k = min(k, out.capacity - len(out))
        if k:
            self._apply(k)
            self._charge(k, active=True)
        if n - k:
            self._charge(n - k, active=False)

    def batch_plan(self, ctx: dict) -> BatchPlan | None:
        if not self._flows(self.inputs["in"], ctx):
            return BatchPlan(sensitive=("in", "out"))
        if self.outputs["out"].full:
            return BatchPlan(sensitive=("in", "out"))
        op = BatchOp("apply", self._apply, pops=("in",), pushes=("out",))
        return BatchPlan(ops=[op])


class BinOpKernel(Kernel):
    """Combines two streams element-wise: ``out = fn(a, b)``."""

    def __init__(self, name: str, fn: Callable[[Any, Any], Any]):
        super().__init__(name)
        self.fn = fn

    def _tick(self) -> bool:
        a, b = self.inputs["a"], self.inputs["b"]
        out = self.outputs["out"]
        if a.can_pop() and b.can_pop() and out.can_push():
            out.push(self.fn(a.pop(), b.pop()))
            return True
        return False

    def _apply(self, n: int) -> None:
        fn = self.fn
        lhs = self.inputs["a"].pop_many(n)
        rhs = self.inputs["b"].pop_many(n)
        self.outputs["out"].push_many([fn(x, y) for x, y in zip(lhs, rhs)])

    def tick_many(self, n: int) -> None:
        out = self.outputs["out"]
        k = min(n, len(self.inputs["a"]), len(self.inputs["b"]))
        if out.capacity is not None:
            k = min(k, out.capacity - len(out))
        if k:
            self._apply(k)
            self._charge(k, active=True)
        if n - k:
            self._charge(n - k, active=False)

    def batch_plan(self, ctx: dict) -> BatchPlan | None:
        flowing = self._flows(self.inputs["a"], ctx) and self._flows(
            self.inputs["b"], ctx
        )
        if not flowing or self.outputs["out"].full:
            return BatchPlan(sensitive=("a", "b", "out"))
        op = BatchOp("apply", self._apply, pops=("a", "b"), pushes=("out",))
        return BatchPlan(ops=[op])


class DelayKernel(Kernel):
    """A fixed-latency pipeline: elements emerge *latency* cycles after
    entering (models MaxJ's stream offsets / BRAM read latency)."""

    def __init__(self, name: str, latency: int):
        super().__init__(name)
        if latency < 1:
            raise SimulationError(f"{name}: latency must be >= 1")
        self.latency = latency
        self._pipe: deque[tuple[int, Any]] = deque()
        self._now = 0
        self._stash: list[Any] = []

    def _tick(self) -> bool:
        inp, out = self.inputs["in"], self.outputs["out"]
        self._now += 1
        # an occupied pipeline advances every cycle — that is progress, or
        # the simulator would flag the latency wait as a deadlock
        progressed = bool(self._pipe)
        # retire the head element once it has aged `latency` cycles
        if self._pipe and self._pipe[0][0] + self.latency <= self._now:
            if out.can_push():
                out.push(self._pipe.popleft()[1])
        if inp.can_pop() and len(self._pipe) < self.latency:
            self._pipe.append((self._now, inp.pop()))
            progressed = True
        return progressed

    # -- batched sub-activities -------------------------------------------
    def _absorb(self, n: int) -> None:
        self._stash = self.inputs["in"].pop_many(n)

    def _emit_steady(self, n: int) -> None:
        # full pipe with consecutive stamps and an exactly-ripe head: the
        # combined (pipe + absorbed) sequence has consecutive stamps too,
        # so n cycles retire its first n elements and keep the last
        # `latency` with stamps reconstructed arithmetically.
        values = [v for _, v in self._pipe]
        values.extend(self._stash)
        self._stash = []
        self.outputs["out"].push_many(values[:n])
        first = self._now + 1 - self.latency
        self._now += n
        self._pipe = deque(
            (first + m, values[m]) for m in range(n, n + self.latency)
        )

    def _emit_drain(self, n: int) -> None:
        out = self.outputs["out"]
        out.push_many([self._pipe.popleft()[1] for _ in range(n)])
        self._now += n

    def _age(self, n: int) -> None:
        self._now += n

    def _ripe_prefix(self) -> int:
        """Length of the pipe prefix with consecutive stamps starting from
        an exactly-ripe head (each element retires one cycle after the
        previous)."""
        head_stamp = self._pipe[0][0]
        if head_stamp + self.latency != self._now + 1:
            return 0
        run = 0
        for stamp, _ in self._pipe:
            if stamp != head_stamp + run:
                break
            run += 1
        return run

    def batch_plan(self, ctx: dict) -> BatchPlan | None:
        inp, out = self.inputs["in"], self.outputs["out"]
        flowing = self._flows(inp, ctx)
        if not self._pipe:
            if flowing:
                return None  # ramp-up: scalar
            return BatchPlan(sensitive=("in",))
        if out.full:
            return None  # back-pressure stall: scalar keeps exact timing
        prefix = self._ripe_prefix()
        if flowing:
            if prefix == self.latency and len(self._pipe) == self.latency:
                ops = [
                    BatchOp("absorb", self._absorb, pops=("in",)),
                    BatchOp("emit", self._emit_steady, pushes=("out",)),
                ]
                return BatchPlan(ops=ops)
            return None  # filling / irregular stamps: scalar
        if prefix:
            op = BatchOp("emit", self._emit_drain, pushes=("out",))
            return BatchPlan(cycles=prefix, ops=[op], sensitive=("in",))
        # occupied but not yet ripe: pure aging still counts as progress
        wait = self._pipe[0][0] + self.latency - self._now - 1
        if wait < 1:
            return None
        op = BatchOp("age", self._age)
        return BatchPlan(cycles=wait, ops=[op], sensitive=("in",))

    @property
    def idle(self) -> bool:
        return not self._pipe


class MuxKernel(Kernel):
    """Selects one of N inputs per the ``select`` stream: Fig. 9's MUXes.

    Input ports are ``in0 .. in{N-1}`` plus ``select``; one select token
    routes one data element.
    """

    def __init__(self, name: str, n_inputs: int):
        super().__init__(name)
        self.n_inputs = n_inputs
        self._route_port: str | None = None

    def _tick(self) -> bool:
        sel_s = self.inputs["select"]
        out = self.outputs["out"]
        if not sel_s.can_pop() or not out.can_push():
            return False
        sel = sel_s.peek()
        if not 0 <= sel < self.n_inputs:
            raise SimulationError(f"{self.name}: select {sel} out of range")
        data = self.inputs[f"in{sel}"]
        if not data.can_pop():
            return False
        sel_s.pop()
        out.push(data.pop())
        return True

    def _route(self, n: int) -> None:
        self.inputs["select"].pop_many(n)
        values = self.inputs[self._route_port].pop_many(n)
        self.outputs["out"].push_many(values)

    def batch_plan(self, ctx: dict) -> BatchPlan | None:
        sel_s = self.inputs["select"]
        if not self._flows(sel_s, ctx):
            return BatchPlan(sensitive=("select",))
        resolved = _uniform_select(sel_s, ctx)
        if resolved is None:
            return None
        sel, bound = resolved
        if not 0 <= sel < self.n_inputs:
            return None
        port = f"in{sel}"
        data = self.inputs[port]
        if not self._flows(data, ctx):
            # selects merely queue while the routed input is silent
            return BatchPlan(sensitive=(port,))
        if self.outputs["out"].full:
            return None
        self._route_port = port
        claim = ctx.get(data) if not len(data) else None
        op = BatchOp(
            "route",
            self._route,
            pops=("select", port),
            pushes=("out",),
            claims={"out": claim or PushClaim()},
        )
        return BatchPlan(cycles=bound, ops=[op])


class DemuxKernel(Kernel):
    """Routes its input to one of N outputs per the ``select`` stream:
    Fig. 9's DEMUX.  Output ports are ``out0 .. out{N-1}``."""

    def __init__(self, name: str, n_outputs: int):
        super().__init__(name)
        self.n_outputs = n_outputs
        self._route_port: str | None = None

    def _tick(self) -> bool:
        sel_s, inp = self.inputs["select"], self.inputs["in"]
        if not sel_s.can_pop() or not inp.can_pop():
            return False
        sel = sel_s.peek()
        if not 0 <= sel < self.n_outputs:
            raise SimulationError(f"{self.name}: select {sel} out of range")
        out = self.outputs[f"out{sel}"]
        if not out.can_push():
            return False
        sel_s.pop()
        out.push(inp.pop())
        return True

    def _route(self, n: int) -> None:
        self.inputs["select"].pop_many(n)
        values = self.inputs["in"].pop_many(n)
        self.outputs[self._route_port].push_many(values)

    def batch_plan(self, ctx: dict) -> BatchPlan | None:
        sel_s, inp = self.inputs["select"], self.inputs["in"]
        if not self._flows(sel_s, ctx):
            return BatchPlan(sensitive=("select",))
        resolved = _uniform_select(sel_s, ctx)
        if resolved is None:
            return None
        sel, bound = resolved
        if not 0 <= sel < self.n_outputs:
            return None
        port = f"out{sel}"
        if not self._flows(inp, ctx):
            return BatchPlan(sensitive=("in",))
        if self.outputs[port].full:
            return None
        self._route_port = port
        claim = ctx.get(inp) if not len(inp) else None
        op = BatchOp(
            "route",
            self._route,
            pops=("select", "in"),
            pushes=(port,),
            claims={port: claim or PushClaim()},
        )
        return BatchPlan(cycles=bound, ops=[op])


def _uniform_select(sel_s: Stream, ctx: dict) -> tuple[Any, int | None] | None:
    """Resolve the single select value governing a chunk on *sel_s*.

    Returns ``(value, max_cycles)`` — ``max_cycles`` is ``None`` when a
    producer claims a known uniform value for the whole chunk, else the
    length of the queued prefix the plan may rely on — or ``None`` when no
    uniform value can be established.
    """
    claim = ctx.get(sel_s)
    queued = sel_s.peek_many()
    value = claim.value if claim is not None else UNSET
    bound: int | None = None
    if value is UNSET:
        if not queued:
            return None
        value = queued[0]
        # beyond the queued prefix the select values are unknown
        bound = len(queued)
    if any(q != value for q in queued):
        return None
    return value, bound
