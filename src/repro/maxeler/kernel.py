"""Dataflow kernels: the nodes of a MaxJ-like design.

A :class:`Kernel` owns named input and output :class:`~repro.maxeler.stream.
Stream` endpoints and advances one clock cycle per :meth:`Kernel.tick` call.
The contract per tick:

* pop at most one element from each input stream;
* push at most one element to each output stream;
* stall (do nothing) when required inputs are missing or outputs are full.

A library of generic kernels used by the STREAM design is provided:
:class:`SourceKernel`, :class:`SinkKernel`, :class:`MapKernel`,
:class:`DelayKernel` (fixed-latency pipeline), :class:`MuxKernel`,
:class:`DemuxKernel`, and :class:`BinOpKernel`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable

from ..core.exceptions import SimulationError
from .stream import Stream

__all__ = [
    "Kernel",
    "SourceKernel",
    "SinkKernel",
    "MapKernel",
    "BinOpKernel",
    "DelayKernel",
    "MuxKernel",
    "DemuxKernel",
]


class Kernel:
    """Base class for dataflow kernels."""

    def __init__(self, name: str):
        self.name = name
        self.inputs: dict[str, Stream] = {}
        self.outputs: dict[str, Stream] = {}
        #: ticks in which the kernel made progress (for utilization stats)
        self.active_cycles = 0
        self.total_cycles = 0

    # -- wiring -----------------------------------------------------------
    def bind_input(self, port: str, stream: Stream) -> None:
        """Attach *stream* to input *port*."""
        if port in self.inputs:
            raise SimulationError(f"{self.name}: input {port!r} already bound")
        self.inputs[port] = stream

    def bind_output(self, port: str, stream: Stream) -> None:
        """Attach *stream* to output *port*."""
        if port in self.outputs:
            raise SimulationError(f"{self.name}: output {port!r} already bound")
        self.outputs[port] = stream

    def require(self, *ports: str) -> None:
        """Assert all *ports* are bound (called by the manager at build)."""
        for port in ports:
            if port not in self.inputs and port not in self.outputs:
                raise SimulationError(
                    f"{self.name}: port {port!r} is not connected"
                )

    # -- execution ---------------------------------------------------------
    def tick(self) -> bool:
        """Advance one cycle; return True when progress was made."""
        self.total_cycles += 1
        progressed = self._tick()
        if progressed:
            self.active_cycles += 1
        return progressed

    def _tick(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def idle(self) -> bool:
        """True when the kernel has no internal work pending (used by the
        simulator's quiescence detection).  Kernels with internal state
        override this."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class SourceKernel(Kernel):
    """Feeds a fixed sequence into its ``out`` stream, one element/cycle."""

    def __init__(self, name: str, values: Iterable[Any]):
        super().__init__(name)
        self._pending = deque(values)

    def _tick(self) -> bool:
        out = self.outputs["out"]
        if self._pending and out.can_push():
            out.push(self._pending.popleft())
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return not self._pending

    @property
    def idle(self) -> bool:
        return self.exhausted


class SinkKernel(Kernel):
    """Collects everything arriving on its ``in`` stream."""

    def __init__(self, name: str):
        super().__init__(name)
        self.collected: list[Any] = []

    def _tick(self) -> bool:
        inp = self.inputs["in"]
        if inp.can_pop():
            self.collected.append(inp.pop())
            return True
        return False


class MapKernel(Kernel):
    """Applies a pointwise function: ``out = fn(in)``, one element/cycle."""

    def __init__(self, name: str, fn: Callable[[Any], Any]):
        super().__init__(name)
        self.fn = fn

    def _tick(self) -> bool:
        inp, out = self.inputs["in"], self.outputs["out"]
        if inp.can_pop() and out.can_push():
            out.push(self.fn(inp.pop()))
            return True
        return False


class BinOpKernel(Kernel):
    """Combines two streams element-wise: ``out = fn(a, b)``."""

    def __init__(self, name: str, fn: Callable[[Any, Any], Any]):
        super().__init__(name)
        self.fn = fn

    def _tick(self) -> bool:
        a, b = self.inputs["a"], self.inputs["b"]
        out = self.outputs["out"]
        if a.can_pop() and b.can_pop() and out.can_push():
            out.push(self.fn(a.pop(), b.pop()))
            return True
        return False


class DelayKernel(Kernel):
    """A fixed-latency pipeline: elements emerge *latency* cycles after
    entering (models MaxJ's stream offsets / BRAM read latency)."""

    def __init__(self, name: str, latency: int):
        super().__init__(name)
        if latency < 1:
            raise SimulationError(f"{name}: latency must be >= 1")
        self.latency = latency
        self._pipe: deque[tuple[int, Any]] = deque()
        self._now = 0

    def _tick(self) -> bool:
        inp, out = self.inputs["in"], self.outputs["out"]
        self._now += 1
        # an occupied pipeline advances every cycle — that is progress, or
        # the simulator would flag the latency wait as a deadlock
        progressed = bool(self._pipe)
        # retire the head element once it has aged `latency` cycles
        if self._pipe and self._pipe[0][0] + self.latency <= self._now:
            if out.can_push():
                out.push(self._pipe.popleft()[1])
        if inp.can_pop() and len(self._pipe) < self.latency:
            self._pipe.append((self._now, inp.pop()))
            progressed = True
        return progressed

    @property
    def idle(self) -> bool:
        return not self._pipe


class MuxKernel(Kernel):
    """Selects one of N inputs per the ``select`` stream: Fig. 9's MUXes.

    Input ports are ``in0 .. in{N-1}`` plus ``select``; one select token
    routes one data element.
    """

    def __init__(self, name: str, n_inputs: int):
        super().__init__(name)
        self.n_inputs = n_inputs

    def _tick(self) -> bool:
        sel_s = self.inputs["select"]
        out = self.outputs["out"]
        if not sel_s.can_pop() or not out.can_push():
            return False
        sel = sel_s.peek()
        if not 0 <= sel < self.n_inputs:
            raise SimulationError(f"{self.name}: select {sel} out of range")
        data = self.inputs[f"in{sel}"]
        if not data.can_pop():
            return False
        sel_s.pop()
        out.push(data.pop())
        return True


class DemuxKernel(Kernel):
    """Routes its input to one of N outputs per the ``select`` stream:
    Fig. 9's DEMUX.  Output ports are ``out0 .. out{N-1}``."""

    def __init__(self, name: str, n_outputs: int):
        super().__init__(name)
        self.n_outputs = n_outputs

    def _tick(self) -> bool:
        sel_s, inp = self.inputs["select"], self.inputs["in"]
        if not sel_s.can_pop() or not inp.can_pop():
            return False
        sel = sel_s.peek()
        if not 0 <= sel < self.n_outputs:
            raise SimulationError(f"{self.name}: select {sel} out of range")
        out = self.outputs[f"out{sel}"]
        if not out.can_push():
            return False
        sel_s.pop()
        out.push(inp.pop())
        return True
