"""The tick engine: cycle-accurate execution of a composed design.

Each simulated clock cycle ticks every kernel once, in registration order.
Because streams are registered FIFOs, intra-cycle evaluation order only
affects latency by at most one cycle per edge, matching the registered
semantics of real MaxJ designs.  The simulator tracks total cycles, detects
quiescence (no kernel progressed and none has pending internal work) and
deadlock (no progress while work is still pending).

Two engines share that contract:

``scalar``
    The reference path: one Python-level :meth:`Kernel.tick` per kernel
    per cycle.

``batched`` (default)
    Fast-forwards *uniform phases*: when every kernel publishes a
    :class:`~repro.maxeler.batch.BatchPlan` proving one-element-per-cycle
    behaviour, a chunk of ``n`` cycles runs as a handful of vectorized
    sub-activity calls.  The chunk size is bounded by every stream's
    headroom/occupancy, every plan's phase length, the remaining cycle
    budget and the ``until`` condition's flip horizon, so the observable
    state at every chunk boundary — stream contents, kernel state, cycle
    and utilization counters — is bit-identical to the scalar path.
    Anywhere a plan cannot be proven (ramp-up, stalls, drains, data-
    dependent routing), the engine falls back to scalar ticks, keeping
    quiescence/deadlock detection semantics unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..core.exceptions import SimulationError
from ..telemetry import context as _telemetry
from .batch import BatchOp, PushClaim
from .manager import Manager

__all__ = ["Simulator", "SimulationResult", "KernelStats", "ENGINES"]

ENGINES = ("scalar", "batched")

#: chunks below this size are not worth the planning overhead
MIN_CHUNK = 4


@dataclass
class KernelStats:
    """Per-kernel performance counters for one simulation run."""

    name: str
    active_cycles: int
    total_cycles: int
    batched_cycles: int  #: cycles executed through the vectorized path
    elements_in: int  #: elements popped from this kernel's input streams
    elements_out: int  #: elements pushed to this kernel's output streams
    wall_ns: int  #: host wall-clock attributed to this kernel

    @property
    def utilization(self) -> float:
        return self.active_cycles / self.total_cycles if self.total_cycles else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "active_cycles": self.active_cycles,
            "total_cycles": self.total_cycles,
            "batched_cycles": self.batched_cycles,
            "utilization": round(self.utilization, 6),
            "elements_in": self.elements_in,
            "elements_out": self.elements_out,
            "wall_ns": self.wall_ns,
        }


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    cycles: int
    quiesced: bool
    kernel_activity: dict[str, float] = field(default_factory=dict)
    kernel_stats: dict[str, KernelStats] = field(default_factory=dict)

    def wall_time_ns(self, clock_mhz: float) -> float:
        """Convert cycle count to nanoseconds at *clock_mhz*."""
        return self.cycles * 1e3 / clock_mhz


class Simulator:
    """Runs a frozen :class:`~repro.maxeler.manager.Manager` design.

    Parameters
    ----------
    engine:
        ``"batched"`` (default) or ``"scalar"``; per-run override via
        :meth:`run`.
    profile:
        When True, scalar ticks are individually wall-clock timed per
        kernel (adds overhead; chunked execution is always timed).
    """

    def __init__(
        self,
        manager: Manager,
        max_cycles: int = 10_000_000,
        engine: str = "batched",
        profile: bool = False,
    ):
        if engine not in ENGINES:
            raise SimulationError(f"unknown engine {engine!r} (use {ENGINES})")
        self.manager = manager
        self.max_cycles = max_cycles
        self.engine = engine
        self.profile = profile
        self.cycles = 0
        #: attached instrumentation (e.g. :class:`~repro.maxeler.trace.
        #: TraceRecorder`): objects with ``on_cycle(sim, progressed)`` /
        #: ``on_chunk(sim, n, plans)`` hooks, notified after the cycle
        #: counter moves — on both engines, so tracing works under
        #: ``engine="batched"`` too
        self.observers: list = []

    def _pending_work(self) -> bool:
        """True when any kernel has internal state or any internal stream
        holds data (host-side streams excluded: the host decides when to
        drain them)."""
        for kernel in self.manager.kernels.values():
            if not kernel.idle:
                return True
        for name, stream in self.manager.streams.items():
            if name.startswith("host->") or name.endswith("->host"):
                continue
            if not stream.empty:
                return True
        return False

    def run(
        self,
        until: Callable[[], bool] | None = None,
        max_cycles: int | None = None,
        engine: str | None = None,
    ) -> SimulationResult:
        """Tick until *until()* is satisfied, or quiescence when no
        predicate is given.

        *max_cycles* is an exact inclusive budget: a run needing exactly
        that many cycles completes; one needing more raises with exactly
        ``max_cycles`` cycles consumed (every tick — including idle probe
        cycles — is charged).

        Raises :class:`SimulationError` on deadlock (two consecutive idle
        cycles with work pending or a predicate unsatisfied) and on
        cycle-budget exhaustion.
        """
        tel = _telemetry.active()
        if tel is None or tel.tracer is None:
            return self._run(until, max_cycles, engine, tel)
        tracer = tel.tracer
        start = self.cycles
        tracer.begin("kernel.run", cat="sim", engine=engine or self.engine)
        try:
            result = self._run(until, max_cycles, engine, tel)
        except BaseException:
            tracer.end(cycles=self.cycles - start, aborted=True)
            raise
        tracer.end(cycles=self.cycles - start)
        return result

    def _run(self, until, max_cycles, engine, tel) -> SimulationResult:
        engine = engine if engine is not None else self.engine
        if engine not in ENGINES:
            raise SimulationError(f"unknown engine {engine!r} (use {ENGINES})")
        budget = max_cycles if max_cycles is not None else self.max_cycles
        kernels = list(self.manager.kernels.values())
        batching = engine == "batched"
        start = self.cycles
        idle_streak = 0
        # telemetry state, hoisted so the disabled-path loop cost is zero
        metrics = tel.metrics if tel is not None else None
        tracer = tel.tracer if tel is not None else None
        if metrics is not None:
            # eagerly create the core cycle counters so a snapshot always
            # reports them (a stall-free run still shows 0 stall cycles)
            metrics.counter("sim.stall_cycles")
            metrics.counter("sim.cycles.scalar")
            metrics.counter("sim.cycles.batched")
        seg_cycles = None  # cycle count when the open scalar-segment span began
        try:
            while True:
                if until is not None and until():
                    return self._result(quiesced=False)
                if batching and idle_streak == 0:
                    chunk = self._plan_chunk(
                        kernels, until, budget - (self.cycles - start)
                    )
                    if chunk is not None:
                        if tracer is not None and seg_cycles is not None:
                            tracer.end(cycles=self.cycles - seg_cycles)
                            seg_cycles = None
                        self._run_chunk(*chunk)
                        continue
                    if metrics is not None:
                        metrics.counter("sim.plan_rejects").inc()
                if self.cycles - start >= budget:
                    raise SimulationError(
                        f"simulation exceeded {budget} cycles without completing"
                    )
                if tracer is not None and seg_cycles is None:
                    tracer.begin("segment.scalar", cat="sim")
                    seg_cycles = self.cycles
                progressed = self._tick_all(kernels)
                self.cycles += 1
                if metrics is not None:
                    metrics.counter("sim.cycles.scalar").inc()
                    if not progressed:
                        metrics.counter("sim.stall_cycles").inc()
                if self.observers:
                    for obs in self.observers:
                        obs.on_cycle(self, progressed)
                if progressed:
                    idle_streak = 0
                    continue
                if until is None and not self._pending_work():
                    return self._result(quiesced=True)
                # one idle cycle can be legal (e.g. bubble); two in a row
                # with the run still unfinished is a deadlock
                idle_streak += 1
                if idle_streak >= 2:
                    raise SimulationError(
                        f"deadlock after {self.cycles} cycles in design "
                        f"{self.manager.name!r}"
                    )
        finally:
            if tracer is not None and seg_cycles is not None:
                tracer.end(cycles=self.cycles - seg_cycles)

    def _tick_all(self, kernels) -> bool:
        progressed = False
        if self.profile:
            clock = time.perf_counter_ns
            for kernel in kernels:
                t0 = clock()
                if kernel.tick():
                    progressed = True
                kernel.wall_ns += clock() - t0
        else:
            for kernel in kernels:
                if kernel.tick():
                    progressed = True
        return progressed

    # -- batched engine ----------------------------------------------------
    def _plan_chunk(self, kernels, until, budget_left: int):
        """Assemble a provably-safe chunk: collected plans, a dependency
        order over their sub-activities, and the chunk size.  Returns None
        whenever exact scalar ticking is required instead."""
        n = budget_left
        if until is not None:
            horizon = getattr(until, "min_cycles_to_flip", None)
            if horizon is None:
                return None  # opaque predicate: cannot bound overshoot
            n = min(n, horizon())
        if n < MIN_CHUNK:
            return None

        ctx: dict = {}
        plans: list[tuple] = []
        ops: list[BatchOp] = []
        producer: dict = {}
        consumer: dict = {}
        for kidx, kernel in enumerate(kernels):
            plan = kernel.batch_plan(ctx)
            if plan is None:
                return None
            plans.append((kernel, plan))
            if plan.cycles is not None:
                n = min(n, plan.cycles)
                if n < MIN_CHUNK:
                    return None
            prev = None
            for op in plan.ops:
                op._kernel = kernel
                op._kidx = kidx
                op._prev = prev
                prev = op
                ops.append(op)
                for port in op.pushes:
                    stream = kernel.outputs[port]
                    if stream in producer:
                        return None
                    producer[stream] = op
                    claim = op.claims.get(port)
                    ctx[stream] = claim if claim is not None else PushClaim()
                for port in op.pops:
                    stream = kernel.inputs[port]
                    if stream in consumer:
                        return None
                    consumer[stream] = op
        if not ops:
            return None

        # a sensitive port must see no in-chunk traffic from other plans
        for kernel, plan in plans:
            for port in plan.sensitive:
                stream = kernel.inputs.get(port)
                if stream is not None and stream in producer:
                    return None
                stream = kernel.outputs.get(port)
                if stream is not None and stream in consumer:
                    return None

        # stream feasibility: consumers without an in-chunk producer are
        # bounded by occupancy; a backward edge (producer registered after
        # its consumer) needs one queued element of slack; every in-chunk
        # push must fit the stream's free space, as sub-activities push a
        # whole chunk before the downstream activity pops it
        for stream, op in consumer.items():
            prod = producer.get(stream)
            if prod is None:
                n = min(n, len(stream))
            elif prod._kidx > op._kidx and len(stream) < 1:
                return None
        for stream in producer:
            if stream.capacity is not None:
                n = min(n, stream.capacity - len(stream))
        if n < MIN_CHUNK:
            return None

        order = _toposort(ops, producer, consumer)
        if order is None:
            return None
        for kernel, plan in plans:
            if plan.validate is not None and not plan.validate(n):
                return None
        return plans, order, n

    def _run_chunk(self, plans, order, n: int) -> None:
        tel = _telemetry.active()
        tracer = tel.tracer if tel is not None else None
        if tracer is not None:
            tracer.begin("segment.batched", cat="sim", cycles=n)
        clock = time.perf_counter_ns
        for op in order:
            t0 = clock()
            op.run(n)
            op._kernel.wall_ns += clock() - t0
        for kernel, plan in plans:
            kernel._charge(n, plan.is_active)
        self.cycles += n
        if tel is not None:
            m = tel.metrics
            m.counter("sim.chunks").inc()
            m.counter("sim.cycles.batched").inc(n)
            m.histogram("sim.chunk_cycles").observe(n)
            # stream occupancy sampled at chunk boundaries (never per push
            # — that is the hot path the batched engine exists to avoid)
            for name, stream in self.manager.streams.items():
                m.gauge(f"stream.depth.{name}").set(len(stream))
        if tracer is not None:
            tracer.end()
        if self.observers:
            for obs in self.observers:
                obs.on_chunk(self, n, plans)

    def stats(self) -> dict[str, KernelStats]:
        """Per-kernel performance counters accumulated so far."""
        return {
            k.name: KernelStats(
                name=k.name,
                active_cycles=k.active_cycles,
                total_cycles=k.total_cycles,
                batched_cycles=k.batched_cycles,
                elements_in=sum(s.total_popped for s in k.inputs.values()),
                elements_out=sum(s.total_pushed for s in k.outputs.values()),
                wall_ns=k.wall_ns,
            )
            for k in self.manager.kernels.values()
        }

    def _result(self, quiesced: bool) -> SimulationResult:
        activity = {
            k.name: k.active_cycles / k.total_cycles if k.total_cycles else 0.0
            for k in self.manager.kernels.values()
        }
        return SimulationResult(
            cycles=self.cycles,
            quiesced=quiesced,
            kernel_activity=activity,
            kernel_stats=self.stats(),
        )


def _toposort(ops, producer, consumer):
    """Order sub-activities so every in-chunk producer runs before its
    consumer (plus each plan's own listed order); None on a cycle."""
    deps: dict[BatchOp, set] = {op: set() for op in ops}
    for stream, op in consumer.items():
        prod = producer.get(stream)
        if prod is not None:
            deps[op].add(prod)
    for op in ops:
        if op._prev is not None:
            deps[op].add(op._prev)
    order = []
    ready = [op for op, d in deps.items() if not d]
    done: set = set()
    while ready:
        op = ready.pop()
        order.append(op)
        done.add(op)
        for other, d in deps.items():
            if other not in done and op in d:
                d.discard(op)
                if not d:
                    ready.append(other)
    if len(order) != len(ops):
        return None  # dependency cycle: the phase is not linearizable
    return order
