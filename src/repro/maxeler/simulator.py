"""The tick engine: cycle-accurate execution of a composed design.

Each simulated clock cycle ticks every kernel once, in registration order.
Because streams are registered FIFOs, intra-cycle evaluation order only
affects latency by at most one cycle per edge, matching the registered
semantics of real MaxJ designs.  The simulator tracks total cycles, detects
quiescence (no kernel progressed and none has pending internal work) and
deadlock (no progress while work is still pending).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.exceptions import SimulationError
from .manager import Manager

__all__ = ["Simulator", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    cycles: int
    quiesced: bool
    kernel_activity: dict[str, float] = field(default_factory=dict)

    def wall_time_ns(self, clock_mhz: float) -> float:
        """Convert cycle count to nanoseconds at *clock_mhz*."""
        return self.cycles * 1e3 / clock_mhz


class Simulator:
    """Runs a frozen :class:`~repro.maxeler.manager.Manager` design."""

    def __init__(self, manager: Manager, max_cycles: int = 10_000_000):
        self.manager = manager
        self.max_cycles = max_cycles
        self.cycles = 0

    def _pending_work(self) -> bool:
        """True when any kernel has internal state or any internal stream
        holds data (host-side streams excluded: the host decides when to
        drain them)."""
        for kernel in self.manager.kernels.values():
            if not kernel.idle:
                return True
        for name, stream in self.manager.streams.items():
            if name.startswith("host->") or name.endswith("->host"):
                continue
            if not stream.empty:
                return True
        return False

    def run(
        self,
        until: Callable[[], bool] | None = None,
        max_cycles: int | None = None,
    ) -> SimulationResult:
        """Tick until *until()* is satisfied, or quiescence when no
        predicate is given.

        Raises :class:`SimulationError` on deadlock (work pending, no
        progress, predicate unsatisfied) and on cycle-budget exhaustion.
        """
        budget = max_cycles if max_cycles is not None else self.max_cycles
        kernels = list(self.manager.kernels.values())
        start = self.cycles
        while True:
            if until is not None and until():
                return self._result(quiesced=False)
            progressed = False
            for kernel in kernels:
                if kernel.tick():
                    progressed = True
            self.cycles += 1
            if self.cycles - start > budget:
                raise SimulationError(
                    f"simulation exceeded {budget} cycles without completing"
                )
            if not progressed:
                if until is None and not self._pending_work():
                    return self._result(quiesced=True)
                if self._pending_work() or until is not None:
                    # one idle cycle can be legal (e.g. bubble); two in a row
                    # with pending work is a deadlock
                    if self._no_progress_twice(kernels):
                        raise SimulationError(
                            f"deadlock after {self.cycles} cycles in design "
                            f"{self.manager.name!r}"
                        )

    def _no_progress_twice(self, kernels) -> bool:
        """Tick one more cycle; report True when still no progress."""
        progressed = False
        for kernel in kernels:
            if kernel.tick():
                progressed = True
        self.cycles += 1
        return not progressed

    def _result(self, quiesced: bool) -> SimulationResult:
        activity = {
            k.name: (k.active_cycles / k.total_cycles if k.total_cycles else 0.0)
            for k in self.manager.kernels.values()
        }
        return SimulationResult(
            cycles=self.cycles, quiesced=quiesced, kernel_activity=activity
        )
