"""LMem: the DFE board's on-board DRAM (paper Fig. 1).

The paper positions PolyMem as an on-chip cache *between* the board DRAM
(LMem) and the kernel: LMem is large but has high latency and bounded
bandwidth, while PolyMem delivers a full parallel word every cycle.
:class:`LMem` models exactly the properties that trade-off depends on —
capacity, per-burst latency, and sustained bandwidth — with a linear
byte-addressed store behind them.
"""

from __future__ import annotations

import numpy as np

from ..backend.vectis import VECTIS
from ..core.exceptions import AddressError, CapacityError

__all__ = ["LMem"]


class LMem:
    """On-board DRAM with burst-access timing.

    Parameters
    ----------
    capacity_bytes:
        Usable DRAM (Vectis: 24 GB; the model allocates lazily per page,
        so a realistic capacity costs nothing until touched).
    burst_latency_ns:
        Fixed latency per burst access (row activation + controller).
    bandwidth_gbps:
        Sustained streaming bandwidth in GB/s.
    """

    PAGE_WORDS = 1 << 16  # lazy allocation granularity (512 KB pages)

    def __init__(
        self,
        capacity_bytes: int = VECTIS.lmem_capacity_bytes,
        burst_latency_ns: float = VECTIS.lmem_burst_latency_ns,
        bandwidth_gbps: float = VECTIS.lmem_bandwidth_gbps,
    ):
        if capacity_bytes <= 0 or capacity_bytes % 8:
            raise CapacityError(
                f"LMem capacity must be a positive multiple of 8 B, got "
                f"{capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self.burst_latency_ns = burst_latency_ns
        self.bandwidth_gbps = bandwidth_gbps
        self._pages: dict[int, np.ndarray] = {}
        #: accumulated access time (the DFE adds this to its wall clock)
        self.busy_ns = 0.0
        self.bytes_read = 0
        self.bytes_written = 0

    @property
    def capacity_words(self) -> int:
        return self.capacity_bytes // 8

    def _check_range(self, word_addr: int, n_words: int) -> None:
        if word_addr < 0 or n_words < 0 or word_addr + n_words > self.capacity_words:
            raise AddressError(
                f"LMem access [{word_addr}, {word_addr + n_words}) exceeds "
                f"{self.capacity_words} words"
            )

    def _page(self, index: int) -> np.ndarray:
        page = self._pages.get(index)
        if page is None:
            page = np.zeros(self.PAGE_WORDS, dtype=np.uint64)
            self._pages[index] = page
        return page

    def _touch(self, word_addr: int, n_words: int, write: bool, data=None):
        """Move *n_words* starting at *word_addr*, page by page."""
        out = np.empty(n_words, dtype=np.uint64) if not write else None
        done = 0
        while done < n_words:
            addr = word_addr + done
            page_idx, offset = divmod(addr, self.PAGE_WORDS)
            chunk = min(n_words - done, self.PAGE_WORDS - offset)
            page = self._page(page_idx)
            if write:
                page[offset : offset + chunk] = data[done : done + chunk]
            else:
                out[done : done + chunk] = page[offset : offset + chunk]
            done += chunk
        return out

    def _charge(self, n_words: int) -> float:
        ns = self.burst_latency_ns + (n_words * 8) / self.bandwidth_gbps
        self.busy_ns += ns
        return ns

    def write(self, word_addr: int, data: np.ndarray) -> float:
        """Burst-write *data*; returns the access time in ns."""
        data = np.ascontiguousarray(data, dtype=np.uint64).ravel()
        self._check_range(word_addr, data.size)
        self._touch(word_addr, data.size, write=True, data=data)
        self.bytes_written += data.size * 8
        return self._charge(data.size)

    def read(self, word_addr: int, n_words: int) -> tuple[np.ndarray, float]:
        """Burst-read *n_words*; returns (data, access time in ns)."""
        self._check_range(word_addr, n_words)
        data = self._touch(word_addr, n_words, write=False)
        self.bytes_read += n_words * 8
        return data, self._charge(n_words)

    def write_matrix(self, word_addr: int, matrix: np.ndarray, row_stride: int) -> float:
        """Store a 2-D tile with a row stride (one burst per row)."""
        ns = 0.0
        for r, row in enumerate(np.asarray(matrix, dtype=np.uint64)):
            ns += self.write(word_addr + r * row_stride, row)
        return ns

    def read_matrix(
        self, word_addr: int, rows: int, cols: int, row_stride: int
    ) -> tuple[np.ndarray, float]:
        """Load a strided 2-D tile (one burst per row)."""
        out = np.empty((rows, cols), dtype=np.uint64)
        ns = 0.0
        for r in range(rows):
            out[r], dt = self.read(word_addr + r * row_stride, cols)
            ns += dt
        return out, ns
