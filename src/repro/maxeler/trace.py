"""Simulation tracing: a per-cycle event log for dataflow designs.

MaxJ's behavioural simulator lets developers watch streams cycle by cycle
(§III-C credits it with most of the debugging productivity).  This module
adds the equivalent to the tick simulator: a :class:`TraceRecorder`
observes a design and records, per cycle, which kernels progressed and
stream occupancies, renderable as a text waveform for debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .manager import Manager
from .simulator import Simulator

__all__ = ["CycleEvent", "TraceRecorder"]


@dataclass(frozen=True)
class CycleEvent:
    """Snapshot of one simulated cycle."""

    cycle: int
    active_kernels: tuple[str, ...]
    stream_depths: dict[str, int]


@dataclass
class TraceRecorder:
    """Wraps a :class:`Simulator` and records per-cycle activity.

    Use as a drop-in: ``rec = TraceRecorder(manager); rec.run(...)``.
    Memory-bounded: keeps the last ``max_events`` cycles.
    """

    manager: Manager
    max_events: int = 10_000
    watch_streams: tuple[str, ...] = ()
    events: list[CycleEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.simulator = Simulator(self.manager)
        self._prev_active: dict[str, int] = {}

    def _snapshot(self) -> None:
        active = tuple(
            k.name
            for k in self.manager.kernels.values()
            if k.total_cycles and k.active_cycles
            and self._was_active_this_cycle(k)
        )
        streams = {
            name: len(s)
            for name, s in self.manager.streams.items()
            if not self.watch_streams or name in self.watch_streams
        }
        self.events.append(
            CycleEvent(
                cycle=self.simulator.cycles,
                active_kernels=active,
                stream_depths=streams,
            )
        )
        if len(self.events) > self.max_events:
            del self.events[0 : len(self.events) - self.max_events]

    def _was_active_this_cycle(self, kernel) -> bool:
        # active count equals total count only while the kernel has never
        # stalled; track per-cycle deltas instead
        prev = self._prev_active.get(kernel.name, 0)
        now = kernel.active_cycles
        self._prev_active[kernel.name] = now
        return now > prev

    def attach(self) -> "TraceRecorder":
        """Register on ``simulator.observers`` — idempotent: a recorder
        already attached stays attached *once*, so repeated ``attach()``
        (or an ``attach()`` followed by :meth:`run`, which attaches too)
        never double-counts events.  Resets the per-kernel activity
        baseline to the current counters."""
        self._prev_active = {
            k.name: k.active_cycles for k in self.manager.kernels.values()
        }
        if self not in self.simulator.observers:
            self.simulator.observers.append(self)
        return self

    def detach(self) -> None:
        """Unregister from ``simulator.observers``; a no-op when not
        attached (idempotent, mirroring :meth:`attach`)."""
        if self in self.simulator.observers:
            self.simulator.observers.remove(self)

    def run(
        self,
        until=None,
        max_cycles: int | None = None,
        engine: str | None = None,
    ):
        """Run the wrapped simulator, snapshotting after every cycle.

        The recorder attaches itself as a simulator observer (idempotently
        — a manual :meth:`attach` beforehand is safe) and detaches after
        the run, so it traces both engines: scalar ticks snapshot one
        event per cycle; batched chunks expand into one synthesized event
        per fast-forwarded cycle (stream depths show the post-chunk state
        — interior depths are not materialized by the vectorized path).
        """
        self.attach()
        try:
            return self.simulator.run(
                until=until, max_cycles=max_cycles, engine=engine
            )
        finally:
            self.detach()

    # -- simulator observer hooks -------------------------------------------
    def on_cycle(self, sim, progressed: bool) -> None:
        self._snapshot()

    def on_chunk(self, sim, n: int, plans) -> None:
        # every kernel in a chunk was uniformly active (or uniformly idle)
        # for all n cycles, so one activity tuple covers the whole window
        active = tuple(
            kernel.name for kernel, plan in plans if plan.is_active
        )
        for kernel in self.manager.kernels.values():
            self._prev_active[kernel.name] = kernel.active_cycles
        streams = {
            name: len(s)
            for name, s in self.manager.streams.items()
            if not self.watch_streams or name in self.watch_streams
        }
        first = sim.cycles - n + 1
        self.events.extend(
            CycleEvent(
                cycle=first + t,
                active_kernels=active,
                stream_depths=streams,
            )
            for t in range(n)
        )
        if len(self.events) > self.max_events:
            del self.events[0 : len(self.events) - self.max_events]

    # -- rendering ----------------------------------------------------------
    def waveform(self, last: int = 40) -> str:
        """A text waveform of the last *last* cycles: one row per kernel,
        ``#`` for active cycles, ``.`` for stalls."""
        events = self.events[-last:]
        if not events:
            return "(no trace)"
        names = sorted(self.manager.kernels)
        width = max(len(n) for n in names)
        lines = [
            " " * width
            + " "
            + "".join(str(e.cycle % 10) for e in events)
        ]
        for name in names:
            row = "".join(
                "#" if name in e.active_kernels else "." for e in events
            )
            lines.append(f"{name:>{width}s} {row}")
        return "\n".join(lines)

    def utilization(self) -> dict[str, float]:
        """Per-kernel active fraction over the recorded window."""
        if not self.events:
            return {}
        out = {}
        for name in self.manager.kernels:
            active = sum(1 for e in self.events if name in e.active_kernels)
            out[name] = active / len(self.events)
        return out

    def peak_depths(self) -> dict[str, int]:
        """Maximum observed occupancy per watched stream (FIFO sizing)."""
        peaks: dict[str, int] = {}
        for e in self.events:
            for name, depth in e.stream_depths.items():
                peaks[name] = max(peaks.get(name, 0), depth)
        return peaks
