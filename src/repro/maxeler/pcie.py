"""PCI-Express host link model.

The paper measured a minimum host–FPGA signalling overhead of ~300 ns per
blocking call (§V), which dominates measurements of very short kernels —
the visible ramp on the left of Fig. 10.  :class:`PcieLink` charges that
fixed overhead per call plus a bandwidth-proportional payload time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backend.vectis import VECTIS

__all__ = ["PcieLink", "VECTIS_PCIE"]


@dataclass(frozen=True)
class PcieLink:
    """Latency/bandwidth model of the host link.

    Parameters
    ----------
    call_overhead_ns:
        Fixed per-blocking-call software+signalling overhead (paper: ~300 ns).
    bandwidth_gbps:
        Sustained payload bandwidth in GB/s (PCIe gen2 x8 ~ 2 GB/s effective).
    """

    call_overhead_ns: float = 300.0
    bandwidth_gbps: float = 2.0

    def transfer_ns(self, payload_bytes: int) -> float:
        """Wall time of one blocking call moving *payload_bytes*."""
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        return self.call_overhead_ns + payload_bytes / self.bandwidth_gbps

    def signal_ns(self) -> float:
        """Wall time of a payload-free control call (mode changes etc.)."""
        return self.call_overhead_ns


#: the Vectis board's link, with the paper's measured call overhead
#: (constants: :data:`repro.backend.vectis.VECTIS`)
VECTIS_PCIE = PcieLink(
    call_overhead_ns=VECTIS.pcie_call_overhead_ns,
    bandwidth_gbps=VECTIS.pcie_bandwidth_gbps,
)
