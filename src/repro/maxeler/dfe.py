"""DFE board model: FPGA + clock + host link (the Fig. 1 organization).

A :class:`DFE` couples a frozen design (manager), a clock frequency (from
the synthesis model or the paper's tables), and a PCIe link.  The host talks
to the DFE exclusively through blocking *actions* (see
:mod:`repro.maxeler.host`), each of which advances the simulated wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.exceptions import SimulationError
from .manager import Manager
from .pcie import VECTIS_PCIE, PcieLink
from .simulator import Simulator

__all__ = ["DFE", "VectisBoard"]


@dataclass
class VectisBoard:
    """Static description of the Maxeler Vectis board used in the paper."""

    name: str = "Vectis"
    fpga_name: str = "xc6vsx475t"
    lmem_bytes: int = 24 * 1024**3  # on-board DRAM (LMem)
    pcie: PcieLink = field(default_factory=lambda: VECTIS_PCIE)


class DFE:
    """A design loaded onto a board and clocked at a fixed frequency."""

    def __init__(
        self,
        manager: Manager,
        clock_mhz: float,
        board: VectisBoard | None = None,
        max_cycles: int = 50_000_000,
        engine: str = "batched",
        profile: bool = False,
    ):
        if clock_mhz <= 0:
            raise SimulationError(f"clock must be positive, got {clock_mhz}")
        self.board = board or VectisBoard()
        self.manager = manager
        self.clock_mhz = clock_mhz
        self.simulator = Simulator(
            manager, max_cycles=max_cycles, engine=engine, profile=profile
        )
        manager.freeze()

    @property
    def cycle_ns(self) -> float:
        """Duration of one clock cycle in nanoseconds."""
        return 1e3 / self.clock_mhz

    def cycles_to_ns(self, cycles: int) -> float:
        return cycles * self.cycle_ns

    def run(self, until=None, max_cycles=None, engine=None):
        """Run the on-chip simulation (see :class:`Simulator.run`)."""
        return self.simulator.run(
            until=until, max_cycles=max_cycles, engine=engine
        )
