"""Host-side orchestration: blocking calls and wall-clock accounting.

The paper's measurement methodology (§V) runs each stage through *blocking*
host calls, so stage boundaries are clean and each call pays the ~300 ns
PCIe signalling overhead.  :class:`Host` mirrors that: every interaction
with the DFE advances a simulated wall clock by PCIe overhead + payload
time + on-chip execution time, and a per-stage ledger records where the
time went.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..core.exceptions import SimulationError
from ..telemetry import context as _telemetry
from .dfe import DFE

__all__ = ["Host", "StageTiming"]


@dataclass
class StageTiming:
    """Wall-clock breakdown of one named stage."""

    name: str
    calls: int = 0
    pcie_ns: float = 0.0
    compute_ns: float = 0.0
    payload_bytes: int = 0

    @property
    def total_ns(self) -> float:
        return self.pcie_ns + self.compute_ns


class Host:
    """The CPU side of Fig. 1, driving a DFE through blocking calls."""

    def __init__(self, dfe: DFE):
        self.dfe = dfe
        self.clock_ns = 0.0
        self.stages: dict[str, StageTiming] = {}
        self._stage = self._get_stage("default")

    # -- stage bookkeeping ---------------------------------------------------
    def _get_stage(self, name: str) -> StageTiming:
        if name not in self.stages:
            self.stages[name] = StageTiming(name)
        return self.stages[name]

    def begin_stage(self, name: str) -> StageTiming:
        """Start attributing time to stage *name* (stages never overlap —
        the paper's blocking-call separation)."""
        self._stage = self._get_stage(name)
        return self._stage

    def stage(self, name: str) -> StageTiming:
        """The ledger entry for stage *name*."""
        if name not in self.stages:
            raise SimulationError(f"unknown stage {name!r}")
        return self.stages[name]

    def _charge_pcie(self, payload_bytes: int, calls: int = 1) -> None:
        link = self.dfe.board.pcie
        ns = calls * link.call_overhead_ns + payload_bytes / link.bandwidth_gbps
        t0 = self.clock_ns
        self.clock_ns += ns
        self._stage.calls += calls
        self._stage.pcie_ns += ns
        self._stage.payload_bytes += payload_bytes
        tel = _telemetry.active()
        if tel is not None:
            m = tel.metrics
            m.counter("pcie.calls").inc(calls)
            m.counter("pcie.payload_bytes").inc(payload_bytes)
            m.counter("pcie.overhead_ns").inc(calls * link.call_overhead_ns)
            m.counter("pcie.ns").inc(ns)
            if tel.tracer is not None:
                tel.tracer.complete_ns(
                    "pcie.transfer", t0, ns, cat="pcie",
                    payload_bytes=payload_bytes, calls=calls,
                )

    def _charge_compute(self, cycles: int) -> None:
        ns = self.dfe.cycles_to_ns(cycles)
        t0 = self.clock_ns
        self.clock_ns += ns
        self._stage.compute_ns += ns
        tel = _telemetry.active()
        if tel is not None and tel.tracer is not None:
            tel.tracer.complete_ns(
                "kernel.compute", t0, ns, cat="kernel", cycles=cycles
            )

    # -- telemetry ----------------------------------------------------------
    def _host_call(self, name: str, **args):
        """Span one blocking call on both tracks: real wall time via the
        tracer stack, simulated time (the ledger's clock_ns interval) as an
        explicit complete event.  A plain context manager when telemetry is
        off."""
        return _HostCallScope(self, name, args)

    # -- blocking calls -----------------------------------------------------
    @staticmethod
    def _element_bytes(value: Any) -> int:
        """Wire size of one stream element: array elements carry their real
        byte count (wide lane vectors), anything else is one 64-bit word."""
        nbytes = getattr(value, "nbytes", None)
        return int(nbytes) if nbytes is not None else 8

    def write_stream(self, name: str, values: Iterable[Any]) -> int:
        """Blocking host->DFE transfer into input stream *name*.

        Returns the element count.
        """
        with self._host_call("write_stream", stream=name):
            stream = self.dfe.manager.host_input(name)
            count = 0
            payload = 0
            for value in values:
                stream.push(value)
                payload += self._element_bytes(value)
                count += 1
            self._charge_pcie(payload_bytes=payload)
        return count

    def read_stream(self, name: str) -> list[Any]:
        """Blocking DFE->host drain of output stream *name*."""
        with self._host_call("read_stream", stream=name):
            stream = self.dfe.manager.host_output(name)
            values = stream.drain()
            self._charge_pcie(
                payload_bytes=sum(self._element_bytes(v) for v in values)
            )
        return values

    def signal(self) -> None:
        """A payload-free control call (mode/size scalars)."""
        with self._host_call("signal"):
            self._charge_pcie(payload_bytes=0)

    def run_kernel(self, until=None, max_cycles=None, engine=None):
        """Blocking kernel execution: runs the on-chip simulation and
        advances the wall clock by the consumed cycles plus one call
        overhead."""
        with self._host_call("run_kernel"):
            before = self.dfe.simulator.cycles
            result = self.dfe.run(until=until, max_cycles=max_cycles, engine=engine)
            self._charge_pcie(payload_bytes=0)
            self._charge_compute(result.cycles - before)
        return result

    def charge_external_compute(self, cycles: int) -> None:
        """Account for on-chip cycles computed analytically (the vectorized
        fast path) without ticking the simulator."""
        with self._host_call("external_compute"):
            self._charge_pcie(payload_bytes=0)
            self._charge_compute(cycles)


class _HostCallScope:
    """Wall-clock span plus simulated-time interval for one host call."""

    __slots__ = ("host", "name", "args", "tracer", "t0_sim")

    def __init__(self, host: Host, name: str, args: dict):
        self.host = host
        self.name = name
        self.args = args
        tel = _telemetry.active()
        self.tracer = tel.tracer if tel is not None else None
        self.t0_sim = 0.0

    def __enter__(self) -> "_HostCallScope":
        if self.tracer is not None:
            self.t0_sim = self.host.clock_ns
            self.tracer.begin(f"host.{self.name}", cat="host", **self.args)
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if self.tracer is None:
            return
        if exc_type is not None:
            self.tracer.end(aborted=True)
            return
        self.tracer.end()
        self.tracer.complete_ns(
            f"host.{self.name}",
            self.t0_sim,
            self.host.clock_ns - self.t0_sim,
            cat="host",
            **self.args,
        )
