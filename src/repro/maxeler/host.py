"""Host-side orchestration: blocking calls and wall-clock accounting.

The paper's measurement methodology (§V) runs each stage through *blocking*
host calls, so stage boundaries are clean and each call pays the ~300 ns
PCIe signalling overhead.  :class:`Host` mirrors that: every interaction
with the DFE advances a simulated wall clock by PCIe overhead + payload
time + on-chip execution time, and a per-stage ledger records where the
time went.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..core.exceptions import SimulationError
from .dfe import DFE

__all__ = ["Host", "StageTiming"]


@dataclass
class StageTiming:
    """Wall-clock breakdown of one named stage."""

    name: str
    calls: int = 0
    pcie_ns: float = 0.0
    compute_ns: float = 0.0
    payload_bytes: int = 0

    @property
    def total_ns(self) -> float:
        return self.pcie_ns + self.compute_ns


class Host:
    """The CPU side of Fig. 1, driving a DFE through blocking calls."""

    def __init__(self, dfe: DFE):
        self.dfe = dfe
        self.clock_ns = 0.0
        self.stages: dict[str, StageTiming] = {}
        self._stage = self._get_stage("default")

    # -- stage bookkeeping ---------------------------------------------------
    def _get_stage(self, name: str) -> StageTiming:
        if name not in self.stages:
            self.stages[name] = StageTiming(name)
        return self.stages[name]

    def begin_stage(self, name: str) -> StageTiming:
        """Start attributing time to stage *name* (stages never overlap —
        the paper's blocking-call separation)."""
        self._stage = self._get_stage(name)
        return self._stage

    def stage(self, name: str) -> StageTiming:
        """The ledger entry for stage *name*."""
        if name not in self.stages:
            raise SimulationError(f"unknown stage {name!r}")
        return self.stages[name]

    def _charge_pcie(self, payload_bytes: int, calls: int = 1) -> None:
        link = self.dfe.board.pcie
        ns = calls * link.call_overhead_ns + payload_bytes / link.bandwidth_gbps
        self.clock_ns += ns
        self._stage.calls += calls
        self._stage.pcie_ns += ns
        self._stage.payload_bytes += payload_bytes

    def _charge_compute(self, cycles: int) -> None:
        ns = self.dfe.cycles_to_ns(cycles)
        self.clock_ns += ns
        self._stage.compute_ns += ns

    # -- blocking calls -----------------------------------------------------
    @staticmethod
    def _element_bytes(value: Any) -> int:
        """Wire size of one stream element: array elements carry their real
        byte count (wide lane vectors), anything else is one 64-bit word."""
        nbytes = getattr(value, "nbytes", None)
        return int(nbytes) if nbytes is not None else 8

    def write_stream(self, name: str, values: Iterable[Any]) -> int:
        """Blocking host->DFE transfer into input stream *name*.

        Returns the element count.
        """
        stream = self.dfe.manager.host_input(name)
        count = 0
        payload = 0
        for value in values:
            stream.push(value)
            payload += self._element_bytes(value)
            count += 1
        self._charge_pcie(payload_bytes=payload)
        return count

    def read_stream(self, name: str) -> list[Any]:
        """Blocking DFE->host drain of output stream *name*."""
        stream = self.dfe.manager.host_output(name)
        values = stream.drain()
        self._charge_pcie(
            payload_bytes=sum(self._element_bytes(v) for v in values)
        )
        return values

    def signal(self) -> None:
        """A payload-free control call (mode/size scalars)."""
        self._charge_pcie(payload_bytes=0)

    def run_kernel(self, until=None, max_cycles=None, engine=None):
        """Blocking kernel execution: runs the on-chip simulation and
        advances the wall clock by the consumed cycles plus one call
        overhead."""
        before = self.dfe.simulator.cycles
        result = self.dfe.run(until=until, max_cycles=max_cycles, engine=engine)
        self._charge_pcie(payload_bytes=0)
        self._charge_compute(result.cycles - before)
        return result

    def charge_external_compute(self, cycles: int) -> None:
        """Account for on-chip cycles computed analytically (the vectorized
        fast path) without ticking the simulator."""
        self._charge_pcie(payload_bytes=0)
        self._charge_compute(cycles)
