"""Typed streams: the edges of a dataflow graph.

A :class:`Stream` is a bounded FIFO connecting exactly one producer kernel
to one consumer kernel (or the host).  Kernels interact with streams once
per tick: push at most one element, pop at most one element.  A full stream
exerts *back-pressure* — the producer must check :meth:`Stream.can_push`
and stall otherwise, exactly like a MaxJ stream with a full FIFO.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..core.exceptions import SimulationError

__all__ = ["Stream"]


class Stream:
    """A bounded single-producer single-consumer FIFO edge.

    Parameters
    ----------
    name:
        Diagnostic label (shows up in simulator error messages).
    capacity:
        Maximum queued elements; ``None`` = unbounded (host-side buffers).
    """

    def __init__(self, name: str, capacity: int | None = 16):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"stream {name!r}: capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._fifo: deque[Any] = deque()
        #: lifetime counters for utilization accounting
        self.total_pushed = 0
        self.total_popped = 0

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def empty(self) -> bool:
        return not self._fifo

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._fifo) >= self.capacity

    def can_push(self) -> bool:
        """Producer-side back-pressure check."""
        return not self.full

    def can_pop(self) -> bool:
        """Consumer-side data-availability check."""
        return bool(self._fifo)

    def push(self, value: Any) -> None:
        """Enqueue one element; raises on overflow (a kernel bug — hardware
        would drop data here)."""
        if self.full:
            raise SimulationError(
                f"stream {self.name!r} overflow (capacity {self.capacity})"
            )
        self._fifo.append(value)
        self.total_pushed += 1

    def pop(self) -> Any:
        """Dequeue one element; raises on underflow."""
        if not self._fifo:
            raise SimulationError(f"stream {self.name!r} underflow")
        self.total_popped += 1
        return self._fifo.popleft()

    def peek(self) -> Any:
        """Front element without consuming it."""
        if not self._fifo:
            raise SimulationError(f"stream {self.name!r} peek on empty")
        return self._fifo[0]

    def drain(self) -> list[Any]:
        """Pop everything (host-side collection)."""
        out = list(self._fifo)
        self.total_popped += len(self._fifo)
        self._fifo.clear()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if self.capacity is None else self.capacity
        return f"Stream({self.name!r}, {len(self._fifo)}/{cap})"
