"""Typed streams: the edges of a dataflow graph.

A :class:`Stream` is a bounded FIFO connecting exactly one producer kernel
to one consumer kernel (or the host).  Kernels interact with streams once
per tick: push at most one element, pop at most one element.  A full stream
exerts *back-pressure* — the producer must check :meth:`Stream.can_push`
and stall otherwise, exactly like a MaxJ stream with a full FIFO.

The storage is a NumPy ring buffer of object references, so the batched
tick engine (:mod:`repro.maxeler.simulator`) can move whole chunks of
elements per Python call through :meth:`push_many` / :meth:`pop_many`
while the scalar one-element API keeps its exact semantics.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.exceptions import SimulationError

__all__ = ["Stream"]

#: initial ring size for unbounded (host-side) streams
_INITIAL_RING = 16


class Stream:
    """A bounded single-producer single-consumer FIFO edge.

    Parameters
    ----------
    name:
        Diagnostic label (shows up in simulator error messages).
    capacity:
        Maximum queued elements; ``None`` = unbounded (host-side buffers).
    """

    def __init__(self, name: str, capacity: int | None = 16):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"stream {name!r}: capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._ring = np.empty(capacity or _INITIAL_RING, dtype=object)
        self._head = 0  # index of the oldest element
        self._size = 0
        #: lifetime counters for utilization accounting
        self.total_pushed = 0
        self.total_popped = 0

    def __len__(self) -> int:
        return self._size

    @property
    def empty(self) -> bool:
        return self._size == 0

    @property
    def full(self) -> bool:
        return self.capacity is not None and self._size >= self.capacity

    @property
    def headroom(self) -> int | None:
        """Free slots before back-pressure (``None`` = unbounded)."""
        if self.capacity is None:
            return None
        return self.capacity - self._size

    def can_push(self) -> bool:
        """Producer-side back-pressure check."""
        return not self.full

    def can_pop(self) -> bool:
        """Consumer-side data-availability check."""
        return self._size > 0

    # -- ring bookkeeping --------------------------------------------------
    def _grow(self, needed: int) -> None:
        """Resize an unbounded ring to hold at least *needed* elements."""
        new_cap = max(len(self._ring) * 2, needed, _INITIAL_RING)
        fresh = np.empty(new_cap, dtype=object)
        idx = (self._head + np.arange(self._size)) % len(self._ring)
        fresh[: self._size] = self._ring[idx]
        self._ring = fresh
        self._head = 0

    def _slots(self, start: int, count: int) -> np.ndarray:
        return (self._head + start + np.arange(count)) % len(self._ring)

    # -- scalar API --------------------------------------------------------
    def push(self, value: Any) -> None:
        """Enqueue one element; raises on overflow (a kernel bug — hardware
        would drop data here)."""
        if self.full:
            raise SimulationError(
                f"stream {self.name!r} overflow (capacity {self.capacity})"
            )
        if self._size >= len(self._ring):
            self._grow(self._size + 1)
        self._ring[(self._head + self._size) % len(self._ring)] = value
        self._size += 1
        self.total_pushed += 1

    def pop(self) -> Any:
        """Dequeue one element; raises on underflow."""
        if self._size == 0:
            raise SimulationError(f"stream {self.name!r} underflow")
        value = self._ring[self._head]
        self._ring[self._head] = None  # release the reference
        self._head = (self._head + 1) % len(self._ring)
        self._size -= 1
        self.total_popped += 1
        return value

    def peek(self) -> Any:
        """Front element without consuming it."""
        if self._size == 0:
            raise SimulationError(f"stream {self.name!r} peek on empty")
        return self._ring[self._head]

    # -- bulk API (the batched tick engine's transport) --------------------
    def push_many(self, values: Sequence[Any]) -> None:
        """Enqueue a chunk of elements in order (bulk :meth:`push`)."""
        count = len(values)
        if count == 0:
            return
        if self.capacity is not None and self._size + count > self.capacity:
            raise SimulationError(
                f"stream {self.name!r} overflow: {count} pushes into "
                f"{self.capacity - self._size} free slots"
            )
        if self._size + count > len(self._ring):
            self._grow(self._size + count)
        idx = self._slots(self._size, count)
        buf = np.empty(count, dtype=object)
        buf[:] = list(values)
        self._ring[idx] = buf
        self._size += count
        self.total_pushed += count

    def pop_many(self, count: int) -> list[Any]:
        """Dequeue a chunk of *count* elements (bulk :meth:`pop`)."""
        if count == 0:
            return []
        if count > self._size:
            raise SimulationError(
                f"stream {self.name!r} underflow: {count} pops from "
                f"{self._size} queued"
            )
        idx = self._slots(0, count)
        out = self._ring[idx].tolist()
        self._ring[idx] = None
        self._head = (self._head + count) % len(self._ring)
        self._size -= count
        self.total_popped += count
        return out

    def peek_many(self, count: int | None = None) -> list[Any]:
        """The first *count* queued elements (default: all), not consumed."""
        count = self._size if count is None else min(count, self._size)
        if count == 0:
            return []
        return self._ring[self._slots(0, count)].tolist()

    def drain(self) -> list[Any]:
        """Pop everything (host-side collection)."""
        return self.pop_many(self._size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if self.capacity is None else self.capacity
        return f"Stream({self.name!r}, {self._size}/{cap})"
