"""Typed ``until`` conditions for :meth:`Simulator.run`.

The simulator accepts any zero-argument callable as its stop predicate,
but an opaque lambda can flip *anywhere* inside a fast-forwarded chunk,
which would corrupt exact cycle accounting.  The batched engine therefore
only chunks when the predicate exposes :meth:`RunCondition.
min_cycles_to_flip` — a provable lower bound on the number of cycles
before the predicate can become true.  Opaque callables still work
everywhere; they simply run at scalar speed.

The bounds here lean on the one-element-per-cycle stream contract: a
stream's length grows by at most one per cycle, and a controller retires
at most one write per cycle.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["RunCondition", "StreamFill", "Predicate"]


class RunCondition:
    """A stop predicate with a chunking horizon.

    Subclasses implement ``__call__`` (the predicate) and
    :meth:`min_cycles_to_flip`.  The horizon must be a *lower bound*: the
    predicate may not become true in fewer cycles than reported, no matter
    what the design does.  Zero means "may already be true / unknown".
    """

    def __call__(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def min_cycles_to_flip(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError


class StreamFill(RunCondition):
    """True once *stream* holds at least *target* elements.

    Safe horizon: a stream gains at most one element per cycle, so the
    predicate cannot flip for another ``target - len(stream)`` cycles.
    """

    def __init__(self, stream, target: int):
        self.stream = stream
        self.target = target

    def __call__(self) -> bool:
        return len(self.stream) >= self.target

    def min_cycles_to_flip(self) -> int:
        return max(0, self.target - len(self.stream))


class Predicate(RunCondition):
    """Wrap an opaque callable with an explicitly supplied horizon
    callback (for callers that can bound their own predicate)."""

    def __init__(self, fn: Callable[[], bool], horizon: Callable[[], int]):
        self.fn = fn
        self.horizon = horizon

    def __call__(self) -> bool:
        return self.fn()

    def min_cycles_to_flip(self) -> int:
        return self.horizon()
