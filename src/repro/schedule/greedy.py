"""Greedy set-cover: the classical ln(n)-approximation baseline.

Used both as a fast scheduler in its own right and as the upper bound that
primes the exact branch-and-bound solver in :mod:`repro.schedule.ilp`.
"""

from __future__ import annotations

from ..core.exceptions import ScheduleError
from .cover import CoverProblem

__all__ = ["greedy_cover"]


def greedy_cover(problem: CoverProblem) -> list[int]:
    """Indices of the chosen candidates (largest marginal coverage first).

    Raises :class:`ScheduleError` when the instance is not coverable.
    """
    if not problem.coverable():
        raise ScheduleError(
            f"trace {problem.trace.name!r} is not coverable under "
            f"{problem.scheme} ({problem.p}x{problem.q})"
        )
    uncovered = problem.universe
    chosen: list[int] = []
    # candidates that can still contribute, re-filtered as coverage grows
    active = list(range(len(problem.masks)))
    while uncovered:
        best, best_gain = -1, 0
        still_active = []
        for k in active:
            gain = (problem.masks[k] & uncovered).bit_count()
            if gain:
                still_active.append(k)
                if gain > best_gain:
                    best, best_gain = k, gain
        active = still_active
        if best < 0:  # pragma: no cover - guarded by coverable()
            raise ScheduleError("greedy cover stalled")
        chosen.append(best)
        uncovered &= ~problem.masks[best]
    return chosen
