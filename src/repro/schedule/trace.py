"""Application memory-access traces (input to the §III-A customization flow).

An :class:`ApplicationTrace` is the set of 2-D cells a kernel must read per
iteration — the "application memory access pattern" the paper starts from
when customizing PolyMem.  Every workload factory here *lowers* to a
describe-only :class:`~repro.program.AccessProgram` first and derives its
cell set from the program (:func:`program_trace`), so the customization
flow and the execution engine consume the same IR: dense blocks (matrix
kernels), rows and columns (matmul), stencil neighbourhoods, diagonals,
and sparse random accesses.  :func:`kernel_trace` goes further and derives
a trace from a real kernel's production lowering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ScheduleError
from ..core.patterns import PatternKind
from ..program import AccessProgram, ParallelRead

__all__ = [
    "ApplicationTrace",
    "program_trace",
    "kernel_trace",
    "block_trace",
    "row_trace",
    "column_trace",
    "stencil_trace",
    "diagonal_trace",
    "transpose_trace",
    "random_trace",
]


@dataclass(frozen=True)
class ApplicationTrace:
    """A named set of required cells inside a bounding region."""

    name: str
    cells: frozenset[tuple[int, int]]
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if not self.cells:
            raise ScheduleError(f"trace {self.name!r} has no cells")
        for i, j in self.cells:
            if not (0 <= i < self.rows and 0 <= j < self.cols):
                raise ScheduleError(
                    f"trace {self.name!r}: cell ({i},{j}) outside "
                    f"{self.rows}x{self.cols}"
                )

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def density(self) -> float:
        """Fraction of the bounding region that is accessed."""
        return len(self.cells) / (self.rows * self.cols)

    def as_mask(self) -> np.ndarray:
        """Boolean rows x cols mask of the required cells."""
        mask = np.zeros((self.rows, self.cols), dtype=bool)
        for i, j in self.cells:
            mask[i, j] = True
        return mask


def program_trace(
    program: AccessProgram,
    p: int,
    q: int,
    name: str | None = None,
    rows: int | None = None,
    cols: int | None = None,
) -> ApplicationTrace:
    """Derive an :class:`ApplicationTrace` from an access program.

    The cell set is the union of every cell the program's accesses touch
    on a ``p x q`` lane grid; the bounding region defaults to the cells'
    extent.  Works on describe-only programs — deriving a trace never
    executes anything.
    """
    cells = frozenset(program.cells(p, q))
    if not cells:
        raise ScheduleError(
            f"program {program.name!r} has no accesses to derive a trace from"
        )
    if rows is None:
        rows = 1 + max(i for i, _ in cells)
    if cols is None:
        cols = 1 + max(j for _, j in cells)
    return ApplicationTrace(name or program.name, cells, rows, cols)


def kernel_trace(kernel: str, mem: str | None = None) -> ApplicationTrace:
    """The read footprint of a real kernel's production lowering.

    *kernel* names a demo from :mod:`repro.program.lower` (``matmul``,
    ``stencil``, ...); the trace is derived from the reads the lowered
    program issues against *mem* (default: the program's first memory),
    bounded by that memory's geometry.
    """
    from ..program import compile_program
    from ..program.lower import lower_demo

    program, mems = lower_demo(kernel)
    compiled = compile_program(program)
    target = mem if mem is not None else (
        compiled.mems[0] if compiled.mems else "default"
    )
    reads = AccessProgram(f"{program.name}:{target}:reads")
    reads.extend(
        op for op in program.access_ops
        if isinstance(op, ParallelRead) and op.mem == target
    )
    pm = mems.get(target)
    return program_trace(
        reads,
        pm.p if pm is not None else 1,
        pm.q if pm is not None else 1,
        name=program.name,
        rows=pm.rows if pm is not None else None,
        cols=pm.cols if pm is not None else None,
    )


def block_trace(rows: int = 8, cols: int = 8, at: tuple[int, int] = (0, 0)) -> ApplicationTrace:
    """A dense rows x cols block at *at* (matrix-tile workloads)."""
    i0, j0 = at
    prog = AccessProgram("block").read(PatternKind.RECTANGLE, i0, j0)
    return program_trace(prog, rows, cols, rows=i0 + rows, cols=j0 + cols)


def row_trace(n_rows: int, length: int) -> ApplicationTrace:
    """*n_rows* full rows of *length* (row-streaming kernels)."""
    prog = AccessProgram("rows").read(
        PatternKind.ROW, np.arange(n_rows), np.zeros(n_rows, dtype=np.int64)
    )
    return program_trace(prog, 1, length, rows=n_rows, cols=length)


def column_trace(n_cols: int, length: int) -> ApplicationTrace:
    """*n_cols* full columns of *length* (column-streaming kernels)."""
    prog = AccessProgram("columns").read(
        PatternKind.COLUMN, np.zeros(n_cols, dtype=np.int64), np.arange(n_cols)
    )
    return program_trace(prog, 1, length, rows=length, cols=n_cols)


def stencil_trace(rows: int, cols: int, radius: int = 1) -> ApplicationTrace:
    """Every cell read by a dense (2*radius+1)-point star stencil sweep over
    the interior of a rows x cols grid — effectively the full grid."""
    prog = AccessProgram("stencil").read(PatternKind.RECTANGLE, 0, 0)
    return program_trace(prog, rows, cols)


def diagonal_trace(n: int, count: int = 1, anti: bool = False) -> ApplicationTrace:
    """*count* (anti-)diagonals of length *n* (LU / wavefront kernels)."""
    kind = PatternKind.ANTI_DIAGONAL if anti else PatternKind.MAIN_DIAGONAL
    name = "anti_diagonals" if anti else "diagonals"
    anchors_i = np.arange(count)
    anchors_j = np.full(count, n - 1 if anti else 0, dtype=np.int64)
    prog = AccessProgram(name).read(kind, anchors_i, anchors_j)
    return program_trace(prog, 1, n, rows=n + count - 1, cols=n)


def transpose_trace(rows: int, cols: int) -> ApplicationTrace:
    """A full tile read both row-wise and column-wise (transpose kernels) —
    the whole tile, favouring schemes with both orientations."""
    prog = AccessProgram("transpose").read(PatternKind.RECTANGLE, 0, 0)
    return program_trace(prog, rows, cols)


def random_trace(
    rows: int, cols: int, density: float = 0.2, seed: int = 0
) -> ApplicationTrace:
    """A sparse random trace (graph/irregular workloads)."""
    if not 0 < density <= 1:
        raise ScheduleError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    mask = rng.random((rows, cols)) < density
    if not mask.any():
        mask[rng.integers(rows), rng.integers(cols)] = True
    ii, jj = np.nonzero(mask)
    prog = AccessProgram("random").read(PatternKind.RECTANGLE, ii, jj)
    return program_trace(prog, 1, 1, rows=rows, cols=cols)
