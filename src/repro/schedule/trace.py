"""Application memory-access traces (input to the §III-A customization flow).

An :class:`ApplicationTrace` is the set of 2-D cells a kernel must read per
iteration — the "application memory access pattern" the paper starts from
when customizing PolyMem.  Factories generate the traces of the workloads
the paper's introduction motivates: dense blocks (matrix kernels), rows and
columns (matmul), stencil neighbourhoods, diagonals, and sparse random
accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.exceptions import ScheduleError

__all__ = [
    "ApplicationTrace",
    "block_trace",
    "row_trace",
    "column_trace",
    "stencil_trace",
    "diagonal_trace",
    "transpose_trace",
    "random_trace",
]


@dataclass(frozen=True)
class ApplicationTrace:
    """A named set of required cells inside a bounding region."""

    name: str
    cells: frozenset[tuple[int, int]]
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if not self.cells:
            raise ScheduleError(f"trace {self.name!r} has no cells")
        for i, j in self.cells:
            if not (0 <= i < self.rows and 0 <= j < self.cols):
                raise ScheduleError(
                    f"trace {self.name!r}: cell ({i},{j}) outside "
                    f"{self.rows}x{self.cols}"
                )

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def density(self) -> float:
        """Fraction of the bounding region that is accessed."""
        return len(self.cells) / (self.rows * self.cols)

    def as_mask(self) -> np.ndarray:
        """Boolean rows x cols mask of the required cells."""
        mask = np.zeros((self.rows, self.cols), dtype=bool)
        for i, j in self.cells:
            mask[i, j] = True
        return mask


def block_trace(rows: int = 8, cols: int = 8, at: tuple[int, int] = (0, 0)) -> ApplicationTrace:
    """A dense rows x cols block at *at* (matrix-tile workloads)."""
    i0, j0 = at
    cells = frozenset(
        (i0 + a, j0 + b) for a in range(rows) for b in range(cols)
    )
    return ApplicationTrace("block", cells, i0 + rows, j0 + cols)


def row_trace(n_rows: int, length: int) -> ApplicationTrace:
    """*n_rows* full rows of *length* (row-streaming kernels)."""
    cells = frozenset((i, j) for i in range(n_rows) for j in range(length))
    return ApplicationTrace("rows", cells, n_rows, length)


def column_trace(n_cols: int, length: int) -> ApplicationTrace:
    """*n_cols* full columns of *length* (column-streaming kernels)."""
    cells = frozenset((i, j) for j in range(n_cols) for i in range(length))
    return ApplicationTrace("columns", cells, length, n_cols)


def stencil_trace(rows: int, cols: int, radius: int = 1) -> ApplicationTrace:
    """Every cell read by a dense (2*radius+1)-point star stencil sweep over
    the interior of a rows x cols grid — effectively the full grid."""
    cells = frozenset((i, j) for i in range(rows) for j in range(cols))
    trace = ApplicationTrace("stencil", cells, rows, cols)
    return trace


def diagonal_trace(n: int, count: int = 1, anti: bool = False) -> ApplicationTrace:
    """*count* (anti-)diagonals of length *n* (LU / wavefront kernels)."""
    cells = set()
    for d in range(count):
        for k in range(n):
            if anti:
                cells.add((k + d, n - 1 - k))
            else:
                cells.add((k + d, k))
    name = "anti_diagonals" if anti else "diagonals"
    return ApplicationTrace(name, frozenset(cells), n + count - 1, n)


def transpose_trace(rows: int, cols: int) -> ApplicationTrace:
    """A full tile read both row-wise and column-wise (transpose kernels) —
    the whole tile, favouring schemes with both orientations."""
    cells = frozenset((i, j) for i in range(rows) for j in range(cols))
    return ApplicationTrace("transpose", cells, rows, cols)


def random_trace(
    rows: int, cols: int, density: float = 0.2, seed: int = 0
) -> ApplicationTrace:
    """A sparse random trace (graph/irregular workloads)."""
    if not 0 < density <= 1:
        raise ScheduleError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    mask = rng.random((rows, cols)) < density
    if not mask.any():
        mask[rng.integers(rows), rng.integers(cols)] = True
    ii, jj = np.nonzero(mask)
    cells = frozenset(zip(ii.tolist(), jj.tolist()))
    return ApplicationTrace("random", cells, rows, cols)
