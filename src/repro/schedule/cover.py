"""Set-covering formulation of the optimal parallel access schedule.

Paper §III-A: *"To determine the optimal schedule we formulate the problem
as a set covering problem, using ILP for the search itself."*

Given an application trace and a candidate PolyMem configuration (scheme +
lane grid + address space), the universe is the set of required cells and
each candidate parallel access contributes the subset of required cells it
covers.  The optimal schedule is a minimum set cover — the fewest parallel
accesses that read every required cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.exceptions import ScheduleError
from ..core.patterns import AccessPattern, PatternKind
from ..core.schemes import SCHEME_SPECS, Scheme, validate_lane_grid
from .trace import ApplicationTrace

__all__ = ["CandidateAccess", "CoverProblem", "build_cover_problem"]


@dataclass(frozen=True)
class CandidateAccess:
    """One candidate parallel access: shape + anchor."""

    kind: PatternKind
    i: int
    j: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}@({self.i},{self.j})"


@dataclass
class CoverProblem:
    """A set-cover instance over bitmask-encoded cell sets.

    ``universe`` has one bit per required cell; ``masks[k]`` is the subset
    of required cells candidate ``k`` covers.
    """

    trace: ApplicationTrace
    scheme: Scheme
    p: int
    q: int
    candidates: list[CandidateAccess]
    masks: list[int]
    universe: int
    cell_ids: dict[tuple[int, int], int]

    @property
    def n_cells(self) -> int:
        return len(self.cell_ids)

    def coverable(self) -> bool:
        """Whether the union of all candidates covers the universe."""
        u = 0
        for m in self.masks:
            u |= m
        return u == self.universe

    def covered_cells(self, access: CandidateAccess) -> frozenset[tuple[int, int]]:
        """The required cells one access covers (for reporting)."""
        pat = AccessPattern(access.kind, self.p, self.q)
        return pat.cover_cells(access.i, access.j) & self.trace.cells


def build_cover_problem(
    trace: ApplicationTrace, scheme: Scheme, p: int, q: int
) -> CoverProblem:
    """Enumerate candidate conflict-free accesses and encode the instance.

    Candidates are generated per supported pattern of *scheme*: every
    anchor that (a) satisfies the pattern's alignment constraint, (b) stays
    inside the trace's bounding region, and (c) covers at least one
    required cell.
    """
    validate_lane_grid(scheme, p, q)
    spec = SCHEME_SPECS[scheme]
    cell_ids = {cell: k for k, cell in enumerate(sorted(trace.cells))}
    universe = (1 << len(cell_ids)) - 1
    seen: set[CandidateAccess] = set()
    candidates: list[CandidateAccess] = []
    masks: list[int] = []
    for entry in spec.supported:
        if not entry.condition_holds(p, q):
            continue
        pat = AccessPattern(entry.kind, p, q)
        di, dj = pat.offsets
        for (ci, cj) in trace.cells:
            # anchors that place some lane on (ci, cj)
            for a, b in zip(di.tolist(), dj.tolist()):
                i0, j0 = ci - a, cj - b
                cand = CandidateAccess(entry.kind, i0, j0)
                if cand in seen:
                    continue
                seen.add(cand)
                if not entry.anchor_ok(i0, j0, p, q):
                    continue
                if not pat.fits(i0, j0, trace.rows, trace.cols):
                    continue
                mask = 0
                for cell in pat.cover_cells(i0, j0):
                    idx = cell_ids.get(cell)
                    if idx is not None:
                        mask |= 1 << idx
                if mask:
                    candidates.append(cand)
                    masks.append(mask)
    if not candidates:
        raise ScheduleError(
            f"no conflict-free access of scheme {scheme} fits trace "
            f"{trace.name!r} on a {p}x{q} grid"
        )
    return CoverProblem(
        trace=trace,
        scheme=scheme,
        p=p,
        q=q,
        candidates=candidates,
        masks=masks,
        universe=universe,
        cell_ids=cell_ids,
    )
