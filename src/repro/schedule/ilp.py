"""Exact minimum set cover: a pure-Python branch-and-bound ILP solver.

The paper solves the schedule-optimization ILP with an external solver; no
solver is available offline, so this module implements the standard exact
algorithm for the (unweighted) set-covering ILP

.. math::

    \\min \\sum_k x_k \\quad \\text{s.t.} \\quad
    \\sum_{k: c \\in S_k} x_k \\ge 1 \\;\\forall c, \\; x_k \\in \\{0, 1\\}

by depth-first branch-and-bound:

* **branching** on the uncovered cell with the fewest covering candidates
  (minimum-remaining-values — every optimal solution must pick one of
  them, giving a small branching factor);
* **upper bound** primed with the greedy solution;
* **lower bound** ``ceil(uncovered / max_set_size)``;
* **dominance**: candidates whose remaining coverage is a subset of a
  sibling's are skipped within a branch level.

Sets are bitmasks (Python big-ints), so coverage arithmetic is word-speed.
A node budget keeps worst-case instances bounded; on exhaustion the best
incumbent (still a valid cover) is returned with ``proven_optimal=False``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.exceptions import ScheduleError
from .cover import CoverProblem
from .greedy import greedy_cover

__all__ = ["IlpSolution", "solve_cover"]


@dataclass(frozen=True)
class IlpSolution:
    """Result of the exact solver."""

    chosen: tuple[int, ...]
    proven_optimal: bool
    nodes_explored: int

    @property
    def n_accesses(self) -> int:
        return len(self.chosen)


def solve_cover(problem: CoverProblem, node_budget: int = 200_000) -> IlpSolution:
    """Minimum set cover over *problem* by branch-and-bound.

    Parameters
    ----------
    problem:
        The encoded instance.
    node_budget:
        Maximum search nodes; on exhaustion the incumbent is returned and
        flagged non-proven.
    """
    masks = problem.masks
    n = len(masks)
    if not problem.coverable():
        raise ScheduleError(
            f"trace {problem.trace.name!r} is not coverable under "
            f"{problem.scheme} ({problem.p}x{problem.q})"
        )
    # incumbent from greedy
    incumbent = greedy_cover(problem)
    best_len = len(incumbent)
    best = list(incumbent)
    max_size = max(m.bit_count() for m in masks)
    # cell -> candidate indices covering it
    coverers: dict[int, list[int]] = {}
    for k, m in enumerate(masks):
        mm = m
        while mm:
            low = mm & -mm
            cell = low.bit_length() - 1
            coverers.setdefault(cell, []).append(k)
            mm ^= low
    nodes = 0
    exhausted = False

    def dfs(uncovered: int, chosen: list[int]) -> None:
        nonlocal best_len, best, nodes, exhausted
        if exhausted:
            return
        nodes += 1
        if nodes > node_budget:
            exhausted = True
            return
        if not uncovered:
            if len(chosen) < best_len:
                best_len = len(chosen)
                best = list(chosen)
            return
        # lower bound
        remaining = uncovered.bit_count()
        if len(chosen) + (remaining + max_size - 1) // max_size >= best_len:
            return
        # branch on the uncovered cell with fewest coverers
        branch_cell, branch_opts = -1, None
        mm = uncovered
        while mm:
            low = mm & -mm
            cell = low.bit_length() - 1
            opts = [k for k in coverers[cell] if masks[k] & uncovered]
            if branch_opts is None or len(opts) < len(branch_opts):
                branch_cell, branch_opts = cell, opts
                if len(opts) == 1:
                    break
            mm ^= low
        # order: biggest marginal gain first (finds good solutions early)
        branch_opts.sort(key=lambda k: -(masks[k] & uncovered).bit_count())
        # dominance pruning within the branch level
        kept: list[int] = []
        for k in branch_opts:
            gain = masks[k] & uncovered
            if any((gain | (masks[o] & uncovered)) == (masks[o] & uncovered) and o != k
                   for o in kept):
                continue
            kept.append(k)
        for k in kept:
            chosen.append(k)
            dfs(uncovered & ~masks[k], chosen)
            chosen.pop()
            if exhausted:
                return

    dfs(problem.universe, [])
    return IlpSolution(
        chosen=tuple(best),
        proven_optimal=not exhausted,
        nodes_explored=nodes,
    )
