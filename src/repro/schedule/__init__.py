"""Application-driven PolyMem customization (paper §III-A).

The end-to-end design flow: an application access trace is covered by the
fewest conflict-free parallel accesses (set covering, exact branch-and-bound
ILP with a greedy baseline), and candidate configurations are ranked by
speedup and efficiency.
"""

from .cover import CandidateAccess, CoverProblem, build_cover_problem
from .executor import ExecutionResult, execute_schedule, memory_for_trace
from .customize import CustomizationResult, Schedule, customize, schedule_trace
from .greedy import greedy_cover
from .ilp import IlpSolution, solve_cover
from .trace import (
    ApplicationTrace,
    block_trace,
    column_trace,
    diagonal_trace,
    random_trace,
    row_trace,
    stencil_trace,
    transpose_trace,
)

__all__ = [
    "ApplicationTrace",
    "CandidateAccess",
    "CoverProblem",
    "CustomizationResult",
    "ExecutionResult",
    "IlpSolution",
    "Schedule",
    "block_trace",
    "build_cover_problem",
    "column_trace",
    "customize",
    "diagonal_trace",
    "execute_schedule",
    "memory_for_trace",
    "greedy_cover",
    "random_trace",
    "row_trace",
    "schedule_trace",
    "solve_cover",
    "stencil_trace",
    "transpose_trace",
]
