"""Schedule execution: run a §III-A schedule against a real PolyMem.

Closes the loop of the customization flow: the optimizer *predicts* a
schedule length; :func:`execute_schedule` actually issues every scheduled
parallel access against a PolyMem holding the data and verifies

* **coverage** — every required cell was fetched at least once;
* **cycles** — the realized cycle count equals the predicted
  ``n_accesses`` (one access per cycle);
* **data** — the gathered values match the stored matrix.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..core.config import PolyMemConfig
from ..core.exceptions import ScheduleError
from ..core.patterns import pattern_offsets
from ..core.polymem import PolyMem
from ..program import AccessProgram
from ..program.builder import build
from .customize import Schedule
from .trace import ApplicationTrace

__all__ = [
    "ExecutionResult",
    "execute_schedule",
    "memory_for_trace",
    "schedule_program",
]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing a schedule."""

    schedule: Schedule
    cycles: int
    fetched_cells: frozenset[tuple[int, int]]
    required_cells: frozenset[tuple[int, int]]
    data_correct: bool

    @property
    def covered(self) -> bool:
        return self.required_cells <= self.fetched_cells

    @property
    def matches_prediction(self) -> bool:
        return self.cycles == self.schedule.n_accesses

    @property
    def overfetch_ratio(self) -> float:
        """Fetched lane slots vs required cells (1.0 = no wasted lanes)."""
        return (self.cycles * self.schedule.lanes) / len(self.required_cells)


def memory_for_trace(
    trace: ApplicationTrace, schedule: Schedule, fill: np.ndarray | None = None
) -> tuple[PolyMem, np.ndarray]:
    """A PolyMem sized for the trace's region, loaded with *fill* (or the
    flat-index matrix)."""
    p, q = schedule.p, schedule.q
    rows = -(-trace.rows // p) * p
    cols = -(-trace.cols // q) * q
    cfg = PolyMemConfig(
        rows * cols * 8, p=p, q=q, scheme=schedule.scheme, rows=rows, cols=cols
    )
    pm = PolyMem(cfg)
    if fill is None:
        fill = np.arange(rows * cols, dtype=np.uint64).reshape(rows, cols)
    pm.load(fill)
    pm.reset_stats()
    return pm, fill


def _schedule_program(schedule: Schedule) -> AccessProgram:
    """Lower a schedule to an access program: one read stream whose
    heterogeneous per-cycle kind sequence keeps it a single trace even
    when the schedule mixes access shapes."""
    prog = AccessProgram(
        f"schedule:{schedule.trace_name}",
        metadata={"scheme": schedule.scheme, "p": schedule.p, "q": schedule.q},
    )
    accesses = schedule.accesses
    if not accesses:
        return prog
    n = len(accesses)
    kinds = [a.kind for a in accesses]
    ai = np.fromiter((a.i for a in accesses), dtype=np.int64, count=n)
    aj = np.fromiter((a.j for a in accesses), dtype=np.int64, count=n)
    kind = kinds[0] if len(set(kinds)) == 1 else kinds
    return prog.read(kind, ai, aj, tag="data")


def schedule_program(schedule: Schedule) -> AccessProgram:
    """Deprecated: use ``repro.program.builder.build("schedule.accesses", ...)``."""
    warnings.warn(
        "schedule_program() is deprecated; use "
        "repro.program.builder.build('schedule.accesses', schedule=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _schedule_program(schedule)


def execute_schedule(
    trace: ApplicationTrace, schedule: Schedule
) -> ExecutionResult:
    """Issue every scheduled access; verify coverage, cycles and data."""
    if schedule.trace_name != trace.name:
        raise ScheduleError(
            f"schedule was built for trace {schedule.trace_name!r}, "
            f"got {trace.name!r}"
        )
    pm, fill = memory_for_trace(trace, schedule)
    fetched: set[tuple[int, int]] = set()
    data_ok = True
    accesses = schedule.accesses
    if accesses:
        n = len(accesses)
        kinds = [a.kind for a in accesses]
        ai = np.fromiter((a.i for a in accesses), dtype=np.int64, count=n)
        aj = np.fromiter((a.j for a in accesses), dtype=np.int64, count=n)
        results = build("schedule.accesses", schedule=schedule, memory=pm).run()[
            "data"
        ]
        for kind in dict.fromkeys(kinds):
            m = np.fromiter((k == kind for k in kinds), dtype=bool, count=n)
            di, dj = pattern_offsets(kind, schedule.p, schedule.q)
            ii = ai[m][:, None] + di
            jj = aj[m][:, None] + dj
            if not np.array_equal(results[m], fill[ii, jj]):
                data_ok = False
            fetched.update(zip(ii.ravel().tolist(), jj.ravel().tolist()))
    return ExecutionResult(
        schedule=schedule,
        cycles=pm.cycles,
        fetched_cells=frozenset(fetched),
        required_cells=trace.cells,
        data_correct=data_ok,
    )
