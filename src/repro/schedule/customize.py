"""Configuration selection: the end of the §III-A flow.

For each candidate configuration (scheme x lane grid), the optimal parallel
access schedule of the application trace is computed, and configurations
are ranked by the paper's two metrics:

* **speedup** — elements accessed per schedule step versus a scalar
  (one-element-per-cycle) memory: ``|cells| / n_accesses``;
* **efficiency** — achieved fraction of the configuration's peak
  parallelism: ``speedup / (p * q)`` (1.0 means every lane of every access
  carried a required element).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.exceptions import ScheduleError, SchemeError
from ..core.schemes import Scheme, all_schemes, validate_lane_grid
from .cover import CandidateAccess, build_cover_problem
from .greedy import greedy_cover
from .ilp import solve_cover
from .trace import ApplicationTrace

__all__ = ["Schedule", "CustomizationResult", "schedule_trace", "customize"]


@dataclass(frozen=True)
class Schedule:
    """An optimal (or greedy) parallel access schedule for one config."""

    trace_name: str
    scheme: Scheme
    p: int
    q: int
    accesses: tuple[CandidateAccess, ...]
    proven_optimal: bool
    solver: str

    @property
    def n_accesses(self) -> int:
        return len(self.accesses)

    @property
    def lanes(self) -> int:
        return self.p * self.q

    @property
    def cells(self) -> int:
        # every cell covered exactly >= once; schedule length is what counts
        return self._n_cells

    _n_cells: int = 0

    @property
    def speedup(self) -> float:
        """Cells per schedule step vs a one-element-per-cycle memory."""
        return self._n_cells / self.n_accesses

    @property
    def efficiency(self) -> float:
        """speedup / lanes — lane occupancy of the schedule."""
        return self.speedup / self.lanes


def schedule_trace(
    trace: ApplicationTrace,
    scheme: Scheme,
    p: int,
    q: int,
    solver: str = "ilp",
    node_budget: int = 200_000,
) -> Schedule:
    """Optimal (``solver="ilp"``) or greedy schedule for one configuration."""
    problem = build_cover_problem(trace, scheme, p, q)
    if solver == "ilp":
        sol = solve_cover(problem, node_budget=node_budget)
        chosen, proven = sol.chosen, sol.proven_optimal
    elif solver == "greedy":
        chosen, proven = tuple(greedy_cover(problem)), False
    else:
        raise ScheduleError(f"unknown solver {solver!r}")
    return Schedule(
        trace_name=trace.name,
        scheme=scheme,
        p=p,
        q=q,
        accesses=tuple(problem.candidates[k] for k in chosen),
        proven_optimal=proven,
        solver=solver,
        _n_cells=len(trace.cells),
    )


@dataclass
class CustomizationResult:
    """Ranked schedules across all candidate configurations."""

    trace: ApplicationTrace
    schedules: list[Schedule]

    @property
    def best(self) -> Schedule:
        """Highest speedup; efficiency breaks ties (the paper's metrics)."""
        return max(self.schedules, key=lambda s: (s.speedup, s.efficiency))

    def by_scheme(self, scheme: Scheme) -> list[Schedule]:
        return [s for s in self.schedules if s.scheme is scheme]


def customize(
    trace: ApplicationTrace,
    lane_grids: list[tuple[int, int]] | None = None,
    schemes: list[Scheme] | None = None,
    solver: str = "ilp",
    node_budget: int = 200_000,
) -> CustomizationResult:
    """Run the full §III-A flow: schedule the trace on every candidate
    (scheme, lane grid) and rank by speedup/efficiency.

    Configurations that cannot cover the trace (unsupported orientation,
    pattern larger than the trace region) are skipped.
    """
    lane_grids = lane_grids or [(2, 4), (2, 8)]
    schemes = list(schemes) if schemes is not None else list(all_schemes())
    schedules = []
    for p, q in lane_grids:
        for scheme in schemes:
            try:
                validate_lane_grid(scheme, p, q)
                schedules.append(
                    schedule_trace(trace, scheme, p, q, solver, node_budget)
                )
            except (ScheduleError, SchemeError):
                continue
    if not schedules:
        raise ScheduleError(
            f"no candidate configuration can serve trace {trace.name!r}"
        )
    return CustomizationResult(trace=trace, schedules=schedules)
