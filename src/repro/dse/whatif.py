"""What-if exploration: PolyMem feasibility on other devices.

The paper targets one board (Vectis / Virtex-6 SX475T).  A natural
downstream question — would my configuration fit a smaller part, and what
is the largest PolyMem a device can host? — is answered here by re-running
the BRAM arithmetic and area model against any
:class:`~repro.hw.fpga.FpgaDevice`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import KB, PolyMemConfig
from ..core.schemes import Scheme
from ..hw.bram import polymem_bram_usage
from ..hw.fpga import FpgaDevice, VIRTEX6_SX475T
from ..hw.synthesis import SynthesisModel

__all__ = ["FeasibilityPoint", "feasibility_frontier", "max_capacity_kb"]


@dataclass(frozen=True)
class FeasibilityPoint:
    """One (capacity, lanes, ports) point on a device."""

    capacity_kb: int
    lanes: int
    read_ports: int
    bram_pct: float
    logic_pct: float
    feasible: bool


def _config(capacity_kb: int, lanes: int, ports: int, scheme: Scheme) -> PolyMemConfig:
    p, q = {8: (2, 4), 16: (2, 8), 32: (4, 8)}[lanes]
    return PolyMemConfig(capacity_kb * KB, p=p, q=q, scheme=scheme, read_ports=ports)


def max_capacity_kb(
    device: FpgaDevice,
    lanes: int = 8,
    read_ports: int = 1,
    scheme: Scheme = Scheme.ReRo,
) -> int:
    """Largest power-of-two capacity (KB) whose data fits *device*.

    The answer for the paper's device at 1 port is 4096 KB — the "4MB
    parallel memory" headline.
    """
    best = 0
    cap = 64
    while cap <= device.bram_bytes_64bit // 1024 * 2:
        cfg = _config(cap, lanes, read_ports, scheme)
        if polymem_bram_usage(cfg, device.bram36).feasible:
            best = cap
        cap *= 2
    return best


def feasibility_frontier(
    device: FpgaDevice = VIRTEX6_SX475T,
    scheme: Scheme = Scheme.ReRo,
    capacities_kb: tuple[int, ...] = (256, 512, 1024, 2048, 4096),
    lane_counts: tuple[int, ...] = (8, 16),
    port_counts: tuple[int, ...] = (1, 2, 3, 4),
) -> list[FeasibilityPoint]:
    """Evaluate the full grid on *device* (feasible and infeasible points).

    The synthesis model is refit per device (cheap; cached per process by
    the caller if needed).
    """
    model = SynthesisModel(device)
    points = []
    for cap in capacities_kb:
        for lanes in lane_counts:
            for ports in port_counts:
                cfg = _config(cap, lanes, ports, scheme)
                budget = polymem_bram_usage(cfg, device.bram36)
                logic = model.logic_pct(cfg)
                points.append(
                    FeasibilityPoint(
                        capacity_kb=cap,
                        lanes=lanes,
                        read_ports=ports,
                        bram_pct=100 * budget.utilization,
                        logic_pct=logic,
                        feasible=budget.feasible and logic < 100,
                    )
                )
    return points
