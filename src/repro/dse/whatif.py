"""What-if exploration: PolyMem feasibility across devices and substrates.

The paper targets one board (Vectis / Virtex-6 SX475T).  Two natural
downstream questions are answered here:

* would my configuration fit another FPGA part, and what is the largest
  PolyMem a part can host? — :func:`feasibility_frontier` and
  :func:`max_capacity_kb`, re-running the BRAM arithmetic and area model
  against any :class:`~repro.hw.fpga.FpgaDevice`;
* what does a modern substrate change? — :func:`whatif_devices`, a sweep
  over registered :class:`~repro.backend.base.DeviceBackend`\\ s (Vectis,
  LX240T, DDR/HBM channel systems, multi-DFE sharding) reporting
  feasibility, clocks, peak bandwidth, and — for off-chip substrates —
  achieved bandwidth on a strided workload with and without the
  burst-friendly layout pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backend import AddressStream, DeviceBackend, get_backend, plan_layout
from ..core.config import KB, PolyMemConfig
from ..core.exceptions import ConfigurationError, SchemeError
from ..core.schemes import Scheme, validate_lane_grid
from ..hw.bram import polymem_bram_usage
from ..hw.fpga import FpgaDevice, VIRTEX6_SX475T
from ..hw.synthesis import SynthesisModel

__all__ = [
    "DeviceWhatIf",
    "FeasibilityPoint",
    "feasibility_frontier",
    "lane_grid_for",
    "max_capacity_kb",
    "whatif_devices",
]

#: the backends a default what-if sweep compares (>= 3 substrates:
#: on-chip BRAM on two parts, an HBM2 channel stack, DDR channels, and a
#: two-board sharded logical PolyMem)
DEFAULT_WHATIF_BACKENDS = ("vectis", "lx240t", "dram", "hbm2", "dual-dfe")


@dataclass(frozen=True)
class FeasibilityPoint:
    """One (capacity, lanes, ports) point on a device."""

    capacity_kb: int
    lanes: int
    read_ports: int
    bram_pct: float
    logic_pct: float
    feasible: bool


def lane_grid_for(lanes: int, scheme: Scheme = Scheme.ReRo) -> tuple[int, int]:
    """A valid ``p x q`` factorization of *lanes* for *scheme*.

    Prefers the paper's wide grids — the largest ``q <= 8`` dividing
    *lanes* with ``p >= 2`` — which reproduces the historical picks
    (8 = 2x4, 16 = 2x8, 32 = 4x8) and extends to any factorable lane
    count.  Raises :class:`~repro.core.exceptions.ConfigurationError`
    with the failing candidates when no divisor yields a grid the scheme
    accepts (instead of the bare ``KeyError`` this used to throw for
    anything outside {8, 16, 32}).
    """
    if lanes < 2:
        raise ConfigurationError(
            f"a parallel memory needs >= 2 lanes, got {lanes}"
        )
    preferred = [q for q in range(min(8, lanes // 2), 0, -1) if lanes % q == 0]
    fallback = [
        q for q in range(lanes, 8, -1) if lanes % q == 0 and lanes // q >= 1
    ]
    tried = []
    for q in preferred + fallback:
        p = lanes // q
        try:
            validate_lane_grid(scheme, p, q)
        except SchemeError:
            tried.append(f"{p}x{q}")
            continue
        return p, q
    raise ConfigurationError(
        f"no valid p x q lane grid for {lanes} lanes with scheme "
        f"{scheme.value}" + (f" (rejected: {', '.join(tried)})" if tried else "")
    )


def _config(capacity_kb: int, lanes: int, ports: int, scheme: Scheme) -> PolyMemConfig:
    p, q = lane_grid_for(lanes, scheme)
    return PolyMemConfig(capacity_kb * KB, p=p, q=q, scheme=scheme, read_ports=ports)


def max_capacity_kb(
    device: FpgaDevice,
    lanes: int = 8,
    read_ports: int = 1,
    scheme: Scheme = Scheme.ReRo,
) -> int:
    """Largest power-of-two capacity (KB) whose data fits *device*.

    The answer for the paper's device at 1 port is 4096 KB — the "4MB
    parallel memory" headline.
    """
    best = 0
    cap = 64
    while cap <= device.bram_bytes_64bit // 1024 * 2:
        cfg = _config(cap, lanes, read_ports, scheme)
        if polymem_bram_usage(cfg, device.bram36).feasible:
            best = cap
        cap *= 2
    return best


def feasibility_frontier(
    device: FpgaDevice = VIRTEX6_SX475T,
    scheme: Scheme = Scheme.ReRo,
    capacities_kb: tuple[int, ...] = (256, 512, 1024, 2048, 4096),
    lane_counts: tuple[int, ...] = (8, 16),
    port_counts: tuple[int, ...] = (1, 2, 3, 4),
) -> list[FeasibilityPoint]:
    """Evaluate the full grid on *device* (feasible and infeasible points).

    The synthesis model is refit per device (cheap; cached per process by
    the caller if needed).
    """
    model = SynthesisModel(device)
    points = []
    for cap in capacities_kb:
        for lanes in lane_counts:
            for ports in port_counts:
                cfg = _config(cap, lanes, ports, scheme)
                budget = polymem_bram_usage(cfg, device.bram36)
                logic = model.logic_pct(cfg)
                points.append(
                    FeasibilityPoint(
                        capacity_kb=cap,
                        lanes=lanes,
                        read_ports=ports,
                        bram_pct=100 * budget.utilization,
                        logic_pct=logic,
                        feasible=budget.feasible and logic < 100,
                    )
                )
    return points


@dataclass(frozen=True)
class DeviceWhatIf:
    """One backend's row in the substrate sweep."""

    backend: str
    kind: str
    feasible: bool
    clock_mhz: float
    peak_write_gbps: float
    peak_read_gbps: float
    #: achieved GB/s on the strided reference workload, raw
    strided_gbps: float
    #: achieved GB/s on the same workload after the layout pass
    layout_gbps: float
    #: achieved GB/s on an already-sequential stream
    sequential_gbps: float
    detail: dict = field(default_factory=dict, compare=False)

    @property
    def layout_speedup(self) -> float:
        """Gain of the burst-friendly layout pass on the strided workload."""
        return self.layout_gbps / self.strided_gbps if self.strided_gbps else 1.0

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "kind": self.kind,
            "feasible": self.feasible,
            "clock_mhz": self.clock_mhz,
            "peak_write_gbps": self.peak_write_gbps,
            "peak_read_gbps": self.peak_read_gbps,
            "strided_gbps": self.strided_gbps,
            "layout_gbps": self.layout_gbps,
            "sequential_gbps": self.sequential_gbps,
            "layout_speedup": self.layout_speedup,
            "detail": self.detail,
        }


def whatif_devices(
    config: PolyMemConfig | None = None,
    backends: tuple[str, ...] | list[DeviceBackend] = DEFAULT_WHATIF_BACKENDS,
    stride_words: int = 64,
    n_words: int = 1 << 14,
) -> list[DeviceWhatIf]:
    """Sweep one configuration across memory substrates.

    The reference workload is a ``stride_words``-strided read of
    ``n_words`` words — the burst-hostile pattern (a column walk of a
    row-major array) that the layout pass exists to repair.  Each row
    reports the substrate's feasibility verdict, clock, peak Fig. 4/5
    bandwidths, and the achieved bandwidth for the strided stream raw,
    after :func:`~repro.backend.layout.plan_layout`, and for an ideal
    sequential stream.
    """
    if config is None:
        config = PolyMemConfig(512 * KB, p=2, q=4, scheme=Scheme.ReRo)
    strided = AddressStream.strided(
        n_words, stride_words, word_bytes=config.word_bytes
    )
    sequential = AddressStream.sequential(
        n_words, word_bytes=config.word_bytes
    )
    remapped = plan_layout(strided).remap(strided)
    rows = []
    for entry in backends:
        backend = get_backend(entry) if isinstance(entry, str) else entry
        verdict = backend.feasibility(config)
        raw = backend.achieved_bandwidth(config, strided)
        laid = backend.achieved_bandwidth(config, remapped)
        seq = backend.achieved_bandwidth(config, sequential)
        rows.append(
            DeviceWhatIf(
                backend=backend.name,
                kind=backend.describe().get("kind", "?"),
                feasible=verdict.feasible,
                clock_mhz=backend.clock_mhz(config),
                peak_write_gbps=backend.peak_write_gbps(config),
                peak_read_gbps=backend.peak_read_gbps(config),
                strided_gbps=raw.achieved_gbps,
                layout_gbps=laid.achieved_gbps,
                sequential_gbps=seq.achieved_gbps,
                detail={
                    "feasibility": verdict.detail,
                    "strided": raw.to_dict(),
                    "layout": laid.to_dict(),
                    "sequential": seq.to_dict(),
                },
            )
        )
    return rows
