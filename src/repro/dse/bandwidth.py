"""Peak-bandwidth formulas (paper §IV-B, Figs 4 and 5).

All accesses are assumed dense (full memory width), as in the paper:

* per-port bandwidth (also the write bandwidth, Fig. 4):
  ``lanes * word_bytes * f``;
* aggregated read bandwidth (Fig. 5): per-port bandwidth times the number
  of read ports;
* total deliverable rate with concurrent reads and writes: the sum over
  all ports (§IV-B's closing remark).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import PolyMemConfig

__all__ = ["BandwidthReport", "bandwidth_report", "port_bandwidth_gbps"]

GB = 1e9


def port_bandwidth_gbps(config: PolyMemConfig, clock_mhz: float) -> float:
    """Peak bandwidth of a single port in GB/s."""
    return config.lanes * config.word_bytes * clock_mhz * 1e6 / GB


@dataclass(frozen=True)
class BandwidthReport:
    """Peak bandwidth figures for one configuration at one clock."""

    config: PolyMemConfig
    clock_mhz: float

    @property
    def write_gbps(self) -> float:
        """Fig. 4: single (write) port bandwidth."""
        return port_bandwidth_gbps(self.config, self.clock_mhz)

    @property
    def read_gbps(self) -> float:
        """Fig. 5: aggregated read bandwidth over all read ports."""
        return self.write_gbps * self.config.read_ports

    @property
    def total_gbps(self) -> float:
        """Concurrent read + write aggregate (1 write + R read ports)."""
        return self.write_gbps * (1 + self.config.read_ports)


def bandwidth_report(config: PolyMemConfig, clock_mhz: float) -> BandwidthReport:
    """Convenience constructor mirroring the other report factories."""
    return BandwidthReport(config=config, clock_mhz=clock_mhz)
