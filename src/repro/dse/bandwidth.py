"""Peak-bandwidth formulas (paper §IV-B, Figs 4 and 5).

All accesses are assumed dense (full memory width), as in the paper:

* per-port bandwidth (also the write bandwidth, Fig. 4):
  ``lanes * word_bytes * f``;
* aggregated read bandwidth (Fig. 5): per-port bandwidth times the number
  of read ports;
* total deliverable rate with concurrent reads and writes: the sum over
  all ports (§IV-B's closing remark).

These are *substrate-independent* formulas at a given clock.  The
substrate-aware figures — peak at the backend's own clock, and achieved
bandwidth for a concrete address stream — route through the device
backends: :func:`backend_peaks` and :func:`achieved_bandwidth`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend import AchievedBandwidth, AddressStream, DeviceBackend, get_backend
from ..core.config import PolyMemConfig

__all__ = [
    "BandwidthReport",
    "achieved_bandwidth",
    "backend_peaks",
    "bandwidth_report",
    "port_bandwidth_gbps",
    "port_bandwidth_gbps_many",
    "read_bandwidth_gbps_many",
]

GB = 1e9


def port_bandwidth_gbps(config: PolyMemConfig, clock_mhz: float) -> float:
    """Peak bandwidth of a single port in GB/s."""
    return config.lanes * config.word_bytes * clock_mhz * 1e6 / GB


def port_bandwidth_gbps_many(configs, clocks_mhz) -> np.ndarray:
    """Per-port peak bandwidth for a config array, one float per config.

    Elementwise operation order matches :func:`port_bandwidth_gbps`, so
    each entry is bitwise equal to the scalar value at the same clock —
    the dominance pruning in :func:`repro.dse.explore.explore` relies on
    this to stay exact.
    """
    width = np.array(
        [cfg.lanes * cfg.word_bytes for cfg in configs], dtype=np.int64
    )
    return width * np.asarray(clocks_mhz, dtype=np.float64) * 1e6 / GB


def read_bandwidth_gbps_many(configs, clocks_mhz) -> np.ndarray:
    """Aggregated read bandwidth (per-port x read ports) for a config
    array; bitwise equal to ``BandwidthReport.read_gbps`` per entry."""
    ports = np.array([cfg.read_ports for cfg in configs], dtype=np.int64)
    return port_bandwidth_gbps_many(configs, clocks_mhz) * ports


@dataclass(frozen=True)
class BandwidthReport:
    """Peak bandwidth figures for one configuration at one clock."""

    config: PolyMemConfig
    clock_mhz: float

    @property
    def write_gbps(self) -> float:
        """Fig. 4: single (write) port bandwidth."""
        return port_bandwidth_gbps(self.config, self.clock_mhz)

    @property
    def read_gbps(self) -> float:
        """Fig. 5: aggregated read bandwidth over all read ports."""
        return self.write_gbps * self.config.read_ports

    @property
    def total_gbps(self) -> float:
        """Concurrent read + write aggregate (1 write + R read ports)."""
        return self.write_gbps * (1 + self.config.read_ports)


def bandwidth_report(config: PolyMemConfig, clock_mhz: float) -> BandwidthReport:
    """Convenience constructor mirroring the other report factories."""
    return BandwidthReport(config=config, clock_mhz=clock_mhz)


def backend_peaks(
    config: PolyMemConfig, backend: str | DeviceBackend | None = None
) -> BandwidthReport:
    """Fig. 4/5 peaks at the *backend's* clock for *config*.

    For the default ``vectis`` backend this equals
    ``BandwidthReport(config, DsePoint.clock_mhz)`` bit for bit — the
    backend's clock model is Table IV on-grid, the calibrated model
    otherwise.
    """
    be = get_backend(backend) if not isinstance(backend, DeviceBackend) else backend
    return BandwidthReport(config=config, clock_mhz=be.clock_mhz(config))


def achieved_bandwidth(
    config: PolyMemConfig,
    stream: AddressStream,
    backend: str | DeviceBackend | None = None,
) -> AchievedBandwidth:
    """Delivered bandwidth of *stream* on a substrate (default: the
    ``REPRO_BACKEND``/``vectis`` backend).  On-chip BRAM substrates
    achieve peak for any conflict-free stream; DRAM/HBM substrates apply
    the burst/row-buffer model of :mod:`repro.backend.dram`."""
    be = get_backend(backend) if not isinstance(backend, DeviceBackend) else backend
    return be.achieved_bandwidth(config, stream)
