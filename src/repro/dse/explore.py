"""The DSE sweep runner.

For every feasible grid point the explorer gathers: the paper's Table IV
frequency (when the point is on the paper grid), the calibrated model's
frequency, resource utilizations, and the derived bandwidth figures —
everything Figures 4–8 plot.  Optionally each design is functionally
validated with the paper's §IV-A unique-value read/write cycle.

The sweep routes through :mod:`repro.exec`: pass ``workers`` to fan the
grid out over a process pool and ``cache`` to skip previously computed
points (``python -m repro dse --workers 4`` does both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.config import PolyMemConfig
from ..core.schemes import Scheme
from ..exec import ResultCache, RunResult, SweepResult, SweepTask, run_sweep
from ..hw.calibration import table_iv_frequency
from ..hw.synthesis import SynthesisModel, default_model
from .bandwidth import BandwidthReport
from .space import DesignSpace, PAPER_SPACE

__all__ = ["DsePoint", "DseResult", "explore", "evaluate_point", "warm_point"]


@dataclass(frozen=True)
class DsePoint:
    """One evaluated configuration."""

    config: PolyMemConfig
    paper_mhz: float | None
    model_mhz: float
    logic_pct: float
    lut_pct: float
    bram_pct: float
    validated: bool | None

    @property
    def capacity_kb(self) -> int:
        return self.config.capacity_bytes // 1024

    @property
    def clock_mhz(self) -> float:
        """Best available frequency: paper value on-grid, model otherwise."""
        return self.paper_mhz if self.paper_mhz is not None else self.model_mhz

    @property
    def bandwidth(self) -> BandwidthReport:
        return BandwidthReport(self.config, self.clock_mhz)

    def bandwidth_at(self, source: str) -> BandwidthReport:
        """Bandwidth using the ``"paper"`` or ``"model"`` frequency."""
        if source == "paper":
            if self.paper_mhz is None:
                raise KeyError(f"{self.config.label()} not in Table IV")
            return BandwidthReport(self.config, self.paper_mhz)
        if source == "model":
            return BandwidthReport(self.config, self.model_mhz)
        raise ValueError(f"unknown frequency source {source!r}")


@dataclass
class DseResult:
    """All evaluated points plus lookup helpers."""

    space: DesignSpace
    points: list[DsePoint]
    #: execution accounting of the sweep that produced the points
    #: (None for results reconstructed from disk)
    sweep: SweepResult | None = field(default=None, compare=False, repr=False)

    def by_scheme(self, scheme: Scheme) -> list[DsePoint]:
        return [p for p in self.points if p.config.scheme is scheme]

    def lookup(
        self, scheme: Scheme, capacity_kb: int, lanes: int, ports: int
    ) -> DsePoint | None:
        for p in self.points:
            cfg = p.config
            if (
                cfg.scheme is scheme
                and p.capacity_kb == capacity_kb
                and cfg.lanes == lanes
                and cfg.read_ports == ports
            ):
                return p
        return None

    def best(self, key) -> DsePoint:
        """The point maximizing *key* (e.g. aggregated read bandwidth)."""
        return max(self.points, key=key)

    @property
    def peak_read_gbps(self) -> float:
        return max(p.bandwidth.read_gbps for p in self.points)

    @property
    def peak_write_gbps(self) -> float:
        return max(p.bandwidth.write_gbps for p in self.points)


def evaluate_point(
    config: PolyMemConfig,
    validate: bool = False,
    validate_rows: int = 16,
    device: str | None = None,
    _model: SynthesisModel | None = None,
) -> dict:
    """Evaluate one grid point to its plain-JSON payload.

    Module-level and picklable: this is the :class:`SweepTask` function the
    process pool runs.  The synthesis model is resolved per process from
    the *device* name (fit once, then cached by :func:`default_model`).
    """
    model = _model if _model is not None else (
        default_model(device) if device else default_model()
    )
    report = model.estimate(config)
    paper = table_iv_frequency(
        config.scheme,
        config.capacity_bytes // 1024,
        config.lanes,
        config.read_ports,
    )
    validated: bool | None = None
    if validate:
        from ..maxpolymem import build_design, validate_design

        design = build_design(config, clock_source="model")
        validated = validate_design(design, max_rows=validate_rows).passed
    return {
        "paper_mhz": paper,
        "model_mhz": report.fmax_mhz,
        "logic_pct": report.logic_pct,
        "lut_pct": report.lut_pct,
        "bram_pct": report.bram_pct,
        "validated": validated,
    }


def warm_point(
    config: PolyMemConfig,
    validate: bool = False,
    validate_rows: int = 16,
    device: str | None = None,
) -> None:
    """:class:`SweepTask` ``warmup`` hook for :func:`evaluate_point`.

    Fits the per-device synthesis model once (a few tens of ms the first
    time, memoized afterwards) and, when the point will be validated,
    pre-compiles the plan families its §IV-A cycle touches — so workers
    forked after the parent's warm pass start with every shared cache hot.
    """
    default_model(device) if device else default_model()
    if validate:
        from ..maxpolymem.validation import warm_validation

        warm_validation(config, max_rows=validate_rows)


def explore(
    space: DesignSpace = PAPER_SPACE,
    model: SynthesisModel | None = None,
    validate: bool = False,
    validate_rows: int = 16,
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable[[int, int, RunResult], None] | None = None,
    chunk_size: int | None = None,
) -> DseResult:
    """Run the full DSE sweep over *space* through :mod:`repro.exec`.

    With ``validate=True`` every point's design is built and put through
    the §IV-A validation cycle on its first *validate_rows* logical rows
    (slow serially — this is the workload ``workers`` parallelizes; see
    ``benchmarks/bench_exec_scaling.py``).

    ``workers``/``cache``/``progress``/``chunk_size`` are forwarded to
    :func:`repro.exec.run_sweep`; every task carries :func:`warm_point` so
    parallel runs fork from pre-warmed caches.  Passing a custom *model*
    forces serial, uncached evaluation (an ad-hoc estimator has no stable
    cache identity and need not be picklable).
    """
    cfgs = list(space.points(feasible_only=True))
    params = {"validate": validate, "validate_rows": validate_rows}
    if model is not None:
        values = [evaluate_point(cfg, _model=model, **params) for cfg in cfgs]
        sweep = None
    else:
        tasks = [
            SweepTask(
                "dse.point",
                evaluate_point,
                cfg,
                params={**params, "device": space.device.name},
                warmup=warm_point,
            )
            for cfg in cfgs
        ]
        sweep = run_sweep(
            tasks,
            workers=workers,
            cache=cache,
            progress=progress,
            chunk_size=chunk_size,
        )
        values = sweep.values()
    points = [DsePoint(config=cfg, **value) for cfg, value in zip(cfgs, values)]
    return DseResult(space=space, points=points, sweep=sweep)
