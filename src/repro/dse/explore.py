"""The DSE sweep runner.

For every feasible grid point the explorer gathers: the paper's Table IV
frequency (when the point is on the paper grid), the calibrated model's
frequency, resource utilizations, and the derived bandwidth figures —
everything Figures 4–8 plot.  Optionally each design is functionally
validated with the paper's §IV-A unique-value read/write cycle.

The sweep routes through :mod:`repro.exec`: pass ``workers`` to fan the
grid out over a process pool and ``cache`` to skip previously computed
points (``python -m repro dse --workers 4`` does both).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from ..backend import DeviceBackend, get_backend
from ..core.config import PolyMemConfig
from ..core.schemes import Scheme
from ..exec import ResultCache, RunResult, SweepResult, SweepTask, run_sweep
from ..hw.calibration import table_iv_frequency
from ..hw.synthesis import SynthesisModel, default_model
from ..telemetry import context as _telemetry
from .bandwidth import BandwidthReport, read_bandwidth_gbps_many
from .space import DesignSpace, PAPER_SPACE

__all__ = [
    "DsePoint",
    "DseResult",
    "explore",
    "evaluate_point",
    "evaluate_points_batch",
    "warm_point",
]


@dataclass(frozen=True)
class DsePoint:
    """One evaluated configuration."""

    config: PolyMemConfig
    paper_mhz: float | None
    model_mhz: float
    logic_pct: float
    lut_pct: float
    bram_pct: float
    validated: bool | None

    @property
    def capacity_kb(self) -> int:
        return self.config.capacity_bytes // 1024

    @property
    def clock_mhz(self) -> float:
        """Best available frequency: paper value on-grid, model otherwise."""
        return self.paper_mhz if self.paper_mhz is not None else self.model_mhz

    @property
    def bandwidth(self) -> BandwidthReport:
        return BandwidthReport(self.config, self.clock_mhz)

    def bandwidth_at(self, source: str) -> BandwidthReport:
        """Bandwidth using the ``"paper"`` or ``"model"`` frequency."""
        if source == "paper":
            if self.paper_mhz is None:
                raise KeyError(f"{self.config.label()} not in Table IV")
            return BandwidthReport(self.config, self.paper_mhz)
        if source == "model":
            return BandwidthReport(self.config, self.model_mhz)
        raise ValueError(f"unknown frequency source {source!r}")


@dataclass
class DseResult:
    """All evaluated points plus lookup helpers."""

    space: DesignSpace
    points: list[DsePoint]
    #: execution accounting of the sweep that produced the points
    #: (None for results reconstructed from disk)
    sweep: SweepResult | None = field(default=None, compare=False, repr=False)
    #: name of the device backend the sweep targeted (None: the default
    #: Vectis path — also what disk-reconstructed results report)
    backend: str | None = field(default=None, compare=False)

    def by_scheme(self, scheme: Scheme) -> list[DsePoint]:
        return [p for p in self.points if p.config.scheme is scheme]

    def lookup(
        self, scheme: Scheme, capacity_kb: int, lanes: int, ports: int
    ) -> DsePoint | None:
        for p in self.points:
            cfg = p.config
            if (
                cfg.scheme is scheme
                and p.capacity_kb == capacity_kb
                and cfg.lanes == lanes
                and cfg.read_ports == ports
            ):
                return p
        return None

    def best(self, key) -> DsePoint:
        """The point maximizing *key* (e.g. aggregated read bandwidth)."""
        return max(self.points, key=key)

    @property
    def peak_read_gbps(self) -> float:
        return max(p.bandwidth.read_gbps for p in self.points)

    @property
    def peak_write_gbps(self) -> float:
        return max(p.bandwidth.write_gbps for p in self.points)


def evaluate_point(
    config: PolyMemConfig,
    validate: bool = False,
    validate_rows: int = 16,
    device: str | None = None,
    _model: SynthesisModel | None = None,
) -> dict:
    """Evaluate one grid point to its plain-JSON payload.

    Module-level and picklable: this is the :class:`SweepTask` function the
    process pool runs.  The synthesis model is resolved per process from
    the *device* name (fit once, then cached by :func:`default_model`).
    """
    model = _model if _model is not None else (
        default_model(device) if device else default_model()
    )
    report = model.estimate(config)
    paper = table_iv_frequency(
        config.scheme,
        config.capacity_bytes // 1024,
        config.lanes,
        config.read_ports,
    )
    validated: bool | None = None
    if validate:
        from ..maxpolymem import build_design, validate_design

        design = build_design(config, clock_source="model")
        validated = validate_design(design, max_rows=validate_rows).passed
    return {
        "paper_mhz": paper,
        "model_mhz": report.fmax_mhz,
        "logic_pct": report.logic_pct,
        "lut_pct": report.lut_pct,
        "bram_pct": report.bram_pct,
        "validated": validated,
    }


def evaluate_points_batch(
    configs,
    validate: bool = False,
    validate_rows: int = 16,
    device: str | None = None,
    _model: SynthesisModel | None = None,
) -> list[dict]:
    """Vectorized :func:`evaluate_point` over a config array.

    The :class:`SweepTask` ``batch_fn`` for the DSE grid: one
    :meth:`~repro.hw.synthesis.SynthesisModel.estimate_many` pass covers
    every config's synthesis figures, and with ``validate`` the whole
    group goes through :func:`repro.maxpolymem.validation.validate_points_batch`
    (one batched table build and slot-image cycle per config family).
    Each payload is byte-identical to ``evaluate_point(config, ...)`` —
    the contract the batch dispatch in :mod:`repro.exec.runtime` assumes
    and ``tests/dse/test_batch_equivalence.py`` pins.
    """
    configs = list(configs)
    model = _model if _model is not None else (
        default_model(device) if device else default_model()
    )
    estimate_many = getattr(model, "estimate_many", None)
    if estimate_many is not None:
        reports = estimate_many(configs)
    else:
        reports = [model.estimate(cfg) for cfg in configs]
    validated: list[bool | None] = [None] * len(configs)
    if validate:
        from ..maxpolymem.validation import validate_points_batch

        payloads = validate_points_batch(configs, max_rows=validate_rows)
        validated = [payload["passed"] for payload in payloads]
    return [
        {
            "paper_mhz": table_iv_frequency(
                cfg.scheme,
                cfg.capacity_bytes // 1024,
                cfg.lanes,
                cfg.read_ports,
            ),
            "model_mhz": report.fmax_mhz,
            "logic_pct": report.logic_pct,
            "lut_pct": report.lut_pct,
            "bram_pct": report.bram_pct,
            "validated": valid,
        }
        for cfg, report, valid in zip(configs, reports, validated)
    ]


def warm_point(
    config: PolyMemConfig,
    validate: bool = False,
    validate_rows: int = 16,
    device: str | None = None,
) -> None:
    """:class:`SweepTask` ``warmup`` hook for :func:`evaluate_point`.

    Fits the per-device synthesis model once (a few tens of ms the first
    time, memoized afterwards) and, when the point will be validated,
    pre-compiles the plan families its §IV-A cycle touches — so workers
    forked after the parent's warm pass start with every shared cache hot.
    """
    default_model(device) if device else default_model()
    if validate:
        from ..maxpolymem.validation import warm_validation

        warm_validation(config, max_rows=validate_rows)


def _warm_point_family(
    config: PolyMemConfig,
    validate: bool = False,
    validate_rows: int = 16,
    device: str | None = None,
    **_: object,
) -> tuple:
    """Dedup key for :func:`warm_point` (its ``warm_family`` attribute).

    Everything the warm-up touches is keyed by the synthesis device and —
    when validating — the plan-family axes ``(rows, cols, p, q, scheme)``;
    read-port siblings in a chunk share one warm-up instead of re-running
    it per config.
    """
    if not validate:
        return (device,)
    return (
        config.rows,
        config.cols,
        config.p,
        config.q,
        config.scheme,
        validate_rows,
        device,
    )


warm_point.warm_family = _warm_point_family


def _backend_device(backend: DeviceBackend):
    """The FPGA part a backend synthesizes on, or None for pure-link models.

    BRAM backends carry it directly; channel-system backends expose the
    fabric they sit behind; sharded backends report their first shard's
    part (shards are homogeneous by construction).
    """
    device = getattr(backend, "device", None)
    if device is not None:
        return device
    fabric = getattr(backend, "fabric", None)
    if fabric is not None:
        return _backend_device(fabric)
    shards = getattr(backend, "shards", None)
    if shards:
        return _backend_device(shards[0])
    return None


def _prune_dominated(
    cfgs: list[PolyMemConfig], model: SynthesisModel
) -> tuple[list[PolyMemConfig], int]:
    """Drop grid points that are Pareto-dominated before the sweep runs.

    Dominance is evaluated on exactly the axes — and the exact float
    values — that :func:`repro.dse.pareto.pareto_frontier` uses with its
    default ``frequency_source="auto"``: aggregated read bandwidth at the
    paper clock when on-grid (model clock otherwise), BRAM%, and logic%.
    The bandwidths come from :func:`read_bandwidth_gbps_many` and the
    utilizations from :meth:`~repro.hw.synthesis.SynthesisModel.estimate_many`,
    both bitwise equal to their scalar counterparts, so a point pruned
    here is provably dominated in the full result too; by transitivity of
    dominance every survivor's frontier membership is unchanged.  (The
    pruned *point list* is a subset, which is why ``explore`` keeps this
    off by default.)
    """
    reports = model.estimate_many(cfgs)
    clocks = [
        paper if paper is not None else report.fmax_mhz
        for paper, report in (
            (
                table_iv_frequency(
                    cfg.scheme,
                    cfg.capacity_bytes // 1024,
                    cfg.lanes,
                    cfg.read_ports,
                ),
                report,
            )
            for cfg, report in zip(cfgs, reports)
        )
    ]
    read = read_bandwidth_gbps_many(cfgs, clocks)
    bram = np.array([r.bram_pct for r in reports], dtype=np.float64)
    logic = np.array([r.logic_pct for r in reports], dtype=np.float64)
    no_worse = (
        (read[:, None] >= read[None, :])
        & (bram[:, None] <= bram[None, :])
        & (logic[:, None] <= logic[None, :])
    )
    better = (
        (read[:, None] > read[None, :])
        | (bram[:, None] < bram[None, :])
        | (logic[:, None] < logic[None, :])
    )
    dominated = (no_worse & better).any(axis=0)
    keep = [cfg for cfg, gone in zip(cfgs, dominated) if not gone]
    return keep, int(dominated.sum())


def explore(
    space: DesignSpace = PAPER_SPACE,
    model: SynthesisModel | None = None,
    validate: bool = False,
    validate_rows: int = 16,
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: Callable[[int, int, RunResult], None] | None = None,
    chunk_size: int | None = None,
    batch: bool = True,
    prune: bool = False,
    backend: str | DeviceBackend | None = None,
) -> DseResult:
    """Run the full DSE sweep over *space* through :mod:`repro.exec`.

    With ``validate=True`` every point's design is built and put through
    the §IV-A validation cycle on its first *validate_rows* logical rows
    (slow serially — this is the workload ``workers`` parallelizes; see
    ``benchmarks/bench_exec_scaling.py``).

    ``workers``/``cache``/``progress``/``chunk_size`` are forwarded to
    :func:`repro.exec.run_sweep`; every task carries :func:`warm_point` so
    parallel runs fork from pre-warmed caches.  Passing a custom *model*
    forces serial, uncached evaluation (an ad-hoc estimator has no stable
    cache identity and need not be picklable).

    ``batch`` (the default) evaluates sibling grid points through
    :func:`evaluate_points_batch` — one vectorized pass per dispatch
    group, byte-identical payloads — and, when no pool, cache, or
    progress callback is requested, bypasses the chunked sweep machinery
    with a single direct batch call (``result.sweep`` still carries the
    full accounting).  ``prune`` drops Pareto-dominated points *before*
    evaluation: the frontier of the result is provably unchanged (see
    :func:`_prune_dominated`) but the point list is a subset, so it is
    off by default.

    ``backend`` retargets the sweep at a registered device backend (name
    or instance, ``python -m repro dse --backend ...``): the space's
    synthesis device is swapped for the backend's fabric part and the
    result records the backend name.  The default (``None``) leaves the
    seed Vectis path untouched — and ``backend="vectis"`` resolves to the
    same device, so its payloads are byte-identical to the default's.
    """
    import time

    backend_name: str | None = None
    if backend is not None:
        be = backend if isinstance(backend, DeviceBackend) else get_backend(backend)
        backend_name = be.name
        device = _backend_device(be)
        if device is not None and device.name != space.device.name:
            space = replace(space, device=device)
    cfgs = list(space.points(feasible_only=True))
    candidates = len(cfgs)
    pruned = 0
    if prune:
        prune_model = model if model is not None else default_model(space.device.name)
        cfgs, pruned = _prune_dominated(cfgs, prune_model)
    params = {"validate": validate, "validate_rows": validate_rows}
    if model is not None:
        values = [evaluate_point(cfg, _model=model, **params) for cfg in cfgs]
        sweep = None
        batched_points, batch_calls, scalar_points = 0, 0, len(cfgs)
    elif (
        batch
        and workers is None
        and cache is None
        and progress is None
    ):
        device = space.device.name
        t0 = time.perf_counter()
        values = evaluate_points_batch(cfgs, device=device, **params)
        wall = time.perf_counter() - t0
        per = wall / len(cfgs) if cfgs else 0.0
        sweep = SweepResult(
            results=[
                RunResult(
                    experiment_id="dse.point",
                    key=SweepTask(
                        "dse.point",
                        evaluate_point,
                        cfg,
                        params={**params, "device": device},
                    ).cache_key(),
                    value=value,
                    seconds=per,
                    cached=False,
                )
                for cfg, value in zip(cfgs, values)
            ],
            wall_seconds=wall,
            workers=1,
            batched_points=len(cfgs),
            batch_calls=1,
        )
        batched_points, batch_calls, scalar_points = len(cfgs), 1, 0
    else:
        tasks = [
            SweepTask(
                "dse.point",
                evaluate_point,
                cfg,
                params={**params, "device": space.device.name},
                warmup=warm_point,
                batch_fn=evaluate_points_batch if batch else None,
            )
            for cfg in cfgs
        ]
        sweep = run_sweep(
            tasks,
            workers=workers,
            cache=cache,
            progress=progress,
            chunk_size=chunk_size,
        )
        values = sweep.values()
        batched_points = sweep.batched_points
        batch_calls = sweep.batch_calls
        scalar_points = sweep.n_computed - sweep.batched_points
    tel = _telemetry.active()
    if tel is not None:
        metrics = tel.metrics
        metrics.counter("dse.batch.candidates").inc(candidates)
        metrics.counter("dse.batch.pruned").inc(pruned)
        metrics.counter("dse.batch.configs").inc(batched_points)
        metrics.counter("dse.batch.scalar_configs").inc(scalar_points)
        metrics.counter("dse.batch.passes").inc(batch_calls)
    points = [DsePoint(config=cfg, **value) for cfg, value in zip(cfgs, values)]
    return DseResult(space=space, points=points, sweep=sweep, backend=backend_name)
