"""The DSE sweep runner.

For every feasible grid point the explorer gathers: the paper's Table IV
frequency (when the point is on the paper grid), the calibrated model's
frequency, resource utilizations, and the derived bandwidth figures —
everything Figures 4–8 plot.  Optionally each design is functionally
validated with the paper's §IV-A unique-value read/write cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import PolyMemConfig
from ..core.schemes import Scheme
from ..hw.calibration import table_iv_frequency
from ..hw.synthesis import SynthesisModel, default_model
from .bandwidth import BandwidthReport
from .space import DesignSpace, PAPER_SPACE

__all__ = ["DsePoint", "DseResult", "explore"]


@dataclass(frozen=True)
class DsePoint:
    """One evaluated configuration."""

    config: PolyMemConfig
    paper_mhz: float | None
    model_mhz: float
    logic_pct: float
    lut_pct: float
    bram_pct: float
    validated: bool | None

    @property
    def capacity_kb(self) -> int:
        return self.config.capacity_bytes // 1024

    @property
    def clock_mhz(self) -> float:
        """Best available frequency: paper value on-grid, model otherwise."""
        return self.paper_mhz if self.paper_mhz is not None else self.model_mhz

    @property
    def bandwidth(self) -> BandwidthReport:
        return BandwidthReport(self.config, self.clock_mhz)

    def bandwidth_at(self, source: str) -> BandwidthReport:
        """Bandwidth using the ``"paper"`` or ``"model"`` frequency."""
        if source == "paper":
            if self.paper_mhz is None:
                raise KeyError(f"{self.config.label()} not in Table IV")
            return BandwidthReport(self.config, self.paper_mhz)
        if source == "model":
            return BandwidthReport(self.config, self.model_mhz)
        raise ValueError(f"unknown frequency source {source!r}")


@dataclass
class DseResult:
    """All evaluated points plus lookup helpers."""

    space: DesignSpace
    points: list[DsePoint]

    def by_scheme(self, scheme: Scheme) -> list[DsePoint]:
        return [p for p in self.points if p.config.scheme is scheme]

    def lookup(
        self, scheme: Scheme, capacity_kb: int, lanes: int, ports: int
    ) -> DsePoint | None:
        for p in self.points:
            cfg = p.config
            if (
                cfg.scheme is scheme
                and p.capacity_kb == capacity_kb
                and cfg.lanes == lanes
                and cfg.read_ports == ports
            ):
                return p
        return None

    def best(self, key) -> DsePoint:
        """The point maximizing *key* (e.g. aggregated read bandwidth)."""
        return max(self.points, key=key)

    @property
    def peak_read_gbps(self) -> float:
        return max(p.bandwidth.read_gbps for p in self.points)

    @property
    def peak_write_gbps(self) -> float:
        return max(p.bandwidth.write_gbps for p in self.points)


def explore(
    space: DesignSpace = PAPER_SPACE,
    model: SynthesisModel | None = None,
    validate: bool = False,
    validate_rows: int = 16,
) -> DseResult:
    """Run the full DSE sweep over *space*.

    With ``validate=True`` every point's design is built and put through
    the §IV-A validation cycle on its first *validate_rows* logical rows
    (slow — intended for the integration test and the examples, not the
    benches).
    """
    model = model or default_model()
    points: list[DsePoint] = []
    for cfg in space.points(feasible_only=True):
        report = model.estimate(cfg)
        paper = table_iv_frequency(
            cfg.scheme, cfg.capacity_bytes // 1024, cfg.lanes, cfg.read_ports
        )
        validated: bool | None = None
        if validate:
            from ..maxpolymem import build_design, validate_design

            design = build_design(cfg, clock_source="model")
            validated = validate_design(design, max_rows=validate_rows).passed
        points.append(
            DsePoint(
                config=cfg,
                paper_mhz=paper,
                model_mhz=report.fmax_mhz,
                logic_pct=report.logic_pct,
                lut_pct=report.lut_pct,
                bram_pct=report.bram_pct,
                validated=validated,
            )
        )
    return DseResult(space=space, points=points)
