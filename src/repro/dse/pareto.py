"""Pareto analysis over the design space: bandwidth vs resources.

The paper reports the raw DSE grid; a downstream user asks a sharper
question — *which configurations are worth building?*  A configuration is
Pareto-optimal when no other one delivers more aggregated read bandwidth
with less of every resource (BRAM and logic).  This module extracts that
frontier and answers budget queries ("the best design under X% BRAM").
"""

from __future__ import annotations

from dataclasses import dataclass

from .explore import DsePoint, DseResult

__all__ = ["ParetoPoint", "pareto_frontier", "best_under_budget"]


@dataclass(frozen=True)
class ParetoPoint:
    """One frontier entry."""

    point: DsePoint
    read_gbps: float
    bram_pct: float
    logic_pct: float

    @property
    def label(self) -> str:
        return self.point.config.label()


def _dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """a dominates b: no worse on every axis, better on at least one."""
    no_worse = (
        a.read_gbps >= b.read_gbps
        and a.bram_pct <= b.bram_pct
        and a.logic_pct <= b.logic_pct
    )
    better = (
        a.read_gbps > b.read_gbps
        or a.bram_pct < b.bram_pct
        or a.logic_pct < b.logic_pct
    )
    return no_worse and better


def pareto_frontier(
    result: DseResult, frequency_source: str = "auto"
) -> list[ParetoPoint]:
    """The non-dominated configurations, sorted by read bandwidth.

    ``frequency_source``: ``"auto"`` uses the paper clock when on-grid
    (the default the rest of the DSE uses), ``"model"``/``"paper"`` force
    one source.
    """
    candidates = []
    for p in result.points:
        if frequency_source == "auto":
            bw = p.bandwidth.read_gbps
        else:
            bw = p.bandwidth_at(frequency_source).read_gbps
        candidates.append(
            ParetoPoint(
                point=p,
                read_gbps=bw,
                bram_pct=p.bram_pct,
                logic_pct=p.logic_pct,
            )
        )
    frontier = [
        c
        for c in candidates
        if not any(_dominates(other, c) for other in candidates)
    ]
    return sorted(frontier, key=lambda c: c.read_gbps, reverse=True)


def best_under_budget(
    result: DseResult,
    max_bram_pct: float = 100.0,
    max_logic_pct: float = 100.0,
    min_capacity_kb: int = 0,
) -> DsePoint | None:
    """Highest-read-bandwidth configuration within the resource budget."""
    feasible = [
        p
        for p in result.points
        if p.bram_pct <= max_bram_pct
        and p.logic_pct <= max_logic_pct
        and p.capacity_kb >= min_capacity_kb
    ]
    if not feasible:
        return None
    return max(feasible, key=lambda p: p.bandwidth.read_gbps)
