"""Renderers: regenerate the paper's tables and figure series as text/CSV.

The paper's Figures 4–8 are bar charts over the same x-axis — the feasible
(capacity, lanes, read ports) columns — with one series per scheme.
:func:`figure_series` extracts those series from a DSE sweep;
:func:`render_series_table` and :func:`render_table_iv` pretty-print them in
the paper's layout so benches can show paper-vs-reproduction side by side.
"""

from __future__ import annotations

import io
from typing import Callable

from ..core.schemes import Scheme
from ..exec import Report, ReportEntry, rel_error
from .explore import DsePoint, DseResult

__all__ = [
    "column_label",
    "dse_report",
    "figure_series",
    "render_series_table",
    "render_table_iv",
    "to_csv",
]


def column_label(capacity_kb: int, lanes: int, ports: int) -> str:
    """x-axis label in the paper's style: ``512,8,1``."""
    return f"{capacity_kb},{lanes},{ports}"


def figure_series(
    result: DseResult, value: Callable[[DsePoint], float]
) -> dict[Scheme, list[tuple[str, float]]]:
    """One series per scheme: ``[(column label, value(point)), ...]`` over
    the feasible columns, in paper order."""
    columns = result.space.columns()
    series: dict[Scheme, list[tuple[str, float]]] = {}
    for scheme in result.space.schemes:
        row = []
        for cap, lanes, ports in columns:
            point = result.lookup(scheme, cap, lanes, ports)
            if point is not None:
                row.append((column_label(cap, lanes, ports), value(point)))
        series[scheme] = row
    return series


def render_series_table(
    series: dict[Scheme, list[tuple[str, float]]],
    title: str,
    unit: str,
    fmt: str = "6.2f",
) -> str:
    """Text table: schemes as rows, DSE columns as columns."""
    out = io.StringIO()
    first = next(iter(series.values()))
    labels = [label for label, _ in first]
    out.write(f"{title} [{unit}]\n")
    out.write("Scheme | " + " | ".join(f"{l:>10s}" for l in labels) + "\n")
    out.write("-" * (9 + 13 * len(labels)) + "\n")
    for scheme, row in series.items():
        vals = {label: v for label, v in row}
        cells = [
            format(vals[l], fmt) if l in vals else " " * 6 for l in labels
        ]
        out.write(f"{scheme.value:6s} | " + " | ".join(f"{c:>10s}" for c in cells) + "\n")
    return out.getvalue()


def render_table_iv(result: DseResult, source: str = "model") -> str:
    """Table IV in the paper's layout, from the chosen frequency source.

    ``source``: ``"model"`` (the reproduction), ``"paper"`` (the embedded
    published values), or ``"both"`` (model with paper in parentheses).
    """
    columns = result.space.columns()
    out = io.StringIO()
    out.write("MAX-POLYMEM MAXIMUM CLOCK FREQUENCIES [MHz]")
    out.write(f"  (source: {source})\n")
    header = " | ".join(
        f"{cap}K/{lanes}L/{ports}R" for cap, lanes, ports in columns
    )
    out.write("Scheme | " + header + "\n")
    for scheme in result.space.schemes:
        cells = []
        for cap, lanes, ports in columns:
            point = result.lookup(scheme, cap, lanes, ports)
            if point is None:
                cells.append("   -   ")
                continue
            if source == "model":
                cells.append(f"{point.model_mhz:7.1f}")
            elif source == "paper":
                cells.append(
                    f"{point.paper_mhz:7.1f}" if point.paper_mhz else "   ?   "
                )
            elif source == "both":
                paper = f"{point.paper_mhz:.0f}" if point.paper_mhz else "?"
                cells.append(f"{point.model_mhz:5.1f}({paper})")
            else:
                raise ValueError(f"unknown source {source!r}")
        out.write(f"{scheme.value:6s} | " + " | ".join(cells) + "\n")
    return out.getvalue()


def dse_report(result: DseResult, freq_tolerance: float = 0.10) -> Report:
    """The sweep in the unified ``repro.exec.report`` JSON schema.

    One entry per grid point: the model's Fmax vs the paper's Table IV
    value (pass mark: within *freq_tolerance* relative error), with the
    utilization and bandwidth figures as metrics.  This is what
    ``python -m repro dse --json`` emits and what the figure benches write
    next to their text tables.
    """
    report = Report(title="MAX-PolyMem design-space exploration (Table IV, Figs 4-8)")
    for p in result.points:
        cfg = p.config
        bw = p.bandwidth
        report.entries.append(
            ReportEntry(
                experiment="Table IV",
                quantity=f"Fmax {cfg.label()} [MHz]",
                measured=round(p.model_mhz, 3),
                paper=p.paper_mhz,
                rel_err=rel_error(p.model_mhz, p.paper_mhz),
                ok=(
                    None
                    if p.paper_mhz is None
                    else abs(p.model_mhz - p.paper_mhz) / p.paper_mhz
                    <= freq_tolerance
                ),
                config=cfg.to_dict(),
                metrics={
                    "logic_pct": round(p.logic_pct, 4),
                    "lut_pct": round(p.lut_pct, 4),
                    "bram_pct": round(p.bram_pct, 4),
                    "write_gbps": round(bw.write_gbps, 4),
                    "read_gbps": round(bw.read_gbps, 4),
                    "validated": p.validated,
                },
            )
        )
    if result.sweep is not None:
        report.add_sweep_meta(result.sweep)
    return report


def to_csv(series: dict[Scheme, list[tuple[str, float]]]) -> str:
    """CSV export of a figure's series (one row per scheme)."""
    out = io.StringIO()
    first = next(iter(series.values()))
    out.write("scheme," + ",".join(label for label, _ in first) + "\n")
    for scheme, row in series.items():
        vals = {label: v for label, v in row}
        cells = [
            f"{vals[l]:.4f}" if l in vals else "" for l, _ in first
        ]
        out.write(f"{scheme.value}," + ",".join(cells) + "\n")
    return out.getvalue()
