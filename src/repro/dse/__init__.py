"""Design Space Exploration (paper §IV): Tables III–IV, Figures 4–8."""

from .bandwidth import (
    BandwidthReport,
    achieved_bandwidth,
    backend_peaks,
    bandwidth_report,
    port_bandwidth_gbps,
)
from .explore import DsePoint, DseResult, explore
from .report import (
    column_label,
    dse_report,
    figure_series,
    render_series_table,
    render_table_iv,
    to_csv,
)
from .space import LANE_GRIDS, PAPER_SPACE, DesignSpace
from .pareto import ParetoPoint, best_under_budget, pareto_frontier
from .whatif import (
    DeviceWhatIf,
    FeasibilityPoint,
    feasibility_frontier,
    lane_grid_for,
    max_capacity_kb,
    whatif_devices,
)

__all__ = [
    "BandwidthReport",
    "DesignSpace",
    "DeviceWhatIf",
    "DsePoint",
    "DseResult",
    "FeasibilityPoint",
    "LANE_GRIDS",
    "PAPER_SPACE",
    "ParetoPoint",
    "achieved_bandwidth",
    "backend_peaks",
    "best_under_budget",
    "pareto_frontier",
    "bandwidth_report",
    "column_label",
    "dse_report",
    "explore",
    "feasibility_frontier",
    "lane_grid_for",
    "max_capacity_kb",
    "figure_series",
    "port_bandwidth_gbps",
    "render_series_table",
    "render_table_iv",
    "to_csv",
    "whatif_devices",
]
