"""The design space of Table III.

Three DSE parameters (plus the scheme): total size {512 KB, 1 MB, 2 MB,
4 MB}, lanes {8 = 2x4, 16 = 2x8}, read ports {1..4}.  The explored subset is
bounded by BRAM feasibility (capacity x ports <= on-chip capacity), which
yields exactly the 18 columns of Table IV per scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.config import PolyMemConfig
from ..core.schemes import Scheme, all_schemes
from ..hw.bram import polymem_bram_usage
from ..hw.fpga import VIRTEX6_SX475T, FpgaDevice

__all__ = ["DesignSpace", "PAPER_SPACE"]

#: the paper's lane grids by lane count
LANE_GRIDS = {8: (2, 4), 16: (2, 8)}


@dataclass(frozen=True)
class DesignSpace:
    """A DSE parameter grid (Table III)."""

    capacities_kb: tuple[int, ...] = (512, 1024, 2048, 4096)
    lane_counts: tuple[int, ...] = (8, 16)
    read_ports: tuple[int, ...] = (1, 2, 3, 4)
    schemes: tuple[Scheme, ...] = tuple(all_schemes())
    width_bits: int = 64
    device: FpgaDevice = VIRTEX6_SX475T
    #: maximum read ports synthesized per lane count.  Table IV stops at
    #: 2 ports for 16-lane designs (the replicated 16x16 crossbars exhaust
    #: routing well before BRAM runs out), and this grid reproduces exactly
    #: the paper's explored columns.
    max_ports_by_lanes: tuple[tuple[int, int], ...] = ((8, 4), (16, 2))

    def __post_init__(self) -> None:
        # per-instance memo for the enumeration helpers below; lives in
        # __dict__ (not a field), so eq/hash/repr are untouched.  The
        # grid is immutable, so enumerating it twice is pure waste —
        # ``dse --json`` used to re-enumerate per report section.
        object.__setattr__(self, "_memo", {})

    def _cached(self, key, build):
        memo = self.__dict__["_memo"]
        if key not in memo:
            memo[key] = build()
        return memo[key]

    def _port_cap(self, lanes: int) -> int:
        return dict(self.max_ports_by_lanes).get(lanes, max(self.read_ports))

    def _feasible(self, cfg: PolyMemConfig) -> bool:
        if cfg.read_ports > self._port_cap(cfg.lanes):
            return False
        return self._cached(
            ("feasible", cfg),
            lambda: polymem_bram_usage(cfg, self.device.bram36).feasible,
        )

    def config(
        self, capacity_kb: int, lanes: int, ports: int, scheme: Scheme
    ) -> PolyMemConfig:
        """Build the PolyMemConfig for one grid point (through the single
        :meth:`PolyMemConfig.from_any` construction surface)."""
        p, q = LANE_GRIDS[lanes]
        return PolyMemConfig.from_any(
            {
                "capacity_kb": capacity_kb,
                "p": p,
                "q": q,
                "scheme": scheme,
                "read_ports": ports,
                "width_bits": self.width_bits,
            }
        )

    def points(self, feasible_only: bool = True) -> Iterator[PolyMemConfig]:
        """All grid points in the paper's column order (size, lanes, ports
        fastest within scheme).  With ``feasible_only`` (the default), only
        configurations whose data fits the device BRAM are yielded —
        exactly the Table IV columns.  Enumeration is memoized per
        instance (configs are immutable)."""
        return iter(
            self._cached(
                ("points", feasible_only),
                lambda: tuple(
                    cfg
                    for scheme in self.schemes
                    for cfg in self.scheme_points(scheme, feasible_only)
                ),
            )
        )

    def scheme_points(
        self, scheme: Scheme, feasible_only: bool = True
    ) -> Iterator[PolyMemConfig]:
        """Grid points of a single scheme, column order."""

        def build():
            return tuple(
                cfg
                for cap in self.capacities_kb
                for lanes in self.lane_counts
                for ports in self.read_ports
                for cfg in [self.config(cap, lanes, ports, scheme)]
                if not feasible_only or self._feasible(cfg)
            )

        return iter(self._cached(("scheme_points", scheme, feasible_only), build))

    def columns(self) -> list[tuple[int, int, int]]:
        """Feasible (capacity KB, lanes, ports) columns — Table IV order is
        (size, lanes major; ports minor)."""

        def build():
            return [
                (cap, lanes, ports)
                for cap in self.capacities_kb
                for lanes in self.lane_counts
                for ports in self.read_ports
                if self._feasible(self.config(cap, lanes, ports, self.schemes[0]))
            ]

        return list(self._cached(("columns",), build))

    def size(self, feasible_only: bool = True) -> int:
        """Number of explored grid points (memoized with the enumeration)."""
        return sum(1 for _ in self.points(feasible_only))


#: the exact grid evaluated by the paper
PAPER_SPACE = DesignSpace()
