"""``repro.program`` — the access-program IR and its execution pipeline.

One typed description of a memory-bound kernel
(:class:`~repro.program.ir.AccessProgram`: ordered
:class:`~repro.program.ir.ParallelRead` /
:class:`~repro.program.ir.ParallelWrite` /
:class:`~repro.program.ir.Compute` / :class:`~repro.program.ir.Barrier`
ops plus metadata), one pass pipeline
(:func:`~repro.program.passes.compile_program`: validate → coalesce →
compile to residue tables → segment), and one engine
(:func:`~repro.program.engine.execute`) that replays each segment whole
and reports through a single :class:`~repro.program.report.KernelReport`.
Every PolyMem client — the application kernels, the PRF vector machine,
the schedule executor, the STREAM controller, the fused MAX-PolyMem
chunk proof — *lowers* to this IR instead of hand-assembling
:class:`~repro.core.plan.AccessTrace` objects.

Demo lowerings live in :mod:`repro.program.lower` (imported lazily —
it depends on the kernel modules, which import this package).
"""

from .analysis import op_slots, slot_disjoint
from .engine import Observer, ProgramResult, execute
from .ir import (
    AccessOp,
    AccessProgram,
    Barrier,
    Compute,
    ParallelRead,
    ParallelWrite,
)
from .passes import (
    CompiledProgram,
    CompiledSegment,
    TraceStep,
    compile_program,
    validate_program,
    warm_plans,
)
from .report import CycleScope, KernelReport

__all__ = [
    "AccessOp",
    "AccessProgram",
    "Barrier",
    "CompiledProgram",
    "CompiledSegment",
    "Compute",
    "CycleScope",
    "KernelReport",
    "Observer",
    "ParallelRead",
    "ParallelWrite",
    "ProgramResult",
    "TraceStep",
    "compile_program",
    "execute",
    "op_slots",
    "slot_disjoint",
    "validate_program",
    "warm_plans",
]
