"""``repro.program`` — the access-program IR and its execution pipeline.

One typed description of a memory-bound kernel
(:class:`~repro.program.ir.AccessProgram`: ordered
:class:`~repro.program.ir.ParallelRead` /
:class:`~repro.program.ir.ParallelWrite` /
:class:`~repro.program.ir.Compute` / :class:`~repro.program.ir.Barrier`
ops plus metadata), one pass pipeline
(:func:`~repro.program.passes.compile_program`: validate → coalesce →
compile to residue tables → segment), and one engine
(:func:`~repro.program.engine.execute`) that replays each segment whole
and reports through a single :class:`~repro.program.report.KernelReport`.
Every PolyMem client — the application kernels, the PRF vector machine,
the schedule executor, the STREAM controller, the fused MAX-PolyMem
chunk proof — *lowers* to this IR instead of hand-assembling
:class:`~repro.core.plan.AccessTrace` objects.

Programs are constructed through one builder surface
(:mod:`repro.program.builder`: :func:`~repro.program.builder.build` and
the fluent :class:`~repro.program.builder.ProgramBuilder`), and the
engine runs them on one of two backends
(:data:`~repro.program.engine.BACKENDS`): ``"fused"`` — the default —
JIT-specializes barrier-free segment groups into precomputed
fancy-index kernels (:mod:`repro.program.fuse`), while ``"interp"``
replays step by step as the bit-exact reference.

Demo lowerings live in :mod:`repro.program.lower` (imported lazily —
it depends on the kernel modules, which import this package).
"""

from .analysis import op_slots, slot_disjoint
from .builder import BuiltProgram, ProgramBuilder, SPEC_NAMES, build
from .engine import (
    BACKENDS,
    DEFAULT_BACKEND,
    Observer,
    ProgramResult,
    execute,
)
from .fuse import (
    FusionPlan,
    KernelCache,
    fusion_plan,
    kernel_cache,
    warm_kernels,
)
from .ir import (
    AccessOp,
    AccessProgram,
    Barrier,
    Compute,
    ParallelRead,
    ParallelWrite,
)
from .passes import (
    CompiledProgram,
    CompiledSegment,
    TraceStep,
    compile_program,
    validate_program,
    warm_plans,
)
from .report import CycleScope, KernelReport

__all__ = [
    "AccessOp",
    "AccessProgram",
    "BACKENDS",
    "Barrier",
    "BuiltProgram",
    "CompiledProgram",
    "CompiledSegment",
    "Compute",
    "CycleScope",
    "DEFAULT_BACKEND",
    "FusionPlan",
    "KernelCache",
    "KernelReport",
    "Observer",
    "ParallelRead",
    "ParallelWrite",
    "ProgramBuilder",
    "ProgramResult",
    "SPEC_NAMES",
    "TraceStep",
    "build",
    "compile_program",
    "execute",
    "fusion_plan",
    "kernel_cache",
    "warm_kernels",
    "op_slots",
    "slot_disjoint",
    "validate_program",
    "warm_plans",
]
