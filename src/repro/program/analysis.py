"""Static analyses over access programs.

These run on *describe-only* programs (no write values needed): the
anchors and pattern kinds alone determine which physical bank slots an
op touches, via the compiled residue tables
(:meth:`~repro.core.polymem.PolyMem.access_slots` — one table gather per
op, no cycle cost, no conflict check).

:func:`slot_disjoint` is the batched tick engine's chunk proof,
relocated from the fused MAX-PolyMem kernel: a chunk of claimed accesses
may be fast-forwarded only when its writes never overlap each other
(fancy-indexed assignment then matches sequential issue order) and no
read touches a written slot (read-before-write ordering inside the chunk
is unobservable, so all collision policies coincide).
"""

from __future__ import annotations

import numpy as np

from ..core.polymem import PolyMem
from .ir import AccessOp, AccessProgram, ParallelRead, ParallelWrite

__all__ = ["op_slots", "slot_disjoint"]


def op_slots(op: AccessOp, memory: PolyMem) -> np.ndarray:
    """The ``(n, lanes)`` flat bank-slot ids *op* touches on *memory*.

    Heterogeneous ops gather per distinct kind (slot ids are
    order-independent, so masked assembly is exact).  Raises
    :class:`~repro.core.exceptions.AddressError` on out-of-bounds anchors,
    like the batched access paths the proof guards.
    """
    if op.uniform:
        return memory.access_slots(op.kind, op.anchors_i, op.anchors_j, op.stride)
    slots = np.empty((op.n, memory.lanes), dtype=np.int64)
    codes = np.fromiter(
        (k.value for k in op.kind), dtype=object, count=op.n
    )
    for kind in dict.fromkeys(op.kind):
        m = codes == kind.value
        slots[m] = memory.access_slots(
            kind, op.anchors_i[m], op.anchors_j[m], op.stride
        )
    return slots


def slot_disjoint(program: AccessProgram, memory) -> bool:
    """Whether the program's writes are self-disjoint and disjoint from
    every read — the condition under which whole-chunk fast-forwarding is
    bit-identical to per-cycle stepping.

    *memory* is one :class:`PolyMem` (applied to every op) or a mapping
    of memory names to PolyMems.  The test is one sort of the write slots
    plus a searchsorted probe per read op — no set construction.
    """

    def mem_of(op: AccessOp) -> PolyMem:
        return memory if isinstance(memory, PolyMem) else memory[op.mem]

    writes = [op for op in program.access_ops if isinstance(op, ParallelWrite)]
    if not writes:
        return True
    wr_slots = np.sort(
        np.concatenate([op_slots(op, mem_of(op)).ravel() for op in writes])
    )
    if (wr_slots[1:] == wr_slots[:-1]).any():
        return False  # overlapping writes: sequential semantics differ
    for op in program.access_ops:
        if not isinstance(op, ParallelRead):
            continue
        rd_slots = op_slots(op, mem_of(op)).ravel()
        pos = np.minimum(np.searchsorted(wr_slots, rd_slots), wr_slots.size - 1)
        if (wr_slots[pos] == rd_slots).any():
            return False  # a read would observe an in-chunk write
    return True
