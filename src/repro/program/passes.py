"""The pass pipeline: validate → coalesce → compile → segment.

:func:`compile_program` turns an :class:`~repro.program.ir.AccessProgram`
into a :class:`CompiledProgram`: the op list is validated, split into
*segments* at :class:`~repro.program.ir.Compute` /
:class:`~repro.program.ir.Barrier` boundaries, and within each segment
adjacent compatible access ops are coalesced into :class:`TraceStep`\\ s —
each one :class:`~repro.core.plan.AccessTrace` replayed whole by the
engine.

Coalescing only groups accesses in ways
:meth:`~repro.core.polymem.PolyMem.replay` proves bit-identical to
issuing the ops one trace each:

* an op with ``fuse=True`` joins the current group as a *parallel*
  stream of the same trace (distinct read port, or the trace's single
  write stream) — it must target the same memory and match the group's
  cycle count;
* consecutive unfused reads on the **same port / memory / stride**
  concatenate into one longer stream (equivalent to sequential replays:
  same cycles, stats, outputs, memory state and error behaviour — replay
  re-issues a failing cycle through ``step()``, whose errors carry no
  trace-relative index);
* consecutive unfused writes concatenate likewise;
* anything else — a write after reads, a port switch, a stride change, a
  different memory, any op after a fused group — flushes the group and
  starts a new trace.

The residue-table half of compilation (:func:`~repro.core.plan.compile_plan`)
is warmed lazily by :func:`warm_plans` once the engine knows the target
geometry; warming never raises, so error *timing* is identical to the
hand-built paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..core.exceptions import PolyMemError, ProgramError
from ..core.patterns import PatternKind
from ..core.plan import AccessTrace, compile_plan
from .ir import AccessOp, AccessProgram, Barrier, Compute, ParallelRead, ParallelWrite

__all__ = [
    "CompiledProgram",
    "CompiledSegment",
    "TraceStep",
    "compile_program",
    "validate_program",
    "warm_plans",
]


def validate_program(program: AccessProgram) -> None:
    """Structural validation beyond what the op constructors enforce."""
    if not isinstance(program, AccessProgram):
        raise ProgramError(f"expected an AccessProgram, got {type(program).__name__}")
    group_open = False
    for idx, op in enumerate(program.ops):
        if isinstance(op, (Compute, Barrier)):
            group_open = False
            continue
        if not isinstance(op, AccessOp):
            raise ProgramError(
                f"op {idx} of {program.name!r} is not an access/compute/barrier "
                f"op: {op!r}"
            )
        if op.fuse and not group_open:
            raise ProgramError(
                f"op {idx} of {program.name!r} has fuse=True but no preceding "
                f"access op in its segment"
            )
        group_open = True


def _merge_kinds(pieces: list[AccessOp]):
    """One kind (uniform across all pieces) or the expanded per-cycle list."""
    distinct = set()
    for op in pieces:
        distinct.update([op.kind] if op.uniform else op.kind)
    if len(distinct) == 1:
        return next(iter(distinct))
    out: list[PatternKind] = []
    for op in pieces:
        out.extend(op.kind_seq())
    return out


class TraceStep:
    """One replayable trace: coalesced parallel streams on one memory.

    ``reads`` maps each port (insertion order = issue order, which the
    replay's collision handling observes) to ``(kind, ai, aj, stride)``;
    ``write`` is ``None`` or ``(kind, ai, aj, stride, pieces)`` where
    ``pieces`` is a list of ``(start, stop, ValueSource)`` value spans.
    ``bindings`` lists ``(tag, port, start, stop)`` spans of the replay
    outputs to publish into the execution environment.
    """

    __slots__ = ("mem", "n", "reads", "write", "bindings", "_trace")

    def __init__(self, mem, n, reads, write, bindings):
        self.mem = mem
        self.n = n
        self.reads = reads
        self.write = write
        self.bindings = bindings
        self._trace = None

    @property
    def concrete(self) -> bool:
        """Whether the trace can be built once and cached (no late-bound
        or missing write values)."""
        if self.write is None:
            return True
        return all(
            isinstance(v, np.ndarray) for _, _, v in self.write[4]
        )

    def write_values(self, env: Mapping[str, Any]) -> np.ndarray:
        """Assemble the ``(n, lanes)`` write data, resolving callables."""
        _, _, _, _, pieces = self.write
        parts = []
        for start, stop, src in pieces:
            if src is None:
                raise ProgramError(
                    "write op has no values: describe-only programs "
                    "cannot execute"
                )
            values = np.asarray(src(env) if callable(src) else src)
            if values.ndim != 2 or values.shape[0] != stop - start:
                raise ProgramError(
                    f"write values must be (n, lanes) = ({stop - start}, ...), "
                    f"got shape {values.shape}"
                )
            parts.append(values)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def trace(self, env: Mapping[str, Any] | None = None) -> AccessTrace:
        """The :class:`AccessTrace` for this step (cached when concrete)."""
        if self._trace is not None:
            return self._trace
        trace = AccessTrace()
        for port, (kind, ai, aj, stride) in self.reads.items():
            trace.read(kind, ai, aj, port=port, stride=stride)
        if self.write is not None:
            kind, ai, aj, stride, _ = self.write
            trace.write(kind, ai, aj, self.write_values(env or {}), stride=stride)
        if self.concrete:
            self._trace = trace
        return trace

    def __repr__(self) -> str:
        ports = ",".join(str(p) for p in self.reads)
        w = "+write" if self.write is not None else ""
        return f"TraceStep(mem={self.mem!r}, n={self.n}, ports=[{ports}]{w})"


@dataclass(frozen=True)
class CompiledSegment:
    """A run of traces bounded by compute/barrier ops (or program end)."""

    index: int
    steps: tuple
    #: the Compute/Barrier closing the segment (``None`` at program end)
    boundary: object = None

    @property
    def access_cycles(self) -> int:
        return sum(step.n for step in self.steps)


@dataclass(frozen=True)
class CompiledProgram:
    """The compiled form: segments of replayable trace steps."""

    program: AccessProgram
    segments: tuple
    #: memory names in first-use order (the CycleScope order)
    mems: tuple = ()
    #: ``(mem, kind, stride)`` families touched — the plan-warming set
    families: tuple = field(default=(), repr=False)

    @property
    def n_traces(self) -> int:
        return sum(len(seg.steps) for seg in self.segments)

    @property
    def access_cycles(self) -> int:
        return sum(seg.access_cycles for seg in self.segments)


class _Group:
    """The coalescer's open group: pieces destined for one trace."""

    def __init__(self, op: AccessOp):
        self.mem = op.mem
        self.n = op.n
        self.fused = False
        self.read_pieces: dict[int, list[ParallelRead]] = {}
        self.write_pieces: list[ParallelWrite] = []
        self._add(op)

    def _add(self, op: AccessOp) -> None:
        if isinstance(op, ParallelRead):
            self.read_pieces.setdefault(op.port, []).append(op)
        else:
            self.write_pieces.append(op)

    # -- joining rules -----------------------------------------------------
    def fuse(self, op: AccessOp) -> None:
        """Attach *op* as a parallel stream of this group's trace."""
        if op.mem != self.mem:
            raise ProgramError(
                f"fuse=True across memories: group on {self.mem!r}, "
                f"op on {op.mem!r}"
            )
        if op.n != self.n:
            raise ProgramError(
                f"fuse=True needs matching stream lengths: group has "
                f"{self.n} cycles, op has {op.n}"
            )
        if isinstance(op, ParallelRead) and op.port in self.read_pieces:
            raise ProgramError(
                f"fuse=True onto an occupied read port {op.port}"
            )
        if isinstance(op, ParallelWrite) and self.write_pieces:
            raise ProgramError("fuse=True onto an occupied write stream")
        self._add(op)
        self.fused = True

    def can_concat(self, op: AccessOp) -> bool:
        if self.fused or op.mem != self.mem:
            return False
        if isinstance(op, ParallelRead):
            if self.write_pieces or list(self.read_pieces) != [op.port]:
                return False
            return self.read_pieces[op.port][0].stride == op.stride
        if self.read_pieces or not self.write_pieces:
            return False
        return self.write_pieces[0].stride == op.stride

    def concat(self, op: AccessOp) -> None:
        self._add(op)
        self.n += op.n

    # -- finalization ------------------------------------------------------
    def finalize(self) -> TraceStep:
        reads = {}
        bindings = []
        for port, pieces in self.read_pieces.items():
            kind = _merge_kinds(pieces)
            ai = np.concatenate([op.anchors_i for op in pieces])
            aj = np.concatenate([op.anchors_j for op in pieces])
            reads[port] = (kind, ai, aj, pieces[0].stride)
            start = 0
            for op in pieces:
                if op.tag is not None:
                    bindings.append((op.tag, port, start, start + op.n))
                start += op.n
        write = None
        if self.write_pieces:
            pieces = self.write_pieces
            kind = _merge_kinds(pieces)
            ai = np.concatenate([op.anchors_i for op in pieces])
            aj = np.concatenate([op.anchors_j for op in pieces])
            spans = []
            start = 0
            for op in pieces:
                spans.append((start, start + op.n, op.values))
                start += op.n
            write = (kind, ai, aj, pieces[0].stride, spans)
        return TraceStep(self.mem, self.n, reads, write, bindings)


def compile_program(program: AccessProgram) -> CompiledProgram:
    """Validate, coalesce and segment *program* into replayable traces."""
    validate_program(program)
    segments: list[CompiledSegment] = []
    steps: list[TraceStep] = []
    mems: list[str] = []
    families: set = set()
    group: _Group | None = None

    def flush_group() -> None:
        nonlocal group
        if group is not None:
            steps.append(group.finalize())
            group = None

    def close_segment(boundary) -> None:
        flush_group()
        segments.append(CompiledSegment(len(segments), tuple(steps), boundary))
        steps.clear()

    for op in program.ops:
        if isinstance(op, (Compute, Barrier)):
            close_segment(op)
            continue
        if op.mem not in mems:
            mems.append(op.mem)
        for kind in (
            [op.kind] if op.uniform else dict.fromkeys(op.kind)
        ):
            families.add((op.mem, kind, op.stride))
        if op.fuse:
            # validate_program guarantees an open group here
            group.fuse(op)
        elif group is not None and group.can_concat(op):
            group.concat(op)
        else:
            flush_group()
            group = _Group(op)
    if steps or group is not None or not segments:
        close_segment(None)
    return CompiledProgram(
        program=program,
        segments=tuple(segments),
        mems=tuple(mems),
        families=tuple(sorted(families)),
    )


def warm_plans(compiled: CompiledProgram, mems: Mapping[str, Any]) -> None:
    """Pre-compile the residue tables for every access family.

    Warming is a pure cache fill (:func:`compile_plan` is memoized
    process-wide); failures are swallowed so malformed accesses raise at
    the exact replay the hand-built paths would have raised at.
    """
    for name, kind, stride in compiled.families:
        pm = mems.get(name)
        if pm is None:
            continue
        try:
            compile_plan(pm.rows, pm.cols, pm.p, pm.q, pm.scheme, kind, stride)
        except PolyMemError:
            pass
