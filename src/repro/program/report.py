"""Kernel-style cycle accounting, shared by every program execution.

:class:`KernelReport` and :class:`CycleScope` started life in
``repro.kernels.base``; they moved here when the execution engine became
the one place producing them (``repro.kernels.base`` re-exports both for
backward compatibility).  :class:`KernelReport` normalizes the
accounting: parallel-access cycles consumed, elements touched, and the
speedup over a scalar (one-element-per-cycle) memory — the metric family
of the paper's §III-A.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.polymem import PolyMem

__all__ = ["KernelReport", "CycleScope"]


@dataclass(frozen=True)
class KernelReport:
    """Cycle accounting of one kernel execution."""

    kernel: str
    cycles: int
    elements_accessed: int
    result_elements: int

    @property
    def speedup_vs_scalar(self) -> float:
        """Parallel cycles vs one element per cycle for the same traffic."""
        return self.elements_accessed / self.cycles if self.cycles else 0.0

    @property
    def lane_efficiency(self) -> float:
        """Fraction of lane slots carrying useful elements — needs the lane
        count, so it is provided by :class:`CycleScope`."""
        return getattr(self, "_efficiency", float("nan"))


class CycleScope:
    """Context manager that captures a PolyMem's cycle/element deltas.

    >>> # with CycleScope(pm, "kernel") as scope: ... scope.report()
    """

    def __init__(self, memory: PolyMem, kernel: str, *extra: PolyMem):
        self.memories = (memory, *extra)
        self.kernel = kernel
        self._start_cycles = [0] * len(self.memories)
        self._start_elems = [0] * len(self.memories)

    def __enter__(self) -> "CycleScope":
        for k, mem in enumerate(self.memories):
            self._start_cycles[k] = mem.cycles
            self._start_elems[k] = self._elements(mem)
        return self

    def __exit__(self, *exc) -> None:
        return None

    @staticmethod
    def _elements(mem: PolyMem) -> int:
        return mem.write_stats.elements + sum(
            s.elements for s in mem.read_stats
        )

    def report(self, result_elements: int = 0) -> KernelReport:
        """The accounting since scope entry."""
        cycles = sum(
            mem.cycles - start
            for mem, start in zip(self.memories, self._start_cycles)
        )
        elements = sum(
            self._elements(mem) - start
            for mem, start in zip(self.memories, self._start_elems)
        )
        return KernelReport(
            kernel=self.kernel,
            cycles=cycles,
            elements_accessed=elements,
            result_elements=result_elements,
        )
