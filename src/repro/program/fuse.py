"""The fusion backend: specialized NumPy kernels for compiled programs.

The interpreting engine dispatches each :class:`~repro.program.passes.
TraceStep` through :meth:`PolyMem.replay`, which re-derives the same
anchor-dependent machinery on every execution: the slot-index tables of
each stream, the validity masks, and the read/write collision structure
(a dense last-writer table or an event sort).  For a program that is
executed more than once — parameter sweeps, benchmark repetitions, the
PRF machine re-issuing the same operand shapes — that derivation is pure
overhead: none of it depends on the *data*, only on the anchors and the
memory geometry.

:func:`fusion_plan` is the pattern-matching pass that removes it.  It
walks the compiled segment list, groups adjacent segments inside
barrier-free regions, and specializes each group against the concrete
memories into a *group kernel*:

* every step's fancy-index tables (``slots``, validity, and the
  collision-forwarding gather/scatter indices) are precomputed once;
* runs of adjacent read-only steps on one memory with one port layout
  collapse into a single fused gather (their tables concatenate — even
  across stride or kind changes the trace coalescer must split on);
* write steps become one gather + precomputed forwarding assignment +
  one scatter;
* anything the fast path cannot prove bit-identical — invalid cycles,
  out-of-range ports, describe-only writes, ``forbid``-policy same-cycle
  collisions, empty steps — stays on the interpreting
  :meth:`~repro.core.polymem.PolyMem.replay` path, so error behaviour,
  partial state and cycle accounting are exact.

Group kernels are cached content-addressed in the module-level
:data:`kernel_cache`, keyed the way :mod:`repro.exec.cache` keys sweep
results: a SHA-256 over a canonical header (memory geometry, collision
policy, per-step access structure, write-value shapes) plus the raw
anchor bytes.  Two executions of structurally identical programs — same
anchors, same geometry, any data — share one kernel.

Specialization is per ``(scheme, lane grid, collision policy)`` by
construction: all three are part of the key, and the precomputed
forwarding indices bake the policy's visibility rule in.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Any, Mapping

import numpy as np

from ..core.exceptions import PolyMemError
from ..core.plan import AccessTrace, _Stream
from ..telemetry import context as _telemetry

__all__ = [
    "FusionPlan",
    "KernelCache",
    "fusion_plan",
    "kernel_cache",
    "warm_kernels",
]

#: version tag of the kernel-key format; bump on any change to the key
#: header or the cached kernel structure
KEY_FORMAT = "repro.program.fuse/1"

_MISS = object()


class KernelCache:
    """A small LRU of compiled group kernels, content-addressed by key.

    Kernels hold only geometry-derived index tables (never data), so a
    hit is valid for any memory contents; the LRU bound keeps the large
    precomputed tables of one-shot programs from accumulating.
    """

    def __init__(self, maxsize: int = 64):
        self.maxsize = maxsize
        self._entries: OrderedDict[str, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        entry = self._entries.get(key, _MISS)
        tel = _telemetry.active()
        if entry is _MISS:
            self.misses += 1
            if tel is not None:
                tel.metrics.counter("program.fusion.kernel_cache.misses").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if tel is not None:
            tel.metrics.counter("program.fusion.kernel_cache.hits").inc()
        return entry

    def put(self, key: str, kernel) -> None:
        self._entries[key] = kernel
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def ensure(self, key: str, build) -> tuple:
        """The kernel under *key*, building (and caching) it on a miss.

        Returns ``(kernel, hit)``.  This is the pre-warm hook of the
        fork-after-warm exec runtime: a parent process can ensure every
        group kernel a task list will need before forking workers, which
        then find the cache warm copy-on-write.
        """
        kernel = self.get(key)
        if kernel is not None:
            return kernel, True
        kernel = build()
        self.put(key, kernel)
        return kernel, False

    def clear(self) -> None:
        self._entries.clear()
        self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: the process-wide kernel cache (mirrors the plan cache's sharing model)
kernel_cache = KernelCache()


# ---------------------------------------------------------------------------
# content-addressed group keys


def _kind_token(kind):
    if isinstance(kind, list):
        return [k.value for k in kind]
    return kind.value


def _span_token(start: int, stop: int, src) -> list:
    if src is None:
        return [start, stop, "none"]
    if callable(src):
        return [start, stop, "callable"]
    # concrete value *shapes* classify the kernel (the lane-width check
    # happens at build time); the data itself never enters the key
    return [start, stop, "array", list(np.asarray(src).shape)]


def group_key(segments, mems: Mapping[str, Any]) -> str:
    """The content address of one barrier-free segment group.

    SHA-256 over a canonical JSON header — memory geometry + collision
    policy per memory, access structure per step — followed by the raw
    anchor bytes of every stream, mirroring how ``repro.exec.cache``
    derives sweep keys.
    """
    header: dict = {"format": KEY_FORMAT, "mems": {}, "segments": []}
    blobs: list[np.ndarray] = []

    def add_anchors(ai, aj) -> None:
        blobs.append(np.ascontiguousarray(ai, dtype=np.int64))
        blobs.append(np.ascontiguousarray(aj, dtype=np.int64))

    for name in sorted({s.mem for seg in segments for s in seg.steps}):
        pm = mems[name]
        header["mems"][name] = [
            pm.rows, pm.cols, pm.p, pm.q, str(pm.scheme),
            pm.collision_policy, pm.read_ports,
            str(pm.banks.dtype), int(pm.banks.bank_depth),
        ]
    for seg in segments:
        seg_desc = []
        for step in seg.steps:
            reads_desc = []
            for port, (kind, ai, aj, stride) in step.reads.items():
                reads_desc.append([port, _kind_token(kind), stride])
                add_anchors(ai, aj)
            write_desc = None
            if step.write is not None:
                kind, ai, aj, stride, pieces = step.write
                write_desc = [
                    _kind_token(kind), stride,
                    [_span_token(*piece) for piece in pieces],
                ]
                add_anchors(ai, aj)
            seg_desc.append([step.mem, step.n, reads_desc, write_desc])
        header["segments"].append(seg_desc)
    h = hashlib.sha256()
    h.update(json.dumps(header, sort_keys=True, separators=(",", ":")).encode())
    for blob in blobs:
        h.update(b"\0")
        h.update(blob.tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# kernel construction


class _StepTables:
    """Precomputed index tables for one fusable write-bearing step.

    ``reads`` maps each port to its ``(n, lanes)`` slot table;
    ``w_slots`` is the flattened write-slot table (last-write-wins under
    flat fancy assignment, exactly like replay's scatter); ``forwards``
    maps ports to ``(flat_result_index, flat_value_index)`` gather pairs
    implementing the collision policy's same-trace write visibility.
    """

    __slots__ = ("reads", "w_slots", "forwards")

    def __init__(self, reads, w_slots, forwards):
        self.reads = reads
        self.w_slots = w_slots
        self.forwards = forwards


def _classify_step(step, pm):
    """Build the fast-path tables for *step*, or ``None`` to keep it on
    the interpreting replay path.

    Returns ``("reads", tables)`` for a fusable read-only step (joinable
    into a gather run) or ``("write", _StepTables)`` for a fusable step
    with a write stream.
    """
    n = step.n
    if n == 0:
        return None  # replay's empty-trace path charges nothing; keep it
    for port in step.reads:
        if not 0 <= port < pm.read_ports:
            return None  # replay raises the exact PortError
    try:
        bad = np.zeros(n, dtype=bool)
        read_tabs = {}
        for port, (kind, ai, aj, stride) in step.reads.items():
            slots, valid = _Stream(kind, ai, aj, stride).tables(pm.plan)
            bad |= ~valid
            read_tabs[port] = slots
        if step.write is None:
            if bad.any():
                return None  # serial error path owns invalid cycles
            return ("reads", read_tabs)
        kind, ai, aj, stride, pieces = step.write
        if any(src is None for _, _, src in pieces):
            return None  # describe-only: execution must raise ProgramError
        w_slots, w_valid = _Stream(kind, ai, aj, stride).tables(pm.plan)
        bad |= ~w_valid
    except PolyMemError:
        return None
    if step.concrete:
        w = step.write_values({})
        if w.shape[1] != pm.lanes:
            return None  # replay flags bad[0] and re-raises serially
    if bad.any():
        return None
    # the same event structure replay sorts per call, computed once:
    # write events keyed slot * (n + 1) + cycle (unique — one cycle's
    # write slots are distinct), reads binary-search their predecessor
    t_col = np.arange(n, dtype=np.int64)[:, None]
    kw = (w_slots * (n + 1) + t_col).ravel()
    w_order = np.argsort(kw)
    kw_sorted = kw[w_order]
    if pm.collision_policy == "forbid":
        for r_slots in read_tabs.values():
            kr = (r_slots * (n + 1) + t_col).ravel()
            pos = np.minimum(np.searchsorted(kw_sorted, kr), kw_sorted.size - 1)
            if (kw_sorted[pos] == kr).any():
                return None  # same-cycle collision: serial error path
    forwards = {}
    bound = t_col + 1 if pm.collision_policy == "write_first" else t_col
    for port, r_slots in read_tabs.items():
        kr = (r_slots * (n + 1) + bound).ravel()
        pos = np.searchsorted(kw_sorted, kr, side="left") - 1
        clipped = np.maximum(pos, 0)
        hit = (pos >= 0) & (kw_sorted[clipped] // (n + 1) == r_slots.ravel())
        if hit.any():
            forwards[port] = (np.flatnonzero(hit), w_order[clipped[hit]])
    tables = _StepTables(read_tabs, w_slots.ravel(), forwards)
    return ("write", tables)


def _build_group_kernel(segments, mems: Mapping[str, Any]) -> tuple:
    """Specialize one segment group: a tuple of per-segment unit lists.

    Units are ``("run", step_indices, {port: concatenated_slots})`` for a
    fused read gather, ``("write", step_index, _StepTables)`` for a fused
    read+write step, or ``("interp", step_index)`` for the replay path.
    """
    kernel = []
    for seg in segments:
        units: list[tuple] = []
        run: list[tuple[int, dict]] = []  # (step index, read tables)
        run_mem = run_ports = None

        def flush_run() -> None:
            nonlocal run, run_mem, run_ports
            if not run:
                return
            cat = {
                port: np.ascontiguousarray(
                    np.concatenate([tabs[port] for _, tabs in run])
                )
                for port in run_ports
            }
            units.append(("run", tuple(idx for idx, _ in run), cat))
            run, run_mem, run_ports = [], None, None

        for idx, step in enumerate(seg.steps):
            classified = _classify_step(step, mems[step.mem])
            if classified is None:
                flush_run()
                units.append(("interp", idx))
                continue
            tag, tables = classified
            if tag == "write":
                flush_run()
                units.append(("write", idx, tables))
                continue
            ports = tuple(tables)
            if run and (step.mem != run_mem or ports != run_ports):
                flush_run()
            if not run:
                run_mem, run_ports = step.mem, ports
            run.append((idx, tables))
        flush_run()
        kernel.append(tuple(units))
    return tuple(kernel)


# ---------------------------------------------------------------------------
# the plan: grouped segments bound to their kernels


def _split_groups(segments) -> list[list]:
    """Maximal barrier-free segment runs (a Barrier boundary closes one).

    Compute boundaries do *not* split groups — host work between accesses
    is inlined into the group's execution, index tables intact."""
    from .ir import Barrier

    groups: list[list] = []
    current: list = []
    for seg in segments:
        current.append(seg)
        if isinstance(seg.boundary, Barrier):
            groups.append(current)
            current = []
    if current:
        groups.append(current)
    return groups


class FusionPlan:
    """A compiled program's segments bound to specialized group kernels."""

    __slots__ = (
        "units", "n_groups", "n_fused_steps", "n_fallback_steps",
        "cache_hits", "cache_misses",
    )

    def __init__(self, units, n_groups, cache_hits, cache_misses):
        self.units = units  # dict: segment index -> unit tuple
        self.n_groups = n_groups
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses
        self.n_fused_steps = 0
        self.n_fallback_steps = 0
        for seg_units in units.values():
            for unit in seg_units:
                if unit[0] == "interp":
                    self.n_fallback_steps += 1
                elif unit[0] == "run":
                    self.n_fused_steps += len(unit[1])
                else:
                    self.n_fused_steps += 1

    @property
    def n_fused_segments(self) -> int:
        """Segments with at least one fused (non-fallback) step."""
        return sum(
            1
            for seg_units in self.units.values()
            if any(unit[0] != "interp" for unit in seg_units)
        )

    def summary(self) -> dict:
        """Plain-JSON fusion statistics (the CLI's ``--backend fused`` view)."""
        return {
            "groups": self.n_groups,
            "fused_segments": self.n_fused_segments,
            "fused_steps": self.n_fused_steps,
            "fallback_steps": self.n_fallback_steps,
            "kernel_cache": {
                "plan_hits": self.cache_hits,
                "plan_misses": self.cache_misses,
                **kernel_cache.stats(),
            },
        }

    # -- execution ----------------------------------------------------------
    @staticmethod
    def _publish(segment, step, outputs, mem, env, observers) -> None:
        for tag, port, start, stop in step.bindings:
            env[tag] = outputs[port][start:stop]
        for observer in observers:
            observer.on_trace(segment, step, outputs, mem)

    def run_segment(self, segment, mems, env, observers) -> None:
        """Execute one segment's steps through its kernel units.

        Bit-identical to the interpreting loop: same outputs, bindings,
        memory state, statistics, error behaviour and observer hook
        order — fused units only skip the per-execution re-derivation of
        index tables and collision structure.
        """
        tel = _telemetry.active()
        for unit in self.units[segment.index]:
            if unit[0] == "interp":
                step = segment.steps[unit[1]]
                mem = mems[step.mem]
                outputs = mem.replay(step.trace(env))
                self._publish(segment, step, outputs, mem, env, observers)
            elif unit[0] == "run":
                _, indices, cat = unit
                mem = mems[segment.steps[indices[0]].mem]
                gathered = {
                    port: mem.banks.read_slots(port, slots)
                    for port, slots in cat.items()
                }
                offset = 0
                for idx in indices:
                    step = segment.steps[idx]
                    outputs = {
                        port: g[offset:offset + step.n]
                        for port, g in gathered.items()
                    }
                    offset += step.n
                    self._account(mem, step, len(outputs), False, tel)
                    self._publish(segment, step, outputs, mem, env, observers)
            else:
                _, idx, tables = unit
                step = segment.steps[idx]
                mem = mems[step.mem]
                # resolving late-bound values can raise ProgramError —
                # at the same point the interp path would (trace build)
                values = step.write_values(env)
                if values.shape[1] != mem.lanes:
                    self._replay_resolved(step, values, mem)
                    raise AssertionError(  # pragma: no cover - replay raises
                        "lane-width mismatch survived serial re-issue"
                    )
                flat_values = values.ravel()
                outputs = {}
                for port, r_slots in tables.reads.items():
                    result = mem.banks.read_slots(port, r_slots)
                    fwd = tables.forwards.get(port)
                    if fwd is not None:
                        result.reshape(-1)[fwd[0]] = flat_values[fwd[1]]
                        if tel is not None:
                            tel.metrics.counter(
                                "polymem.collision.forwarded"
                            ).inc(int(fwd[0].size))
                    outputs[port] = result
                mem.banks.write_slots(tables.w_slots, flat_values)
                self._account(mem, step, len(outputs), True, tel)
                self._publish(segment, step, outputs, mem, env, observers)

    @staticmethod
    def _account(mem, step, n_ports, has_write, tel) -> None:
        """Replay-identical accounting for one fused step."""
        n = step.n
        for port in step.reads:
            mem.read_stats[port].accesses += n
            mem.read_stats[port].elements += n * mem.lanes
        if has_write:
            mem.write_stats.accesses += n
            mem.write_stats.elements += n * mem.lanes
        mem.cycles += n
        if tel is not None:
            m = tel.metrics
            m.counter("polymem.cycles.fused").inc(n)
            m.counter("polymem.parallel_accesses").inc(
                n * (n_ports + (1 if has_write else 0))
            )

    @staticmethod
    def _replay_resolved(step, values, mem) -> None:
        """Re-issue a lane-width-mismatched write through replay's serial
        error path, with the already-resolved values (callables are only
        invoked once, matching the interp path)."""
        trace = AccessTrace()
        for port, (kind, ai, aj, stride) in step.reads.items():
            trace.read(kind, ai, aj, port=port, stride=stride)
        kind, ai, aj, stride, _ = step.write
        trace.write(kind, ai, aj, values, stride=stride)
        mem.replay(trace)


def fusion_plan(compiled, mems: Mapping[str, Any]) -> FusionPlan:
    """Specialize *compiled* against *mems*: the fused backend's entry.

    Groups the segment list at barriers, fetches (or builds and caches)
    each group's kernel from :data:`kernel_cache`, and returns the
    :class:`FusionPlan` the engine drives segment by segment.
    """
    units: dict[int, tuple] = {}
    hits = misses = 0
    groups = _split_groups(compiled.segments)
    for group in groups:
        key = group_key(group, mems)
        kernel, hit = kernel_cache.ensure(
            key, lambda g=group: _build_group_kernel(g, mems)
        )
        if hit:
            hits += 1
        else:
            misses += 1
        for seg, seg_units in zip(group, kernel):
            units[seg.index] = seg_units
    plan = FusionPlan(units, len(groups), hits, misses)
    tel = _telemetry.active()
    if tel is not None:
        m = tel.metrics
        m.counter("program.fusion.groups").inc(plan.n_groups)
        m.counter("program.fusion.segments").inc(plan.n_fused_segments)
        m.counter("program.fusion.steps").inc(plan.n_fused_steps)
        m.counter("program.fusion.fallback_steps").inc(plan.n_fallback_steps)
    return plan


def warm_kernels(compiled, mems: Mapping[str, Any]) -> int:
    """Pre-build every group kernel *compiled* needs into
    :data:`kernel_cache` (the exec runtime's KernelCache pre-warm hook).

    Warming in the parent before the worker pool forks makes the first
    fused execution in every worker a pure cache hit; returns the number
    of kernels built fresh.
    """
    from .passes import warm_plans

    warm_plans(compiled, mems)
    built = 0
    for group in _split_groups(compiled.segments):
        key = group_key(group, mems)
        _, hit = kernel_cache.ensure(
            key, lambda g=group: _build_group_kernel(g, mems)
        )
        built += not hit
    return built
