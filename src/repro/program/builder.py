"""One builder surface for every access program.

Program construction used to be scattered across per-module
``*_program`` free functions (``matmul_program``, ``schedule_program``,
``job_program``, …), each with its own positional signature and its own
idea of what to return.  This module replaces them with a single entry
point:

* :func:`build` — resolve a *spec* (a registered lowering name such as
  ``"kernel.matmul"``, a demo name from :mod:`repro.program.lower`, a
  ready :class:`~repro.program.ir.AccessProgram`, or a
  :class:`ProgramBuilder`) into a :class:`BuiltProgram`: the program,
  its bound memories, and the execution defaults (backend, observers);
* :class:`ProgramBuilder` — a fluent, keyword-only construction API for
  hand-rolled programs (``ProgramBuilder("x").read(...).using(pm).run()``).

The old ``*_program`` names still work as thin deprecation shims that
warn and forward here; see ``docs/program_api.md`` for the mapping.

>>> import numpy as np
>>> from repro.program.builder import build
>>> a = np.arange(64, dtype=np.uint64).reshape(8, 8)
>>> built = build("kernel.matmul", a=a, b=a)
>>> bool(np.array_equal(built.run()["c"], a @ a))
True
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.exceptions import ProgramError
from .engine import ProgramResult, execute
from .ir import AccessProgram

__all__ = ["BuiltProgram", "ProgramBuilder", "SPEC_NAMES", "build"]


# ---------------------------------------------------------------------------
# the spec registry: every production lowering under one dotted namespace

def _kernel_matmul(*, a, b, p=2, q=4):
    from ..kernels.matmul import _matmul_program

    program, pm = _matmul_program(a, b, p, q)
    return program, {"default": pm}


def _kernel_stencil(*, image, weights, p=2, q=4):
    from ..kernels.stencil import _stencil_program

    program, pm = _stencil_program(image, weights, p, q)
    return program, {"default": pm}


def _kernel_jacobi(*, grid, iterations, p=2, q=4):
    from ..kernels.jacobi import _jacobi_program

    program, pm = _jacobi_program(grid, iterations, p, q)
    return program, {"default": pm}


def _kernel_transpose(*, matrix, p=2, q=4):
    from ..kernels.transpose import _transpose_program

    return _transpose_program(matrix, p, q)


def _kernel_reduce_rows(*, pm):
    from ..kernels.reduction import _reduce_rows_program

    return _reduce_rows_program(pm), {"default": pm}


def _kernel_reduce_columns(*, pm):
    from ..kernels.reduction import _reduce_columns_program

    return _reduce_columns_program(pm), {"default": pm}


def _prf_operands(*, machine, regs):
    return machine._lower_operands(*regs), {"default": machine.rf.memory}


def _prf_store(*, machine, reg, values):
    return machine._lower_store(reg, values), {"default": machine.rf.memory}


def _schedule_accesses(*, schedule, memory=None):
    from ..schedule.executor import _schedule_program

    mems = {} if memory is None else {"default": memory}
    return _schedule_program(schedule), mems


def _stream_job(*, controller, job):
    # describe-only: the write stream's values arrive over wr_data at
    # simulation time, so no memory is bound
    return controller._job_program(job), {}


_SPECS = {
    "kernel.matmul": _kernel_matmul,
    "kernel.stencil": _kernel_stencil,
    "kernel.jacobi": _kernel_jacobi,
    "kernel.transpose": _kernel_transpose,
    "kernel.reduce_rows": _kernel_reduce_rows,
    "kernel.reduce_columns": _kernel_reduce_columns,
    "prf.operands": _prf_operands,
    "prf.store": _prf_store,
    "schedule.accesses": _schedule_accesses,
    "stream.job": _stream_job,
}

SPEC_NAMES = tuple(_SPECS)


class BuiltProgram:
    """A program bound to its memories and execution defaults.

    What :func:`build` returns: ``program`` is the lowered
    :class:`AccessProgram`, ``mems`` the memory-name mapping the spec
    produced (empty for describe-only programs), ``backend`` /
    ``observers`` the defaults :meth:`run` applies.
    """

    __slots__ = ("program", "mems", "backend", "observers")

    def __init__(self, program: AccessProgram, mems: dict, backend, observers):
        self.program = program
        self.mems = mems
        self.backend = backend
        self.observers = observers

    def compile(self):
        """The program's :class:`~repro.program.passes.CompiledProgram`."""
        from .passes import compile_program

        return compile_program(self.program)

    def run(
        self,
        *,
        mems=None,
        env: Mapping[str, Any] | None = None,
        result_elements: int | None = None,
        backend: str | None = None,
        observers=None,
    ) -> ProgramResult:
        """Execute through the shared engine; keyword overrides only."""
        target = self.mems if mems is None else mems
        if isinstance(target, Mapping) and not target:
            raise ProgramError(
                f"program {self.program.name!r} has no bound memories "
                f"(describe-only spec?); pass mems=..."
            )
        return execute(
            self.program,
            target,
            observers=self.observers if observers is None else observers,
            env=env,
            result_elements=result_elements,
            backend=self.backend if backend is None else backend,
        )

    def __repr__(self) -> str:
        return (
            f"BuiltProgram({self.program.name!r}, mems={sorted(self.mems)}, "
            f"backend={self.backend!r})"
        )


class ProgramBuilder:
    """Fluent, keyword-only construction of hand-rolled programs.

    >>> import numpy as np
    >>> builder = ProgramBuilder("sum_rows")
    >>> _ = builder.read("row", np.arange(4), np.zeros(4, int), tag="rows")
    >>> _ = builder.compute(lambda env: {"s": env["rows"].sum()}, label="sum")
    >>> len(builder.program)
    2
    """

    def __init__(self, name: str, *, metadata: Mapping[str, Any] | None = None):
        self._program = AccessProgram(name, metadata=dict(metadata or {}))
        self._mems: dict[str, Any] = {}

    # -- op construction (keyword-only parameters) --------------------------
    def read(
        self, kind, anchors_i, anchors_j, *,
        port: int = 0, stride: int = 1, tag=None, mem: str = "default",
        fuse: bool = False,
    ) -> "ProgramBuilder":
        """Append a parallel-read stream."""
        self._program.read(
            kind, anchors_i, anchors_j, port=port, stride=stride, tag=tag,
            mem=mem, fuse=fuse,
        )
        return self

    def write(
        self, kind, anchors_i, anchors_j, *,
        values=None, stride: int = 1, mem: str = "default",
        fuse: bool = False,
    ) -> "ProgramBuilder":
        """Append a parallel-write stream."""
        self._program.write(
            kind, anchors_i, anchors_j, values=values, stride=stride,
            mem=mem, fuse=fuse,
        )
        return self

    def compute(self, fn, *, label: str = "compute") -> "ProgramBuilder":
        """Append a host-compute boundary."""
        self._program.compute(fn, label=label)
        return self

    def barrier(self, *, label: str = "barrier") -> "ProgramBuilder":
        """Append an explicit segment boundary."""
        self._program.barrier(label=label)
        return self

    # -- memory binding ------------------------------------------------------
    def using(self, memory=None, **named) -> "ProgramBuilder":
        """Bind memories: *memory* becomes ``"default"``, keywords bind
        named memories (``using(src=pm_a, dst=pm_b)``)."""
        if memory is not None:
            self._mems["default"] = memory
        self._mems.update(named)
        return self

    # -- products ------------------------------------------------------------
    @property
    def program(self) -> AccessProgram:
        return self._program

    def build(self, *, backend: str | None = None, observers=()) -> BuiltProgram:
        return BuiltProgram(self._program, dict(self._mems), backend,
                            tuple(observers))

    def run(self, **kwargs) -> ProgramResult:
        """Build and execute in one call (see :meth:`BuiltProgram.run`)."""
        return self.build().run(**kwargs)


def build(
    spec,
    *,
    backend: str | None = None,
    observers=(),
    mems=None,
    **params,
) -> BuiltProgram:
    """Resolve *spec* into a :class:`BuiltProgram`.

    *spec* is one of

    * a registered lowering name (:data:`SPEC_NAMES`, e.g.
      ``"kernel.matmul"``) — ``**params`` go to the spec's factory;
    * a demo name from :mod:`repro.program.lower` (e.g. ``"matmul"``) —
      the demo's canonical small instance, no parameters;
    * an :class:`AccessProgram` — bound as-is (pass ``mems=``);
    * a :class:`ProgramBuilder` — its program plus ``using()`` bindings.

    ``backend`` / ``observers`` become the defaults of
    :meth:`BuiltProgram.run`; ``mems`` (one memory or a name mapping)
    overrides the spec's own binding.
    """
    if isinstance(spec, ProgramBuilder):
        built = spec.build(backend=backend, observers=observers)
        program, spec_mems = built.program, built.mems
    elif isinstance(spec, AccessProgram):
        program, spec_mems = spec, {}
    elif isinstance(spec, str):
        factory = _SPECS.get(spec)
        if factory is not None:
            program, spec_mems = factory(**params)
        else:
            from .lower import DEMO_NAMES, lower_demo

            if spec not in DEMO_NAMES:
                raise ProgramError(
                    f"unknown program spec {spec!r}: expected one of "
                    f"{', '.join(SPEC_NAMES + DEMO_NAMES)}, an "
                    f"AccessProgram, or a ProgramBuilder"
                )
            if params:
                raise ProgramError(
                    f"demo {spec!r} takes no parameters, got "
                    f"{sorted(params)}"
                )
            program, spec_mems = lower_demo(spec)
    else:
        raise ProgramError(
            f"cannot build from {type(spec).__name__}: expected a spec "
            f"name, an AccessProgram, or a ProgramBuilder"
        )
    if mems is not None:
        spec_mems = dict(mems) if isinstance(mems, Mapping) else {"default": mems}
    return BuiltProgram(program, dict(spec_mems), backend, tuple(observers))
