"""One execution engine for every access program.

:func:`execute` runs a compiled :class:`~repro.program.ir.AccessProgram`
against one or more :class:`~repro.core.polymem.PolyMem` instances:
each :class:`~repro.program.passes.TraceStep` is replayed whole
(:meth:`PolyMem.replay` — bit-identical to per-cycle stepping), tagged
read outputs are published into the execution *environment*, and
:class:`~repro.program.ir.Compute` boundaries run host work over it.
Cycle/element accounting flows through one
:class:`~repro.program.report.CycleScope`, so every caller gets the same
:class:`~repro.program.report.KernelReport` shape from the same place.

Two backends share this engine.  ``backend="interp"`` is the bit-exact
reference above; ``backend="fused"`` (the default) first specializes the
compiled segments into cached index-table kernels
(:func:`repro.program.fuse.fusion_plan`) and drives those instead —
same results, state, statistics, errors and observer hook order, minus
the per-execution re-derivation.  Anything fusion cannot prove
bit-identical (invalid cycles, describe-only writes, ``forbid``
collisions) stays on the interpreting replay path even under
``backend="fused"``, so cycle accounting never drifts.

Instrumentation attaches through :class:`Observer` — per-segment and
per-trace callbacks (stats, tracing, future fault injection) instead of
copy-pasted plumbing in each caller.  Observers see state *after* each
event; they must not mutate the memories mid-program.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.exceptions import ProgramError
from ..core.polymem import PolyMem
from ..telemetry import context as _telemetry
from ..telemetry.observers import TelemetryObserver
from .fuse import fusion_plan
from .ir import AccessProgram, Compute
from .passes import CompiledProgram, compile_program, warm_plans
from .report import CycleScope, KernelReport

__all__ = ["BACKENDS", "DEFAULT_BACKEND", "Observer", "ProgramResult", "execute"]

#: the engine's execution backends: the interpreting reference and the
#: kernel-fusing fast path (see module docstring)
BACKENDS = ("interp", "fused")
DEFAULT_BACKEND = "fused"


class Observer:
    """Base class for engine instrumentation; all hooks default to no-ops.

    Hook order per execution: ``on_program_start``, then per segment
    ``on_segment_start`` → (``on_trace`` per step) → ``on_compute`` (if
    the segment closes with host work) → ``on_segment_end``, and finally
    ``on_program_end``.  A replay error aborts the program mid-hook
    sequence (no ``on_program_end``), matching the hand-built paths where
    the caller's plumbing stopped at the raise.
    """

    def on_program_start(
        self, compiled: CompiledProgram, mems: Mapping[str, PolyMem]
    ) -> None:
        pass

    def on_segment_start(self, segment) -> None:
        pass

    def on_trace(self, segment, step, outputs: dict, mem: PolyMem) -> None:
        pass

    def on_compute(self, segment, boundary: Compute, env: dict) -> None:
        pass

    def on_segment_end(self, segment, env: dict) -> None:
        pass

    def on_program_end(self, result: "ProgramResult") -> None:
        pass


class ProgramResult:
    """What an execution produced: the environment plus the report."""

    __slots__ = ("program", "env", "report")

    def __init__(self, program: AccessProgram, env: dict, report: KernelReport):
        self.program = program
        self.env = env
        self.report = report

    def __getitem__(self, tag: str) -> Any:
        return self.env[tag]

    def __repr__(self) -> str:
        return (
            f"ProgramResult({self.program.name!r}, "
            f"cycles={self.report.cycles}, env={sorted(self.env)})"
        )


def _resolve_mems(compiled: CompiledProgram, polymem) -> dict[str, PolyMem]:
    if isinstance(polymem, PolyMem):
        mapping = {"default": polymem}
    else:
        mapping = dict(polymem)
    missing = [name for name in compiled.mems if name not in mapping]
    if missing:
        raise ProgramError(
            f"program {compiled.program.name!r} targets unmapped "
            f"memories: {missing}"
        )
    return mapping


def execute(
    program: AccessProgram | CompiledProgram,
    polymem,
    observers=(),
    env: Mapping[str, Any] | None = None,
    result_elements: int | None = None,
    *,
    backend: str | None = None,
) -> ProgramResult:
    """Execute *program* against *polymem* (one PolyMem, or a mapping of
    memory names to PolyMems for multi-memory programs).

    ``backend`` selects the execution strategy: ``"fused"`` (the
    default) specializes the program into cached index-table kernels,
    ``"interp"`` replays each trace step through the bit-exact
    interpreting reference.  Both produce identical results, memory
    state, statistics and errors.

    Returns a :class:`ProgramResult`: the final environment (tagged read
    outputs and Compute products) plus the :class:`KernelReport`.  The
    ``result_elements`` of the report come from the explicit argument,
    else the environment's/metadata's ``"result_elements"`` key, else 0.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ProgramError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    compiled = (
        program
        if isinstance(program, CompiledProgram)
        else compile_program(program)
    )
    tel = _telemetry.active()
    if tel is not None:
        # telemetry rides the existing hook surface — one observer per
        # execution, appended after the caller's own observers
        observers = (*observers, TelemetryObserver(tel))
    prog = compiled.program
    mems = _resolve_mems(compiled, polymem)
    warm_plans(compiled, mems)
    fused = fusion_plan(compiled, mems) if backend == "fused" else None
    env = dict(env or {})
    scope_mems = [mems[name] for name in compiled.mems]
    if not scope_mems:  # access-free program: account against any memory
        scope_mems = [next(iter(mems.values()))]
    with CycleScope(scope_mems[0], prog.name, *scope_mems[1:]) as scope:
        for observer in observers:
            observer.on_program_start(compiled, mems)
        for segment in compiled.segments:
            for observer in observers:
                observer.on_segment_start(segment)
            if fused is not None:
                fused.run_segment(segment, mems, env, observers)
            else:
                for step in segment.steps:
                    mem = mems[step.mem]
                    outputs = mem.replay(step.trace(env))
                    for tag, port, start, stop in step.bindings:
                        env[tag] = outputs[port][start:stop]
                    for observer in observers:
                        observer.on_trace(segment, step, outputs, mem)
            if isinstance(segment.boundary, Compute):
                product = segment.boundary.fn(env)
                if isinstance(product, dict):
                    env.update(product)
                for observer in observers:
                    observer.on_compute(segment, segment.boundary, env)
            for observer in observers:
                observer.on_segment_end(segment, env)
        if result_elements is None:
            result_elements = env.get(
                "result_elements", prog.metadata.get("result_elements", 0)
            )
        result = ProgramResult(prog, env, scope.report(int(result_elements)))
    for observer in observers:
        observer.on_program_end(result)
    return result
