"""The access-program IR: one typed description of a memory-bound kernel.

Every PolyMem client used to hand-assemble its own
:class:`~repro.core.plan.AccessTrace`, anchor iteration and stats plumbing.
An :class:`AccessProgram` replaces that with a small ordered IR of four
typed operations:

* :class:`ParallelRead`   — a stream of parallel reads on one port;
* :class:`ParallelWrite`  — a stream of parallel writes (values may be
  concrete, or late-bound host data produced by an earlier
  :class:`Compute`);
* :class:`Compute`        — host-side work over previously read data
  (a segment boundary: accesses cannot move across it);
* :class:`Barrier`        — an explicit segment boundary with no host work.

Programs are *lowered* from application kernels, the PRF vector machine,
schedule executions and the STREAM controller — all through the one
builder surface in :mod:`repro.program.builder` (see also the demo
registry in :mod:`repro.program.lower`) — then compiled by
:mod:`repro.program.passes` and executed by :mod:`repro.program.engine`.
The pipeline guarantees bit-identical behaviour to hand-built traces:
compilation only groups and coalesces accesses in ways
:meth:`~repro.core.polymem.PolyMem.replay` proves equivalent, and the
fused backend (:mod:`repro.program.fuse`) falls back to interpretation
for any step it cannot prove bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence, Union

import numpy as np

from ..core.exceptions import ProgramError
from ..core.patterns import PatternKind

__all__ = [
    "AccessOp",
    "AccessProgram",
    "Barrier",
    "Compute",
    "ParallelRead",
    "ParallelWrite",
]

#: a write's data: concrete ``(n, lanes)`` values, a late-bound callable
#: ``env -> (n, lanes)`` resolved at execution, or ``None`` for programs
#: that only *describe* accesses (trace derivation, chunk proofs, anchor
#: generation) and are never executed
ValueSource = Union[np.ndarray, Callable[[Mapping[str, Any]], np.ndarray], None]


def _as_anchors(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ProgramError(f"{name} anchors must be scalar or 1-D, got {arr.ndim}-D")
    return arr


def _as_kinds(kind, n: int):
    """Normalize *kind* to one PatternKind or an n-length tuple of them."""
    if isinstance(kind, (PatternKind, str)):
        return PatternKind(kind)
    kinds = tuple(PatternKind(k) for k in kind)
    if len(kinds) != n:
        raise ProgramError(f"per-cycle kinds: got {len(kinds)} kinds for {n} anchors")
    return kinds


class AccessOp:
    """Common shape of the two access ops: a typed anchor stream.

    ``kind`` is one :class:`~repro.core.patterns.PatternKind` (uniform
    stream) or an ``n``-length per-cycle sequence (heterogeneous stream,
    e.g. a §III-A schedule mixing access shapes).
    """

    __slots__ = ("kind", "anchors_i", "anchors_j", "stride", "tag", "mem", "fuse")

    def __init__(self, kind, anchors_i, anchors_j, stride=1, tag=None, mem="default",
                 fuse=False):
        self.anchors_i = _as_anchors(anchors_i, "i")
        self.anchors_j = _as_anchors(anchors_j, "j")
        if self.anchors_i.shape != self.anchors_j.shape:
            raise ProgramError(
                f"anchor arrays must be equal length: "
                f"{self.anchors_i.size} vs {self.anchors_j.size}"
            )
        self.kind = _as_kinds(kind, self.anchors_i.size)
        if stride < 1:
            raise ProgramError(f"stride must be >= 1, got {stride}")
        self.stride = int(stride)
        self.tag = tag
        self.mem = mem
        #: issue in the same cycles as the previous access op (one trace,
        #: distinct ports) instead of after it — the PRF's concurrent
        #: multi-port streaming and read+write-per-cycle workloads
        self.fuse = bool(fuse)

    @property
    def n(self) -> int:
        """Stream length in cycles (one parallel access per cycle)."""
        return self.anchors_i.size

    @property
    def uniform(self) -> bool:
        return isinstance(self.kind, PatternKind)

    def kind_seq(self) -> list[PatternKind]:
        """The per-cycle kind sequence, expanded."""
        if self.uniform:
            return [self.kind] * self.n
        return list(self.kind)

    def kind_label(self) -> str:
        if self.uniform:
            return self.kind.value
        distinct = list(dict.fromkeys(self.kind))
        return "|".join(k.value for k in distinct)

    def cells(self, p: int, q: int) -> set[tuple[int, int]]:
        """Every (i, j) cell this op touches on a ``p x q`` lane grid."""
        from ..core.patterns import pattern_offsets

        out: set[tuple[int, int]] = set()
        ai, aj = self.anchors_i, self.anchors_j
        if self.uniform:
            groups = [(self.kind, ai, aj)]
        else:
            codes = np.asarray([k.value for k in self.kind])
            groups = [
                (k, ai[codes == k.value], aj[codes == k.value])
                for k in dict.fromkeys(self.kind)
            ]
        for kind, gi, gj in groups:
            di, dj = pattern_offsets(kind, p, q, self.stride)
            ii = gi[:, None] + di[None, :]
            jj = gj[:, None] + dj[None, :]
            out.update(zip(ii.ravel().tolist(), jj.ravel().tolist()))
        return out


class ParallelRead(AccessOp):
    """A stream of parallel reads on one port.

    ``tag`` names the ``(n, lanes)`` result in the execution environment;
    untagged reads still consume cycles but their data is dropped.
    """

    __slots__ = ("port",)

    def __init__(
        self, kind, anchors_i, anchors_j, port=0, stride=1, tag=None, mem="default",
        fuse=False,
    ):
        super().__init__(kind, anchors_i, anchors_j, stride, tag, mem, fuse)
        if port < 0:
            raise ProgramError(f"read port must be >= 0, got {port}")
        self.port = int(port)

    def __repr__(self) -> str:
        tag = f" -> {self.tag!r}" if self.tag else ""
        return (
            f"ParallelRead({self.kind_label()}, n={self.n}, "
            f"port={self.port}, stride={self.stride}{tag})"
        )


class ParallelWrite(AccessOp):
    """A stream of parallel writes on the write port.

    ``values`` is the ``(n, lanes)`` data, a callable ``env -> (n, lanes)``
    resolved when the program executes (late-bound host results), or
    ``None`` for describe-only programs.
    """

    __slots__ = ("values",)

    def __init__(
        self, kind, anchors_i, anchors_j, values=None, stride=1, tag=None,
        mem="default", fuse=False,
    ):
        super().__init__(kind, anchors_i, anchors_j, stride, tag, mem, fuse)
        if values is not None and not callable(values):
            values = np.asarray(values)
            if values.ndim != 2 or values.shape[0] != self.n:
                raise ProgramError(
                    f"write values must be (n, lanes) = ({self.n}, ...), "
                    f"got shape {values.shape}"
                )
        self.values = values

    def resolve_values(self, env: Mapping[str, Any]) -> np.ndarray:
        if self.values is None:
            raise ProgramError(
                "write op has no values: describe-only programs cannot execute"
            )
        if callable(self.values):
            return np.asarray(self.values(env))
        return self.values

    def __repr__(self) -> str:
        src = (
            "deferred"
            if self.values is None
            else ("late-bound" if callable(self.values) else "concrete")
        )
        return (
            f"ParallelWrite({self.kind_label()}, n={self.n}, "
            f"stride={self.stride}, values={src})"
        )


@dataclass(frozen=True)
class Compute:
    """Host-side work over the execution environment (segment boundary).

    ``fn(env)`` may return a dict merged back into the environment, or
    mutate host state via its closure and return ``None``.
    """

    fn: Callable[[dict], Any]
    label: str = "compute"

    def __repr__(self) -> str:
        return f"Compute({self.label!r})"


@dataclass(frozen=True)
class Barrier:
    """An explicit segment boundary with no host work (accesses on either
    side never share a replayed trace)."""

    label: str = "barrier"

    def __repr__(self) -> str:
        return f"Barrier({self.label!r})"


@dataclass
class AccessProgram:
    """An ordered access program plus metadata — the unit every PolyMem
    client lowers to.

    >>> import numpy as np
    >>> prog = (
    ...     AccessProgram("demo")
    ...     .read("row", np.arange(4), np.zeros(4, int), tag="rows")
    ...     .compute(lambda env: {"sum": env["rows"].sum()}, label="reduce")
    ... )
    >>> len(prog)
    2
    """

    name: str
    ops: list = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    # -- builders (chainable) ---------------------------------------------
    def read(self, kind, anchors_i, anchors_j, port=0, stride=1, tag=None,
             mem="default", fuse=False) -> "AccessProgram":
        """Append a :class:`ParallelRead`."""
        self.ops.append(
            ParallelRead(kind, anchors_i, anchors_j, port, stride, tag, mem, fuse)
        )
        return self

    def write(self, kind, anchors_i, anchors_j, values=None, stride=1,
              mem="default", fuse=False) -> "AccessProgram":
        """Append a :class:`ParallelWrite`."""
        self.ops.append(
            ParallelWrite(kind, anchors_i, anchors_j, values, stride,
                          mem=mem, fuse=fuse)
        )
        return self

    def compute(self, fn, label="compute") -> "AccessProgram":
        """Append a :class:`Compute` boundary."""
        self.ops.append(Compute(fn, label))
        return self

    def barrier(self, label="barrier") -> "AccessProgram":
        """Append a :class:`Barrier` boundary."""
        self.ops.append(Barrier(label))
        return self

    def extend(self, ops: Sequence) -> "AccessProgram":
        """Append pre-built ops."""
        self.ops.extend(ops)
        return self

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    @property
    def access_ops(self) -> list[AccessOp]:
        return [op for op in self.ops if isinstance(op, AccessOp)]

    @property
    def access_cycles(self) -> int:
        """Parallel-access cycles the program will consume (writes and the
        reads sharing their trace overlap are counted by the compiler;
        this is the naive per-op upper bound used for reporting)."""
        return sum(op.n for op in self.access_ops)

    def cells(self, p: int, q: int) -> set[tuple[int, int]]:
        """Union of all cells touched by the program's accesses."""
        out: set[tuple[int, int]] = set()
        for op in self.access_ops:
            out |= op.cells(p, q)
        return out

    def __repr__(self) -> str:
        return f"AccessProgram({self.name!r}, {len(self.ops)} ops)"
